//! Property-based tests over every transformation.

use fpc_transforms::{bit_transpose, diffms, fcm, mplg, rare, raze, rze, zigzag};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn zigzag_bijection32(v in any::<u32>()) {
        prop_assert_eq!(zigzag::decode32(zigzag::encode32(v)), v);
    }

    #[test]
    fn zigzag_bijection64(v in any::<u64>()) {
        prop_assert_eq!(zigzag::decode64(zigzag::encode64(v)), v);
    }

    #[test]
    fn zigzag_orders_by_magnitude(a in -1000i32..1000, b in -1000i32..1000) {
        // Smaller absolute value => smaller (or equal) zigzag code.
        if a.unsigned_abs() < b.unsigned_abs() {
            prop_assert!(zigzag::encode32(a as u32) < zigzag::encode32(b as u32));
        }
    }

    #[test]
    fn diffms_roundtrip32(values in prop::collection::vec(any::<u32>(), 0..2000)) {
        let mut v = values.clone();
        diffms::encode32(&mut v);
        diffms::decode32(&mut v);
        prop_assert_eq!(v, values);
    }

    #[test]
    fn diffms_roundtrip64(values in prop::collection::vec(any::<u64>(), 0..1500)) {
        let mut v = values.clone();
        diffms::encode64(&mut v);
        diffms::decode64(&mut v);
        prop_assert_eq!(v, values);
    }

    #[test]
    fn bit_transpose_involution(values in prop::collection::vec(any::<u32>(), 0..500)) {
        let mut v = values.clone();
        bit_transpose::transpose32(&mut v);
        bit_transpose::transpose32(&mut v);
        prop_assert_eq!(v, values);
    }

    #[test]
    fn bit_transpose_preserves_popcount(values in prop::collection::vec(any::<u64>(), 0..256)) {
        let before: u32 = values.iter().map(|v| v.count_ones()).sum();
        let mut v = values.clone();
        bit_transpose::transpose64(&mut v);
        let after: u32 = v.iter().map(|x| x.count_ones()).sum();
        prop_assert_eq!(before, after);
    }

    #[test]
    fn mplg_roundtrip32(values in prop::collection::vec(any::<u32>(), 0..2000), fallback in any::<bool>()) {
        let mut enc = Vec::new();
        mplg::encode32_with(&values, &mut enc, fallback);
        let mut pos = 0;
        let mut dec = Vec::new();
        mplg::decode32(&enc, &mut pos, values.len(), &mut dec).unwrap();
        prop_assert_eq!(pos, enc.len());
        prop_assert_eq!(dec, values);
    }

    #[test]
    fn mplg_roundtrip64(values in prop::collection::vec(any::<u64>(), 0..1000)) {
        let mut enc = Vec::new();
        mplg::encode64(&values, &mut enc);
        let mut pos = 0;
        let mut dec = Vec::new();
        mplg::decode64(&enc, &mut pos, values.len(), &mut dec).unwrap();
        prop_assert_eq!(dec, values);
    }

    #[test]
    fn rze_roundtrip(data in prop::collection::vec(any::<u8>(), 0..5000)) {
        let mut enc = Vec::new();
        rze::encode(&data, &mut enc);
        prop_assert_eq!(enc.len(), rze::encoded_len(&data));
        let mut pos = 0;
        let mut dec = Vec::new();
        rze::decode(&enc, &mut pos, data.len(), &mut dec).unwrap();
        prop_assert_eq!(pos, enc.len());
        prop_assert_eq!(dec, data);
    }

    #[test]
    fn rze_never_expands_beyond_bitmap_chain(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        let enc_len = rze::encoded_len(&data);
        let n = data.len();
        let chain = n.div_ceil(8) + n.div_ceil(64) + n.div_ceil(512) + 8;
        prop_assert!(enc_len <= n + chain, "{} > {} + {}", enc_len, n, chain);
    }

    #[test]
    fn raze_roundtrip_adaptive_and_fixed(
        values in prop::collection::vec(any::<u64>(), 0..800),
        kb in 0usize..=8
    ) {
        for fixed in [false, true] {
            let mut enc = Vec::new();
            if fixed {
                raze::encode_with_split(&values, &mut enc, kb);
            } else {
                raze::encode(&values, &mut enc);
            }
            let mut pos = 0;
            let mut dec = Vec::new();
            raze::decode(&enc, &mut pos, values.len(), &mut dec).unwrap();
            prop_assert_eq!(&dec, &values);
        }
    }

    #[test]
    fn rare_roundtrip_adaptive_and_fixed(
        values in prop::collection::vec(any::<u64>(), 0..800),
        kb in 0usize..=8
    ) {
        for fixed in [false, true] {
            let mut enc = Vec::new();
            if fixed {
                rare::encode_with_split(&values, &mut enc, kb);
            } else {
                rare::encode(&values, &mut enc);
            }
            let mut pos = 0;
            let mut dec = Vec::new();
            rare::decode(&enc, &mut pos, values.len(), &mut dec).unwrap();
            prop_assert_eq!(&dec, &values);
        }
    }

    #[test]
    fn fcm_roundtrip_any_window(
        values in prop::collection::vec(any::<u64>(), 0..1200),
        window in 1usize..=8
    ) {
        let enc = fcm::encode_with_window(&values, window);
        prop_assert_eq!(fcm::decode(&enc).unwrap(), values);
    }

    #[test]
    fn fcm_structure_invariants(values in prop::collection::vec(0u64..32, 0..1500)) {
        // Narrow alphabet forces many matches; check structural invariants:
        // exactly one of (value, distance) is meaningful per position, and
        // every distance points at an equal value.
        let enc = fcm::encode(&values);
        for (i, (&v, &d)) in enc.values.iter().zip(&enc.distances).enumerate() {
            if d != 0 {
                prop_assert_eq!(v, 0u64, "match position {} must zero its value", i);
                prop_assert_eq!(values[i - d as usize], values[i]);
            } else {
                prop_assert_eq!(v, values[i]);
            }
        }
    }

    #[test]
    fn transform_decoders_reject_random_bytes_gracefully(data in prop::collection::vec(any::<u8>(), 0..300)) {
        let mut pos = 0;
        let mut sink32 = Vec::new();
        let _ = mplg::decode32(&data, &mut pos, 100, &mut sink32);
        let mut pos = 0;
        let mut sink = Vec::new();
        let _ = rze::decode(&data, &mut pos, 1000, &mut sink);
        let mut pos = 0;
        let mut sink64 = Vec::new();
        let _ = raze::decode(&data, &mut pos, 100, &mut sink64);
        let mut pos = 0;
        let mut sink64b = Vec::new();
        let _ = rare::decode(&data, &mut pos, 100, &mut sink64b);
    }
}
