//! Deterministic property tests over every transformation
//! (in-repo fuzz driver; no external dependencies).

use fpc_prng::fuzz::run_cases;
use fpc_prng::Rng;
use fpc_transforms::{bit_transpose, diffms, fcm, mplg, rare, raze, rze, zigzag};

fn vec_u32(rng: &mut Rng, max_len: usize) -> Vec<u32> {
    let n = rng.gen_range(0usize..max_len);
    (0..n).map(|_| rng.next_u32()).collect()
}

fn vec_u64(rng: &mut Rng, max_len: usize) -> Vec<u64> {
    let n = rng.gen_range(0usize..max_len);
    (0..n).map(|_| rng.next_u64()).collect()
}

#[test]
fn zigzag_bijection32() {
    run_cases("transforms/zigzag32", 256, |rng, _| {
        let v = rng.next_u32();
        assert_eq!(zigzag::decode32(zigzag::encode32(v)), v);
    });
}

#[test]
fn zigzag_bijection64() {
    run_cases("transforms/zigzag64", 256, |rng, _| {
        let v = rng.next_u64();
        assert_eq!(zigzag::decode64(zigzag::encode64(v)), v);
    });
}

#[test]
fn zigzag_orders_by_magnitude() {
    run_cases("transforms/zigzag-order", 256, |rng, _| {
        let a = rng.gen_range(-1000i32..1000);
        let b = rng.gen_range(-1000i32..1000);
        // Smaller absolute value => smaller (or equal) zigzag code.
        if a.unsigned_abs() < b.unsigned_abs() {
            assert!(zigzag::encode32(a as u32) < zigzag::encode32(b as u32));
        }
    });
}

#[test]
fn diffms_roundtrip32() {
    run_cases("transforms/diffms32", 64, |rng, _| {
        let values = vec_u32(rng, 2000);
        let mut v = values.clone();
        diffms::encode32(&mut v);
        diffms::decode32(&mut v);
        assert_eq!(v, values);
    });
}

#[test]
fn diffms_roundtrip64() {
    run_cases("transforms/diffms64", 64, |rng, _| {
        let values = vec_u64(rng, 1500);
        let mut v = values.clone();
        diffms::encode64(&mut v);
        diffms::decode64(&mut v);
        assert_eq!(v, values);
    });
}

#[test]
fn bit_transpose_involution() {
    run_cases("transforms/transpose32", 64, |rng, _| {
        let values = vec_u32(rng, 500);
        let mut v = values.clone();
        bit_transpose::transpose32(&mut v);
        bit_transpose::transpose32(&mut v);
        assert_eq!(v, values);
    });
}

#[test]
fn bit_transpose_preserves_popcount() {
    run_cases("transforms/transpose64-popcount", 64, |rng, _| {
        let values = vec_u64(rng, 256);
        let before: u32 = values.iter().map(|v| v.count_ones()).sum();
        let mut v = values.clone();
        bit_transpose::transpose64(&mut v);
        let after: u32 = v.iter().map(|x| x.count_ones()).sum();
        assert_eq!(before, after);
    });
}

#[test]
fn mplg_roundtrip32() {
    run_cases("transforms/mplg32", 64, |rng, case| {
        let values = vec_u32(rng, 2000);
        let fallback = case % 2 == 0;
        let mut enc = Vec::new();
        mplg::encode32_with(&values, &mut enc, fallback);
        let mut pos = 0;
        let mut dec = Vec::new();
        mplg::decode32(&enc, &mut pos, values.len(), &mut dec).unwrap();
        assert_eq!(pos, enc.len());
        assert_eq!(dec, values);
    });
}

#[test]
fn mplg_roundtrip64() {
    run_cases("transforms/mplg64", 64, |rng, _| {
        let values = vec_u64(rng, 1000);
        let mut enc = Vec::new();
        mplg::encode64(&values, &mut enc);
        let mut pos = 0;
        let mut dec = Vec::new();
        mplg::decode64(&enc, &mut pos, values.len(), &mut dec).unwrap();
        assert_eq!(dec, values);
    });
}

#[test]
fn rze_roundtrip() {
    run_cases("transforms/rze", 64, |rng, _| {
        // Mix sparse (mostly-zero) and dense inputs: RZE targets sparsity.
        let n = rng.gen_range(0usize..5000);
        let p_zero = rng.next_f64();
        let data: Vec<u8> = (0..n)
            .map(|_| {
                if rng.gen_bool(p_zero) {
                    0
                } else {
                    rng.next_u64() as u8
                }
            })
            .collect();
        let mut enc = Vec::new();
        rze::encode(&data, &mut enc);
        assert_eq!(enc.len(), rze::encoded_len(&data));
        let mut pos = 0;
        let mut dec = Vec::new();
        rze::decode(&enc, &mut pos, data.len(), &mut dec).unwrap();
        assert_eq!(pos, enc.len());
        assert_eq!(dec, data);
    });
}

#[test]
fn rze_never_expands_beyond_bitmap_chain() {
    run_cases("transforms/rze-bound", 64, |rng, _| {
        let data = rng.bytes_range(0usize..4096);
        let enc_len = rze::encoded_len(&data);
        let n = data.len();
        let chain = n.div_ceil(8) + n.div_ceil(64) + n.div_ceil(512) + 8;
        assert!(enc_len <= n + chain, "{enc_len} > {n} + {chain}");
    });
}

#[test]
fn raze_roundtrip_adaptive_and_fixed() {
    run_cases("transforms/raze", 64, |rng, _| {
        let values = vec_u64(rng, 800);
        let kb = rng.gen_range(0usize..=8);
        for fixed in [false, true] {
            let mut enc = Vec::new();
            if fixed {
                raze::encode_with_split(&values, &mut enc, kb);
            } else {
                raze::encode(&values, &mut enc);
            }
            let mut pos = 0;
            let mut dec = Vec::new();
            raze::decode(&enc, &mut pos, values.len(), &mut dec).unwrap();
            assert_eq!(dec, values);
        }
    });
}

#[test]
fn rare_roundtrip_adaptive_and_fixed() {
    run_cases("transforms/rare", 64, |rng, _| {
        let values = vec_u64(rng, 800);
        let kb = rng.gen_range(0usize..=8);
        for fixed in [false, true] {
            let mut enc = Vec::new();
            if fixed {
                rare::encode_with_split(&values, &mut enc, kb);
            } else {
                rare::encode(&values, &mut enc);
            }
            let mut pos = 0;
            let mut dec = Vec::new();
            rare::decode(&enc, &mut pos, values.len(), &mut dec).unwrap();
            assert_eq!(dec, values);
        }
    });
}

#[test]
fn fcm_roundtrip_any_window() {
    run_cases("transforms/fcm", 64, |rng, _| {
        let values = vec_u64(rng, 1200);
        let window = rng.gen_range(1usize..=8);
        let enc = fcm::encode_with_window(&values, window);
        assert_eq!(fcm::decode(&enc).unwrap(), values);
    });
}

#[test]
fn fcm_structure_invariants() {
    run_cases("transforms/fcm-structure", 64, |rng, _| {
        // Narrow alphabet forces many matches; check structural invariants:
        // exactly one of (value, distance) is meaningful per position, and
        // every distance points at an equal value.
        let n = rng.gen_range(0usize..1500);
        let values: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..32)).collect();
        let enc = fcm::encode(&values);
        for (i, (&v, &d)) in enc.values.iter().zip(&enc.distances).enumerate() {
            if d != 0 {
                assert_eq!(v, 0u64, "match position {i} must zero its value");
                assert_eq!(values[i - d as usize], values[i]);
            } else {
                assert_eq!(v, values[i]);
            }
        }
    });
}

#[test]
fn transform_decoders_reject_random_bytes_gracefully() {
    run_cases("transforms/random-bytes", 512, |rng, _| {
        let data = rng.bytes_range(0usize..300);
        let mut pos = 0;
        let mut sink32 = Vec::new();
        let _ = mplg::decode32(&data, &mut pos, 100, &mut sink32);
        let mut pos = 0;
        let mut sink64m = Vec::new();
        let _ = mplg::decode64(&data, &mut pos, 100, &mut sink64m);
        let mut pos = 0;
        let mut sink = Vec::new();
        let _ = rze::decode(&data, &mut pos, 1000, &mut sink);
        let mut pos = 0;
        let mut sink64 = Vec::new();
        let _ = raze::decode(&data, &mut pos, 100, &mut sink64);
        let mut pos = 0;
        let mut sink64b = Vec::new();
        let _ = rare::decode(&data, &mut pos, 100, &mut sink64b);
    });
}
