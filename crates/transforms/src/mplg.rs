//! Enhanced MPLG: per-subchunk elimination of common leading zero bits.
//!
//! The final stage of SPspeed/DPspeed (paper §3.1, Figure 3). Each 512-byte
//! subchunk finds its maximum value, counts the maximum's leading zero bits,
//! and stores every value of the subchunk at the resulting common bit width.
//! The paper's *enhancement*: when the maximum has no leading zeros (MPLG
//! would be ineffective), one extra two's-complement → magnitude-sign
//! conversion is applied to the subchunk — a cheap reversible shuffle that
//! often manufactures a few leading zeros — and a flag bit records this.
//!
//! Wire format per subchunk: one header byte (bit 7 = conversion flag,
//! bits 0–6 = kept bit width) followed by the bit-packed values.

use crate::{zigzag, DecodeError, Result, SUBCHUNK_SIZE};
use fpc_entropy::bitpack;
use fpc_metrics::Stage;

/// Values per subchunk for the 32-bit variant.
pub const SUBCHUNK_VALUES_32: usize = SUBCHUNK_SIZE / 4;
/// Values per subchunk for the 64-bit variant.
pub const SUBCHUNK_VALUES_64: usize = SUBCHUNK_SIZE / 8;

const FLAG_CONVERTED: u8 = 0x80;
const WIDTH_MASK: u8 = 0x7F;

/// Encodes a chunk's worth of 32-bit words, appending to `out`.
pub fn encode32(values: &[u32], out: &mut Vec<u8>) {
    encode32_with(values, out, true);
}

/// [`encode32`] with the zigzag-fallback enhancement toggleable (the
/// ablation study compares plain MPLG against the enhanced version; the
/// decoder is unaffected because the fallback is flag-driven).
pub fn encode32_with(values: &[u32], out: &mut Vec<u8>, fallback: bool) {
    let t = fpc_metrics::timer(Stage::MplgEncode);
    let mut buf = [0u32; SUBCHUNK_VALUES_32];
    for sub in values.chunks(SUBCHUNK_VALUES_32) {
        let mut width = bitpack::min_width_u32(sub);
        let mut flag = 0u8;
        let packed: &[u32] = if width == 32 && fallback {
            let b = &mut buf[..sub.len()];
            b.copy_from_slice(sub);
            zigzag::encode32_slice(b);
            let w2 = bitpack::min_width_u32(b);
            if w2 < 32 {
                flag = FLAG_CONVERTED;
                width = w2;
                b
            } else {
                sub
            }
        } else {
            sub
        };
        out.push(flag | width as u8);
        bitpack::pack_u32(packed, width, out);
    }
    t.finish(values.len() as u64 * 4);
}

/// Decodes `count` 32-bit words from `data` starting at `*pos`.
///
/// # Errors
///
/// Fails on truncated input or a header declaring a width above 32 bits.
pub fn decode32(data: &[u8], pos: &mut usize, count: usize, out: &mut Vec<u32>) -> Result<()> {
    let t = fpc_metrics::timer(Stage::MplgDecode);
    let mut remaining = count;
    while remaining > 0 {
        let n = remaining.min(SUBCHUNK_VALUES_32);
        let header = *data.get(*pos).ok_or(DecodeError::UnexpectedEof)?;
        *pos += 1;
        let width = u32::from(header & WIDTH_MASK);
        if width > 32 {
            return Err(DecodeError::Corrupt("mplg width exceeds 32 bits"));
        }
        let nbytes = bitpack::packed_len(n, width);
        let end = pos
            .checked_add(nbytes)
            .ok_or(DecodeError::Corrupt("mplg length overflow"))?;
        if end > data.len() {
            return Err(DecodeError::UnexpectedEof);
        }
        let start = out.len();
        bitpack::unpack_u32(&data[*pos..end], width, n, out)?;
        *pos = end;
        if header & FLAG_CONVERTED != 0 {
            zigzag::decode32_slice(&mut out[start..]);
        }
        remaining -= n;
    }
    t.finish(count as u64 * 4);
    Ok(())
}

/// Encodes a chunk's worth of 64-bit words, appending to `out`.
pub fn encode64(values: &[u64], out: &mut Vec<u8>) {
    encode64_with(values, out, true);
}

/// [`encode64`] with the zigzag-fallback enhancement toggleable.
pub fn encode64_with(values: &[u64], out: &mut Vec<u8>, fallback: bool) {
    let t = fpc_metrics::timer(Stage::MplgEncode);
    let mut buf = [0u64; SUBCHUNK_VALUES_64];
    for sub in values.chunks(SUBCHUNK_VALUES_64) {
        let mut width = bitpack::min_width_u64(sub);
        let mut flag = 0u8;
        let packed: &[u64] = if width == 64 && fallback {
            let b = &mut buf[..sub.len()];
            b.copy_from_slice(sub);
            zigzag::encode64_slice(b);
            let w2 = bitpack::min_width_u64(b);
            if w2 < 64 {
                flag = FLAG_CONVERTED;
                width = w2;
                b
            } else {
                sub
            }
        } else {
            sub
        };
        out.push(flag | width as u8);
        bitpack::pack_u64(packed, width, out);
    }
    t.finish(values.len() as u64 * 8);
}

/// Decodes `count` 64-bit words from `data` starting at `*pos`.
///
/// # Errors
///
/// Fails on truncated input or a header declaring a width above 64 bits.
pub fn decode64(data: &[u8], pos: &mut usize, count: usize, out: &mut Vec<u64>) -> Result<()> {
    let t = fpc_metrics::timer(Stage::MplgDecode);
    let mut remaining = count;
    while remaining > 0 {
        let n = remaining.min(SUBCHUNK_VALUES_64);
        let header = *data.get(*pos).ok_or(DecodeError::UnexpectedEof)?;
        *pos += 1;
        let width = u32::from(header & WIDTH_MASK);
        if width > 64 {
            return Err(DecodeError::Corrupt("mplg width exceeds 64 bits"));
        }
        let nbytes = bitpack::packed_len(n, width);
        let end = pos
            .checked_add(nbytes)
            .ok_or(DecodeError::Corrupt("mplg length overflow"))?;
        if end > data.len() {
            return Err(DecodeError::UnexpectedEof);
        }
        let start = out.len();
        bitpack::unpack_u64(&data[*pos..end], width, n, out)?;
        *pos = end;
        if header & FLAG_CONVERTED != 0 {
            zigzag::decode64_slice(&mut out[start..]);
        }
        remaining -= n;
    }
    t.finish(count as u64 * 8);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip32(values: &[u32]) -> usize {
        let mut enc = Vec::new();
        encode32(values, &mut enc);
        let mut pos = 0;
        let mut dec = Vec::new();
        decode32(&enc, &mut pos, values.len(), &mut dec).unwrap();
        assert_eq!(pos, enc.len());
        assert_eq!(dec, values);
        enc.len()
    }

    fn roundtrip64(values: &[u64]) -> usize {
        let mut enc = Vec::new();
        encode64(values, &mut enc);
        let mut pos = 0;
        let mut dec = Vec::new();
        decode64(&enc, &mut pos, values.len(), &mut dec).unwrap();
        assert_eq!(pos, enc.len());
        assert_eq!(dec, values);
        enc.len()
    }

    #[test]
    fn empty_chunk() {
        roundtrip32(&[]);
        roundtrip64(&[]);
    }

    #[test]
    fn all_zero_subchunk_packs_to_header_only() {
        let size = roundtrip32(&vec![0u32; SUBCHUNK_VALUES_32]);
        assert_eq!(size, 1);
        let size = roundtrip64(&vec![0u64; SUBCHUNK_VALUES_64]);
        assert_eq!(size, 1);
    }

    #[test]
    fn small_values_compress() {
        let values: Vec<u32> = (0..4096u32).map(|i| i % 100).collect();
        let size = roundtrip32(&values);
        assert!(size < values.len() * 4 / 3, "got {size}");
    }

    #[test]
    fn partial_subchunks() {
        for n in [1usize, 2, 127, 128, 129, 255, 300] {
            let values: Vec<u32> = (0..n as u32).map(|i| i * 3).collect();
            roundtrip32(&values);
            let values64: Vec<u64> = (0..n as u64).map(|i| i << 20).collect();
            roundtrip64(&values64);
        }
    }

    #[test]
    fn zigzag_fallback_helps_leading_ones() {
        // Values with all-ones top bits: no leading zeros, but their
        // magnitude-sign conversion is tiny.
        let values: Vec<u32> = (0..SUBCHUNK_VALUES_32 as u32).map(|i| !(i % 16)).collect();
        let mut enc = Vec::new();
        encode32(&values, &mut enc);
        assert_eq!(enc[0] & FLAG_CONVERTED, FLAG_CONVERTED);
        assert!(((enc[0] & WIDTH_MASK) as u32) < 32);
        roundtrip32(&values);
    }

    #[test]
    fn incompressible_subchunk_stays_full_width() {
        // Maximum stays full width even after conversion: 0x8000_0000
        // zigzags to 0xFFFF_FFFF.
        let mut values = vec![1u32; SUBCHUNK_VALUES_32];
        values[0] = 0x8000_0000;
        values[1] = 0xFFFF_FFFF;
        let mut enc = Vec::new();
        encode32(&values, &mut enc);
        assert_eq!(enc[0] & WIDTH_MASK, 32);
        assert_eq!(enc[0] & FLAG_CONVERTED, 0);
        roundtrip32(&values);
    }

    #[test]
    fn per_subchunk_widths_are_independent() {
        // First subchunk tiny values, second large: total size must reflect
        // a small width for the first.
        let mut values = vec![3u32; SUBCHUNK_VALUES_32];
        values.extend(vec![u32::MAX / 2; SUBCHUNK_VALUES_32]);
        let mut enc = Vec::new();
        encode32(&values, &mut enc);
        // Subchunk 1: width 2 -> 1 + 32 bytes. Subchunk 2: width 31.
        let expected =
            1 + (SUBCHUNK_VALUES_32 * 2).div_ceil(8) + 1 + (SUBCHUNK_VALUES_32 * 31).div_ceil(8);
        assert_eq!(enc.len(), expected);
        roundtrip32(&values);
    }

    #[test]
    fn truncated_stream_rejected() {
        let values: Vec<u32> = (0..200u32).collect();
        let mut enc = Vec::new();
        encode32(&values, &mut enc);
        let mut pos = 0;
        let mut dec = Vec::new();
        assert!(decode32(&enc[..enc.len() - 1], &mut pos, values.len(), &mut dec).is_err());
    }

    #[test]
    fn corrupt_width_rejected() {
        let enc = vec![70u8; 10]; // width 70 > 64
        let mut pos = 0;
        let mut dec = Vec::new();
        assert!(matches!(
            decode64(&enc, &mut pos, 10, &mut dec),
            Err(DecodeError::Corrupt(_))
        ));
    }

    #[test]
    fn u64_large_values_roundtrip() {
        let values: Vec<u64> = (0..SUBCHUNK_VALUES_64 as u64 * 3)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        roundtrip64(&values);
    }
}
