//! DIFFMS: difference coding with magnitude-sign representation.
//!
//! The first stage of SPspeed/DPspeed/SPratio and the second stage of
//! DPratio (paper §3.1, Figure 2). Each value is replaced by its difference
//! (modulo 2³² or 2⁶⁴) from the preceding value in the chunk — the first
//! element uses an implicit preceding value of 0 — and the difference is
//! stored in magnitude-sign (zigzag) format so that both small positive and
//! small negative differences have many leading zero bits.
//!
//! The loops here are the scalar reference (selected by
//! `FPC_FORCE_SCALAR=1`); normal dispatch runs the bit-identical vector
//! kernels in `fpc_simd::diffms`.

use crate::zigzag;
use fpc_metrics::Stage;

/// Applies DIFFMS in place to a chunk of 32-bit words.
pub fn encode32(values: &mut [u32]) {
    let t = fpc_metrics::timer(Stage::DiffmsEncode);
    if fpc_simd::force_scalar() {
        for i in (1..values.len()).rev() {
            values[i] = zigzag::encode32(values[i].wrapping_sub(values[i - 1]));
        }
        if let Some(first) = values.first_mut() {
            *first = zigzag::encode32(*first);
        }
    } else {
        fpc_simd::diffms::encode32(values);
    }
    t.finish(values.len() as u64 * 4);
}

/// Inverts [`encode32`] in place.
pub fn decode32(values: &mut [u32]) {
    let t = fpc_metrics::timer(Stage::DiffmsDecode);
    if fpc_simd::force_scalar() {
        if let Some(first) = values.first_mut() {
            *first = zigzag::decode32(*first);
        }
        for i in 1..values.len() {
            values[i] = zigzag::decode32(values[i]).wrapping_add(values[i - 1]);
        }
    } else {
        fpc_simd::diffms::decode32(values);
    }
    t.finish(values.len() as u64 * 4);
}

/// Applies DIFFMS in place to a chunk of 64-bit words.
pub fn encode64(values: &mut [u64]) {
    let t = fpc_metrics::timer(Stage::DiffmsEncode);
    if fpc_simd::force_scalar() {
        for i in (1..values.len()).rev() {
            values[i] = zigzag::encode64(values[i].wrapping_sub(values[i - 1]));
        }
        if let Some(first) = values.first_mut() {
            *first = zigzag::encode64(*first);
        }
    } else {
        fpc_simd::diffms::encode64(values);
    }
    t.finish(values.len() as u64 * 8);
}

/// Inverts [`encode64`] in place.
pub fn decode64(values: &mut [u64]) {
    let t = fpc_metrics::timer(Stage::DiffmsDecode);
    if fpc_simd::force_scalar() {
        if let Some(first) = values.first_mut() {
            *first = zigzag::decode64(*first);
        }
        for i in 1..values.len() {
            values[i] = zigzag::decode64(values[i]).wrapping_add(values[i - 1]);
        }
    } else {
        fpc_simd::diffms::decode64(values);
    }
    t.finish(values.len() as u64 * 8);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single() {
        let mut v: Vec<u32> = vec![];
        encode32(&mut v);
        decode32(&mut v);
        assert!(v.is_empty());

        let mut v = vec![0xDEAD_BEEFu32];
        encode32(&mut v);
        decode32(&mut v);
        assert_eq!(v, vec![0xDEAD_BEEF]);
    }

    #[test]
    fn roundtrip32() {
        let orig: Vec<u32> = (0..4096u32)
            .map(|i| i.wrapping_mul(0x0101_0101).rotate_left(7))
            .collect();
        let mut v = orig.clone();
        encode32(&mut v);
        assert_ne!(v, orig);
        decode32(&mut v);
        assert_eq!(v, orig);
    }

    #[test]
    fn roundtrip64() {
        let orig: Vec<u64> = (0..2048u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let mut v = orig.clone();
        encode64(&mut v);
        decode64(&mut v);
        assert_eq!(v, orig);
    }

    #[test]
    fn smooth_data_gains_leading_zeros() {
        // Nearby floats: differences are small, so after DIFFMS most words
        // should have many leading zeros (the whole point of the stage).
        let floats: Vec<f32> = (0..1024).map(|i| 1.0 + i as f32 * 1e-6).collect();
        let mut words: Vec<u32> = floats.iter().map(|f| f.to_bits()).collect();
        encode32(&mut words);
        let avg_lz: u32 =
            words[1..].iter().map(|w| w.leading_zeros()).sum::<u32>() / (words.len() as u32 - 1);
        assert!(avg_lz >= 16, "average leading zeros only {avg_lz}");
    }

    #[test]
    fn negative_differences_still_small() {
        // Strictly decreasing sequence: all diffs negative.
        let mut v: Vec<u32> = (0..100u32).map(|i| 1_000_000 - i * 3).collect();
        let orig = v.clone();
        encode32(&mut v);
        for &w in &v[1..] {
            assert!(w <= 6, "magnitude-sign of -3 should be tiny, got {w}");
        }
        decode32(&mut v);
        assert_eq!(v, orig);
    }

    #[test]
    fn wrapping_differences() {
        let orig = vec![u32::MAX, 0, u32::MAX, 5, u32::MAX - 5];
        let mut v = orig.clone();
        encode32(&mut v);
        decode32(&mut v);
        assert_eq!(v, orig);

        let orig64 = vec![u64::MAX, 0, 1 << 63, 3];
        let mut v = orig64.clone();
        encode64(&mut v);
        decode64(&mut v);
        assert_eq!(v, orig64);
    }

    #[test]
    fn first_element_uses_zero_predecessor() {
        let mut v = vec![7u32];
        encode32(&mut v);
        assert_eq!(v[0], crate::zigzag::encode32(7));
    }
}
