//! FCM: the Finite Context Method transformation.
//!
//! The first stage of DPratio (paper §3.2, Figure 6). FPC-style hash-table
//! prediction is untenable on GPUs (two tables per thread), so the paper
//! replaces it with a sort-based equivalent: each value is paired with a
//! hash of the three *prior* values (its context); the (hash, index) pairs
//! are sorted; and a value "matches" when one of the up-to-four preceding
//! pairs in sorted order has the same hash **and** refers to an equal value.
//! Matches are encoded as backward distances, non-matches keep the value.
//!
//! The output is two arrays of the input's length — a value array (zeros at
//! match positions) and a distance array (zeros at non-match positions) —
//! which double the data volume but compress far better than the original,
//! because repeated values anywhere in the input collapse to small
//! distances and zeros.
//!
//! This is the only stage that operates on the whole input rather than on
//! 16 KiB chunks.

use crate::{DecodeError, Result};
use fpc_metrics::Stage;

/// How many preceding same-hash pairs are examined for a match (paper: 4).
pub const MATCH_WINDOW: usize = 4;

/// Context order: the hash covers this many prior values (paper: 3).
pub const CONTEXT: usize = 3;

/// The two arrays produced by the forward transformation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Encoded {
    /// Original value at non-match positions, 0 at match positions.
    pub values: Vec<u64>,
    /// Backward distance to an equal value at match positions, else 0.
    pub distances: Vec<u64>,
}

#[inline]
fn mix(h: u64) -> u64 {
    // splitmix64 finalizer.
    let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash of the three values preceding position `i` (zero-padded history).
#[inline]
fn context_hash(data: &[u64], i: usize, window: usize) -> u64 {
    let mut h = 0u64;
    for back in 1..=CONTEXT.min(window) {
        let v = if i >= back { data[i - back] } else { 0 };
        h = mix(h ^ v.rotate_left(back as u32 * 21));
    }
    h
}

/// Applies the forward FCM transformation with the default window.
pub fn encode(data: &[u64]) -> Encoded {
    encode_with_window(data, MATCH_WINDOW)
}

/// Forward FCM with a configurable match window (exposed for the ablation
/// study; the paper uses [`MATCH_WINDOW`]).
pub fn encode_with_window(data: &[u64], window: usize) -> Encoded {
    let t = fpc_metrics::timer(Stage::FcmEncode);
    let mut pairs = hash_pairs(data);
    pairs.sort_unstable();
    let enc = resolve_matches(data, &pairs, window);
    t.finish(data.len() as u64 * 8);
    enc
}

/// Builds the (context-hash, index) pair array — the embarrassingly
/// parallel first step of the encoder (exposed so the simulated-GPU path
/// can substitute its own sort, as the paper substitutes CUB's).
pub fn hash_pairs(data: &[u64]) -> Vec<(u64, u32)> {
    (0..data.len())
        .map(|i| (context_hash(data, i, CONTEXT), i as u32))
        .collect()
}

/// Scans sorted pairs for matches and produces the two output arrays.
///
/// `pairs` must be sorted by (hash, index); each pair is compared against
/// up to `window` preceding same-hash pairs.
pub fn resolve_matches(data: &[u64], pairs: &[(u64, u32)], window: usize) -> Encoded {
    let n = data.len();
    let mut values = vec![0u64; n];
    let mut distances = vec![0u64; n];
    for (p, &(hash, idx)) in pairs.iter().enumerate() {
        let i = idx as usize;
        let mut matched = None;
        // Preceding same-hash pairs always have smaller indices because the
        // sort is by (hash, index); scan nearest-first.
        for back in 1..=window.min(p) {
            let (h2, idx2) = pairs[p - back];
            if h2 != hash {
                break;
            }
            if data[idx2 as usize] == data[i] {
                matched = Some(idx2 as usize);
                break;
            }
        }
        match matched {
            Some(j) => distances[i] = (i - j) as u64,
            None => values[i] = data[i],
        }
    }
    Encoded { values, distances }
}

/// Inverts the transformation.
///
/// # Errors
///
/// Fails if the arrays disagree in length or a distance points before the
/// start of the output.
pub fn decode(enc: &Encoded) -> Result<Vec<u64>> {
    decode_arrays(&enc.values, &enc.distances)
}

/// Inverts the transformation from raw arrays.
///
/// # Errors
///
/// Fails if the arrays disagree in length or a distance points before the
/// start of the output.
pub fn decode_arrays(values: &[u64], distances: &[u64]) -> Result<Vec<u64>> {
    if values.len() != distances.len() {
        return Err(DecodeError::Corrupt("fcm array length mismatch"));
    }
    let t = fpc_metrics::timer(Stage::FcmDecode);
    let n = values.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let d = distances[i];
        if d == 0 {
            out.push(values[i]);
        } else {
            let d =
                usize::try_from(d).map_err(|_| DecodeError::Corrupt("fcm distance overflow"))?;
            if d > i {
                return Err(DecodeError::Corrupt("fcm distance before start"));
            }
            // Scanning forward guarantees out[i - d] is already resolved
            // (the parallel GPU decoder uses union-find instead; §3.2).
            out.push(out[i - d]);
        }
    }
    t.finish(n as u64 * 8);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u64]) -> Encoded {
        let enc = encode(data);
        assert_eq!(enc.values.len(), data.len());
        assert_eq!(enc.distances.len(), data.len());
        assert_eq!(decode(&enc).unwrap(), data);
        enc
    }

    #[test]
    fn empty_and_single() {
        roundtrip(&[]);
        roundtrip(&[42]);
    }

    #[test]
    fn paper_figure6_example() {
        // Figure 6: values a b a b c a b -> positions 2,3,5,6 match with
        // distances 2,2,3,3 (contexts repeat after the first occurrence).
        let (a, b, c) = (1.5f64.to_bits(), 2.5f64.to_bits(), 9.25f64.to_bits());
        let data = [a, b, a, b, c, a, b];
        let enc = roundtrip(&data);
        // Position 0 and 1 can never match (no prior occurrence).
        assert_eq!(enc.distances[0], 0);
        assert_eq!(enc.values[0], a);
        assert_eq!(enc.distances[1], 0);
        // Position 2 has context (b, a, 0) which never occurred before;
        // whether it matches depends on hashing, but position 4 (value c)
        // can never match since c is new.
        assert_eq!(enc.values[4], c);
        assert_eq!(enc.distances[4], 0);
    }

    #[test]
    fn periodic_data_matches_collapse() {
        // A strictly periodic sequence: after one period, every value
        // recurs with an identical 3-value context, so nearly everything
        // should become a (small) distance.
        let period: Vec<u64> = (0..16u64).map(|i| (i as f64 * 0.25).to_bits()).collect();
        let data: Vec<u64> = period.iter().cycle().take(1600).copied().collect();
        let enc = roundtrip(&data);
        let matches = enc.distances.iter().filter(|&&d| d != 0).count();
        assert!(
            matches > data.len() * 9 / 10,
            "only {matches}/{} positions matched",
            data.len()
        );
        // Matched distances should mostly be one period.
        let period_dists = enc.distances.iter().filter(|&&d| d == 16).count();
        assert!(period_dists > matches / 2);
    }

    #[test]
    fn all_distinct_values_produce_no_matches() {
        let data: Vec<u64> = (0..1000u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let enc = roundtrip(&data);
        assert!(enc.distances.iter().all(|&d| d == 0));
        assert_eq!(enc.values, data);
    }

    #[test]
    fn equal_values_different_context_may_not_match() {
        // The same value with unrelated contexts: FCM matches on context
        // hash, so these should typically NOT match (that's the design —
        // context predicts value).
        let mut data = vec![0u64; 100];
        for (i, v) in data.iter_mut().enumerate() {
            *v = (i as u64).wrapping_mul(0x1234_5678_9ABC_DEF1);
        }
        data[50] = data[10]; // same value, different context
        roundtrip(&data); // must still roundtrip regardless of match outcome
    }

    #[test]
    fn zero_values_roundtrip() {
        // Zeros are tricky: value 0 with distance 0 must decode to 0.
        let data = vec![0u64; 500];
        roundtrip(&data);
        let mut mixed = vec![7u64; 100];
        mixed.extend(vec![0u64; 100]);
        mixed.extend(vec![7u64; 100]);
        roundtrip(&mixed);
    }

    #[test]
    fn corrupt_distance_rejected() {
        let enc = Encoded {
            values: vec![0, 0],
            distances: vec![5, 0],
        };
        assert!(matches!(decode(&enc), Err(DecodeError::Corrupt(_))));
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let enc = Encoded {
            values: vec![1, 2, 3],
            distances: vec![0],
        };
        assert!(matches!(decode(&enc), Err(DecodeError::Corrupt(_))));
    }

    #[test]
    fn window_one_still_roundtrips() {
        let data: Vec<u64> = (0..64).map(|i| (i % 8) as u64).collect();
        let enc = encode_with_window(&data, 1);
        assert_eq!(decode(&enc).unwrap(), data);
    }

    #[test]
    fn matches_always_point_to_equal_values() {
        let data: Vec<u64> = (0..2000u64).map(|i| ((i % 37) as f64).to_bits()).collect();
        let enc = encode(&data);
        for (i, &d) in enc.distances.iter().enumerate() {
            if d != 0 {
                assert_eq!(data[i - d as usize], data[i], "bad match at {i}");
            }
        }
    }

    #[test]
    fn smooth_simulation_data_gets_some_matches() {
        // Values quantized to a coarse grid recur frequently.
        let data: Vec<u64> = (0..5000)
            .map(|i| (((i as f64 * 0.1).sin() * 50.0).round() / 50.0).to_bits())
            .collect();
        let enc = roundtrip(&data);
        let matches = enc.distances.iter().filter(|&&d| d != 0).count();
        assert!(matches > 1000, "only {matches} matches");
    }
}
