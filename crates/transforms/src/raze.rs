//! RAZE: Repeated Adaptive Zero Elimination.
//!
//! The third stage of DPratio (paper §3.2, Figure 7). Double-precision
//! values tend to have random, incompressible low-order mantissa bits, so
//! applying RZE to whole words wastes bitmap space on bytes that are never
//! zero. RAZE splits each 64-bit word into a top part of `k` bits and a
//! bottom part of `64 - k` bits, applies RZE only to the top parts, and
//! stores the bottoms raw. The *adaptive* innovation: `k` is chosen per
//! chunk from a histogram of leading-zero counts whose prefix sum yields,
//! for every candidate `k`, exactly how many top bytes would be zero — so
//! the best split is found without trying all encodings.
//!
//! Adaptation note (recorded in DESIGN.md): the paper adapts `k` over all
//! 64 bit positions; since RZE removes *bytes*, this implementation adapts
//! over the 9 byte-aligned splits (`k ∈ {0, 8, …, 64}`), using a
//! leading-zero-**byte** histogram and the same prefix-sum selection.
//!
//! Wire format per chunk: 1 byte `k/8`, the raw bottom bytes (little-endian
//! low bytes of each value), then the RZE-coded top-byte stream (each
//! value's top bytes, most significant first).

use crate::{rze, DecodeError, Result};
use fpc_metrics::Stage;

/// Estimated RZE bitmap-chain overhead for an `m`-byte stream.
#[inline]
pub(crate) fn bitmap_overhead(m: usize) -> usize {
    m.div_ceil(8) + m.div_ceil(64) + m.div_ceil(512) + 4
}

/// Given a histogram over leading-zero-byte counts (`hist[b]` = number of
/// values with exactly `b` leading zero/repeat bytes), returns the byte
/// split `kb ∈ 0..=8` minimizing the estimated encoded size for `n` values.
pub(crate) fn choose_split(hist: &[usize; 9], n: usize) -> usize {
    // cnt[j] = number of values with at least j leading zero bytes
    // (the paper's prefix sum over histogram bins).
    let mut cnt = [0usize; 9];
    cnt[8] = hist[8];
    for j in (0..8).rev() {
        cnt[j] = cnt[j + 1] + hist[j];
    }
    let mut best_kb = 0usize;
    let mut best_cost = usize::MAX;
    let mut zeros = 0usize;
    #[allow(clippy::needless_range_loop)] // kb is the split being costed, not just an index
    for kb in 0..=8usize {
        if kb > 0 {
            zeros += cnt[kb];
        }
        let top_bytes = n * kb;
        let cost = n * (8 - kb) + (top_bytes - zeros) + bitmap_overhead(top_bytes);
        if cost < best_cost {
            best_cost = cost;
            best_kb = kb;
        }
    }
    best_kb
}

/// Extracts the top `kb` bytes of each value (most significant first).
pub(crate) fn top_bytes(values: &[u64], kb: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * kb);
    for &v in values {
        for j in 0..kb {
            out.push((v >> (8 * (7 - j))) as u8);
        }
    }
    out
}

/// Appends the low `8 - kb` bytes of each value (little-endian).
pub(crate) fn bottom_bytes(values: &[u64], kb: usize, out: &mut Vec<u8>) {
    let nb = 8 - kb;
    out.reserve(values.len() * nb);
    for &v in values {
        for i in 0..nb {
            out.push((v >> (8 * i)) as u8);
        }
    }
}

/// Reassembles values from bottoms and tops.
pub(crate) fn reassemble(bottoms: &[u8], tops: &[u8], kb: usize, n: usize) -> Vec<u64> {
    let nb = 8 - kb;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let mut v = 0u64;
        for j in 0..kb {
            v |= u64::from(tops[i * kb + j]) << (8 * (7 - j));
        }
        for b in 0..nb {
            v |= u64::from(bottoms[i * nb + b]) << (8 * b);
        }
        out.push(v);
    }
    out
}

/// Encodes a chunk of 64-bit words, appending to `out`.
pub fn encode(values: &[u64], out: &mut Vec<u8>) {
    let mut hist = [0usize; 9];
    for &v in values {
        hist[(v.leading_zeros() / 8) as usize] += 1;
    }
    let kb = choose_split(&hist, values.len());
    encode_with_split(values, out, kb);
}

/// Encodes with a caller-chosen byte split instead of the adaptive one
/// (used by the ablation study; the decoder is unaffected because the split
/// is stored in the stream).
///
/// # Panics
///
/// Panics if `kb > 8`.
pub fn encode_with_split(values: &[u64], out: &mut Vec<u8>, kb: usize) {
    assert!(kb <= 8, "split must be at most 8 bytes");
    // Note: the embedded rze::encode pass also records under RZE.encode,
    // so RAZE time includes (and overlaps) RZE time.
    let t = fpc_metrics::timer(Stage::RazeEncode);
    out.push(kb as u8);
    bottom_bytes(values, kb, out);
    rze::encode(&top_bytes(values, kb), out);
    t.finish(values.len() as u64 * 8);
}

/// Decodes `count` 64-bit words from `data` starting at `*pos`.
///
/// # Errors
///
/// Fails on truncation or an out-of-range split byte.
pub fn decode(data: &[u8], pos: &mut usize, count: usize, out: &mut Vec<u64>) -> Result<()> {
    let t = fpc_metrics::timer(Stage::RazeDecode);
    if count == 0 {
        // Encoder still wrote the split byte for an empty chunk.
        let kb = *data.get(*pos).ok_or(DecodeError::UnexpectedEof)?;
        if kb > 8 {
            return Err(DecodeError::Corrupt("raze split out of range"));
        }
        *pos += 1;
        t.stop();
        return Ok(());
    }
    let kb = *data.get(*pos).ok_or(DecodeError::UnexpectedEof)? as usize;
    *pos += 1;
    if kb > 8 {
        return Err(DecodeError::Corrupt("raze split out of range"));
    }
    let nb = 8 - kb;
    let bottoms_end = pos
        .checked_add(count * nb)
        .ok_or(DecodeError::Corrupt("raze length overflow"))?;
    if bottoms_end > data.len() {
        return Err(DecodeError::UnexpectedEof);
    }
    let bottoms = data[*pos..bottoms_end].to_vec();
    *pos = bottoms_end;
    let mut tops = Vec::with_capacity(count * kb);
    rze::decode(data, pos, count * kb, &mut tops)?;
    out.extend(reassemble(&bottoms, &tops, kb, count));
    t.finish(count as u64 * 8);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[u64]) -> usize {
        let mut enc = Vec::new();
        encode(values, &mut enc);
        let mut pos = 0;
        let mut dec = Vec::new();
        decode(&enc, &mut pos, values.len(), &mut dec).unwrap();
        assert_eq!(pos, enc.len());
        assert_eq!(dec, values);
        enc.len()
    }

    #[test]
    fn empty() {
        roundtrip(&[]);
    }

    #[test]
    fn all_zero() {
        let size = roundtrip(&[0u64; 2048]);
        // kb = 8: no bottoms, all-zero tops collapse into the bitmap chain.
        assert!(size < 16, "got {size}");
    }

    #[test]
    fn small_values_pick_large_k() {
        // Values fit in 2 bytes: 6 leading zero bytes each.
        let values: Vec<u64> = (0..2048u64).map(|i| i * 17 % 65536).collect();
        let size = roundtrip(&values);
        // Expect roughly 2 bytes per value + overhead, far below 8 B/value.
        assert!(size < values.len() * 3, "got {size}");
    }

    #[test]
    fn random_mantissa_keeps_bottom_raw() {
        // Zero top 2 bytes, random bottom 6 bytes — the DPratio motivating
        // case (small deltas over random mantissas). RAZE should choose
        // kb = 2 and not inflate.
        let values: Vec<u64> = (0..2048u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16)
            .collect();
        let mut enc = Vec::new();
        encode(&values, &mut enc);
        assert_eq!(enc[0], 2, "expected kb=2, got {}", enc[0]);
        let size = roundtrip(&values);
        assert!(size < values.len() * 8, "no gain: {size}");
    }

    #[test]
    fn incompressible_chooses_k_zero() {
        let values: Vec<u64> = (0..512u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let mut enc = Vec::new();
        encode(&values, &mut enc);
        assert_eq!(enc[0], 0);
        // kb = 0: size is 1 + 8n + empty-RZE (4-byte chain of a 0-byte map).
        roundtrip(&values);
    }

    #[test]
    fn mixed_magnitudes() {
        let values: Vec<u64> = (0..1000u64)
            .map(|i| if i % 10 == 0 { u64::MAX - i } else { i * 3 })
            .collect();
        roundtrip(&values);
    }

    #[test]
    fn choose_split_prefix_sum_logic() {
        // 10 values, all with >= 4 leading zero bytes.
        let mut hist = [0usize; 9];
        hist[4] = 10;
        let kb = choose_split(&hist, 10);
        // Top 4 bytes are all zero: eliminating them saves 40 bytes at the
        // cost of a small bitmap; any kb <= 4 keeps the zero savings ratio,
        // kb = 4 maximizes it.
        assert_eq!(kb, 4);
    }

    #[test]
    fn truncated_rejected() {
        let values: Vec<u64> = (0..100u64).collect();
        let mut enc = Vec::new();
        encode(&values, &mut enc);
        let mut pos = 0;
        let mut dec = Vec::new();
        assert!(decode(&enc[..enc.len() - 2], &mut pos, values.len(), &mut dec).is_err());
    }

    #[test]
    fn corrupt_split_rejected() {
        let enc = vec![9u8, 0, 0, 0, 0];
        let mut pos = 0;
        let mut dec = Vec::new();
        assert!(matches!(
            decode(&enc, &mut pos, 4, &mut dec),
            Err(DecodeError::Corrupt(_))
        ));
    }

    #[test]
    fn single_value() {
        roundtrip(&[0xFFFF_FFFF_FFFF_FFFF]);
        roundtrip(&[1]);
        roundtrip(&[1 << 63]);
    }
}
