//! BIT: bit transposition (bit shuffling).
//!
//! The second stage of SPratio (paper §3.2, Figure 4). Groups of 32 32-bit
//! words (or 64 64-bit words) are treated as a square bit matrix and
//! transposed, so that the i-th bits of all words in the group become
//! adjacent. After DIFFMS most words have many leading zeros, so the
//! transposed stream starts with long runs of all-zero words — exactly what
//! the following RZE stage eliminates.
//!
//! The transpose is an involution (applying it twice restores the input),
//! so encode and decode are the same function. Trailing words that do not
//! fill a complete group pass through unchanged.

use fpc_metrics::Stage;

/// Transposes each complete group of 32 words in place (involution).
///
/// Dispatched: the group network below is the scalar reference (selected by
/// `FPC_FORCE_SCALAR=1`); normal dispatch runs the bit-identical AVX2
/// in-register network in `fpc_simd::transpose` where available.
pub fn transpose32(values: &mut [u32]) {
    let t = fpc_metrics::timer(Stage::BitTranspose);
    if fpc_simd::force_scalar() {
        for group in values.chunks_exact_mut(32) {
            transpose32_group(group.try_into().expect("chunks_exact(32)"));
        }
    } else {
        fpc_simd::transpose::transpose32(values);
    }
    t.finish(values.len() as u64 * 4);
}

/// Transposes each complete group of 64 words in place (involution).
pub fn transpose64(values: &mut [u64]) {
    let t = fpc_metrics::timer(Stage::BitTranspose);
    for group in values.chunks_exact_mut(64) {
        transpose64_group(group.try_into().expect("chunks_exact(64)"));
    }
    t.finish(values.len() as u64 * 8);
}

/// In-place 32×32 bit-matrix transpose (Hacker's Delight §7-3).
pub fn transpose32_group(a: &mut [u32; 32]) {
    let mut m: u32 = 0x0000_FFFF;
    let mut j = 16usize;
    while j != 0 {
        let mut k = 0usize;
        while k < 32 {
            let t = (a[k] ^ (a[k + j] >> j)) & m;
            a[k] ^= t;
            a[k + j] ^= t << j;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// In-place 64×64 bit-matrix transpose.
pub fn transpose64_group(a: &mut [u64; 64]) {
    let mut m: u64 = 0x0000_0000_FFFF_FFFF;
    let mut j = 32usize;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            let t = (a[k] ^ (a[k + j] >> j)) & m;
            a[k] ^= t;
            a[k + j] ^= t << j;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference transpose by explicit bit indexing.
    fn naive32(a: &[u32; 32]) -> [u32; 32] {
        let mut out = [0u32; 32];
        for (r, row) in out.iter_mut().enumerate() {
            #[allow(clippy::needless_range_loop)] // c is a matrix column index
            for c in 0..32 {
                let bit = (a[c] >> r) & 1;
                *row |= bit << c;
            }
        }
        out
    }

    #[test]
    fn matches_naive_reference() {
        let mut a = [0u32; 32];
        for (i, v) in a.iter_mut().enumerate() {
            *v = (i as u32).wrapping_mul(0x9E37_79B9).rotate_left(i as u32);
        }
        let mut fast = a;
        transpose32_group(&mut fast);
        let naive = naive32(&a);
        // Both are valid transposes; they may differ in bit-order convention,
        // but each must be an involution and preserve total bit count.
        let mut again = fast;
        transpose32_group(&mut again);
        assert_eq!(again, a);
        let ones_in: u32 = a.iter().map(|v| v.count_ones()).sum();
        let ones_fast: u32 = fast.iter().map(|v| v.count_ones()).sum();
        let ones_naive: u32 = naive.iter().map(|v| v.count_ones()).sum();
        assert_eq!(ones_in, ones_fast);
        assert_eq!(ones_in, ones_naive);
    }

    #[test]
    fn involution32() {
        let orig: Vec<u32> = (0..128u32).map(|i| i.wrapping_mul(0x85EB_CA6B)).collect();
        let mut v = orig.clone();
        transpose32(&mut v);
        assert_ne!(v, orig);
        transpose32(&mut v);
        assert_eq!(v, orig);
    }

    #[test]
    fn involution64() {
        let orig: Vec<u64> = (0..256u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let mut v = orig.clone();
        transpose64(&mut v);
        transpose64(&mut v);
        assert_eq!(v, orig);
    }

    #[test]
    fn partial_group_passes_through() {
        let orig: Vec<u32> = (0..40u32).collect(); // 32 + 8 tail
        let mut v = orig.clone();
        transpose32(&mut v);
        assert_eq!(&v[32..], &orig[32..]);
        transpose32(&mut v);
        assert_eq!(v, orig);
    }

    #[test]
    fn leading_zero_words_become_zero_run() {
        // Words with their top 24 bits zero: transposing groups those zero
        // bit-planes into 24 all-zero words.
        let mut v = vec![0u32; 32];
        for (i, w) in v.iter_mut().enumerate() {
            *w = (i as u32) & 0xFF;
        }
        transpose32(&mut v);
        let zero_words = v.iter().filter(|&&w| w == 0).count();
        assert!(zero_words >= 24, "only {zero_words} zero words");
    }

    #[test]
    fn single_bit_moves_consistently() {
        // A single set bit must remain a single set bit after transpose.
        for pos in [0usize, 1, 31] {
            for word in [0usize, 5, 31] {
                let mut v = [0u32; 32];
                v[word] = 1 << pos;
                let mut t = v;
                transpose32_group(&mut t);
                let ones: u32 = t.iter().map(|x| x.count_ones()).sum();
                assert_eq!(ones, 1);
                transpose32_group(&mut t);
                assert_eq!(t, v);
            }
        }
    }

    #[test]
    fn all_ones_is_fixed_point() {
        let mut v = [u32::MAX; 32];
        transpose32_group(&mut v);
        assert_eq!(v, [u32::MAX; 32]);
        let mut v = [u64::MAX; 64];
        transpose64_group(&mut v);
        assert_eq!(v, [u64::MAX; 64]);
    }
}
