//! Two's-complement ↔ magnitude-sign conversion ("zigzag" coding).
//!
//! The paper's DIFFMS stage stores differences in magnitude-sign format so
//! that values with many leading '1' bits (small negative numbers) become
//! values with many leading '0' bits, with the sign moved to the least
//! significant position: `(data << 1) ^ (data >> 31)` with an arithmetic
//! right shift (paper Figure 2). The enhanced MPLG stage reuses the same
//! conversion as a fallback when a subchunk's maximum has no leading zeros.

/// Converts a 32-bit word from two's complement to magnitude-sign.
#[inline]
pub fn encode32(v: u32) -> u32 {
    (v << 1) ^ (((v as i32) >> 31) as u32)
}

/// Inverts [`encode32`].
#[inline]
pub fn decode32(v: u32) -> u32 {
    (v >> 1) ^ (v & 1).wrapping_neg()
}

/// Converts a 64-bit word from two's complement to magnitude-sign.
#[inline]
pub fn encode64(v: u64) -> u64 {
    (v << 1) ^ (((v as i64) >> 63) as u64)
}

/// Inverts [`encode64`].
#[inline]
pub fn decode64(v: u64) -> u64 {
    (v >> 1) ^ (v & 1).wrapping_neg()
}

/// Applies [`encode32`] to every element (dispatched; the loop below is the
/// scalar reference selected by `FPC_FORCE_SCALAR=1`).
pub fn encode32_slice(values: &mut [u32]) {
    if fpc_simd::force_scalar() {
        for v in values {
            *v = encode32(*v);
        }
    } else {
        fpc_simd::zigzag::encode32_slice(values);
    }
}

/// Applies [`decode32`] to every element (dispatched).
pub fn decode32_slice(values: &mut [u32]) {
    if fpc_simd::force_scalar() {
        for v in values {
            *v = decode32(*v);
        }
    } else {
        fpc_simd::zigzag::decode32_slice(values);
    }
}

/// Applies [`encode64`] to every element (dispatched).
pub fn encode64_slice(values: &mut [u64]) {
    if fpc_simd::force_scalar() {
        for v in values {
            *v = encode64(*v);
        }
    } else {
        fpc_simd::zigzag::encode64_slice(values);
    }
}

/// Applies [`decode64`] to every element (dispatched).
pub fn decode64_slice(values: &mut [u64]) {
    if fpc_simd::force_scalar() {
        for v in values {
            *v = decode64(*v);
        }
    } else {
        fpc_simd::zigzag::decode64_slice(values);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_map_to_small_codes() {
        // 0, -1, 1, -2, 2, ... -> 0, 1, 2, 3, 4, ...
        assert_eq!(encode32(0), 0);
        assert_eq!(encode32(-1i32 as u32), 1);
        assert_eq!(encode32(1), 2);
        assert_eq!(encode32(-2i32 as u32), 3);
        assert_eq!(encode32(2), 4);
        assert_eq!(encode64(-1i64 as u64), 1);
        assert_eq!(encode64(3), 6);
    }

    #[test]
    fn leading_ones_become_leading_zeros() {
        let v = -5i32 as u32; // 0xFFFF_FFFB: 29 leading ones
        assert!(encode32(v).leading_zeros() >= 28);
        let v = -77i64 as u64;
        assert!(encode64(v).leading_zeros() >= 56);
    }

    #[test]
    fn roundtrip_exhaustive_edges32() {
        for v in [
            0u32,
            1,
            2,
            u32::MAX,
            u32::MAX - 1,
            0x8000_0000,
            0x7FFF_FFFF,
            0xDEAD_BEEF,
        ] {
            assert_eq!(decode32(encode32(v)), v);
        }
        for i in 0..10_000u32 {
            let v = i.wrapping_mul(0x9E37_79B9);
            assert_eq!(decode32(encode32(v)), v);
        }
    }

    #[test]
    fn roundtrip_exhaustive_edges64() {
        for v in [
            0u64,
            1,
            u64::MAX,
            1 << 63,
            (1 << 63) - 1,
            0xDEAD_BEEF_CAFE_F00D,
        ] {
            assert_eq!(decode64(encode64(v)), v);
        }
        for i in 0..10_000u64 {
            let v = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            assert_eq!(decode64(encode64(v)), v);
        }
    }

    #[test]
    fn slice_helpers_roundtrip() {
        let orig: Vec<u32> = (0..257).map(|i| (i * 31) as u32).collect();
        let mut v = orig.clone();
        encode32_slice(&mut v);
        decode32_slice(&mut v);
        assert_eq!(v, orig);

        let orig64: Vec<u64> = (0..257).map(|i| (i as u64) << 40).collect();
        let mut v = orig64.clone();
        encode64_slice(&mut v);
        decode64_slice(&mut v);
        assert_eq!(v, orig64);
    }

    #[test]
    fn encode_is_a_bijection_on_samples() {
        use std::collections::HashSet;
        let codes: HashSet<u32> = (0..4096u32).map(encode32).collect();
        assert_eq!(codes.len(), 4096);
    }
}
