//! RARE: Repeated Adaptive Repetition Elimination.
//!
//! The fourth stage of DPratio (paper §3.2, Figure 7). RAZE eliminates
//! leading *zero* bits, but its output tends to contain words whose
//! most-significant bytes repeat from word to word. RARE applies the same
//! adaptive top/bottom split as RAZE, except a top byte is eliminated when
//! it *equals the corresponding byte of the previous value* rather than
//! when it is zero.
//!
//! Implementation: the top `k` bytes of each word are XORed with the
//! previous word's top bytes before zero elimination — a repeated byte
//! becomes a zero byte, so RZE's machinery applies unchanged, and the
//! decoder undoes the XOR while scanning forward.
//!
//! Wire format per chunk: 1 byte `k/8`, raw bottom bytes, RZE-coded
//! XOR-differenced top bytes.

use crate::raze::{bitmap_overhead, bottom_bytes, choose_split, reassemble, top_bytes};
use crate::{rze, DecodeError, Result};
use fpc_metrics::Stage;

// Re-exported internals shared with RAZE live in `raze`; RARE only differs
// in the differencing applied to the top bytes and the histogram statistic.
#[allow(unused_imports)]
use bitmap_overhead as _shared_overhead;

/// Encodes a chunk of 64-bit words, appending to `out`.
pub fn encode(values: &[u64], out: &mut Vec<u8>) {
    // Histogram of leading *repeated* bytes relative to the prior value
    // (prior of the first value is 0).
    let mut hist = [0usize; 9];
    let mut prev = 0u64;
    for &v in values {
        hist[((v ^ prev).leading_zeros() / 8) as usize] += 1;
        prev = v;
    }
    let kb = choose_split(&hist, values.len());
    encode_with_split(values, out, kb);
}

/// Encodes with a caller-chosen byte split instead of the adaptive one
/// (used by the ablation study; the decoder is unaffected because the split
/// is stored in the stream).
///
/// # Panics
///
/// Panics if `kb > 8`.
pub fn encode_with_split(values: &[u64], out: &mut Vec<u8>, kb: usize) {
    assert!(kb <= 8, "split must be at most 8 bytes");
    // Note: the embedded rze::encode pass also records under RZE.encode,
    // so RARE time includes (and overlaps) RZE time.
    let t = fpc_metrics::timer(Stage::RareEncode);
    out.push(kb as u8);
    bottom_bytes(values, kb, out);
    // XOR-difference the top parts so repeats become zeros.
    let mut diffed = Vec::with_capacity(values.len());
    let mut prev = 0u64;
    for &v in values {
        diffed.push(v ^ prev);
        prev = v;
    }
    rze::encode(&top_bytes(&diffed, kb), out);
    t.finish(values.len() as u64 * 8);
}

/// Decodes `count` 64-bit words from `data` starting at `*pos`.
///
/// # Errors
///
/// Fails on truncation or an out-of-range split byte.
pub fn decode(data: &[u8], pos: &mut usize, count: usize, out: &mut Vec<u64>) -> Result<()> {
    let t = fpc_metrics::timer(Stage::RareDecode);
    let kb = *data.get(*pos).ok_or(DecodeError::UnexpectedEof)? as usize;
    *pos += 1;
    if kb > 8 {
        return Err(DecodeError::Corrupt("rare split out of range"));
    }
    if count == 0 {
        t.stop();
        return Ok(());
    }
    let nb = 8 - kb;
    let bottoms_end = pos
        .checked_add(count * nb)
        .ok_or(DecodeError::Corrupt("rare length overflow"))?;
    if bottoms_end > data.len() {
        return Err(DecodeError::UnexpectedEof);
    }
    let bottoms = data[*pos..bottoms_end].to_vec();
    *pos = bottoms_end;
    let mut tops = Vec::with_capacity(count * kb);
    rze::decode(data, pos, count * kb, &mut tops)?;
    // `reassemble` gives XOR-differenced words with raw bottoms mixed in;
    // rebuild the true words by undoing the XOR on the top part only.
    let diffed = reassemble(&bottoms, &tops, kb, count);
    let top_mask = if kb == 0 {
        0u64
    } else {
        u64::MAX << (8 * (8 - kb))
    };
    let mut prev = 0u64;
    out.reserve(count);
    for d in diffed {
        let v = (d & !top_mask) | ((d ^ prev) & top_mask);
        out.push(v);
        prev = v;
    }
    t.finish(count as u64 * 8);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[u64]) -> usize {
        let mut enc = Vec::new();
        encode(values, &mut enc);
        let mut pos = 0;
        let mut dec = Vec::new();
        decode(&enc, &mut pos, values.len(), &mut dec).unwrap();
        assert_eq!(pos, enc.len());
        assert_eq!(dec, values);
        enc.len()
    }

    #[test]
    fn empty() {
        roundtrip(&[]);
    }

    #[test]
    fn repeated_top_bytes_eliminated() {
        // Identical exponent/sign bytes across all values: RARE's case.
        let values: Vec<u64> = (0..2048u64)
            .map(|i| (0xC039u64 << 48) | (i.wrapping_mul(0x9E37_79B9) & 0xFFFF_FFFF))
            .collect();
        let mut enc = Vec::new();
        encode(&values, &mut enc);
        let kb = enc[0];
        assert!(kb >= 2, "expected top split >= 2 bytes, got {kb}");
        let size = roundtrip(&values);
        // Top 4 bytes repeat -> roughly halved plus overhead.
        assert!(size < values.len() * 6, "got {size}");
    }

    #[test]
    fn all_identical_values() {
        let size = roundtrip(&[0xDEAD_BEEF_0BAD_F00Du64; 1024]);
        // Everything repeats after the first; tops collapse entirely.
        assert!(size < 1024 * 8 / 4, "got {size}");
    }

    #[test]
    fn incompressible_chooses_zero_split() {
        let values: Vec<u64> = (0..512u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31))
            .collect();
        let mut enc = Vec::new();
        encode(&values, &mut enc);
        assert_eq!(enc[0], 0);
        roundtrip(&values);
    }

    #[test]
    fn alternating_values() {
        let values: Vec<u64> = (0..999u64)
            .map(|i| {
                if i % 2 == 0 {
                    0x1111_2222_3333_4444
                } else {
                    0x5555_2222_3333_4444
                }
            })
            .collect();
        roundtrip(&values);
    }

    #[test]
    fn first_value_diffs_against_zero() {
        let values = vec![u64::MAX];
        let mut enc = Vec::new();
        encode(&values, &mut enc);
        let mut pos = 0;
        let mut dec = Vec::new();
        decode(&enc, &mut pos, 1, &mut dec).unwrap();
        assert_eq!(dec, values);
    }

    #[test]
    fn truncated_rejected() {
        let values: Vec<u64> = (0..64u64).map(|i| i << 56).collect();
        let mut enc = Vec::new();
        encode(&values, &mut enc);
        let mut pos = 0;
        let mut dec = Vec::new();
        assert!(decode(&enc[..enc.len() - 1], &mut pos, values.len(), &mut dec).is_err());
    }

    #[test]
    fn corrupt_split_rejected() {
        let enc = vec![200u8];
        let mut pos = 0;
        let mut dec = Vec::new();
        assert!(matches!(
            decode(&enc, &mut pos, 3, &mut dec),
            Err(DecodeError::Corrupt(_))
        ));
    }

    #[test]
    fn smooth_double_pipeline_shape() {
        // Doubles drifting slowly: after RAZE-like stages, words share
        // high bytes. Check RARE standalone still roundtrips such data.
        let values: Vec<u64> = (0..2048)
            .map(|i| (1000.0 + (i as f64) * 1e-9).to_bits())
            .collect();
        roundtrip(&values);
    }
}
