//! The data transformations of the ASPLOS'25 FPcompress algorithms.
//!
//! Each module implements one reversible transformation from the paper,
//! in its scalar (CPU-reference) form. The simulated-GPU crate
//! (`fpc-gpu-sim`) reimplements the same transformations with warp/block
//! parallel algorithms and asserts byte-identical output, mirroring the
//! paper's CPU/GPU compatibility guarantee.
//!
//! | Module | Paper transformation | Used by |
//! |---|---|---|
//! | [`zigzag`] | two's-complement ↔ magnitude-sign conversion | all |
//! | [`diffms`] | DIFFMS: difference coding + magnitude-sign | all four algorithms |
//! | [`mplg`] | enhanced MPLG: per-subchunk leading-zero elimination | SPspeed, DPspeed |
//! | [`bit_transpose`] | BIT: bit shuffling | SPratio |
//! | [`rze`] | Repeated Zero Elimination | SPratio |
//! | [`raze`] | Repeated Adaptive Zero Elimination | DPratio |
//! | [`rare`] | Repeated Adaptive Repetition Elimination | DPratio |
//! | [`fcm`] | Finite Context Method | DPratio |
//!
//! The [`words`] module holds the byte ↔ word reinterpretation helpers (the
//! algorithms treat IEEE-754 words as integers, bit for bit).

pub mod bit_transpose;
pub mod diffms;
pub mod fcm;
pub mod mplg;
pub mod rare;
pub mod raze;
pub mod rze;
pub mod words;
pub mod zigzag;

pub use fpc_entropy::{DecodeError, Result};

/// Size of an independent compression chunk in bytes (paper §3: sized so two
/// chunk buffers fit in GPU shared memory / CPU L1).
pub const CHUNK_SIZE: usize = 16 * 1024;

/// Size of an MPLG subchunk in bytes (paper §3.1: 32 subchunks per chunk,
/// one per warp).
pub const SUBCHUNK_SIZE: usize = 512;
