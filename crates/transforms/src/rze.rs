//! RZE: Repeated Zero Elimination.
//!
//! The final stage of SPratio (paper §3.2, Figure 5). A bitmap marks which
//! input bytes are nonzero; the zero bytes are removed. Because the bitmap
//! itself is a significant fixed overhead (n/8 bytes), it is compressed
//! three more times with the same mechanism — except that the recursive
//! passes mark bytes that *differ from the preceding byte* rather than
//! nonzero bytes, which suits the typical "zeros first, ones last" structure
//! of the bitmap (16384 bits → 2048 → 256 → 32 in the paper's full-chunk
//! case).
//!
//! Wire format: final-level bitmap (raw), then the non-repeating bytes of
//! levels 2, 1, 0, then the nonzero data bytes. All lengths are derivable
//! from the (externally known) original chunk length.

use crate::{DecodeError, Result};
use fpc_metrics::Stage;

/// Number of recursive bitmap-compression passes.
pub const BITMAP_LEVELS: usize = 3;

#[inline]
fn bitmap_len(n: usize) -> usize {
    n.div_ceil(8)
}

/// Builds the level-0 bitmap (bit set ⇔ byte nonzero) and collects nonzero
/// bytes. The loop is the scalar reference (`FPC_FORCE_SCALAR=1`); normal
/// dispatch scans 8–32 bytes per step via `fpc_simd::bytescan`.
fn zero_bitmap(data: &[u8]) -> (Vec<u8>, Vec<u8>) {
    let mut bitmap = vec![0u8; bitmap_len(data.len())];
    let mut kept = Vec::new();
    if fpc_simd::force_scalar() {
        for (i, &b) in data.iter().enumerate() {
            if b != 0 {
                bitmap[i / 8] |= 1 << (i % 8);
                kept.push(b);
            }
        }
    } else {
        fpc_simd::bytescan::zero_bitmap(data, &mut bitmap, &mut kept);
    }
    (bitmap, kept)
}

/// Builds a repeat bitmap (bit set ⇔ byte differs from its predecessor;
/// index 0 compares against 0x00) and collects the differing bytes.
fn repeat_bitmap(data: &[u8]) -> (Vec<u8>, Vec<u8>) {
    let mut bitmap = vec![0u8; bitmap_len(data.len())];
    let mut kept = Vec::new();
    if fpc_simd::force_scalar() {
        let mut prev = 0u8;
        for (i, &b) in data.iter().enumerate() {
            if b != prev {
                bitmap[i / 8] |= 1 << (i % 8);
                kept.push(b);
            }
            prev = b;
        }
    } else {
        fpc_simd::bytescan::repeat_bitmap(data, &mut bitmap, &mut kept);
    }
    (bitmap, kept)
}

#[inline]
fn bit_at(bitmap: &[u8], i: usize) -> bool {
    bitmap[i / 8] & (1 << (i % 8)) != 0
}

/// Compresses `data`, appending the encoded stream to `out`.
pub fn encode(data: &[u8], out: &mut Vec<u8>) {
    let t = fpc_metrics::timer(Stage::RzeEncode);
    let (bm0, nonzero) = zero_bitmap(data);
    let (bm1, nr0) = repeat_bitmap(&bm0);
    let (bm2, nr1) = repeat_bitmap(&bm1);
    let (bm3, nr2) = repeat_bitmap(&bm2);
    out.extend_from_slice(&bm3);
    out.extend_from_slice(&nr2);
    out.extend_from_slice(&nr1);
    out.extend_from_slice(&nr0);
    out.extend_from_slice(&nonzero);
    t.finish(data.len() as u64);
}

fn take<'a>(data: &'a [u8], pos: &mut usize, len: usize) -> Result<&'a [u8]> {
    let end = pos
        .checked_add(len)
        .ok_or(DecodeError::Corrupt("rze length overflow"))?;
    if end > data.len() {
        return Err(DecodeError::UnexpectedEof);
    }
    let slice = &data[*pos..end];
    *pos = end;
    Ok(slice)
}

/// Reconstructs a `len`-byte level from its repeat bitmap, consuming
/// differing bytes from `data`. The per-bit loop is the scalar reference;
/// normal dispatch expands a bitmap byte at a time.
fn expand_repeat(bitmap: &[u8], len: usize, data: &[u8], pos: &mut usize) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(len);
    if fpc_simd::force_scalar() {
        let mut prev = 0u8;
        for i in 0..len {
            if bit_at(bitmap, i) {
                prev = *data.get(*pos).ok_or(DecodeError::UnexpectedEof)?;
                *pos += 1;
            }
            out.push(prev);
        }
    } else {
        let src = data.get(*pos..).unwrap_or(&[]);
        let used = fpc_simd::bytescan::expand_repeat(bitmap, len, src, &mut out)
            .ok_or(DecodeError::UnexpectedEof)?;
        *pos += used;
    }
    Ok(out)
}

/// Decompresses `n` original bytes from `data` starting at `*pos`.
///
/// # Errors
///
/// Fails if the stream is truncated.
pub fn decode(data: &[u8], pos: &mut usize, n: usize, out: &mut Vec<u8>) -> Result<()> {
    let t = fpc_metrics::timer(Stage::RzeDecode);
    let len0 = bitmap_len(n);
    let len1 = bitmap_len(len0);
    let len2 = bitmap_len(len1);
    let len3 = bitmap_len(len2);
    let bm3 = take(data, pos, len3)?.to_vec();
    let bm2 = expand_repeat(&bm3, len2, data, pos)?;
    let bm1 = expand_repeat(&bm2, len1, data, pos)?;
    let bm0 = expand_repeat(&bm1, len0, data, pos)?;
    out.reserve(n);
    if fpc_simd::force_scalar() {
        for i in 0..n {
            if bit_at(&bm0, i) {
                out.push(*data.get(*pos).ok_or(DecodeError::UnexpectedEof)?);
                *pos += 1;
            } else {
                out.push(0);
            }
        }
    } else {
        let src = data.get(*pos..).unwrap_or(&[]);
        let used = fpc_simd::bytescan::expand_nonzero(&bm0, n, src, out)
            .ok_or(DecodeError::UnexpectedEof)?;
        *pos += used;
    }
    t.finish(n as u64);
    Ok(())
}

/// Exact encoded size without materializing the stream (used by the
/// adaptive RAZE/RARE stages to pick their split point).
pub fn encoded_len(data: &[u8]) -> usize {
    let (bm0, nonzero) = zero_bitmap(data);
    let (bm1, nr0) = repeat_bitmap(&bm0);
    let (bm2, nr1) = repeat_bitmap(&bm1);
    let (bm3, nr2) = repeat_bitmap(&bm2);
    bm3.len() + nr2.len() + nr1.len() + nr0.len() + nonzero.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let mut enc = Vec::new();
        encode(data, &mut enc);
        let mut pos = 0;
        let mut dec = Vec::new();
        decode(&enc, &mut pos, data.len(), &mut dec).unwrap();
        assert_eq!(pos, enc.len(), "decoder must consume the whole stream");
        assert_eq!(dec, data);
        assert_eq!(enc.len(), encoded_len(data));
        enc.len()
    }

    #[test]
    fn empty() {
        assert_eq!(roundtrip(&[]), 0);
    }

    #[test]
    fn all_zero_chunk_collapses() {
        // 16 KiB of zeros: bitmaps are all zero too, so only the 4-byte
        // final bitmap survives.
        let size = roundtrip(&[0u8; 16384]);
        assert_eq!(size, 4);
    }

    #[test]
    fn all_nonzero_keeps_everything() {
        let data = vec![0xAAu8; 16384];
        let size = roundtrip(&data);
        // bitmap levels are all-ones; each level contributes a couple of
        // differing bytes, so overhead is tiny (9 bytes for a full chunk).
        assert!(size <= data.len() + 16, "got {size}");
    }

    #[test]
    fn paper_structure_zeros_then_data() {
        // The motivating case: long zero run then increasingly dense bytes
        // (what BIT produces after DIFFMS).
        let mut data = vec![0u8; 12288];
        data.extend((0..4096u32).map(|i| (i % 255 + 1) as u8));
        let size = roundtrip(&data);
        assert!(size < 4096 + 600, "got {size}");
    }

    #[test]
    fn scattered_nonzeros() {
        let mut data = vec![0u8; 5000];
        for i in (0..5000).step_by(97) {
            data[i] = (i % 250 + 1) as u8;
        }
        roundtrip(&data);
    }

    #[test]
    fn sub_byte_sizes() {
        for n in 0..=20usize {
            let data: Vec<u8> = (0..n).map(|i| (i % 3) as u8).collect();
            roundtrip(&data);
        }
    }

    #[test]
    fn zero_byte_values_distinguished_from_eliminated() {
        // A nonzero byte adjacent to zeros must come back in the right spot.
        let data = [0u8, 0, 7, 0, 0, 0, 9, 0];
        roundtrip(&data);
    }

    #[test]
    fn truncated_stream_rejected() {
        let mut data = vec![0u8; 1000];
        data[500] = 42;
        let mut enc = Vec::new();
        encode(&data, &mut enc);
        for cut in 1..enc.len().min(8) {
            let mut pos = 0;
            let mut dec = Vec::new();
            assert!(
                decode(&enc[..enc.len() - cut], &mut pos, data.len(), &mut dec).is_err(),
                "cut {cut} should fail"
            );
        }
    }

    #[test]
    fn bitmap_recursion_pays_off_on_smooth_bitmaps() {
        // Mostly-zero chunk: plain bitmap overhead would be n/8 = 2048 B;
        // the recursive compression should get far below that.
        let mut data = vec![0u8; 16384];
        data[16000] = 1;
        let size = roundtrip(&data);
        assert!(size < 64, "got {size}");
    }

    #[test]
    fn worst_case_expansion_is_bounded() {
        // Alternating bytes defeat every level; expansion must stay within
        // the bitmap chain overhead (n/8 + n/64 + n/512 + n/4096 ≈ 14.5%).
        let data: Vec<u8> = (0..16384).map(|i| if i % 2 == 0 { 1 } else { 2 }).collect();
        let size = roundtrip(&data);
        assert!(size <= data.len() + data.len() / 8 + data.len() / 64 + data.len() / 512 + 8);
    }
}
