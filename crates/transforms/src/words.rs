//! Byte ↔ word reinterpretation helpers.
//!
//! The algorithms "load the values bit-for-bit into an integer variable and
//! then process the data using integer operations only" (paper §3). Chunks
//! arrive as byte slices; these helpers split them into little-endian words
//! plus a raw tail of fewer-than-word-size bytes that every pipeline passes
//! through unchanged.

/// Splits `bytes` into little-endian `u32` words plus the raw tail.
pub fn bytes_to_u32(bytes: &[u8]) -> (Vec<u32>, &[u8]) {
    let n = bytes.len() / 4;
    let (head, tail) = bytes.split_at(n * 4);
    let words = head
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("chunks_exact(4)")))
        .collect();
    (words, tail)
}

/// Splits `bytes` into little-endian `u64` words plus the raw tail.
pub fn bytes_to_u64(bytes: &[u8]) -> (Vec<u64>, &[u8]) {
    let n = bytes.len() / 8;
    let (head, tail) = bytes.split_at(n * 8);
    let words = head
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
        .collect();
    (words, tail)
}

/// Appends `words` to `out` in little-endian byte order.
pub fn u32_to_bytes(words: &[u32], out: &mut Vec<u8>) {
    out.reserve(words.len() * 4);
    for &w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

/// Appends `words` to `out` in little-endian byte order.
pub fn u64_to_bytes(words: &[u64], out: &mut Vec<u8>) {
    out.reserve(words.len() * 8);
    for &w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

/// Reinterprets `f32` values as their IEEE-754 bit patterns.
pub fn f32_to_u32(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Reinterprets bit patterns as `f32` values.
pub fn u32_to_f32(bits: &[u32]) -> Vec<f32> {
    bits.iter().map(|&b| f32::from_bits(b)).collect()
}

/// Reinterprets `f64` values as their IEEE-754 bit patterns.
pub fn f64_to_u64(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Reinterprets bit patterns as `f64` values.
pub fn u64_to_f64(bits: &[u64]) -> Vec<f64> {
    bits.iter().map(|&b| f64::from_bits(b)).collect()
}

/// Serializes `f32` values to little-endian bytes.
pub fn f32_slice_to_bytes(values: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4);
    for v in values {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out
}

/// Deserializes little-endian bytes to `f32` values (length must be a
/// multiple of 4).
pub fn bytes_to_f32_vec(bytes: &[u8]) -> Option<Vec<f32>> {
    if !bytes.len().is_multiple_of(4) {
        return None;
    }
    Some(
        bytes
            .chunks_exact(4)
            .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().expect("chunks_exact(4)"))))
            .collect(),
    )
}

/// Serializes `f64` values to little-endian bytes.
pub fn f64_slice_to_bytes(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out
}

/// Deserializes little-endian bytes to `f64` values (length must be a
/// multiple of 8).
pub fn bytes_to_f64_vec(bytes: &[u8]) -> Option<Vec<f64>> {
    if !bytes.len().is_multiple_of(8) {
        return None;
    }
    Some(
        bytes
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("chunks_exact(8)"))))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_roundtrip_with_tail() {
        let bytes: Vec<u8> = (0..23).collect();
        let (words, tail) = bytes_to_u32(&bytes);
        assert_eq!(words.len(), 5);
        assert_eq!(tail, &[20, 21, 22]);
        let mut back = Vec::new();
        u32_to_bytes(&words, &mut back);
        back.extend_from_slice(tail);
        assert_eq!(back, bytes);
    }

    #[test]
    fn u64_roundtrip_with_tail() {
        let bytes: Vec<u8> = (0..21).collect();
        let (words, tail) = bytes_to_u64(&bytes);
        assert_eq!(words.len(), 2);
        assert_eq!(tail.len(), 5);
        let mut back = Vec::new();
        u64_to_bytes(&words, &mut back);
        back.extend_from_slice(tail);
        assert_eq!(back, bytes);
    }

    #[test]
    fn float_bit_reinterpretation_is_exact() {
        let values = [
            0.0f32,
            -0.0,
            1.5,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::MIN_POSITIVE,
        ];
        let bits = f32_to_u32(&values);
        let back = u32_to_f32(&bits);
        for (a, b) in values.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // NaN payloads must survive bit-for-bit.
        let nan = f32::from_bits(0x7FC0_1234);
        assert_eq!(u32_to_f32(&f32_to_u32(&[nan]))[0].to_bits(), 0x7FC0_1234);
    }

    #[test]
    fn f64_bytes_roundtrip() {
        let values = [std::f64::consts::PI, -1e300, 5e-324, f64::NAN];
        let bytes = f64_slice_to_bytes(&values);
        let back = bytes_to_f64_vec(&bytes).unwrap();
        for (a, b) in values.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(bytes_to_f64_vec(&bytes[..bytes.len() - 1]).is_none());
    }

    #[test]
    fn f32_bytes_roundtrip() {
        let values = [1.0f32, 2.0, 3.0];
        let bytes = f32_slice_to_bytes(&values);
        assert_eq!(bytes_to_f32_vec(&bytes).unwrap(), values);
        assert!(bytes_to_f32_vec(&bytes[..5]).is_none());
    }
}
