//! The `fpc-serve` TCP server: acceptor, bounded connection queue, and a
//! fixed pool of connection workers.
//!
//! The acceptor thread never blocks on a client: the listener is
//! non-blocking and accepted sockets are pushed onto a bounded queue that
//! [`ServeConfig::max_conns`] worker threads drain. When the queue is full
//! the acceptor replies with a structured [`ErrorCode::Busy`] frame and
//! closes the socket — load sheds at the edge instead of queueing
//! unboundedly. The heavy lifting (chunk compression/decompression) runs
//! through the process-wide `fpc-pool` executor exactly as the CLI path
//! does, so a single large request still uses every core and concurrent
//! requests share the pool's dynamic schedule.
//!
//! **Backpressure / hostile-input caps** (all structured errors, never
//! panics, mirroring the container v2 hardening):
//!
//! * per-frame payload cap ([`ServeConfig::max_frame`]) →
//!   [`ErrorCode::FrameTooLarge`];
//! * per-request payload cap ([`ServeConfig::max_request`]) →
//!   [`ErrorCode::PayloadTooLarge`] — excess `Data` frames are *drained
//!   without buffering* so the reply still reaches the client;
//! * global inflight-bytes cap ([`ServeConfig::max_inflight`]) →
//!   [`ErrorCode::Busy`];
//! * per-connection read/write timeouts → [`ErrorCode::Timeout`].
//!
//! **Graceful degradation** (all deterministic thresholds, all counted
//! under `serve.faults.*` metrics):
//!
//! * *idle eviction* — a connection that sits between requests past
//!   [`ServeConfig::idle_timeout`] is reaped with a structured
//!   [`ErrorCode::Timeout`], freeing its worker;
//! * *progress deadline* — once a request frame arrives, the whole body
//!   must land within [`ServeConfig::progress_deadline`] of wall clock.
//!   Socket timeouts reset per syscall, so a slow-loris peer trickling
//!   one byte per poll would otherwise hold a worker forever; the
//!   deadline is checked on every read and cannot be evaded;
//! * *memory-pressure watermark* — requests are shed with
//!   [`ErrorCode::Busy`] once buffered bytes cross
//!   [`ServeConfig::shed_inflight`] (before the hard
//!   [`ServeConfig::max_inflight`] cap, so shedding happens while
//!   allocation still succeeds).
//!
//! **Graceful shutdown**: setting the flag returned by
//! [`Server::shutdown_flag`] (e.g. from a SIGINT/SIGTERM handler bridge,
//! see [`crate::shutdown_signal_flag`]) stops the acceptor, lets every
//! worker finish its in-flight request, closes queued-but-unserved
//! sockets, and joins all workers before [`Server::run`] returns.

use crate::stream::{serve_streaming, Served};
use crate::wire::{
    read_frame, send_error, send_response, ErrorCode, FrameKind, Op, RangeRequest, RecvError,
    RemoteVerify, WireError, DEFAULT_MAX_FRAME,
};
use fpc_cache::ChunkCache;
use fpc_core::{Algorithm, Compressor};
use fpc_faults::io::FaultStream;
use std::collections::VecDeque;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Tunables for one server instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads per codec job (0 = all cores), forwarded to
    /// [`Compressor::with_threads`].
    pub threads: usize,
    /// Connection worker threads (= maximum concurrently served
    /// connections). 0 selects one per available core, but no fewer
    /// than 8.
    pub max_conns: usize,
    /// Accepted-but-unserved sockets the queue holds before the acceptor
    /// sheds load with [`ErrorCode::Busy`]. 0 selects `2 * max_conns`.
    pub queue_cap: usize,
    /// Per-frame payload cap in bytes.
    pub max_frame: u32,
    /// Per-request accumulated payload cap in bytes.
    pub max_request: u64,
    /// Global cap on request payload bytes buffered across all
    /// connections at once.
    pub max_inflight: u64,
    /// Per-connection socket read timeout.
    pub read_timeout: Option<Duration>,
    /// Per-connection socket write timeout.
    pub write_timeout: Option<Duration>,
    /// How long a connection may sit between requests before it is
    /// evicted (`None` = only `read_timeout` applies while idle).
    pub idle_timeout: Option<Duration>,
    /// Wall-clock budget for one request body, measured from its
    /// `Request` frame to its `End` frame. Checked on every read, so a
    /// slow-loris peer trickling bytes cannot evade it the way it evades
    /// per-syscall socket timeouts. `None` disables the deadline.
    pub progress_deadline: Option<Duration>,
    /// Inflight-bytes watermark above which new request bytes are shed
    /// with `Busy` *before* the hard `max_inflight` cap. 0 selects
    /// `max_inflight - max_inflight / 4`.
    pub shed_inflight: u64,
    /// Byte budget for the content-addressed hot-chunk cache shared by
    /// every connection: repeated chunks skip the codec on both the
    /// compress and decompress paths. 0 disables caching.
    pub cache_bytes: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            threads: 0,
            max_conns: 0,
            queue_cap: 0,
            max_frame: DEFAULT_MAX_FRAME,
            max_request: 1 << 30,
            max_inflight: 2 << 30,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            idle_timeout: Some(Duration::from_secs(60)),
            progress_deadline: Some(Duration::from_secs(30)),
            shed_inflight: 0,
            cache_bytes: 0,
        }
    }
}

impl ServeConfig {
    /// Connection workers after defaulting: `max_conns` as given, or one
    /// per available core but no fewer than 8. Unlike codec threads these
    /// spend their life parked on socket reads, so oversubscribing a small
    /// host is the right default — otherwise concurrent clients would
    /// serialize behind core count.
    pub fn effective_conns(&self) -> usize {
        if self.max_conns == 0 {
            fpc_pool::effective_threads(0, usize::MAX).max(8)
        } else {
            self.max_conns
        }
    }

    /// Queue capacity after defaulting.
    pub fn effective_queue_cap(&self) -> usize {
        if self.queue_cap == 0 {
            self.effective_conns() * 2
        } else {
            self.queue_cap
        }
    }

    /// Shed watermark after defaulting: three quarters of the hard
    /// inflight cap, leaving headroom so `Busy` goes out while
    /// allocation still succeeds.
    pub fn effective_shed(&self) -> u64 {
        if self.shed_inflight == 0 {
            self.max_inflight - self.max_inflight / 4
        } else {
            self.shed_inflight.min(self.max_inflight)
        }
    }
}

/// A bound-but-not-yet-running compression server.
pub struct Server {
    listener: TcpListener,
    config: ServeConfig,
    shutdown: Arc<AtomicBool>,
    cache: Option<Arc<ChunkCache>>,
}

/// State shared between the acceptor and the connection workers.
struct Shared {
    queue: Mutex<VecDeque<Conn>>,
    available: Condvar,
    shutdown: Arc<AtomicBool>,
    config: ServeConfig,
    /// Request payload bytes currently buffered across all connections.
    inflight: AtomicU64,
    /// Hot-chunk cache shared by all connections (`None` = disabled).
    cache: Option<Arc<ChunkCache>>,
    /// Per-worker handle to the socket it is currently serving, so
    /// shutdown can interrupt blocked reads instead of waiting out the
    /// socket timeout.
    active: Vec<Mutex<Option<TcpStream>>>,
}

/// One accepted socket waiting for (or held by) a worker.
struct Conn {
    stream: TcpStream,
    queued: fpc_metrics::Stopwatch,
}

impl Server {
    /// Binds the listener without serving yet.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (address in use, permission, resolution).
    pub fn bind(addr: impl ToSocketAddrs, config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let cache = (config.cache_bytes > 0).then(|| Arc::new(ChunkCache::new(config.cache_bytes)));
        Ok(Server {
            listener,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
            cache,
        })
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates `getsockname` failures.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shutdown flag: set it (from any thread or a signal handler
    /// bridge) to stop the acceptor and drain the workers.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// A handle to the hot-chunk cache, when [`ServeConfig::cache_bytes`]
    /// enabled one — lets embedders read live [`fpc_cache::CacheStats`]
    /// (hit rate, residency) while the server runs.
    pub fn cache(&self) -> Option<Arc<ChunkCache>> {
        self.cache.clone()
    }

    /// Serves until the shutdown flag is set; returns after every worker
    /// has drained.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener errors (per-connection errors are handled
    /// in-protocol and do not end the server).
    pub fn run(self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let workers = self.config.effective_conns();
        let queue_cap = self.config.effective_queue_cap();
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: Arc::clone(&self.shutdown),
            config: self.config,
            inflight: AtomicU64::new(0),
            cache: self.cache,
            active: (0..workers).map(|_| Mutex::new(None)).collect(),
        });
        let mut handles = Vec::with_capacity(workers);
        for id in 0..workers {
            let shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("fpc-serve-{id}"))
                .spawn(move || worker_loop(&shared, id))?;
            handles.push(handle);
        }
        let accept_result = accept_loop(&self.listener, &shared, queue_cap);
        // Shutdown path (flag set, or a fatal accept error): wake idle
        // workers, interrupt in-flight socket reads, drop unserved sockets.
        shared.shutdown.store(true, Ordering::SeqCst);
        shared.available.notify_all();
        for slot in &shared.active {
            if let Some(stream) = lock(slot).as_ref() {
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
        }
        for handle in handles {
            let _ = handle.join();
        }
        lock(&shared.queue).clear();
        accept_result
    }
}

/// Accepts until shutdown; never blocks on a single client.
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, queue_cap: usize) -> io::Result<()> {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn = Conn {
                    stream,
                    queued: fpc_metrics::Stopwatch::start(),
                };
                let mut queue = lock(&shared.queue);
                if queue.len() >= queue_cap {
                    drop(queue);
                    reject_busy(conn.stream);
                } else {
                    queue.push_back(conn);
                    drop(queue);
                    shared.available.notify_one();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            // Transient per-connection failures (reset before accept
            // completed) are not fatal to the listener.
            Err(e) if e.kind() == io::ErrorKind::ConnectionReset => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Sheds a connection the queue has no room for: best-effort structured
/// `Busy` error, then close.
fn reject_busy(stream: TcpStream) {
    fpc_metrics::incr(fpc_metrics::Counter::ServeConnRejected, 1);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let mut w = stream;
    let _ = send_error(
        &mut w,
        0,
        &WireError::new(ErrorCode::Busy, "connection queue full; retry later"),
    );
}

fn worker_loop(shared: &Arc<Shared>, id: usize) {
    loop {
        let conn = {
            let mut queue = lock(&shared.queue);
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                if let Some(conn) = queue.pop_front() {
                    break Some(conn);
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(conn) = conn else { return };
        if fpc_metrics::ENABLED {
            fpc_metrics::incr(
                fpc_metrics::Counter::ServeQueueWaitNanos,
                conn.queued.elapsed_nanos(),
            );
        }
        fpc_metrics::incr(fpc_metrics::Counter::ServeConnections, 1);
        // Publish a handle to this socket so shutdown can interrupt a
        // blocked read; re-check the flag afterwards to close the window
        // where shutdown swept the slots before the store landed.
        *lock(&shared.active[id]) = conn.stream.try_clone().ok();
        if shared.shutdown.load(Ordering::SeqCst) {
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        }
        // Connection-level failures only affect that connection.
        let _ = serve_connection(conn.stream, shared);
        *lock(&shared.active[id]) = None;
    }
}

/// Releases its reservation against the global inflight-bytes cap on drop,
/// so every exit path (response, error, panic-free early return) settles
/// the account.
pub(crate) struct InflightGuard<'a> {
    inflight: &'a AtomicU64,
    reserved: u64,
}

impl InflightGuard<'_> {
    /// Tries to grow the reservation by `n` bytes; `false` when the global
    /// cap would be exceeded (the caller sheds with `Busy`).
    pub(crate) fn try_grow(&mut self, n: u64, cap: u64) -> bool {
        let prev = self.inflight.fetch_add(n, Ordering::Relaxed);
        if prev.saturating_add(n) > cap {
            self.inflight.fetch_sub(n, Ordering::Relaxed);
            return false;
        }
        self.reserved += n;
        true
    }

    /// Bytes this connection currently has reserved.
    pub(crate) fn reserved(&self) -> u64 {
        self.reserved
    }

    /// Bytes reserved across all connections right now.
    pub(crate) fn current(&self) -> u64 {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Lowers the reservation to `target` (no-op if already at or below),
    /// returning the bytes to the global budget immediately. The streaming
    /// path uses this to track an engine whose footprint shrinks as output
    /// is drained.
    pub(crate) fn shrink_to(&mut self, target: u64) {
        if target < self.reserved {
            self.inflight
                .fetch_sub(self.reserved - target, Ordering::Relaxed);
            self.reserved = target;
        }
    }
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.inflight.fetch_sub(self.reserved, Ordering::Relaxed);
    }
}

/// How receiving a request body ended.
enum Body {
    /// Fully buffered payload.
    Complete(Vec<u8>),
    /// The payload tripped a cap; the rest of its frames were drained
    /// without buffering so the connection can still carry the reply.
    Rejected(WireError),
}

/// Bounds reads by a wall-clock deadline: the clock is checked before
/// every `read` call, so a peer trickling single bytes (each one
/// resetting the socket timeout) still cannot hold the body phase open
/// past [`ServeConfig::progress_deadline`].
struct DeadlineReader<'a, R> {
    inner: &'a mut R,
    deadline: Option<Instant>,
}

impl<R: io::Read> io::Read for DeadlineReader<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "request missed the progress deadline",
                ));
            }
        }
        self.inner.read(buf)
    }
}

/// Serves requests on one connection until the peer closes, a protocol
/// error forces a disconnect, a degradation threshold reaps it, or
/// shutdown is requested.
fn serve_connection(stream: TcpStream, shared: &Arc<Shared>) -> io::Result<()> {
    let config = &shared.config;
    stream.set_read_timeout(config.read_timeout)?;
    stream.set_write_timeout(config.write_timeout)?;
    stream.set_nodelay(true).ok();
    // Socket timeouts are per-socket, shared by all clones: `ctl` lets the
    // loop switch between the idle and in-request read timeouts.
    let ctl = stream.try_clone()?;
    let mut reader = BufReader::new(FaultStream::new(stream.try_clone()?));
    let mut writer = BufWriter::new(FaultStream::new(stream));
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        // Idle phase: waiting for the next request. A dedicated timeout
        // evicts parked connections without touching in-request limits.
        if config.idle_timeout.is_some() {
            ctl.set_read_timeout(config.idle_timeout)?;
        }
        let header = match read_frame(&mut reader, config.max_frame) {
            Ok((header, _payload)) => header,
            Err(RecvError::Closed) => return Ok(()),
            Err(e) if e.is_timeout() && config.idle_timeout.is_some() => {
                fpc_metrics::incr(fpc_metrics::Counter::ServeReapedIdle, 1);
                return disconnect(&mut writer, &e);
            }
            Err(e) => return disconnect(&mut writer, &e),
        };
        if config.idle_timeout.is_some() {
            ctl.set_read_timeout(config.read_timeout)?;
        }
        if header.kind != FrameKind::Request {
            let err = WireError::new(
                ErrorCode::BadFrame,
                format!("expected a request frame, got kind {}", header.kind as u8),
            );
            return disconnect(&mut writer, &RecvError::Wire(err));
        }
        // Buffer the body under the per-request and global caps. A capped
        // request is drained frame-by-frame (bounded memory) so the
        // structured error below still reaches a well-behaved client.
        let mut guard = InflightGuard {
            inflight: &shared.inflight,
            reserved: 0,
        };
        let deadline = config.progress_deadline.map(|d| Instant::now() + d);
        let mut bounded = DeadlineReader {
            inner: &mut reader,
            deadline,
        };
        // Compress/decompress stream chunk by chunk through the engines;
        // the other ops need their whole (small) operand buffered.
        if matches!(Op::from_u8(header.op), Some(Op::Compress | Op::Decompress)) {
            match serve_streaming(
                &mut bounded,
                &mut writer,
                &header,
                config,
                &mut guard,
                shared.cache.as_ref(),
            )? {
                Served::Continue => continue,
                Served::Disconnect(e) => {
                    if deadline.is_some_and(|d| Instant::now() >= d) {
                        fpc_metrics::incr(fpc_metrics::Counter::ServeReapedStalled, 1);
                    }
                    return disconnect(&mut writer, &e);
                }
            }
        }
        let body = match recv_body(&mut bounded, config, &mut guard) {
            Ok(body) => body,
            Err(e) => {
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    fpc_metrics::incr(fpc_metrics::Counter::ServeReapedStalled, 1);
                }
                return disconnect(&mut writer, &e);
            }
        };
        fpc_metrics::incr(fpc_metrics::Counter::ServeRequests, 1);
        let reply = match body {
            Body::Rejected(err) => Err(err),
            Body::Complete(payload) => {
                fpc_metrics::incr(fpc_metrics::Counter::ServeBytesIn, payload.len() as u64);
                dispatch(
                    header.op,
                    header.algo,
                    payload,
                    config.threads,
                    shared.cache.as_ref(),
                )
            }
        };
        match reply {
            Ok(response) => {
                fpc_metrics::incr(fpc_metrics::Counter::ServeBytesOut, response.len() as u64);
                send_response(&mut writer, header.op, header.request_id, &response)?;
            }
            Err(err) => {
                fpc_metrics::incr(fpc_metrics::Counter::ServeErrors, 1);
                send_error(&mut writer, header.request_id, &err)?;
            }
        }
    }
}

/// Reports a receive failure to the peer where possible, then signals the
/// caller to drop the connection. Framing is unrecoverable at this point:
/// after a malformed or truncated frame the byte stream cannot be resynced.
fn disconnect(writer: &mut impl Write, err: &RecvError) -> io::Result<()> {
    fpc_metrics::incr(fpc_metrics::Counter::ServeErrors, 1);
    if err.is_timeout() {
        fpc_metrics::incr(fpc_metrics::Counter::ServeTimeouts, 1);
    }
    let wire_err = match err {
        RecvError::Closed => None,
        RecvError::Wire(e) => Some(e.clone()),
        RecvError::Io(_) if err.is_timeout() => Some(WireError::new(
            ErrorCode::Timeout,
            "connection timed out (idle, stalled, or past a deadline)",
        )),
        // The transport is already broken; nothing to send.
        RecvError::Io(_) => None,
    };
    if let Some(e) = wire_err {
        let _ = send_error(writer, 0, &e);
    }
    Ok(())
}

/// Receives `Data`* + `End`, enforcing the per-request cap, the
/// shed watermark, and the hard global cap.
fn recv_body(
    reader: &mut impl io::Read,
    config: &ServeConfig,
    guard: &mut InflightGuard<'_>,
) -> Result<Body, RecvError> {
    let mut payload = Vec::new();
    let mut total: u64 = 0;
    let mut rejection: Option<WireError> = None;
    let shed = config.effective_shed();
    loop {
        let (header, chunk) = read_frame(reader, config.max_frame)?;
        match header.kind {
            FrameKind::Data => {
                total += chunk.len() as u64;
                if rejection.is_some() {
                    continue; // draining: count but never buffer
                }
                if total > config.max_request {
                    payload = Vec::new();
                    rejection = Some(WireError::new(
                        ErrorCode::PayloadTooLarge,
                        format!(
                            "request payload exceeds the per-request cap of {} bytes",
                            config.max_request
                        ),
                    ));
                } else if guard
                    .inflight
                    .load(Ordering::Relaxed)
                    .saturating_add(chunk.len() as u64)
                    > shed
                {
                    // Memory-pressure watermark: shed while allocation
                    // still succeeds rather than riding the hard cap.
                    fpc_metrics::incr(fpc_metrics::Counter::ServeShedMemory, 1);
                    payload = Vec::new();
                    rejection = Some(WireError::new(
                        ErrorCode::Busy,
                        "server under memory pressure; retry later",
                    ));
                } else if !guard.try_grow(chunk.len() as u64, config.max_inflight) {
                    payload = Vec::new();
                    rejection = Some(WireError::new(
                        ErrorCode::Busy,
                        "server inflight-bytes cap reached; retry later",
                    ));
                } else {
                    payload.extend_from_slice(&chunk);
                }
            }
            FrameKind::End => {
                return Ok(match rejection {
                    Some(err) => Body::Rejected(err),
                    None => Body::Complete(payload),
                });
            }
            other => {
                return Err(RecvError::Wire(WireError::new(
                    ErrorCode::BadFrame,
                    format!("expected data/end, got kind {}", other as u8),
                )));
            }
        }
    }
}

/// Runs one validated request through the codecs. `Range` requests go
/// through the hot-chunk cache when one is configured, so repeated reads
/// over the same stream (and streamed decompresses of it) share decoded
/// chunks — a warm `fpcc remote range` never decodes a chunk twice.
fn dispatch(
    op: u8,
    algo: u8,
    payload: Vec<u8>,
    threads: usize,
    cache: Option<&Arc<ChunkCache>>,
) -> Result<Vec<u8>, WireError> {
    let op = Op::from_u8(op)
        .ok_or_else(|| WireError::new(ErrorCode::UnknownOp, format!("unknown op byte {op}")))?;
    let bytes = payload.len() as u64;
    let timer = fpc_metrics::timer(stage_for(op));
    let result = match op {
        Op::Compress => {
            let algo = Algorithm::from_id(algo).map_err(|_| {
                WireError::new(
                    ErrorCode::UnknownAlgorithm,
                    format!("unknown algorithm id {algo}"),
                )
            })?;
            Ok(Compressor::new(algo)
                .with_threads(threads)
                .compress_bytes(&payload))
        }
        Op::Decompress => fpc_core::decompress_bytes_with(&payload, threads)
            .map_err(|e| WireError::new(ErrorCode::CorruptStream, e.to_string())),
        Op::Verify => match fpc_container::verify(&payload) {
            Ok((header, report)) => Ok(RemoteVerify {
                format_version: header.version,
                checksummed: report.checksummed,
                chunks: report.chunks.min(u32::MAX as usize) as u32,
                damaged_count: report.damaged.len().min(u32::MAX as usize) as u32,
                damaged: report
                    .damaged
                    .iter()
                    .take(RemoteVerify::MAX_DAMAGE_ENTRIES)
                    .map(|d| (d.chunk, d.offset))
                    .collect(),
            }
            .encode()),
            Err(e) => Err(WireError::new(ErrorCode::CorruptStream, e.to_string())),
        },
        Op::Ping => Ok(payload),
        Op::Range => RangeRequest::decode(&payload).and_then(|(range, stream)| {
            match cache {
                Some(cache) => fpc_core::decompress_range_cached_with(
                    stream,
                    range.offset,
                    range.len,
                    threads,
                    cache,
                ),
                None => fpc_core::decompress_range_with(stream, range.offset, range.len, threads),
            }
            .map_err(|e| match e {
                fpc_core::Error::RangeOutOfBounds { .. } => {
                    WireError::new(ErrorCode::RangeOutOfBounds, e.to_string())
                }
                e => WireError::new(ErrorCode::CorruptStream, e.to_string()),
            })
        }),
    };
    timer.finish(bytes);
    result
}

pub(crate) fn stage_for(op: Op) -> fpc_metrics::Stage {
    match op {
        Op::Compress => fpc_metrics::Stage::ServeCompress,
        Op::Decompress => fpc_metrics::Stage::ServeDecompress,
        Op::Verify => fpc_metrics::Stage::ServeVerify,
        Op::Ping => fpc_metrics::Stage::ServePing,
        Op::Range => fpc_metrics::Stage::ServeRange,
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_resolve() {
        let c = ServeConfig::default();
        // I/O-bound connection workers oversubscribe small hosts.
        assert!(c.effective_conns() >= 8);
        assert_eq!(c.effective_queue_cap(), c.effective_conns() * 2);
        let explicit = ServeConfig {
            max_conns: 3,
            queue_cap: 5,
            ..ServeConfig::default()
        };
        // An explicit worker count is honored verbatim, never clamped.
        assert_eq!(explicit.effective_conns(), 3);
        assert_eq!(explicit.effective_queue_cap(), 5);
    }

    #[test]
    fn inflight_guard_releases_on_drop() {
        let inflight = AtomicU64::new(0);
        {
            let mut g = InflightGuard {
                inflight: &inflight,
                reserved: 0,
            };
            assert!(g.try_grow(100, 150));
            assert!(!g.try_grow(100, 150), "cap must hold");
            assert_eq!(inflight.load(Ordering::Relaxed), 100);
        }
        assert_eq!(inflight.load(Ordering::Relaxed), 0, "drop must release");
    }

    #[test]
    fn dispatch_rejects_unknown_op_and_algo() {
        let e = dispatch(99, 0, Vec::new(), 1, None).unwrap_err();
        assert_eq!(e.code, ErrorCode::UnknownOp);
        let e = dispatch(Op::Compress as u8, 0xAB, vec![0; 8], 1, None).unwrap_err();
        assert_eq!(e.code, ErrorCode::UnknownAlgorithm);
        let e = dispatch(
            Op::Decompress as u8,
            ALGO_NONE_BYTE,
            b"garbage".to_vec(),
            1,
            None,
        )
        .unwrap_err();
        assert_eq!(e.code, ErrorCode::CorruptStream);
    }

    const ALGO_NONE_BYTE: u8 = crate::wire::ALGO_NONE;

    #[test]
    fn dispatch_ping_echoes() {
        let out = dispatch(Op::Ping as u8, ALGO_NONE_BYTE, b"hello".to_vec(), 1, None).unwrap();
        assert_eq!(out, b"hello");
    }

    #[test]
    fn dispatch_range_slices_without_whole_stream_decode() {
        let data: Vec<u8> = (0..200_000u32).flat_map(|i| i.to_le_bytes()).collect();
        let stream = Compressor::new(Algorithm::SpSpeed)
            .with_threads(1)
            .compress_bytes(&data);
        let req = RangeRequest {
            offset: 70_000,
            len: 5_000,
        };
        let out = dispatch(
            Op::Range as u8,
            ALGO_NONE_BYTE,
            req.encode(&stream),
            1,
            None,
        )
        .unwrap();
        assert_eq!(out, &data[70_000..75_000]);
        // Out-of-range requests map to the dedicated structured code.
        let req = RangeRequest {
            offset: data.len() as u64,
            len: 1,
        };
        let e = dispatch(
            Op::Range as u8,
            ALGO_NONE_BYTE,
            req.encode(&stream),
            1,
            None,
        )
        .unwrap_err();
        assert_eq!(e.code, ErrorCode::RangeOutOfBounds);
        // A short payload (no full prefix) is a bad frame, and a damaged
        // stream after the prefix is a corrupt stream.
        let e = dispatch(Op::Range as u8, ALGO_NONE_BYTE, vec![0; 7], 1, None).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadFrame);
        let req = RangeRequest { offset: 0, len: 1 };
        let e = dispatch(
            Op::Range as u8,
            ALGO_NONE_BYTE,
            req.encode(b"junk"),
            1,
            None,
        )
        .unwrap_err();
        assert_eq!(e.code, ErrorCode::CorruptStream);
    }
}
