//! Streaming request handlers: compress/decompress a request chunk by
//! chunk as its `Data` frames arrive, instead of buffering the whole
//! payload first.
//!
//! Per-connection memory is bounded by what the engine actually *holds*
//! ([`StreamingCompressor::held_bytes`] /
//! [`StreamingDecompressor::held_bytes`]): at most one partial input
//! chunk plus compressed bodies on the compress path, and the chunk
//! table plus one in-flight chunk on the decompress path — so a
//! decompress request far larger than the inflight watermark completes,
//! where the old buffer-everything path would have shed it. DPratio is
//! the documented exception (its global FCM stage buffers the payload;
//! `held_bytes` reports that honestly and the watermark sheds oversized
//! DPratio requests exactly as before).
//!
//! The [`InflightGuard`](crate::server) reservation is re-synced to the
//! engine's held bytes after every frame, so the shed watermark and the
//! hard inflight cap apply to memory the server actually uses — a
//! streamed 1 GiB decompress accounts for kilobytes, not a gigabyte.
//!
//! Decompress responses start flowing while the request is still
//! arriving: decoded chunks leave as `Data` frames after the `Response`
//! frame, coalesced into [`DATA_CHUNK`]-sized frames (a fixed ≤ 1 MiB
//! staging buffer, deliberately outside the inflight account) so a
//! large response costs frames-per-megabyte, not frames-per-chunk. A
//! failure after output went out (damaged chunk mid stream) is
//! reported with an `Error` frame *in place of* `End`, which clients
//! must treat as terminal. Compress responses necessarily wait for
//! `End`: the container places its chunk table before the bodies, so
//! the stream can only be assembled once the input length is known.

use crate::server::{stage_for, InflightGuard, ServeConfig};
use crate::wire::{
    begin_response, end_message, read_frame, send_data, send_error, send_response, ErrorCode,
    FrameHeader, FrameKind, Op, RecvError, WireError, DATA_CHUNK,
};
use fpc_cache::ChunkCache;
use fpc_core::{Algorithm, StreamingCompressor, StreamingDecompressor};
use std::io::{self, Read, Write};
use std::sync::Arc;

/// How a streamed request left the connection.
pub(crate) enum Served {
    /// A reply (response or structured error) was sent; the connection
    /// continues to the next request.
    Continue,
    /// Receiving failed; the caller reports it and drops the connection.
    Disconnect(RecvError),
}

enum Engine {
    Compress(StreamingCompressor),
    Decompress(StreamingDecompressor),
}

impl Engine {
    fn feed(&mut self, bytes: &[u8]) -> Result<(), fpc_core::Error> {
        match self {
            Engine::Compress(e) => e.feed(bytes),
            Engine::Decompress(e) => e.feed(bytes),
        }
    }

    fn held_bytes(&self) -> u64 {
        match self {
            Engine::Compress(e) => e.held_bytes(),
            Engine::Decompress(e) => e.held_bytes(),
        }
    }
}

/// Serves one `compress`/`decompress` request incrementally. The request
/// frame is already consumed; this reads `Data`* + `End`, feeding the
/// engine as frames arrive.
pub(crate) fn serve_streaming(
    reader: &mut impl Read,
    writer: &mut impl Write,
    request: &FrameHeader,
    config: &ServeConfig,
    guard: &mut InflightGuard<'_>,
    cache: Option<&Arc<ChunkCache>>,
) -> io::Result<Served> {
    let op = Op::from_u8(request.op).expect("router sends only compress/decompress here");
    let id = request.request_id;
    let timer = fpc_metrics::timer(stage_for(op));
    let shed = config.effective_shed();

    // Engine construction can already fail (unknown algorithm id): keep
    // the rejection and drain the body so the reply still lands.
    let mut rejection: Option<WireError> = None;
    let mut engine = match op {
        Op::Decompress => {
            let mut e = StreamingDecompressor::new();
            if let Some(cache) = cache {
                e = e.with_cache(Arc::clone(cache));
            }
            Some(Engine::Decompress(e))
        }
        _ => match Algorithm::from_id(request.algo) {
            Ok(algo) => {
                let mut e = StreamingCompressor::new(algo, config.threads);
                if let Some(cache) = cache {
                    e = e.with_cache(Arc::clone(cache));
                }
                Some(Engine::Compress(e))
            }
            Err(_) => {
                rejection = Some(WireError::new(
                    ErrorCode::UnknownAlgorithm,
                    format!("unknown algorithm id {}", request.algo),
                ));
                None
            }
        },
    };

    let mut total: u64 = 0;
    let mut response_started = false;
    // Decoded output staged here until a full DATA_CHUNK accumulates.
    let mut outbuf: Vec<u8> = Vec::new();
    loop {
        let (header, chunk) = match read_frame(reader, config.max_frame) {
            Ok(frame) => frame,
            Err(e) => return Ok(Served::Disconnect(e)),
        };
        match header.kind {
            FrameKind::Data => {
                total += chunk.len() as u64;
                if rejection.is_some() {
                    continue; // draining: count but never buffer
                }
                if total > config.max_request {
                    rejection = Some(WireError::new(
                        ErrorCode::PayloadTooLarge,
                        format!(
                            "request payload exceeds the per-request cap of {} bytes",
                            config.max_request
                        ),
                    ));
                    release(&mut engine, guard);
                    continue;
                }
                let eng = engine.as_mut().expect("no rejection implies an engine");
                fpc_metrics::incr(fpc_metrics::Counter::ServeBytesIn, chunk.len() as u64);
                if let Err(e) = eng.feed(&chunk) {
                    rejection = Some(WireError::new(ErrorCode::CorruptStream, e.to_string()));
                    release(&mut engine, guard);
                    continue;
                }
                // Decoded output leaves the server the moment it exists,
                // keeping held bytes at O(chunk).
                if let Engine::Decompress(dec) = eng {
                    response_started =
                        drain_output(writer, dec, op, id, response_started, &mut outbuf)?;
                }
                // Re-sync the inflight reservation to what the engine
                // actually holds now.
                let held = eng.held_bytes();
                if held > guard.reserved() {
                    let delta = held - guard.reserved();
                    if guard.current().saturating_add(delta) > shed {
                        fpc_metrics::incr(fpc_metrics::Counter::ServeShedMemory, 1);
                        rejection = Some(WireError::new(
                            ErrorCode::Busy,
                            "server under memory pressure; retry later",
                        ));
                        release(&mut engine, guard);
                    } else if !guard.try_grow(delta, config.max_inflight) {
                        rejection = Some(WireError::new(
                            ErrorCode::Busy,
                            "server inflight-bytes cap reached; retry later",
                        ));
                        release(&mut engine, guard);
                    }
                } else {
                    guard.shrink_to(held);
                }
            }
            FrameKind::End => break,
            other => {
                return Ok(Served::Disconnect(RecvError::Wire(WireError::new(
                    ErrorCode::BadFrame,
                    format!("expected data/end, got kind {}", other as u8),
                ))));
            }
        }
    }
    fpc_metrics::incr(fpc_metrics::Counter::ServeRequests, 1);

    if let Some(err) = rejection {
        fpc_metrics::incr(fpc_metrics::Counter::ServeErrors, 1);
        // If decoded output already went out, the Error frame lands in
        // place of End and the client treats it as terminal.
        send_error(writer, id, &err)?;
        return Ok(Served::Continue);
    }
    match engine.expect("no rejection implies an engine") {
        Engine::Compress(eng) => match eng.finish() {
            Ok(stream) => {
                fpc_metrics::incr(fpc_metrics::Counter::ServeBytesOut, stream.len() as u64);
                send_response(writer, op as u8, id, &stream)?;
            }
            Err(e) => {
                fpc_metrics::incr(fpc_metrics::Counter::ServeErrors, 1);
                send_error(
                    writer,
                    id,
                    &WireError::new(ErrorCode::CorruptStream, e.to_string()),
                )?;
            }
        },
        Engine::Decompress(mut eng) => match eng.finish() {
            Ok(()) => {
                if !response_started {
                    begin_response(writer, op as u8, id)?;
                }
                drain_output(writer, &mut eng, op, id, true, &mut outbuf)?;
                flush_staged(writer, op, id, &mut outbuf)?;
                end_message(writer, op as u8, id)?;
            }
            Err(e) => {
                fpc_metrics::incr(fpc_metrics::Counter::ServeErrors, 1);
                send_error(
                    writer,
                    id,
                    &WireError::new(ErrorCode::CorruptStream, e.to_string()),
                )?;
            }
        },
    }
    guard.shrink_to(0);
    timer.finish(total);
    Ok(Served::Continue)
}

/// Drops the engine (freeing everything it held) and settles the
/// inflight account.
fn release(engine: &mut Option<Engine>, guard: &mut InflightGuard<'_>) {
    *engine = None;
    guard.shrink_to(0);
}

/// Stages every decoded block the engine has ready and writes each full
/// [`DATA_CHUNK`] as one `Data` frame, opening the response before the
/// first frame. Small decoded chunks coalesce instead of each paying a
/// frame (and, under fault injection, a fault-roll) of their own; the
/// tail below one `DATA_CHUNK` stays staged until [`flush_staged`].
/// Returns whether the response has started.
fn drain_output(
    writer: &mut impl Write,
    eng: &mut StreamingDecompressor,
    op: Op,
    id: u64,
    mut started: bool,
    outbuf: &mut Vec<u8>,
) -> io::Result<bool> {
    while let Some(block) = eng.take_output() {
        outbuf.extend_from_slice(&block);
        while outbuf.len() >= DATA_CHUNK {
            if !started {
                begin_response(writer, op as u8, id)?;
                started = true;
            }
            fpc_metrics::incr(fpc_metrics::Counter::ServeBytesOut, DATA_CHUNK as u64);
            send_data(writer, op as u8, id, &outbuf[..DATA_CHUNK])?;
            outbuf.drain(..DATA_CHUNK);
        }
    }
    Ok(started)
}

/// Writes the staged sub-`DATA_CHUNK` tail, if any.
fn flush_staged(writer: &mut impl Write, op: Op, id: u64, outbuf: &mut Vec<u8>) -> io::Result<()> {
    if !outbuf.is_empty() {
        fpc_metrics::incr(fpc_metrics::Counter::ServeBytesOut, outbuf.len() as u64);
        send_data(writer, op as u8, id, outbuf)?;
        outbuf.clear();
    }
    Ok(())
}
