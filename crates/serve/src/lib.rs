//! `fpc-serve` — a streaming compression service over TCP.
//!
//! Puts the four FPcompress algorithms behind a socket: a dependency-free
//! (std-only) server speaking the [`wire`] `fpc-wire-v1` framed protocol,
//! plus a blocking [`Client`] used by `fpcc remote` and the bench
//! load generator.
//!
//! * **Protocol** — versioned, length-prefixed frames with a magic, a
//!   request id, an op (compress / decompress / verify / ping), an
//!   algorithm id, and chunked payload frames, so no single allocation is
//!   proportional to one oversized frame. See [`wire`] for the byte
//!   layout and the structured error codes.
//! * **Server** — acceptor + bounded connection queue drained by a fixed
//!   worker pool; codec work runs through the process-wide `fpc-pool`
//!   executor. Hostile inputs (bad magic, oversized frames, over-cap
//!   payloads) get structured errors, never panics. See [`server`].
//! * **Observability** — with the `metrics` feature, connections,
//!   rejected connections, queue wait, request/error counts, payload
//!   bytes, and per-op latency histograms land in the standard
//!   `fpc-metrics-v1` report (`fpcc serve --metrics json`).
//!
//! # Example (loopback)
//!
//! ```
//! use fpc_serve::{Client, ServeConfig, Server};
//! use fpc_core::Algorithm;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let server = Server::bind("127.0.0.1:0", ServeConfig::default())?;
//! let addr = server.local_addr()?;
//! let shutdown = server.shutdown_flag();
//! let handle = std::thread::spawn(move || server.run());
//!
//! let data: Vec<u8> = (0..4096u32).flat_map(|i| (i as f32).sin().to_bits().to_le_bytes()).collect();
//! let mut client = Client::connect(addr, None)?;
//! let stream = client.compress(Algorithm::SpSpeed, &data)?;
//! assert_eq!(client.decompress(&stream)?, data);
//!
//! shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
//! handle.join().unwrap()?;
//! # Ok(())
//! # }
//! ```

pub mod client;
pub mod retry;
pub mod server;
mod stream;
pub mod wire;

pub use client::{Client, ClientError};
pub use retry::{ResilientClient, RetryPolicy};
pub use server::{ServeConfig, Server};
pub use wire::{ErrorCode, Op, RangeRequest, RemoteVerify, WireError};

use std::sync::atomic::AtomicBool;

static SHUTDOWN_SIGNAL: AtomicBool = AtomicBool::new(false);

/// Installs SIGINT *and* SIGTERM handlers that set (and return) one
/// process-wide flag, without any dependency beyond the platform libc
/// that `std` already links. Callers bridge it to
/// [`Server::shutdown_flag`] for graceful shutdown (`fpcc serve` does
/// exactly that), so a supervisor's `kill` drains as cleanly as Ctrl-C.
///
/// On non-Unix targets this is a no-op returning a flag that never fires.
/// Installing twice is harmless.
pub fn shutdown_signal_flag() -> &'static AtomicBool {
    #[cfg(unix)]
    {
        extern "C" fn on_signal(_signum: i32) {
            // Only async-signal-safe work here: one atomic store.
            SHUTDOWN_SIGNAL.store(true, std::sync::atomic::Ordering::SeqCst);
        }
        extern "C" {
            // POSIX signal(2); std links libc on every Unix target.
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT_NUM: i32 = 2;
        const SIGTERM_NUM: i32 = 15;
        unsafe {
            signal(SIGINT_NUM, on_signal);
            signal(SIGTERM_NUM, on_signal);
        }
    }
    &SHUTDOWN_SIGNAL
}

/// Former name of [`shutdown_signal_flag`]; the flag now fires on
/// SIGTERM as well as SIGINT.
#[deprecated(note = "renamed to shutdown_signal_flag (also handles SIGTERM)")]
pub fn sigint_flag() -> &'static AtomicBool {
    shutdown_signal_flag()
}
