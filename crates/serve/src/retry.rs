//! Resilient remote client: bounded retries with jittered exponential
//! backoff, per-request deadlines, and idempotent request ids on top of
//! [`Client`].
//!
//! Every `fpc-wire-v1` operation is a pure function of its operand, so a
//! request can be re-issued — on the same connection or a fresh one —
//! without changing the outcome: an eventually-successful retry returns
//! bytes identical to a first-attempt success. [`ResilientClient`] keeps
//! one *logical* request id per user-level call across all its transport
//! attempts, making retries observable (and de-duplicatable) server-side.
//!
//! # What retries, what doesn't
//!
//! Transient (retried): transport errors ([`ClientError::Io`]), protocol
//! desync ([`ClientError::Protocol`] — the stream is unusable but a fresh
//! connection is clean), and the server's own *try-again* codes
//! ([`ErrorCode::Busy`], [`ErrorCode::Timeout`], [`ErrorCode::Io`]).
//! Everything else — corrupt operand, unknown algorithm/op, over-cap
//! payload — is deterministic: retrying cannot change the answer, so it
//! fails fast.
//!
//! After a `Remote` error the connection is still protocol-clean and is
//! kept; after `Io`/`Protocol` it is dropped and the next attempt
//! re-dials.
//!
//! # Backoff
//!
//! Attempt `k` (0-based) sleeps a uniformly jittered duration in
//! `[base·2ᵏ/2, base·2ᵏ]`, capped by `max_backoff` and by whatever
//! remains of the per-request deadline. Jitter comes from the in-repo
//! PRNG seeded per client, so a seeded harness replays identical retry
//! timing.

use crate::client::{Client, ClientError};
use crate::wire::{ErrorCode, Op, RangeRequest, RemoteVerify, ALGO_NONE};
use fpc_core::Algorithm;
use std::time::{Duration, Instant};

/// Retry/deadline policy for a [`ResilientClient`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per request (first try included); minimum 1.
    pub attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: Duration,
    /// Upper bound on a single backoff sleep.
    pub max_backoff: Duration,
    /// Wall-clock budget per logical request across all attempts and
    /// backoff sleeps; `None` leaves only the socket timeouts in charge.
    pub deadline: Option<Duration>,
    /// Seed for the jitter PRNG (deterministic retry timing per client).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 3,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            deadline: Some(Duration::from_secs(60)),
            seed: 0x0001_0051_1E47,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (single attempt, no deadline).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            attempts: 1,
            deadline: None,
            ..RetryPolicy::default()
        }
    }
}

/// `true` when retrying `err` on a fresh attempt could plausibly succeed.
pub fn is_transient(err: &ClientError) -> bool {
    match err {
        ClientError::Io(_) => true,
        // The reply stream desynced; the request itself may be fine on a
        // clean connection (idempotency makes the re-send safe).
        ClientError::Protocol(_) => true,
        ClientError::Remote(e) => {
            matches!(e.code, ErrorCode::Busy | ErrorCode::Timeout | ErrorCode::Io)
        }
    }
}

/// A [`Client`] wrapper that owns reconnection and retry.
///
/// Mirrors the `Client` surface (compress / decompress / verify / ping);
/// each call is one *logical* request that may span several transport
/// attempts and connections.
pub struct ResilientClient {
    addr: String,
    timeout: Option<Duration>,
    policy: RetryPolicy,
    rng: fpc_prng::Rng,
    next_logical: u64,
    conn: Option<Client>,
}

impl ResilientClient {
    /// Creates a client for `addr`, dialing eagerly so configuration
    /// errors (bad address, server down *and* retries exhausted) surface
    /// immediately. `timeout` applies to connect and to every socket
    /// read/write.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when no connection could be established within
    /// the policy's attempt budget.
    pub fn connect(
        addr: impl Into<String>,
        timeout: Option<Duration>,
        policy: RetryPolicy,
    ) -> Result<ResilientClient, ClientError> {
        let mut client = ResilientClient {
            addr: addr.into(),
            timeout,
            policy,
            rng: fpc_prng::Rng::seed_from_u64(0),
            next_logical: 1,
            conn: None,
        };
        client.rng = fpc_prng::Rng::seed_from_u64(client.policy.seed);
        let started = Instant::now();
        let mut attempt = 0u32;
        loop {
            match Client::connect(&client.addr, client.timeout) {
                Ok(conn) => {
                    client.conn = Some(conn);
                    return Ok(client);
                }
                Err(e) => {
                    attempt += 1;
                    if !client.backoff_or_give_up(attempt, started) {
                        return Err(ClientError::Io(e));
                    }
                }
            }
        }
    }

    /// The configured server address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Compresses `data` remotely with retries; on success the stream is
    /// byte-identical to local compression regardless of how many
    /// attempts it took.
    ///
    /// # Errors
    ///
    /// The final attempt's [`ClientError`] once the budget is exhausted,
    /// or immediately for non-transient failures.
    pub fn compress(&mut self, algo: Algorithm, data: &[u8]) -> Result<Vec<u8>, ClientError> {
        self.run(Op::Compress, algo.id(), data)
    }

    /// Decompresses a container stream remotely with retries.
    ///
    /// # Errors
    ///
    /// As [`ResilientClient::compress`]; a damaged operand fails fast
    /// with `corrupt-stream` (retrying cannot repair data).
    pub fn decompress(&mut self, stream: &[u8]) -> Result<Vec<u8>, ClientError> {
        self.run(Op::Decompress, ALGO_NONE, stream)
    }

    /// Checksum-audits a container stream remotely with retries.
    ///
    /// # Errors
    ///
    /// As [`ResilientClient::compress`].
    pub fn verify(&mut self, stream: &[u8]) -> Result<RemoteVerify, ClientError> {
        let payload = self.run(Op::Verify, ALGO_NONE, stream)?;
        RemoteVerify::decode(&payload).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Decodes a byte range of a container stream remotely with retries.
    ///
    /// # Errors
    ///
    /// As [`ResilientClient::compress`]; an out-of-bounds range fails fast
    /// with `range-out-of-bounds` (retrying cannot grow the data).
    pub fn range(&mut self, stream: &[u8], offset: u64, len: u64) -> Result<Vec<u8>, ClientError> {
        let payload = RangeRequest { offset, len }.encode(stream);
        let body = self.run(Op::Range, ALGO_NONE, &payload)?;
        if body.len() as u64 != len {
            return Err(ClientError::Protocol(format!(
                "range response of {} bytes while awaiting {len}",
                body.len()
            )));
        }
        Ok(body)
    }

    /// Liveness probe with retries; the server echoes `payload`.
    ///
    /// # Errors
    ///
    /// As [`ResilientClient::compress`].
    pub fn ping(&mut self, payload: &[u8]) -> Result<Vec<u8>, ClientError> {
        let echoed = self.run(Op::Ping, ALGO_NONE, payload)?;
        if echoed == payload {
            Ok(echoed)
        } else {
            Err(ClientError::Protocol("ping echo mismatch".into()))
        }
    }

    /// Runs one logical request through the retry loop.
    fn run(&mut self, op: Op, algo: u8, payload: &[u8]) -> Result<Vec<u8>, ClientError> {
        // One logical id across every attempt: the server sees retries of
        // the same request under the same idempotency key.
        let id = self.next_logical;
        self.next_logical += 1;
        let started = Instant::now();
        let mut attempt = 0u32;
        loop {
            let conn = match self.conn.as_mut() {
                Some(conn) => conn,
                None => match Client::connect(&self.addr, self.timeout) {
                    Ok(conn) => {
                        fpc_metrics::incr(fpc_metrics::Counter::RemoteRetryReconnects, 1);
                        self.conn.insert(conn)
                    }
                    Err(e) => {
                        attempt += 1;
                        if self.backoff_or_give_up(attempt, started) {
                            continue;
                        }
                        return Err(ClientError::Io(e));
                    }
                },
            };
            match conn.request_with_id(op, algo, id, payload) {
                Ok(body) => return Ok(body),
                Err(err) => {
                    // After Io/Protocol the stream state is unknown;
                    // only a structured Remote error leaves it clean.
                    if !matches!(err, ClientError::Remote(_)) {
                        self.conn = None;
                    }
                    if !is_transient(&err) {
                        return Err(err);
                    }
                    attempt += 1;
                    if !self.backoff_or_give_up(attempt, started) {
                        return Err(err);
                    }
                }
            }
        }
    }

    /// After `attempt` failures: sleeps the jittered backoff and returns
    /// `true` to continue, or records a giveup and returns `false` when
    /// the attempt budget or deadline is spent.
    fn backoff_or_give_up(&mut self, attempt: u32, started: Instant) -> bool {
        if attempt >= self.policy.attempts.max(1) {
            fpc_metrics::incr(fpc_metrics::Counter::RemoteRetryGiveups, 1);
            return false;
        }
        let remaining = match self.policy.deadline {
            Some(deadline) => match deadline.checked_sub(started.elapsed()) {
                Some(rest) if !rest.is_zero() => Some(rest),
                _ => {
                    fpc_metrics::incr(fpc_metrics::Counter::RemoteRetryGiveups, 1);
                    return false;
                }
            },
            None => None,
        };
        let exp = self
            .policy
            .base_backoff
            .saturating_mul(1u32 << (attempt - 1).min(16))
            .min(self.policy.max_backoff);
        // Full jitter over [exp/2, exp) so synchronized clients desync.
        let nanos = exp.as_nanos().min(u128::from(u64::MAX)) as u64;
        let low = nanos / 2;
        let jittered = Duration::from_nanos(self.rng.gen_range(low..nanos.max(low + 1)));
        let sleep = match remaining {
            // A backoff that consumes the entire remaining budget leaves no
            // time for the retry it precedes: the next attempt would start
            // at (or past) the deadline and only extend the caller's wait by
            // a doomed socket round-trip. Fail fast with the deadline error
            // instead of sleeping the budget away.
            Some(rest) if jittered >= rest => {
                fpc_metrics::incr(fpc_metrics::Counter::RemoteRetryGiveups, 1);
                return false;
            }
            _ => jittered,
        };
        fpc_metrics::incr(fpc_metrics::Counter::RemoteRetryAttempts, 1);
        fpc_metrics::incr(
            fpc_metrics::Counter::RemoteRetryBackoffNanos,
            sleep.as_nanos().min(u128::from(u64::MAX)) as u64,
        );
        std::thread::sleep(sleep);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::WireError;

    #[test]
    fn transience_classification_matches_the_contract() {
        let io = ClientError::Io(std::io::Error::other("x"));
        let proto = ClientError::Protocol("desync".into());
        assert!(is_transient(&io));
        assert!(is_transient(&proto));
        for code in [ErrorCode::Busy, ErrorCode::Timeout, ErrorCode::Io] {
            assert!(
                is_transient(&ClientError::Remote(WireError::new(code, ""))),
                "{} must be transient",
                code.name()
            );
        }
        for code in [
            ErrorCode::BadMagic,
            ErrorCode::UnsupportedVersion,
            ErrorCode::BadFrame,
            ErrorCode::FrameTooLarge,
            ErrorCode::PayloadTooLarge,
            ErrorCode::UnknownAlgorithm,
            ErrorCode::UnknownOp,
            ErrorCode::CorruptStream,
            ErrorCode::RangeOutOfBounds,
        ] {
            assert!(
                !is_transient(&ClientError::Remote(WireError::new(code, ""))),
                "{} must fail fast",
                code.name()
            );
        }
    }

    #[test]
    fn connect_gives_up_within_the_attempt_budget() {
        // A port from the TEST-NET-3 doc range refuses/filters quickly on
        // loopback-only CI hosts; more importantly the policy allows one
        // attempt, so this returns rather than looping.
        let policy = RetryPolicy {
            attempts: 1,
            deadline: Some(Duration::from_millis(500)),
            ..RetryPolicy::default()
        };
        let err = ResilientClient::connect("127.0.0.1:9", Some(Duration::from_millis(200)), policy)
            .err()
            .expect("nothing listens on the discard port");
        assert!(matches!(err, ClientError::Io(_)));
    }

    #[test]
    fn backoff_never_sleeps_past_the_deadline() {
        // The backoff after the first failed attempt would be jittered
        // into [5s, 10s) — far beyond the 300ms deadline. The client must
        // fail fast instead of sleeping the budget away and then running
        // one more doomed attempt: total elapsed stays near the connect
        // timeout, nowhere near base_backoff.
        let policy = RetryPolicy {
            attempts: 5,
            base_backoff: Duration::from_secs(10),
            max_backoff: Duration::from_secs(10),
            deadline: Some(Duration::from_millis(300)),
            ..RetryPolicy::default()
        };
        let started = Instant::now();
        let err = ResilientClient::connect("127.0.0.1:9", Some(Duration::from_millis(100)), policy)
            .err()
            .expect("nothing listens on the discard port");
        let elapsed = started.elapsed();
        assert!(matches!(err, ClientError::Io(_)));
        assert!(
            elapsed < Duration::from_secs(2),
            "deadline-bounded connect took {elapsed:?}; the backoff slept past the budget"
        );
    }
}
