//! `fpc-wire-v1` — the length-prefixed framed protocol spoken by the
//! compression service.
//!
//! Every message on the wire is a sequence of **frames**. A frame is a
//! fixed 24-byte header followed by `len` payload bytes:
//!
//! ```text
//! offset  size  field
//!      0     4  magic       "FPCW"
//!      4     1  version     1
//!      5     1  kind        1=Request 2=Data 3=End 4=Response 5=Error
//!      6     1  op          1=compress 2=decompress 3=verify 4=ping
//!      7     1  algo        container algorithm id, or 0xFF (none)
//!      8     8  request_id  u64 LE, chosen by the client, echoed back
//!     16     4  flags       u32 LE, must be zero in v1
//!     20     4  len         u32 LE, payload bytes following the header
//! ```
//!
//! A request is `Request` (no payload) followed by zero or more `Data`
//! frames carrying the operand bytes and a terminating `End`. The response
//! mirrors it: `Response` + `Data`* + `End`, or a single `Error` frame
//! whose payload is a [`WireError`] (u16 code + UTF-8 message). Chunking
//! the payload into bounded `Data` frames means neither side ever needs a
//! single allocation proportional to one frame larger than
//! [`DEFAULT_MAX_FRAME`], and the server can stop accepting payload bytes
//! the moment a cap is exceeded while still replying with a structured
//! error.

use std::io::{self, Read, Write};

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"FPCW";

/// Protocol version carried in every frame header.
pub const VERSION: u8 = 1;

/// Encoded size of a frame header.
pub const HEADER_LEN: usize = 24;

/// Default cap on one frame's payload length (8 MiB). Frames above the
/// receiver's cap are rejected with [`ErrorCode::FrameTooLarge`].
pub const DEFAULT_MAX_FRAME: u32 = 8 << 20;

/// Payload bytes per `Data` frame that the built-in senders emit (1 MiB).
pub const DATA_CHUNK: usize = 1 << 20;

/// `algo` header byte for operations that take no algorithm.
pub const ALGO_NONE: u8 = 0xFF;

/// Frame kinds (header byte 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Starts a request; payload-free.
    Request = 1,
    /// One chunk of operand or result payload.
    Data = 2,
    /// Terminates the payload of a request or response.
    End = 3,
    /// Starts a successful response; payload-free.
    Response = 4,
    /// Terminal structured error ([`WireError`] payload).
    Error = 5,
}

impl FrameKind {
    /// Decodes the header byte.
    pub fn from_u8(v: u8) -> Option<FrameKind> {
        match v {
            1 => Some(FrameKind::Request),
            2 => Some(FrameKind::Data),
            3 => Some(FrameKind::End),
            4 => Some(FrameKind::Response),
            5 => Some(FrameKind::Error),
            _ => None,
        }
    }
}

/// Service operations (header byte 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Compress the request payload with the algorithm in `algo`.
    Compress = 1,
    /// Decompress an FPcompress container stream.
    Decompress = 2,
    /// Checksum-audit a container stream without decompressing it.
    Verify = 3,
    /// Liveness probe; echoes the request payload.
    Ping = 4,
    /// Decode a byte range of a container stream without decoding the
    /// whole container (payload: [`RangeRequest`] prefix + stream).
    Range = 5,
}

impl Op {
    /// Decodes the header byte.
    pub fn from_u8(v: u8) -> Option<Op> {
        match v {
            1 => Some(Op::Compress),
            2 => Some(Op::Decompress),
            3 => Some(Op::Verify),
            4 => Some(Op::Ping),
            5 => Some(Op::Range),
            _ => None,
        }
    }

    /// Wire name, as used by `fpcc remote <op>`.
    pub fn name(self) -> &'static str {
        match self {
            Op::Compress => "compress",
            Op::Decompress => "decompress",
            Op::Verify => "verify",
            Op::Ping => "ping",
            Op::Range => "range",
        }
    }
}

/// A decoded frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Frame kind.
    pub kind: FrameKind,
    /// Raw operation byte (validated by the dispatcher, not the framing).
    pub op: u8,
    /// Raw algorithm id byte ([`ALGO_NONE`] when absent).
    pub algo: u8,
    /// Client-chosen request identifier, echoed in responses and errors.
    pub request_id: u64,
    /// Must be zero in v1.
    pub flags: u32,
    /// Payload bytes following this header.
    pub len: u32,
}

impl FrameHeader {
    /// Builds a header with zero flags.
    pub fn new(kind: FrameKind, op: u8, algo: u8, request_id: u64, len: u32) -> FrameHeader {
        FrameHeader {
            kind,
            op,
            algo,
            request_id,
            flags: 0,
            len,
        }
    }

    /// Serializes to the 24-byte wire form.
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let mut buf = [0u8; HEADER_LEN];
        buf[..4].copy_from_slice(&MAGIC);
        buf[4] = VERSION;
        buf[5] = self.kind as u8;
        buf[6] = self.op;
        buf[7] = self.algo;
        buf[8..16].copy_from_slice(&self.request_id.to_le_bytes());
        buf[16..20].copy_from_slice(&self.flags.to_le_bytes());
        buf[20..24].copy_from_slice(&self.len.to_le_bytes());
        buf
    }

    /// Parses and validates a header.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::BadMagic`], [`ErrorCode::UnsupportedVersion`], or
    /// [`ErrorCode::BadFrame`] (unknown kind, nonzero flags).
    pub fn decode(buf: &[u8; HEADER_LEN]) -> Result<FrameHeader, WireError> {
        if buf[..4] != MAGIC {
            return Err(WireError::new(ErrorCode::BadMagic, "bad frame magic"));
        }
        if buf[4] != VERSION {
            return Err(WireError::new(
                ErrorCode::UnsupportedVersion,
                format!("unsupported wire version {}", buf[4]),
            ));
        }
        let kind = FrameKind::from_u8(buf[5]).ok_or_else(|| {
            WireError::new(ErrorCode::BadFrame, format!("unknown kind {}", buf[5]))
        })?;
        let request_id = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
        let flags = u32::from_le_bytes(buf[16..20].try_into().expect("4 bytes"));
        let len = u32::from_le_bytes(buf[20..24].try_into().expect("4 bytes"));
        if flags != 0 {
            return Err(WireError::new(
                ErrorCode::BadFrame,
                format!("nonzero reserved flags {flags:#x}"),
            ));
        }
        Ok(FrameHeader {
            kind,
            op: buf[6],
            algo: buf[7],
            request_id,
            flags,
            len,
        })
    }
}

/// Structured error codes carried by `Error` frames.
///
/// Codes are part of the `fpc-wire-v1` contract: existing values never
/// change meaning; new codes may be appended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Frame did not start with `FPCW`.
    BadMagic = 1,
    /// Frame version is not 1.
    UnsupportedVersion = 2,
    /// Structurally invalid frame (unknown kind, nonzero flags, unexpected
    /// kind for the protocol state).
    BadFrame = 3,
    /// One frame's `len` exceeds the receiver's per-frame cap.
    FrameTooLarge = 4,
    /// The accumulated request payload exceeds the server's per-request cap.
    PayloadTooLarge = 5,
    /// The `algo` byte names no known algorithm.
    UnknownAlgorithm = 6,
    /// The `op` byte names no known operation.
    UnknownOp = 7,
    /// The operand failed container parsing/decompression (damaged or
    /// hostile stream); maps to `fpcc` exit code 4.
    CorruptStream = 8,
    /// The server is saturated (connection queue or inflight-bytes cap);
    /// retry later.
    Busy = 9,
    /// The peer idled past a read/write timeout.
    Timeout = 10,
    /// Other transport-level failure.
    Io = 11,
    /// A range request's `offset + len` overflows or exceeds the stream's
    /// original data length; deterministic, so never retried.
    RangeOutOfBounds = 12,
}

impl ErrorCode {
    /// Decodes a wire code (unknown values map to [`ErrorCode::Io`]).
    pub fn from_u16(v: u16) -> ErrorCode {
        match v {
            1 => ErrorCode::BadMagic,
            2 => ErrorCode::UnsupportedVersion,
            3 => ErrorCode::BadFrame,
            4 => ErrorCode::FrameTooLarge,
            5 => ErrorCode::PayloadTooLarge,
            6 => ErrorCode::UnknownAlgorithm,
            7 => ErrorCode::UnknownOp,
            8 => ErrorCode::CorruptStream,
            9 => ErrorCode::Busy,
            10 => ErrorCode::Timeout,
            12 => ErrorCode::RangeOutOfBounds,
            _ => ErrorCode::Io,
        }
    }

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::BadMagic => "bad-magic",
            ErrorCode::UnsupportedVersion => "unsupported-version",
            ErrorCode::BadFrame => "bad-frame",
            ErrorCode::FrameTooLarge => "frame-too-large",
            ErrorCode::PayloadTooLarge => "payload-too-large",
            ErrorCode::UnknownAlgorithm => "unknown-algorithm",
            ErrorCode::UnknownOp => "unknown-op",
            ErrorCode::CorruptStream => "corrupt-stream",
            ErrorCode::Busy => "busy",
            ErrorCode::Timeout => "timeout",
            ErrorCode::Io => "io",
            ErrorCode::RangeOutOfBounds => "range-out-of-bounds",
        }
    }
}

/// A structured protocol error: the payload of an `Error` frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Machine-readable classification.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// Builds an error.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> WireError {
        WireError {
            code,
            message: message.into(),
        }
    }

    /// Serializes to the `Error`-frame payload (u16 LE code + message).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 + self.message.len());
        out.extend_from_slice(&(self.code as u16).to_le_bytes());
        out.extend_from_slice(self.message.as_bytes());
        out
    }

    /// Parses an `Error`-frame payload; tolerates non-UTF-8 detail bytes.
    pub fn decode(payload: &[u8]) -> WireError {
        if payload.len() < 2 {
            return WireError::new(ErrorCode::Io, "empty error frame");
        }
        let code = ErrorCode::from_u16(u16::from_le_bytes([payload[0], payload[1]]));
        let message = String::from_utf8_lossy(&payload[2..]).into_owned();
        WireError { code, message }
    }
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}: {}", self.code.name(), self.message)
    }
}

impl std::error::Error for WireError {}

/// Why a frame could not be received.
#[derive(Debug)]
pub enum RecvError {
    /// The peer closed the connection cleanly (no header byte read).
    Closed,
    /// Transport failure mid-frame (includes timeouts and truncation).
    Io(io::Error),
    /// The bytes received do not form a valid frame.
    Wire(WireError),
}

impl RecvError {
    /// `true` for a read that failed because the peer idled past the
    /// socket timeout.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            RecvError::Io(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
        )
    }
}

impl core::fmt::Display for RecvError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RecvError::Closed => write!(f, "connection closed"),
            RecvError::Io(e) => write!(f, "transport error: {e}"),
            RecvError::Wire(e) => write!(f, "protocol error: {e}"),
        }
    }
}

/// Writes one frame (header + payload).
///
/// # Errors
///
/// Propagates transport failures from the writer.
pub fn write_frame(w: &mut impl Write, header: &FrameHeader, payload: &[u8]) -> io::Result<()> {
    debug_assert_eq!(header.len as usize, payload.len());
    w.write_all(&header.encode())?;
    w.write_all(payload)
}

/// Reads one frame, enforcing `max_frame` on the payload length.
///
/// Distinguishes a clean close (EOF before the first header byte →
/// [`RecvError::Closed`]) from truncation mid-frame ([`RecvError::Io`]).
///
/// # Errors
///
/// [`RecvError`] as described above; an oversized `len` yields
/// [`ErrorCode::FrameTooLarge`] without reading the payload.
pub fn read_frame(r: &mut impl Read, max_frame: u32) -> Result<(FrameHeader, Vec<u8>), RecvError> {
    let mut buf = [0u8; HEADER_LEN];
    // First byte separately: EOF here is a clean close, not truncation.
    loop {
        match r.read(&mut buf[..1]) {
            Ok(0) => return Err(RecvError::Closed),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(RecvError::Io(e)),
        }
    }
    r.read_exact(&mut buf[1..]).map_err(RecvError::Io)?;
    let header = FrameHeader::decode(&buf).map_err(RecvError::Wire)?;
    if header.len > max_frame {
        return Err(RecvError::Wire(WireError::new(
            ErrorCode::FrameTooLarge,
            format!("frame of {} bytes exceeds cap of {max_frame}", header.len),
        )));
    }
    let mut payload = vec![0u8; header.len as usize];
    r.read_exact(&mut payload).map_err(RecvError::Io)?;
    Ok((header, payload))
}

/// Sends `Request`/`Response` + chunked `Data`* + `End` in one call.
fn send_message(
    w: &mut impl Write,
    kind: FrameKind,
    op: u8,
    algo: u8,
    request_id: u64,
    payload: &[u8],
) -> io::Result<()> {
    write_frame(w, &FrameHeader::new(kind, op, algo, request_id, 0), &[])?;
    for chunk in payload.chunks(DATA_CHUNK) {
        let header = FrameHeader::new(FrameKind::Data, op, algo, request_id, chunk.len() as u32);
        write_frame(w, &header, chunk)?;
    }
    write_frame(
        w,
        &FrameHeader::new(FrameKind::End, op, algo, request_id, 0),
        &[],
    )?;
    w.flush()
}

/// Sends a complete request (header, chunked payload, end).
///
/// # Errors
///
/// Propagates transport failures.
pub fn send_request(
    w: &mut impl Write,
    op: Op,
    algo: u8,
    request_id: u64,
    payload: &[u8],
) -> io::Result<()> {
    send_message(w, FrameKind::Request, op as u8, algo, request_id, payload)
}

/// Starts an incremental response: the `Response` frame alone. The caller
/// follows with [`send_data`] frames and a terminating [`end_message`] —
/// or a [`send_error`] frame, which a receiver must accept in place of
/// `End` as a terminal mid-stream failure.
///
/// # Errors
///
/// Propagates transport failures.
pub fn begin_response(w: &mut impl Write, op: u8, request_id: u64) -> io::Result<()> {
    write_frame(
        w,
        &FrameHeader::new(FrameKind::Response, op, ALGO_NONE, request_id, 0),
        &[],
    )
}

/// Sends one `Data` frame of an incremental message. The caller bounds
/// `chunk` by the peer's frame cap ([`DATA_CHUNK`] is always safe).
///
/// # Errors
///
/// Propagates transport failures.
pub fn send_data(w: &mut impl Write, op: u8, request_id: u64, chunk: &[u8]) -> io::Result<()> {
    let header = FrameHeader::new(
        FrameKind::Data,
        op,
        ALGO_NONE,
        request_id,
        chunk.len() as u32,
    );
    write_frame(w, &header, chunk)
}

/// Terminates an incremental message with its `End` frame and flushes.
///
/// # Errors
///
/// Propagates transport failures.
pub fn end_message(w: &mut impl Write, op: u8, request_id: u64) -> io::Result<()> {
    write_frame(
        w,
        &FrameHeader::new(FrameKind::End, op, ALGO_NONE, request_id, 0),
        &[],
    )?;
    w.flush()
}

/// Sends a complete successful response (header, chunked payload, end).
///
/// # Errors
///
/// Propagates transport failures.
pub fn send_response(
    w: &mut impl Write,
    op: u8,
    request_id: u64,
    payload: &[u8],
) -> io::Result<()> {
    send_message(w, FrameKind::Response, op, ALGO_NONE, request_id, payload)
}

/// Sends a terminal `Error` frame for `request_id`.
///
/// # Errors
///
/// Propagates transport failures.
pub fn send_error(w: &mut impl Write, request_id: u64, err: &WireError) -> io::Result<()> {
    let payload = err.encode();
    let header = FrameHeader::new(
        FrameKind::Error,
        0,
        ALGO_NONE,
        request_id,
        payload.len() as u32,
    );
    write_frame(w, &header, &payload)?;
    w.flush()
}

/// The result of a remote `verify`: the `Response` payload of [`Op::Verify`].
///
/// Wire form: `format_version u8, checksummed u8, chunks u32 LE,
/// damaged_count u32 LE`, then `damaged_count` entries of
/// `chunk u32 LE, offset u64 LE` (the serializer caps the entry list at
/// [`RemoteVerify::MAX_DAMAGE_ENTRIES`]; `damaged_count` still reports the
/// true total).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteVerify {
    /// Container format version of the audited stream.
    pub format_version: u8,
    /// `false` for v1 streams, which carry no checksums to audit.
    pub checksummed: bool,
    /// Total chunks in the stream.
    pub chunks: u32,
    /// Damaged chunks detected (the total, even when entries are capped).
    pub damaged_count: u32,
    /// Up to [`RemoteVerify::MAX_DAMAGE_ENTRIES`] damaged `(chunk, offset)`
    /// locations.
    pub damaged: Vec<(u32, u64)>,
}

impl RemoteVerify {
    /// Cap on serialized damage entries; bounds the response size for a
    /// stream where every chunk is damaged.
    pub const MAX_DAMAGE_ENTRIES: usize = 64;

    /// `true` when the audit found no damage (and could actually audit).
    pub fn is_clean(&self) -> bool {
        self.checksummed && self.damaged_count == 0
    }

    /// Serializes to the response payload.
    pub fn encode(&self) -> Vec<u8> {
        let entries = self.damaged.len().min(Self::MAX_DAMAGE_ENTRIES);
        let mut out = Vec::with_capacity(10 + entries * 12);
        out.push(self.format_version);
        out.push(u8::from(self.checksummed));
        out.extend_from_slice(&self.chunks.to_le_bytes());
        out.extend_from_slice(&self.damaged_count.to_le_bytes());
        for &(chunk, offset) in self.damaged.iter().take(entries) {
            out.extend_from_slice(&chunk.to_le_bytes());
            out.extend_from_slice(&offset.to_le_bytes());
        }
        out
    }

    /// Parses a response payload.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] with [`ErrorCode::BadFrame`] when the
    /// payload is shorter than its own entry count implies.
    pub fn decode(payload: &[u8]) -> Result<RemoteVerify, WireError> {
        let short = || WireError::new(ErrorCode::BadFrame, "short verify payload");
        if payload.len() < 10 {
            return Err(short());
        }
        let chunks = u32::from_le_bytes(payload[2..6].try_into().expect("4 bytes"));
        let damaged_count = u32::from_le_bytes(payload[6..10].try_into().expect("4 bytes"));
        let entries = (damaged_count as usize).min(Self::MAX_DAMAGE_ENTRIES);
        let mut damaged = Vec::with_capacity(entries);
        let mut pos = 10usize;
        for _ in 0..entries {
            let end = pos.checked_add(12).filter(|&e| e <= payload.len());
            let Some(end) = end else {
                return Err(short());
            };
            let chunk = u32::from_le_bytes(payload[pos..pos + 4].try_into().expect("4 bytes"));
            let offset = u64::from_le_bytes(payload[pos + 4..end].try_into().expect("8 bytes"));
            damaged.push((chunk, offset));
            pos = end;
        }
        Ok(RemoteVerify {
            format_version: payload[0],
            checksummed: payload[1] != 0,
            chunks,
            damaged_count,
            damaged,
        })
    }
}

/// The operand prefix of an [`Op::Range`] request.
///
/// Wire form: `offset u64 LE, len u64 LE`, followed immediately by the
/// container stream bytes. The response payload is the decoded range —
/// exactly `len` bytes on success.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeRequest {
    /// Byte offset into the original (decompressed) data.
    pub offset: u64,
    /// Number of original-data bytes requested.
    pub len: u64,
}

impl RangeRequest {
    /// Encoded prefix size in bytes.
    pub const PREFIX_LEN: usize = 16;

    /// Serializes the request payload: prefix + container stream.
    pub fn encode(&self, stream: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::PREFIX_LEN + stream.len());
        out.extend_from_slice(&self.offset.to_le_bytes());
        out.extend_from_slice(&self.len.to_le_bytes());
        out.extend_from_slice(stream);
        out
    }

    /// Splits a request payload into the range prefix and the stream.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] with [`ErrorCode::BadFrame`] when the
    /// payload is shorter than the fixed prefix.
    pub fn decode(payload: &[u8]) -> Result<(RangeRequest, &[u8]), WireError> {
        if payload.len() < Self::PREFIX_LEN {
            return Err(WireError::new(ErrorCode::BadFrame, "short range payload"));
        }
        let offset = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
        let len = u64::from_le_bytes(payload[8..16].try_into().expect("8 bytes"));
        Ok((RangeRequest { offset, len }, &payload[Self::PREFIX_LEN..]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = FrameHeader::new(FrameKind::Request, Op::Compress as u8, 2, 0xDEAD_BEEF, 77);
        let back = FrameHeader::decode(&h.encode()).unwrap();
        assert_eq!(h, back);
    }

    #[test]
    fn header_rejects_bad_magic_version_kind_flags() {
        let good = FrameHeader::new(FrameKind::Data, 0, ALGO_NONE, 1, 0).encode();
        let mut bad = good;
        bad[0] = b'X';
        assert_eq!(
            FrameHeader::decode(&bad).unwrap_err().code,
            ErrorCode::BadMagic
        );
        let mut bad = good;
        bad[4] = 9;
        assert_eq!(
            FrameHeader::decode(&bad).unwrap_err().code,
            ErrorCode::UnsupportedVersion
        );
        let mut bad = good;
        bad[5] = 200;
        assert_eq!(
            FrameHeader::decode(&bad).unwrap_err().code,
            ErrorCode::BadFrame
        );
        let mut bad = good;
        bad[17] = 1; // reserved flags
        assert_eq!(
            FrameHeader::decode(&bad).unwrap_err().code,
            ErrorCode::BadFrame
        );
    }

    #[test]
    fn frame_io_roundtrip_and_caps() {
        let mut wire = Vec::new();
        let header = FrameHeader::new(FrameKind::Data, 0, ALGO_NONE, 5, 4);
        write_frame(&mut wire, &header, b"abcd").unwrap();
        let (h, p) = read_frame(&mut wire.as_slice(), 1024).unwrap();
        assert_eq!(h, header);
        assert_eq!(p, b"abcd");
        // Same frame with a 3-byte cap: FrameTooLarge before any payload read.
        match read_frame(&mut wire.as_slice(), 3) {
            Err(RecvError::Wire(e)) => assert_eq!(e.code, ErrorCode::FrameTooLarge),
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn clean_close_vs_truncation() {
        // Zero bytes: clean close.
        match read_frame(&mut (&[] as &[u8]), 1024) {
            Err(RecvError::Closed) => {}
            other => panic!("expected Closed, got {other:?}"),
        }
        // A few header bytes then EOF: truncation.
        match read_frame(&mut (&MAGIC[..3]), 1024) {
            Err(RecvError::Io(_)) => {}
            other => panic!("expected Io, got {other:?}"),
        }
    }

    #[test]
    fn wire_error_roundtrip() {
        let e = WireError::new(ErrorCode::CorruptStream, "chunk 3 checksum mismatch");
        assert_eq!(WireError::decode(&e.encode()), e);
        // Unknown code maps to Io rather than failing.
        let mut raw = e.encode();
        raw[0] = 0xEE;
        raw[1] = 0xEE;
        assert_eq!(WireError::decode(&raw).code, ErrorCode::Io);
    }

    #[test]
    fn message_framing_chunks_payload() {
        let payload: Vec<u8> = (0..(DATA_CHUNK + 17)).map(|i| i as u8).collect();
        let mut wire = Vec::new();
        send_request(&mut wire, Op::Compress, 1, 42, &payload).unwrap();
        let mut r = wire.as_slice();
        let (h, _) = read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(h.kind, FrameKind::Request);
        assert_eq!(h.request_id, 42);
        let mut got = Vec::new();
        loop {
            let (h, p) = read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap();
            match h.kind {
                FrameKind::Data => got.extend_from_slice(&p),
                FrameKind::End => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(got, payload);
    }

    #[test]
    fn remote_verify_roundtrip_and_cap() {
        let v = RemoteVerify {
            format_version: 2,
            checksummed: true,
            chunks: 100,
            damaged_count: 2,
            damaged: vec![(3, 4096), (9, 65536)],
        };
        assert_eq!(RemoteVerify::decode(&v.encode()).unwrap(), v);
        // 200 damaged chunks: entries cap at MAX_DAMAGE_ENTRIES but the
        // count survives.
        let big = RemoteVerify {
            format_version: 2,
            checksummed: true,
            chunks: 200,
            damaged_count: 200,
            damaged: (0..200).map(|i| (i, u64::from(i) * 8)).collect(),
        };
        let back = RemoteVerify::decode(&big.encode()).unwrap();
        assert_eq!(back.damaged_count, 200);
        assert_eq!(back.damaged.len(), RemoteVerify::MAX_DAMAGE_ENTRIES);
        assert!(!back.is_clean());
        // Truncated payloads error instead of panicking.
        assert!(RemoteVerify::decode(&big.encode()[..15]).is_err());
        assert!(RemoteVerify::decode(&[1]).is_err());
    }

    #[test]
    fn range_request_roundtrip_and_short_payloads() {
        let req = RangeRequest {
            offset: 12_345,
            len: 678,
        };
        let payload = req.encode(b"stream bytes");
        let (back, stream) = RangeRequest::decode(&payload).unwrap();
        assert_eq!(back, req);
        assert_eq!(stream, b"stream bytes");
        // An empty stream after the prefix is structurally fine (the
        // dispatcher rejects it as a corrupt container instead).
        let bare = req.encode(&[]);
        let (_, stream) = RangeRequest::decode(&bare).unwrap();
        assert!(stream.is_empty());
        // Anything shorter than the prefix is a bad frame.
        for cut in [0usize, 1, 15] {
            assert_eq!(
                RangeRequest::decode(&payload[..cut]).unwrap_err().code,
                ErrorCode::BadFrame
            );
        }
    }

    #[test]
    fn range_op_and_error_code_roundtrip() {
        assert_eq!(Op::from_u8(Op::Range as u8), Some(Op::Range));
        assert_eq!(Op::Range.name(), "range");
        assert_eq!(
            ErrorCode::from_u16(ErrorCode::RangeOutOfBounds as u16),
            ErrorCode::RangeOutOfBounds
        );
        assert_eq!(ErrorCode::RangeOutOfBounds.name(), "range-out-of-bounds");
    }
}
