//! Blocking client for the `fpc-wire-v1` service: `fpcc remote` and the
//! bench loadgen drive the server through this type.

use crate::wire::{
    read_frame, send_request, FrameKind, Op, RangeRequest, RecvError, RemoteVerify, WireError,
    ALGO_NONE, DATA_CHUNK, DEFAULT_MAX_FRAME,
};
use fpc_core::Algorithm;
use fpc_faults::io::FaultStream;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a remote operation failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, send, or receive).
    Io(io::Error),
    /// The server's bytes violated the protocol.
    Protocol(String),
    /// The server replied with a structured error frame.
    Remote(WireError),
}

impl core::fmt::Display for ClientError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Remote(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<RecvError> for ClientError {
    fn from(e: RecvError) -> ClientError {
        match e {
            RecvError::Closed => ClientError::Protocol("server closed the connection".into()),
            RecvError::Io(e) => ClientError::Io(e),
            RecvError::Wire(e) => ClientError::Protocol(e.to_string()),
        }
    }
}

/// One connection to an `fpc-serve` instance; requests are issued
/// sequentially and the connection is reused across them.
///
/// Both directions run through [`FaultStream`], so an armed fault plan
/// exercises the client's transport the same way it exercises the
/// server's — in default builds the wrappers are transparent.
pub struct Client {
    reader: BufReader<FaultStream<TcpStream>>,
    writer: FaultStream<TcpStream>,
    next_id: u64,
    max_frame: u32,
}

impl Client {
    /// Connects with the given socket timeouts applied to every read and
    /// write on the connection. When a timeout is given it also bounds
    /// the connect itself.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs, timeout: Option<Duration>) -> io::Result<Client> {
        let stream = match timeout {
            Some(limit) => {
                // connect_timeout needs concrete addrs; try each in turn.
                let mut last = None;
                let mut stream = None;
                for resolved in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&resolved, limit) {
                        Ok(s) => {
                            stream = Some(s);
                            break;
                        }
                        Err(e) => last = Some(e),
                    }
                }
                stream.ok_or_else(|| {
                    last.unwrap_or_else(|| {
                        io::Error::new(io::ErrorKind::InvalidInput, "no addresses resolved")
                    })
                })?
            }
            None => TcpStream::connect(addr)?,
        };
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)?;
        stream.set_nodelay(true).ok();
        let writer = FaultStream::new(stream.try_clone()?);
        Ok(Client {
            reader: BufReader::new(FaultStream::new(stream)),
            writer,
            next_id: 1,
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// The server's address.
    ///
    /// # Errors
    ///
    /// Propagates `getpeername` failures.
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.reader.get_ref().get_ref().peer_addr()
    }

    /// Compresses `data` remotely; the stream is byte-identical to a local
    /// `Compressor::new(algo).compress_bytes(data)` (the container output
    /// is deterministic regardless of server thread count).
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport, protocol, or server-side failure.
    pub fn compress(&mut self, algo: Algorithm, data: &[u8]) -> Result<Vec<u8>, ClientError> {
        self.request(Op::Compress, algo.id(), data)
    }

    /// Decompresses an FPcompress container stream remotely.
    ///
    /// # Errors
    ///
    /// [`ClientError::Remote`] with `corrupt-stream` for a damaged operand.
    pub fn decompress(&mut self, stream: &[u8]) -> Result<Vec<u8>, ClientError> {
        self.request(Op::Decompress, ALGO_NONE, stream)
    }

    /// Checksum-audits a container stream remotely (no decompression).
    ///
    /// # Errors
    ///
    /// [`ClientError`] on failure; unusable framing in the operand surfaces
    /// as [`ClientError::Remote`] with `corrupt-stream`.
    pub fn verify(&mut self, stream: &[u8]) -> Result<RemoteVerify, ClientError> {
        let payload = self.request(Op::Verify, ALGO_NONE, stream)?;
        RemoteVerify::decode(&payload).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Decodes `len` bytes starting at `offset` of `stream`'s original
    /// data remotely, without the server decoding the whole container.
    ///
    /// # Errors
    ///
    /// [`ClientError::Remote`] with `range-out-of-bounds` when the range
    /// exceeds the original data, `corrupt-stream` for a damaged operand.
    pub fn range(&mut self, stream: &[u8], offset: u64, len: u64) -> Result<Vec<u8>, ClientError> {
        let payload = RangeRequest { offset, len }.encode(stream);
        let body = self.request(Op::Range, ALGO_NONE, &payload)?;
        if body.len() as u64 != len {
            return Err(ClientError::Protocol(format!(
                "range response of {} bytes while awaiting {len}",
                body.len()
            )));
        }
        Ok(body)
    }

    /// Liveness probe; the server echoes `payload`.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or protocol failure.
    pub fn ping(&mut self, payload: &[u8]) -> Result<Vec<u8>, ClientError> {
        let echoed = self.request(Op::Ping, ALGO_NONE, payload)?;
        if echoed == payload {
            Ok(echoed)
        } else {
            Err(ClientError::Protocol("ping echo mismatch".into()))
        }
    }

    /// Sends one request and reads the complete reply.
    fn request(&mut self, op: Op, algo: u8, payload: &[u8]) -> Result<Vec<u8>, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        self.request_with_id(op, algo, id, payload)
    }

    /// Payload size above which the request is written from a scoped
    /// helper thread while this thread reads the reply. The server
    /// streams decompress responses while the request is still arriving;
    /// a client that finishes its whole send before reading could
    /// deadlock with it once both socket buffers fill. Small payloads
    /// fit in the socket buffers and need no concurrency.
    const CONCURRENT_SEND_BYTES: usize = DATA_CHUNK;

    /// Sends one request under a caller-chosen request id and reads the
    /// complete reply. All four ops are pure functions of their operand,
    /// so the id doubles as an idempotency key: re-issuing the same
    /// `(op, algo, id, payload)` — on this connection or a fresh one —
    /// yields a byte-identical response. [`retry::ResilientClient`]
    /// (see [`crate::retry`]) builds on exactly this.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport, protocol, or server-side failure.
    pub fn request_with_id(
        &mut self,
        op: Op,
        algo: u8,
        id: u64,
        payload: &[u8],
    ) -> Result<Vec<u8>, ClientError> {
        if payload.len() <= Self::CONCURRENT_SEND_BYTES {
            send_request(&mut self.writer, op, algo, id, payload)?;
            return recv_reply(&mut self.reader, self.max_frame, id);
        }
        let Client {
            reader,
            writer,
            max_frame,
            ..
        } = self;
        let max_frame = *max_frame;
        std::thread::scope(|scope| {
            let sender = scope.spawn(move || send_request(writer, op, algo, id, payload));
            let reply = recv_reply(reader, max_frame, id);
            let sent = sender
                .join()
                .unwrap_or_else(|_| Err(io::Error::other("send thread panicked")));
            match (reply, sent) {
                (Ok(body), Ok(())) => Ok(body),
                // A terminal error frame can arrive while the send side is
                // failing (server stopped reading); the structured reply
                // explains more than the broken pipe does.
                (Err(e), _) => Err(e),
                (Ok(_), Err(e)) => Err(ClientError::Io(e)),
            }
        })
    }
}

/// Reads a complete reply: `Response` + `Data`* + `End`, or a terminal
/// `Error` frame.
fn recv_reply(
    reader: &mut BufReader<FaultStream<TcpStream>>,
    max_frame: u32,
    id: u64,
) -> Result<Vec<u8>, ClientError> {
    let (header, body) = read_frame(reader, max_frame)?;
    match header.kind {
        FrameKind::Error => Err(ClientError::Remote(WireError::decode(&body))),
        FrameKind::Response => {
            if header.request_id != id {
                return Err(ClientError::Protocol(format!(
                    "response for request {} while awaiting {id}",
                    header.request_id
                )));
            }
            recv_body(reader, max_frame)
        }
        other => Err(ClientError::Protocol(format!(
            "expected response/error, got kind {}",
            other as u8
        ))),
    }
}

/// Accumulates `Data`* + `End` after a `Response` header. An `Error`
/// frame in place of `End` is how a streaming server reports a failure
/// discovered after response data already went out; it is terminal.
fn recv_body(
    reader: &mut BufReader<FaultStream<TcpStream>>,
    max_frame: u32,
) -> Result<Vec<u8>, ClientError> {
    let mut out = Vec::new();
    loop {
        let (header, chunk) = read_frame(reader, max_frame)?;
        match header.kind {
            FrameKind::Data => out.extend_from_slice(&chunk),
            FrameKind::End => return Ok(out),
            FrameKind::Error => return Err(ClientError::Remote(WireError::decode(&chunk))),
            other => {
                return Err(ClientError::Protocol(format!(
                    "expected data/end, got kind {}",
                    other as u8
                )))
            }
        }
    }
}
