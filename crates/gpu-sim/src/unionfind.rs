//! Parallel union-find decode of the FCM distance chains.
//!
//! The paper's FCM decoder resolves each position's backward-distance chain
//! in parallel: every thread follows distances until it reaches a resolved
//! value, writes its output, and then *zeroes its own distance* behind a
//! memory fence so other threads' chains shorten — "a parallel
//! implementation of the 'find' operation in union-find" (§3.2).

use std::sync::atomic::{AtomicU64, Ordering};

/// Resolves FCM (value, distance) arrays into the original values using the
/// parallel chain-shortening algorithm.
///
/// # Errors
///
/// Returns `Err(position)` of the first malformed distance (pointing at or
/// before the start of the array).
pub fn decode(values: &[u64], distances: &[u64], threads: usize) -> Result<Vec<u64>, usize> {
    let n = values.len();
    assert_eq!(distances.len(), n, "value/distance arrays must match");
    // Validate distances up front (a cyclic or out-of-range chain would
    // otherwise livelock the spin loops below).
    for (i, &d) in distances.iter().enumerate() {
        if d > i as u64 {
            return Err(i);
        }
    }
    let t = fpc_metrics::timer(fpc_metrics::Stage::GpuUnionFind);
    let out: Vec<AtomicU64> = values.iter().map(|&v| AtomicU64::new(v)).collect();
    // Live distance array; a zero marks a resolved position.
    let dist: Vec<AtomicU64> = distances.iter().map(|&d| AtomicU64::new(d)).collect();

    // Runs on the shared executor pool. The chain walk never blocks on
    // another worker — every hop lands on a validated lower index whose
    // distance is immutable-or-zeroing — so any claiming order is safe.
    fpc_pool::for_each_index(n, threads, |i| {
        let d0 = dist[i].load(Ordering::Acquire);
        if d0 == 0 {
            return; // direct value, already in `out`
        }
        // Follow the chain; other threads keep shortening it.
        let mut j = i - d0 as usize;
        loop {
            let dj = dist[j].load(Ordering::Acquire);
            if dj == 0 {
                break;
            }
            j -= dj as usize;
        }
        let v = out[j].load(Ordering::Acquire);
        out[i].store(v, Ordering::Release);
        // Publish: value at i is now readable; chains through i may
        // stop here (the paper's memory fence + distance update).
        dist[i].store(0, Ordering::Release);
    });

    let out: Vec<u64> = out.into_iter().map(AtomicU64::into_inner).collect();
    t.finish(n as u64 * 8);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpc_transforms::fcm;

    #[test]
    fn empty() {
        assert_eq!(decode(&[], &[], 4).unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn no_matches_is_identity() {
        let values = vec![10u64, 20, 30];
        let distances = vec![0u64, 0, 0];
        assert_eq!(decode(&values, &distances, 2).unwrap(), values);
    }

    #[test]
    fn long_chain_resolves() {
        // Every element points one back: all resolve to the first value.
        let n = 10_000;
        let mut values = vec![0u64; n];
        values[0] = 777;
        let distances: Vec<u64> = (0..n).map(|i| u64::from(i > 0)).collect();
        let out = decode(&values, &distances, 8).unwrap();
        assert!(out.iter().all(|&v| v == 777));
    }

    #[test]
    fn invalid_distance_rejected() {
        let values = vec![0u64, 0];
        let distances = vec![0u64, 2]; // points before start
        assert_eq!(decode(&values, &distances, 2), Err(1));
    }

    #[test]
    fn matches_sequential_fcm_decode() {
        // Cross-check against the scalar decoder on realistic FCM output.
        let period: Vec<u64> = (0..32u64).map(|i| (i as f64).to_bits()).collect();
        let data: Vec<u64> = period.iter().cycle().take(20_000).copied().collect();
        let enc = fcm::encode(&data);
        let scalar = fcm::decode(&enc).unwrap();
        for threads in [1usize, 4, 16] {
            let parallel = decode(&enc.values, &enc.distances, threads).unwrap();
            assert_eq!(parallel, scalar, "threads = {threads}");
        }
    }

    #[test]
    fn repeated_runs_are_deterministic() {
        let values: Vec<u64> = (0..500).map(|i| (i % 7) as u64).collect();
        let enc = fcm::encode(&values);
        let expected = fcm::decode(&enc).unwrap();
        for _ in 0..10 {
            assert_eq!(decode(&enc.values, &enc.distances, 16).unwrap(), expected);
        }
    }
}
