//! Warp-level primitives (32 lanes).
//!
//! A warp is modelled as a 32-element register file: every primitive maps a
//! `[T; 32]` of per-lane values to per-lane results, exactly mirroring the
//! semantics of the CUDA intrinsics (`__shfl_xor_sync`, `__ballot_sync`,
//! warp scans/reductions) the paper's kernels are built from.

use crate::WARP_SIZE;

/// `__shfl_xor_sync`: every lane reads the value of `lane ^ mask`.
pub fn shfl_xor<T: Copy>(regs: &[T; WARP_SIZE], mask: usize) -> [T; WARP_SIZE] {
    std::array::from_fn(|lane| regs[lane ^ (mask & (WARP_SIZE - 1))])
}

/// `__shfl_up_sync` with `delta`: lanes below `delta` keep their own value.
pub fn shfl_up<T: Copy>(regs: &[T; WARP_SIZE], delta: usize) -> [T; WARP_SIZE] {
    std::array::from_fn(|lane| {
        if lane >= delta {
            regs[lane - delta]
        } else {
            regs[lane]
        }
    })
}

/// `__ballot_sync`: bit `i` of the result is lane `i`'s predicate.
pub fn ballot(predicates: &[bool; WARP_SIZE]) -> u32 {
    predicates
        .iter()
        .enumerate()
        .fold(0u32, |acc, (lane, &p)| acc | (u32::from(p) << lane))
}

/// Warp-wide maximum reduction (every lane receives the maximum).
pub fn reduce_max_u64(regs: &[u64; WARP_SIZE]) -> u64 {
    // Butterfly reduction in log2(32) = 5 shuffle steps, as on hardware.
    let mut cur = *regs;
    let mut step = WARP_SIZE / 2;
    while step > 0 {
        let other = shfl_xor(&cur, step);
        for lane in 0..WARP_SIZE {
            cur[lane] = cur[lane].max(other[lane]);
        }
        step /= 2;
    }
    cur[0]
}

/// Warp-level inclusive prefix sum (wrapping), Hillis–Steele style.
pub fn inclusive_scan_add(regs: &[u64; WARP_SIZE]) -> [u64; WARP_SIZE] {
    let mut cur = *regs;
    let mut delta = 1;
    while delta < WARP_SIZE {
        let shifted = shfl_up(&cur, delta);
        for lane in 0..WARP_SIZE {
            if lane >= delta {
                cur[lane] = cur[lane].wrapping_add(shifted[lane]);
            }
        }
        delta *= 2;
    }
    cur
}

/// The 5-step shuffle-based 32×32 bit-matrix transpose (paper §3.2: "fast
/// CUDA shuffle operations … in log2(32) = 5 steps"). Each lane holds one
/// 32-bit word; the result is bit-identical to the scalar
/// `fpc_transforms::bit_transpose::transpose32_group`.
pub fn transpose32(regs: &[u32; WARP_SIZE]) -> [u32; WARP_SIZE] {
    let mut cur = *regs;
    let mut j = 16usize;
    let mut m: u32 = 0x0000_FFFF;
    while j != 0 {
        let partner: [u32; WARP_SIZE] = shfl_xor(&cur, j);
        for lane in 0..WARP_SIZE {
            let x = cur[lane];
            let y = partner[lane];
            cur[lane] = if lane & j == 0 {
                // Role "k": t = (x ^ (y >> j)) & m; x ^= t.
                let t = (x ^ (y >> j)) & m;
                x ^ t
            } else {
                // Role "k + j": t = (y ^ (x >> j)) & m; x ^= t << j.
                let t = (y ^ (x >> j)) & m;
                x ^ (t << j)
            };
        }
        j >>= 1;
        m ^= m << j;
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shfl_xor_permutes() {
        let regs: [u32; 32] = std::array::from_fn(|i| i as u32);
        let out = shfl_xor(&regs, 1);
        assert_eq!(out[0], 1);
        assert_eq!(out[1], 0);
        assert_eq!(out[30], 31);
        assert_eq!(out[31], 30);
    }

    #[test]
    fn ballot_sets_bits() {
        let mut preds = [false; 32];
        preds[0] = true;
        preds[5] = true;
        preds[31] = true;
        assert_eq!(ballot(&preds), 1 | (1 << 5) | (1u32 << 31));
    }

    #[test]
    fn reduce_max_matches_iter_max() {
        let regs: [u64; 32] =
            std::array::from_fn(|i| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        assert_eq!(
            reduce_max_u64(&regs),
            regs.iter().copied().max().expect("nonempty")
        );
    }

    #[test]
    fn inclusive_scan_matches_serial() {
        let regs: [u64; 32] = std::array::from_fn(|i| (i as u64) * 3 + 1);
        let out = inclusive_scan_add(&regs);
        let mut acc = 0u64;
        for lane in 0..32 {
            acc += regs[lane];
            assert_eq!(out[lane], acc, "lane {lane}");
        }
    }

    #[test]
    fn inclusive_scan_wraps() {
        let regs = [u64::MAX; 32];
        let out = inclusive_scan_add(&regs);
        assert_eq!(out[1], u64::MAX.wrapping_add(u64::MAX));
    }

    #[test]
    fn warp_transpose_matches_scalar() {
        let regs: [u32; 32] =
            std::array::from_fn(|i| (i as u32).wrapping_mul(0x85EB_CA6B).rotate_left(i as u32));
        let warp_result = transpose32(&regs);
        let mut scalar = regs;
        fpc_transforms::bit_transpose::transpose32_group(&mut scalar);
        assert_eq!(
            warp_result, scalar,
            "warp transpose must be bit-identical to scalar"
        );
    }

    #[test]
    fn warp_transpose_involution() {
        let regs: [u32; 32] = std::array::from_fn(|i| 0xDEAD_BEEFu32.rotate_left(i as u32));
        assert_eq!(transpose32(&transpose32(&regs)), regs);
    }
}
