//! GPU-style chunk pipelines built from warp/block primitives.
//!
//! Each codec here reimplements the chunked portion of one algorithm using
//! the parallel formulations the paper describes — warp reductions for the
//! MPLG maximum, shuffle-based bit transposition, ballot-built bitmaps, and
//! block-scan difference decoding — and produces output **byte-identical**
//! to the scalar `fpc-core` codecs (asserted by tests and by the
//! integration suite). Where the paper's decoder parallelism lives outside
//! the chunk (FCM's union-find), it is exercised in `compressor.rs`.

use crate::scan::block_inclusive_scan;
use crate::warp::{ballot, reduce_max_u64, transpose32 as warp_transpose32};
use crate::WARP_SIZE;
use fpc_container::{ChunkCodec, Error};
use fpc_core::{DpRatioChunkCodec, DpSpeedCodec, SpRatioCodec, SpSpeedCodec};
use fpc_entropy::{bitpack, varint};
use fpc_transforms::{mplg, words, zigzag};

/// Maximum elements a block scan handles at once.
const SCAN_BLOCK: usize = WARP_SIZE * WARP_SIZE;

/// Embarrassingly parallel DIFFMS encode: every "lane" computes its
/// difference from the untouched input (no sequential dependency).
fn diffms_encode32_parallel(input: &[u32]) -> Vec<u32> {
    (0..input.len())
        .map(|i| {
            let prev = if i == 0 { 0 } else { input[i - 1] };
            zigzag::encode32(input[i].wrapping_sub(prev))
        })
        .collect()
}

fn diffms_encode64_parallel(input: &[u64]) -> Vec<u64> {
    (0..input.len())
        .map(|i| {
            let prev = if i == 0 { 0 } else { input[i - 1] };
            zigzag::encode64(input[i].wrapping_sub(prev))
        })
        .collect()
}

/// DIFFMS decode as the paper's block-level parallel prefix sum (§3.1):
/// un-zigzag in parallel, then scan 1024-element blocks, carrying the
/// running total between blocks.
fn diffms_decode32_scan(values: &mut [u32]) {
    let mut carry = 0u64;
    let mut buf = vec![0u64; SCAN_BLOCK];
    for block in values.chunks_mut(SCAN_BLOCK) {
        let b = &mut buf[..block.len()];
        for (slot, &v) in b.iter_mut().zip(block.iter()) {
            *slot = u64::from(zigzag::decode32(v));
        }
        block_inclusive_scan(b);
        for (v, &s) in block.iter_mut().zip(b.iter()) {
            // Low 32 bits of the wrapping u64 sum equal the u32 wrapping sum.
            *v = (s.wrapping_add(carry)) as u32;
        }
        carry = carry.wrapping_add(b[block.len() - 1]);
    }
}

fn diffms_decode64_scan(values: &mut [u64]) {
    let mut carry = 0u64;
    let mut buf = vec![0u64; SCAN_BLOCK];
    for block in values.chunks_mut(SCAN_BLOCK) {
        let b = &mut buf[..block.len()];
        for (slot, &v) in b.iter_mut().zip(block.iter()) {
            *slot = zigzag::decode64(v);
        }
        block_inclusive_scan(b);
        for (v, &s) in block.iter_mut().zip(b.iter()) {
            *v = s.wrapping_add(carry);
        }
        carry = carry.wrapping_add(b[block.len() - 1]);
    }
}

/// MPLG encode with the subchunk maximum computed by a warp butterfly
/// reduction (each of the 32 lanes owns 4 of the 128 subchunk words).
fn mplg_encode32_warp(values: &[u32], out: &mut Vec<u8>, fallback: bool) {
    for sub in values.chunks(mplg::SUBCHUNK_VALUES_32) {
        let mut regs = [0u64; WARP_SIZE];
        for (i, &v) in sub.iter().enumerate() {
            let lane = i % WARP_SIZE;
            regs[lane] = regs[lane].max(u64::from(v));
        }
        let max = reduce_max_u64(&regs) as u32;
        let mut width = 32 - max.leading_zeros();
        let mut flag = 0u8;
        let mut converted;
        let packed: &[u32] = if width == 32 && fallback {
            converted = sub.to_vec();
            zigzag::encode32_slice(&mut converted);
            let w2 = bitpack::min_width_u32(&converted);
            if w2 < 32 {
                flag = 0x80;
                width = w2;
                &converted
            } else {
                sub
            }
        } else {
            sub
        };
        out.push(flag | width as u8);
        bitpack::pack_u32(packed, width, out);
    }
}

fn mplg_encode64_warp(values: &[u64], out: &mut Vec<u8>, fallback: bool) {
    for sub in values.chunks(mplg::SUBCHUNK_VALUES_64) {
        let mut regs = [0u64; WARP_SIZE];
        for (i, &v) in sub.iter().enumerate() {
            let lane = i % WARP_SIZE;
            regs[lane] = regs[lane].max(v);
        }
        let max = reduce_max_u64(&regs);
        let mut width = 64 - max.leading_zeros();
        let mut flag = 0u8;
        let mut converted;
        let packed: &[u64] = if width == 64 && fallback {
            converted = sub.to_vec();
            zigzag::encode64_slice(&mut converted);
            let w2 = bitpack::min_width_u64(&converted);
            if w2 < 64 {
                flag = 0x80;
                width = w2;
                &converted
            } else {
                sub
            }
        } else {
            sub
        };
        out.push(flag | width as u8);
        bitpack::pack_u64(packed, width, out);
    }
}

/// Warp-shuffle bit transposition over every full 32-word group (§3.2).
fn bit_transpose32_warp(values: &mut [u32]) {
    for group in values.chunks_exact_mut(WARP_SIZE) {
        let regs: [u32; WARP_SIZE] = group.try_into().expect("chunks_exact(32)");
        group.copy_from_slice(&warp_transpose32(&regs));
    }
}

/// Ballot-built zero bitmap: 32 lanes test 32 bytes, `__ballot` forms the
/// 32-bit bitmap word (LSB = lane 0 = lowest byte index, matching the
/// scalar RZE bit order), and the nonzero bytes are compacted in lane
/// order (the scalar equivalent of the prefix-sum scatter of §3.2).
fn zero_bitmap_ballot(data: &[u8]) -> (Vec<u8>, Vec<u8>) {
    let mut bitmap = Vec::with_capacity(data.len().div_ceil(8));
    let mut kept = Vec::new();
    for (base, chunk) in data.chunks(WARP_SIZE).enumerate() {
        let mut preds = [false; WARP_SIZE];
        for (lane, &b) in chunk.iter().enumerate() {
            preds[lane] = b != 0;
            if b != 0 {
                kept.push(b);
            }
        }
        let word = ballot(&preds);
        let nbytes = chunk.len().div_ceil(8);
        bitmap.extend_from_slice(&word.to_le_bytes()[..nbytes]);
        let _ = base;
    }
    (bitmap, kept)
}

/// Ballot-built repeat bitmap (bit set ⇔ byte differs from predecessor;
/// lane 0 compares against the previous iteration's last byte via the
/// shuffle-carry idiom).
fn repeat_bitmap_ballot(data: &[u8]) -> (Vec<u8>, Vec<u8>) {
    let mut bitmap = Vec::with_capacity(data.len().div_ceil(8));
    let mut kept = Vec::new();
    let mut carry = 0u8;
    for chunk in data.chunks(WARP_SIZE) {
        let mut preds = [false; WARP_SIZE];
        for (lane, &b) in chunk.iter().enumerate() {
            let prev = if lane == 0 { carry } else { chunk[lane - 1] };
            preds[lane] = b != prev;
            if b != prev {
                kept.push(b);
            }
        }
        carry = *chunk.last().expect("chunks() yields nonempty slices");
        let word = ballot(&preds);
        let nbytes = chunk.len().div_ceil(8);
        bitmap.extend_from_slice(&word.to_le_bytes()[..nbytes]);
    }
    (bitmap, kept)
}

/// Inclusive set-bit ranks per *byte* of a bitmap: `byte_rank[b]` = number
/// of set bits in bytes `0..=b`. Built with the block scan, exactly the
/// "threads count … then compute a block-wide parallel prefix sum on these
/// counts" step of the paper's RZE decoder (§3.2).
fn byte_ranks(bitmap: &[u8]) -> Vec<u64> {
    let mut counts: Vec<u64> = bitmap.iter().map(|b| u64::from(b.count_ones())).collect();
    let mut carry = 0u64;
    for block in counts.chunks_mut(SCAN_BLOCK) {
        block_inclusive_scan(block);
        for v in block.iter_mut() {
            *v += carry;
        }
        carry = *block.last().expect("chunks_mut yields nonempty");
    }
    counts
}

#[inline]
fn rank_exclusive(bitmap: &[u8], byte_rank: &[u64], i: usize) -> usize {
    let prior_bytes = if i / 8 == 0 { 0 } else { byte_rank[i / 8 - 1] } as usize;
    let intra = (bitmap[i / 8] & ((1u8 << (i % 8)) - 1)).count_ones() as usize;
    prior_bytes + intra
}

#[inline]
fn bit_at(bitmap: &[u8], i: usize) -> bool {
    bitmap[i / 8] & (1 << (i % 8)) != 0
}

/// Parallel "repeat" expansion: each output position independently gathers
/// the most recent differing byte via its rank — no sequential fill-forward.
fn expand_repeat_gather(
    bitmap: &[u8],
    len: usize,
    data: &[u8],
    pos: &mut usize,
) -> Result<Vec<u8>, Error> {
    let ranks = byte_ranks(bitmap);
    let total_kept = ranks.last().copied().unwrap_or(0) as usize;
    let end = pos
        .checked_add(total_kept)
        .ok_or(Error::Corrupt("rze gather overflow"))?;
    let kept = data.get(*pos..end).ok_or(Error::UnexpectedEof)?;
    *pos = end;
    let mut out = Vec::with_capacity(len);
    for i in 0..len {
        let r = rank_exclusive(bitmap, &ranks, i) + usize::from(bit_at(bitmap, i));
        out.push(if r == 0 { 0 } else { kept[r - 1] });
    }
    Ok(out)
}

/// Parallel zero-elimination expansion: set bits gather their source byte
/// by exclusive rank, cleared bits emit zero.
fn expand_zero_gather(
    bitmap: &[u8],
    len: usize,
    data: &[u8],
    pos: &mut usize,
    out: &mut Vec<u8>,
) -> Result<(), Error> {
    let ranks = byte_ranks(bitmap);
    let total_kept = ranks.last().copied().unwrap_or(0) as usize;
    let end = pos
        .checked_add(total_kept)
        .ok_or(Error::Corrupt("rze gather overflow"))?;
    let kept = data.get(*pos..end).ok_or(Error::UnexpectedEof)?;
    *pos = end;
    out.reserve(len);
    for i in 0..len {
        if bit_at(bitmap, i) {
            out.push(kept[rank_exclusive(bitmap, &ranks, i)]);
        } else {
            out.push(0);
        }
    }
    Ok(())
}

/// GPU-style RZE decode: bitmap levels expanded by rank gathers instead of
/// the scalar decoder's sequential scan. Consumes the same byte layout as
/// `rze::decode` and produces identical output.
fn rze_decode_gather(
    data: &[u8],
    pos: &mut usize,
    n: usize,
    out: &mut Vec<u8>,
) -> Result<(), Error> {
    let bitmap_len = |m: usize| m.div_ceil(8);
    let len0 = bitmap_len(n);
    let len1 = bitmap_len(len0);
    let len2 = bitmap_len(len1);
    let len3 = bitmap_len(len2);
    let end = pos
        .checked_add(len3)
        .ok_or(Error::Corrupt("rze header overflow"))?;
    let bm3 = data.get(*pos..end).ok_or(Error::UnexpectedEof)?.to_vec();
    *pos = end;
    let bm2 = expand_repeat_gather(&bm3, len2, data, pos)?;
    let bm1 = expand_repeat_gather(&bm2, len1, data, pos)?;
    let bm0 = expand_repeat_gather(&bm1, len0, data, pos)?;
    expand_zero_gather(&bm0, n, data, pos, out)
}

/// RZE encode from ballot-built bitmaps (byte-identical to `rze::encode`).
fn rze_encode_ballot(data: &[u8], out: &mut Vec<u8>) {
    let (bm0, nonzero) = zero_bitmap_ballot(data);
    let (bm1, nr0) = repeat_bitmap_ballot(&bm0);
    let (bm2, nr1) = repeat_bitmap_ballot(&bm1);
    let (bm3, nr2) = repeat_bitmap_ballot(&bm2);
    out.extend_from_slice(&bm3);
    out.extend_from_slice(&nr2);
    out.extend_from_slice(&nr1);
    out.extend_from_slice(&nr0);
    out.extend_from_slice(&nonzero);
}

/// GPU-style RAZE encode: the split byte, the bottom bytes (independent
/// per-lane gathers), and the ballot-built RZE stream over the top bytes.
/// Byte-identical to `raze::encode_with_split`.
fn raze_encode_ballot(values: &[u64], kb: usize, out: &mut Vec<u8>) {
    out.push(kb as u8);
    let nb = 8 - kb;
    // Bottom bytes: each output byte depends only on its own value — an
    // embarrassingly parallel gather on the GPU.
    out.reserve(values.len() * nb);
    for &v in values {
        for i in 0..nb {
            out.push((v >> (8 * i)) as u8);
        }
    }
    // Top bytes, most significant first, then ballot-RZE.
    let mut tops = Vec::with_capacity(values.len() * kb);
    for &v in values {
        for j in 0..kb {
            tops.push((v >> (8 * (7 - j))) as u8);
        }
    }
    rze_encode_ballot(&tops, out);
}

/// GPU-style RARE encode: XOR-with-previous on the top bytes (each lane
/// reads its left neighbour — a warp shuffle) before ballot-RZE.
/// Byte-identical to `rare::encode_with_split`.
fn rare_encode_ballot(values: &[u64], kb: usize, out: &mut Vec<u8>) {
    out.push(kb as u8);
    let nb = 8 - kb;
    out.reserve(values.len() * nb);
    for &v in values {
        for i in 0..nb {
            out.push((v >> (8 * i)) as u8);
        }
    }
    let mut tops = Vec::with_capacity(values.len() * kb);
    for (i, &v) in values.iter().enumerate() {
        // shfl_up(1): the previous lane's value (0 for lane 0 of the grid).
        let prev = if i == 0 { 0 } else { values[i - 1] };
        let d = v ^ prev;
        for j in 0..kb {
            tops.push((d >> (8 * (7 - j))) as u8);
        }
    }
    rze_encode_ballot(&tops, out);
}

/// Recomputes the adaptive RARE split (leading-repeat-byte histogram).
fn rare_choose(values: &[u64]) -> usize {
    let mut hist = [0usize; 9];
    let mut prev = 0u64;
    for &v in values {
        hist[((v ^ prev).leading_zeros() / 8) as usize] += 1;
        prev = v;
    }
    raze_choose(&hist, values.len())
}

/// GPU-style SPspeed chunk codec (DIFFMS ∥-encode + warp-max MPLG).
#[derive(Debug, Clone, Copy)]
pub struct GpuSpSpeedCodec;

impl ChunkCodec for GpuSpSpeedCodec {
    fn encode_chunk(&self, chunk: &[u8], out: &mut Vec<u8>) {
        let (w, tail) = words::bytes_to_u32(chunk);
        let diffed = diffms_encode32_parallel(&w);
        mplg_encode32_warp(&diffed, out, true);
        out.extend_from_slice(tail);
    }

    fn decode_chunk(
        &self,
        data: &[u8],
        expected_len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), Error> {
        let count = expected_len / 4;
        let tail_len = expected_len % 4;
        let mut pos = 0;
        let mut w = Vec::with_capacity(count);
        mplg::decode32(data, &mut pos, count, &mut w).map_err(map_decode)?;
        diffms_decode32_scan(&mut w);
        words::u32_to_bytes(&w, out);
        let tail = data.get(pos..pos + tail_len).ok_or(Error::UnexpectedEof)?;
        out.extend_from_slice(tail);
        Ok(())
    }
}

/// GPU-style DPspeed chunk codec.
#[derive(Debug, Clone, Copy)]
pub struct GpuDpSpeedCodec;

impl ChunkCodec for GpuDpSpeedCodec {
    fn encode_chunk(&self, chunk: &[u8], out: &mut Vec<u8>) {
        let (w, tail) = words::bytes_to_u64(chunk);
        let diffed = diffms_encode64_parallel(&w);
        mplg_encode64_warp(&diffed, out, true);
        out.extend_from_slice(tail);
    }

    fn decode_chunk(
        &self,
        data: &[u8],
        expected_len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), Error> {
        let count = expected_len / 8;
        let tail_len = expected_len % 8;
        let mut pos = 0;
        let mut w = Vec::with_capacity(count);
        mplg::decode64(data, &mut pos, count, &mut w).map_err(map_decode)?;
        diffms_decode64_scan(&mut w);
        words::u64_to_bytes(&w, out);
        let tail = data.get(pos..pos + tail_len).ok_or(Error::UnexpectedEof)?;
        out.extend_from_slice(tail);
        Ok(())
    }
}

/// GPU-style SPratio chunk codec (shuffle transpose + ballot RZE).
#[derive(Debug, Clone, Copy)]
pub struct GpuSpRatioCodec;

impl ChunkCodec for GpuSpRatioCodec {
    fn encode_chunk(&self, chunk: &[u8], out: &mut Vec<u8>) {
        let (w, tail) = words::bytes_to_u32(chunk);
        let mut diffed = diffms_encode32_parallel(&w);
        bit_transpose32_warp(&mut diffed);
        let mut transposed = Vec::with_capacity(diffed.len() * 4);
        words::u32_to_bytes(&diffed, &mut transposed);
        rze_encode_ballot(&transposed, out);
        out.extend_from_slice(tail);
    }

    fn decode_chunk(
        &self,
        data: &[u8],
        expected_len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), Error> {
        let count = expected_len / 4;
        let tail_len = expected_len % 4;
        let mut pos = 0;
        let mut transposed = Vec::with_capacity(count * 4);
        rze_decode_gather(data, &mut pos, count * 4, &mut transposed)?;
        let (mut w, _) = words::bytes_to_u32(&transposed);
        bit_transpose32_warp(&mut w);
        diffms_decode32_scan(&mut w);
        words::u32_to_bytes(&w, out);
        let tail = data.get(pos..pos + tail_len).ok_or(Error::UnexpectedEof)?;
        out.extend_from_slice(tail);
        Ok(())
    }
}

/// GPU-style DPratio chunk codec (atomic-histogram RAZE/RARE; byte format
/// identical to the scalar codec, including the RAZE-stream varint).
#[derive(Debug, Clone, Copy)]
pub struct GpuDpRatioChunkCodec;

impl ChunkCodec for GpuDpRatioChunkCodec {
    fn encode_chunk(&self, chunk: &[u8], out: &mut Vec<u8>) {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let (w, ctail) = words::bytes_to_u64(chunk);
        let diffed = diffms_encode64_parallel(&w);
        // RAZE histogram built with atomic increments (paper §3.2: "the
        // compressor first has to create the histogram, which it does in
        // parallel by atomically incrementing the bins").
        let bins: [AtomicUsize; 9] = std::array::from_fn(|_| AtomicUsize::new(0));
        for &v in &diffed {
            bins[(v.leading_zeros() / 8) as usize].fetch_add(1, Ordering::Relaxed);
        }
        let hist: [usize; 9] = std::array::from_fn(|i| bins[i].load(Ordering::Relaxed));
        let kb = raze_choose(&hist, diffed.len());
        let mut razed = Vec::with_capacity(chunk.len());
        raze_encode_ballot(&diffed, kb, &mut razed);
        let (w2, t2) = words::bytes_to_u64(&razed);
        varint::write_usize(out, razed.len());
        rare_encode_ballot(&w2, rare_choose(&w2), out);
        out.extend_from_slice(t2);
        out.extend_from_slice(ctail);
    }

    fn decode_chunk(
        &self,
        data: &[u8],
        expected_len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), Error> {
        // Byte format identical to the scalar codec; its decoder applies.
        DpRatioChunkCodec { fixed_split: None }.decode_chunk(data, expected_len, out)
    }
}

/// Recomputes the adaptive RAZE split the scalar encoder would choose.
fn raze_choose(hist: &[usize; 9], n: usize) -> usize {
    // Must match `raze::choose_split` exactly; verified by the
    // byte-identity tests below. Reimplemented here because the scalar
    // helper is crate-private; kept in sync via the equality assertions.
    let mut cnt = [0usize; 9];
    cnt[8] = hist[8];
    for j in (0..8).rev() {
        cnt[j] = cnt[j + 1] + hist[j];
    }
    let overhead = |m: usize| m.div_ceil(8) + m.div_ceil(64) + m.div_ceil(512) + 4;
    let mut best = (usize::MAX, 0usize);
    let mut zeros = 0usize;
    #[allow(clippy::needless_range_loop)] // kb is the split being costed, not just an index
    for kb in 0..=8usize {
        if kb > 0 {
            zeros += cnt[kb];
        }
        let top = n * kb;
        let cost = n * (8 - kb) + (top - zeros) + overhead(top);
        if cost < best.0 {
            best = (cost, kb);
        }
    }
    best.1
}

fn map_decode(e: fpc_transforms::DecodeError) -> Error {
    match e {
        fpc_transforms::DecodeError::UnexpectedEof => Error::UnexpectedEof,
        fpc_transforms::DecodeError::InvalidHeader(w) | fpc_transforms::DecodeError::Corrupt(w) => {
            Error::Corrupt(w)
        }
    }
}

/// A (GPU codec, scalar codec, name) triple for byte-identity checks.
pub type CodecPair = (Box<dyn ChunkCodec>, Box<dyn ChunkCodec>, &'static str);

/// Returns the scalar (CPU) codec corresponding to a GPU codec, for
/// byte-identity checks.
pub fn scalar_counterparts() -> Vec<CodecPair> {
    vec![
        (
            Box::new(GpuSpSpeedCodec),
            Box::new(SpSpeedCodec { fallback: true }),
            "SPspeed",
        ),
        (Box::new(GpuSpRatioCodec), Box::new(SpRatioCodec), "SPratio"),
        (
            Box::new(GpuDpSpeedCodec),
            Box::new(DpSpeedCodec { fallback: true }),
            "DPspeed",
        ),
        (
            Box::new(GpuDpRatioChunkCodec),
            Box::new(DpRatioChunkCodec { fixed_split: None }),
            "DPratio-chunk",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpc_transforms::{raze, rze};

    fn chunk_cases() -> Vec<Vec<u8>> {
        let smooth_f32: Vec<u8> = (0..4096)
            .flat_map(|i| (2.0f32 + i as f32 * 1e-4).to_bits().to_le_bytes())
            .collect();
        let smooth_f64: Vec<u8> = (0..2048)
            .flat_map(|i| (-5.0f64 + i as f64 * 1e-7).to_bits().to_le_bytes())
            .collect();
        let noisy: Vec<u8> = (0..16384u64)
            .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 56) as u8)
            .collect();
        let zeros = vec![0u8; 16384];
        let ragged: Vec<u8> = (0..1003).map(|i| (i % 251) as u8).collect();
        vec![
            smooth_f32,
            smooth_f64,
            noisy,
            zeros,
            ragged,
            vec![7u8; 5],
            vec![],
        ]
    }

    #[test]
    fn gpu_codecs_byte_identical_to_scalar() {
        for (gpu, cpu, name) in scalar_counterparts() {
            for (case_idx, chunk) in chunk_cases().iter().enumerate() {
                let mut gpu_out = Vec::new();
                gpu.encode_chunk(chunk, &mut gpu_out);
                let mut cpu_out = Vec::new();
                cpu.encode_chunk(chunk, &mut cpu_out);
                assert_eq!(gpu_out, cpu_out, "{name} case {case_idx}: encodings differ");
                // Cross-decode: GPU decodes the CPU stream and vice versa.
                let mut via_gpu = Vec::new();
                gpu.decode_chunk(&cpu_out, chunk.len(), &mut via_gpu)
                    .unwrap();
                assert_eq!(&via_gpu, chunk, "{name} case {case_idx}: gpu decode");
                let mut via_cpu = Vec::new();
                cpu.decode_chunk(&gpu_out, chunk.len(), &mut via_cpu)
                    .unwrap();
                assert_eq!(&via_cpu, chunk, "{name} case {case_idx}: cpu decode");
            }
        }
    }

    #[test]
    fn diffms_scan_decode_matches_sequential() {
        let orig: Vec<u32> = (0..5000u32).map(|i| i.wrapping_mul(0x0101_4941)).collect();
        let mut seq = orig.clone();
        fpc_transforms::diffms::encode32(&mut seq);
        let mut scan_decoded = seq.clone();
        diffms_decode32_scan(&mut scan_decoded);
        assert_eq!(scan_decoded, orig);

        let orig64: Vec<u64> = (0..3000u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let mut seq64 = orig64.clone();
        fpc_transforms::diffms::encode64(&mut seq64);
        diffms_decode64_scan(&mut seq64);
        assert_eq!(seq64, orig64);
    }

    #[test]
    fn gather_decode_matches_scalar_rze() {
        // Several structures: sparse, dense, all-zero, tiny, unaligned.
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![0u8; 3],
            vec![7u8; 100],
            {
                let mut v = vec![0u8; 16384];
                for i in (0..16384).step_by(53) {
                    v[i] = (i % 200 + 1) as u8;
                }
                v
            },
            (0..5001u32).map(|i| (i % 255) as u8).collect(),
        ];
        for (case_idx, data) in cases.iter().enumerate() {
            let mut enc = Vec::new();
            rze::encode(data, &mut enc);
            let mut pos = 0;
            let mut gpu_out = Vec::new();
            rze_decode_gather(&enc, &mut pos, data.len(), &mut gpu_out).unwrap();
            assert_eq!(pos, enc.len(), "case {case_idx}: stream fully consumed");
            assert_eq!(&gpu_out, data, "case {case_idx}");
        }
    }

    #[test]
    fn byte_ranks_match_naive() {
        let bitmap: Vec<u8> = (0..3000u32).map(|i| (i * 37 % 251) as u8).collect();
        let ranks = byte_ranks(&bitmap);
        let mut acc = 0u64;
        for (i, &b) in bitmap.iter().enumerate() {
            acc += u64::from(b.count_ones());
            assert_eq!(ranks[i], acc, "byte {i}");
        }
    }

    #[test]
    fn ballot_bitmaps_match_scalar_rze() {
        let mut data = vec![0u8; 4096];
        for i in (0..4096).step_by(37) {
            data[i] = (i % 250 + 1) as u8;
        }
        let mut gpu_out = Vec::new();
        rze_encode_ballot(&data, &mut gpu_out);
        let mut cpu_out = Vec::new();
        rze::encode(&data, &mut cpu_out);
        assert_eq!(gpu_out, cpu_out);
    }

    #[test]
    fn raze_choose_matches_scalar_choice() {
        // Encoding through both paths yields the same stored split byte.
        let values: Vec<u64> = (0..2048u64).map(|i| (i * i) << 8).collect();
        let mut scalar = Vec::new();
        raze::encode(&values, &mut scalar);
        let mut hist = [0usize; 9];
        for &v in &values {
            hist[(v.leading_zeros() / 8) as usize] += 1;
        }
        assert_eq!(raze_choose(&hist, values.len()), scalar[0] as usize);
    }
}
