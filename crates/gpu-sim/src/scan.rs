//! Block-level prefix sums and the decoupled look-back inter-block scan.
//!
//! The paper uses a block-level parallel prefix sum (built from warp scans
//! and shared memory) for DIFFMS decoding, and "Merrill and Garland's
//! variable look-back strategy" to pass compressed-chunk write positions
//! between thread blocks (§3.1). Both are reproduced here: the block scan
//! deterministically, the look-back scan with real threads and the actual
//! published state machine (`Invalid` → `Aggregate` → `Prefix`).

use crate::warp::{inclusive_scan_add, shfl_up};
use crate::WARP_SIZE;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Block-level inclusive prefix sum (wrapping addition) over up to
/// 32 × 32 = 1024 elements, composed from warp scans exactly as a CUDA
/// block scan is: per-warp scan, warp-aggregate scan in "shared memory",
/// then per-lane offset addition.
pub fn block_inclusive_scan(values: &mut [u64]) {
    assert!(
        values.len() <= WARP_SIZE * WARP_SIZE,
        "block scan capacity is 1024 elements"
    );
    let mut warp_aggregates = [0u64; WARP_SIZE];
    let nwarps = values.len().div_ceil(WARP_SIZE);
    #[allow(clippy::needless_range_loop)] // w is a warp id used for slicing and aggregates
    for w in 0..nwarps {
        let start = w * WARP_SIZE;
        let end = (start + WARP_SIZE).min(values.len());
        let mut regs = [0u64; WARP_SIZE];
        regs[..end - start].copy_from_slice(&values[start..end]);
        let scanned = inclusive_scan_add(&regs);
        values[start..end].copy_from_slice(&scanned[..end - start]);
        warp_aggregates[w] = scanned[WARP_SIZE - 1];
    }
    // Scan the warp aggregates (one warp's worth) and add exclusive offsets.
    let agg_scan = inclusive_scan_add(&warp_aggregates);
    let offsets = shfl_up(&agg_scan, 1);
    let len = values.len();
    for w in 1..nwarps {
        for v in &mut values[w * WARP_SIZE..((w + 1) * WARP_SIZE).min(len)] {
            *v = v.wrapping_add(offsets[w]);
        }
    }
}

const STATE_INVALID: u8 = 0;
const STATE_AGGREGATE: u8 = 1;
const STATE_PREFIX: u8 = 2;

/// Exclusive prefix sum across "thread blocks" using the decoupled
/// look-back protocol. `aggregates[i]` is block `i`'s local total; the
/// result is each block's exclusive prefix (its write position).
///
/// Blocks are executed on the shared [`fpc_pool`] executor: workers claim
/// block indices from an atomic counter (any order), publish their
/// aggregate immediately, and then look back through predecessor
/// descriptors until a published inclusive prefix is found — the actual
/// single-pass protocol.
///
/// Liveness under the pool's batched claiming: a block waits only on
/// *strictly lower* indices, claims are monotonic, and each worker
/// processes its batch in ascending order, so every awaited index is
/// either already published or owned by a live worker — the wait graph is
/// acyclic. The wait loop spins briefly then yields, so the protocol also
/// makes progress when workers outnumber cores.
pub fn decoupled_lookback_exclusive(aggregates: &[u64], threads: usize) -> Vec<u64> {
    let n = aggregates.len();
    if n == 0 {
        return Vec::new();
    }
    let t = fpc_metrics::timer(fpc_metrics::Stage::GpuScan);
    let states: Vec<AtomicU8> = (0..n).map(|_| AtomicU8::new(STATE_INVALID)).collect();
    let published_agg: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let published_prefix: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let exclusive: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();

    fpc_pool::for_each_index(n, threads, |b| {
        // Publish our aggregate so successors can make progress.
        published_agg[b].store(aggregates[b], Ordering::Relaxed);
        states[b].store(STATE_AGGREGATE, Ordering::Release);
        // Look back over predecessors, accumulating aggregates
        // until a full inclusive prefix is found.
        let mut running = 0u64;
        let mut look = b;
        while look > 0 {
            look -= 1;
            let mut spins = 0u32;
            loop {
                match states[look].load(Ordering::Acquire) {
                    STATE_PREFIX => {
                        running =
                            running.wrapping_add(published_prefix[look].load(Ordering::Relaxed));
                        look = 0; // terminate outer loop
                        break;
                    }
                    STATE_AGGREGATE => {
                        running = running.wrapping_add(published_agg[look].load(Ordering::Relaxed));
                        break;
                    }
                    _ if spins < 128 => {
                        spins += 1;
                        std::hint::spin_loop();
                    }
                    _ => std::thread::yield_now(),
                }
            }
        }
        exclusive[b].store(running, Ordering::Relaxed);
        // Publish our inclusive prefix to shorten successors' walks.
        published_prefix[b].store(running.wrapping_add(aggregates[b]), Ordering::Relaxed);
        states[b].store(STATE_PREFIX, Ordering::Release);
    });

    let out: Vec<u64> = exclusive.into_iter().map(AtomicU64::into_inner).collect();
    t.finish(n as u64 * 8);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serial_exclusive(values: &[u64]) -> Vec<u64> {
        let mut out = Vec::with_capacity(values.len());
        let mut acc = 0u64;
        for &v in values {
            out.push(acc);
            acc = acc.wrapping_add(v);
        }
        out
    }

    #[test]
    fn block_scan_matches_serial() {
        for n in [0usize, 1, 31, 32, 33, 100, 1023, 1024] {
            let mut values: Vec<u64> = (0..n as u64).map(|i| i * 7 + 1).collect();
            let expected: Vec<u64> = {
                let mut acc = 0u64;
                values
                    .iter()
                    .map(|&v| {
                        acc = acc.wrapping_add(v);
                        acc
                    })
                    .collect()
            };
            block_inclusive_scan(&mut values);
            assert_eq!(values, expected, "n = {n}");
        }
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn block_scan_rejects_oversized() {
        let mut values = vec![1u64; 1025];
        block_inclusive_scan(&mut values);
    }

    #[test]
    fn lookback_matches_serial_small() {
        let aggregates = [5u64, 0, 3, 10, 2];
        assert_eq!(
            decoupled_lookback_exclusive(&aggregates, 4),
            serial_exclusive(&aggregates)
        );
    }

    #[test]
    fn lookback_matches_serial_large_many_threads() {
        let aggregates: Vec<u64> = (0..2000u64).map(|i| i % 97).collect();
        for threads in [1usize, 2, 8, 32] {
            assert_eq!(
                decoupled_lookback_exclusive(&aggregates, threads),
                serial_exclusive(&aggregates),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn lookback_empty_and_single() {
        assert!(decoupled_lookback_exclusive(&[], 4).is_empty());
        assert_eq!(decoupled_lookback_exclusive(&[42], 4), vec![0]);
    }

    #[test]
    fn lookback_repeated_runs_agree() {
        // Stress scheduling nondeterminism: results must be identical.
        let aggregates: Vec<u64> = (0..500u64).map(|i| i.wrapping_mul(13)).collect();
        let expected = serial_exclusive(&aggregates);
        for _ in 0..10 {
            assert_eq!(decoupled_lookback_exclusive(&aggregates, 16), expected);
        }
    }
}
