//! Shared-memory model: capacity budgeting and bank-conflict analysis.
//!
//! The paper sizes its chunks "so that we can fit two chunk buffers in the
//! GPU's shared memory" (§3) and keeps "all chunk data in shared memory
//! between transformations to minimize accesses to the relatively slow main
//! memory" (§3.1). This module makes those constraints checkable: a
//! [`SharedMemory`] arena with the per-SM capacity of the evaluated GPUs,
//! plus a bank-conflict estimator for strided access patterns (32 4-byte
//! banks, as on all recent NVIDIA architectures).

/// Number of 4-byte shared-memory banks.
pub const BANKS: usize = 32;

/// Per-SM shared-memory budget of the evaluated GPUs, in bytes (both the
/// RTX 4090 and the A100 expose ≥ 100 KiB per SM; 48 KiB is the portable
/// per-block default the paper's sizing argument uses).
pub const DEFAULT_BLOCK_BUDGET: usize = 48 * 1024;

/// A shared-memory allocation arena for one thread block.
#[derive(Debug, Clone)]
pub struct SharedMemory {
    capacity: usize,
    allocated: usize,
    allocations: Vec<(&'static str, usize)>,
}

impl SharedMemory {
    /// Creates an arena with the default 48 KiB per-block budget.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_BLOCK_BUDGET)
    }

    /// Creates an arena with an explicit capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity,
            allocated: 0,
            allocations: Vec::new(),
        }
    }

    /// Reserves `bytes` for a named buffer.
    ///
    /// # Errors
    ///
    /// Returns the shortfall in bytes if the budget would be exceeded —
    /// the compile-time failure a real kernel would hit.
    pub fn alloc(&mut self, name: &'static str, bytes: usize) -> Result<(), usize> {
        let new_total = self.allocated.saturating_add(bytes);
        if new_total > self.capacity {
            return Err(new_total - self.capacity);
        }
        self.allocated = new_total;
        self.allocations.push((name, bytes));
        Ok(())
    }

    /// Bytes currently allocated.
    pub fn allocated(&self) -> usize {
        self.allocated
    }

    /// Remaining budget.
    pub fn remaining(&self) -> usize {
        self.capacity - self.allocated
    }

    /// Named allocations, in order.
    pub fn allocations(&self) -> &[(&'static str, usize)] {
        &self.allocations
    }
}

impl Default for SharedMemory {
    fn default() -> Self {
        Self::new()
    }
}

/// Worst-case bank-conflict degree for a warp accessing 32 4-byte words at
/// a constant stride (in words): the maximum number of lanes hitting the
/// same bank, i.e. the serialization factor of the access.
pub fn conflict_degree(stride_words: usize) -> usize {
    let mut per_bank = [0usize; BANKS];
    for lane in 0..BANKS {
        per_bank[(lane * stride_words) % BANKS] += 1;
    }
    per_bank.iter().copied().max().unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpc_transforms::CHUNK_SIZE;

    #[test]
    fn two_chunk_buffers_fit_the_papers_budget() {
        // The paper's §3 sizing argument, verified: two 16 KiB chunk
        // buffers fit in a 48 KiB block budget with room for metadata.
        let mut sm = SharedMemory::new();
        sm.alloc("chunk_in", CHUNK_SIZE)
            .expect("first chunk buffer fits");
        sm.alloc("chunk_out", CHUNK_SIZE)
            .expect("second chunk buffer fits");
        assert!(sm.remaining() >= 8 * 1024, "metadata headroom missing");
        // Double-buffering 24 KiB chunks would consume the entire budget,
        // leaving nothing for scan scratch or bitmap metadata.
        let mut sm2 = SharedMemory::new();
        sm2.alloc("a", 24 * 1024).expect("fits alone");
        sm2.alloc("b", 24 * 1024).expect("fits exactly");
        assert_eq!(sm2.remaining(), 0);
        assert!(
            sm2.alloc("scratch", 1).is_err(),
            "no metadata headroom at 24 KiB chunks"
        );
    }

    #[test]
    fn over_allocation_reports_shortfall() {
        let mut sm = SharedMemory::with_capacity(100);
        assert_eq!(sm.alloc("x", 150), Err(50));
        assert_eq!(sm.allocated(), 0);
        sm.alloc("y", 100).expect("fits exactly");
        assert_eq!(sm.remaining(), 0);
        assert_eq!(sm.allocations(), &[("y", 100)]);
    }

    #[test]
    fn unit_stride_is_conflict_free() {
        assert_eq!(conflict_degree(1), 1);
    }

    #[test]
    fn odd_strides_are_conflict_free() {
        // The classic padding trick: any odd stride avoids conflicts.
        for stride in (1..64).step_by(2) {
            assert_eq!(conflict_degree(stride), 1, "stride {stride}");
        }
    }

    #[test]
    fn power_of_two_strides_conflict() {
        assert_eq!(conflict_degree(2), 2);
        assert_eq!(conflict_degree(4), 4);
        assert_eq!(conflict_degree(8), 8);
        assert_eq!(
            conflict_degree(32),
            32,
            "stride 32 serializes the whole warp"
        );
    }

    #[test]
    fn transpose_column_access_motivates_shuffles() {
        // A naive shared-memory 32x32 transpose reads columns at stride 32
        // — fully serialized. This is why the paper's BIT stage uses warp
        // shuffles instead (§3.2): register exchange has no banks at all.
        assert_eq!(conflict_degree(32), BANKS);
    }
}
