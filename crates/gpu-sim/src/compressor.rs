//! The simulated-GPU compressor: `fpc-core`-compatible streams produced by
//! the GPU-style kernels.

use crate::device::DeviceProfile;
use crate::kernels::{GpuDpRatioChunkCodec, GpuDpSpeedCodec, GpuSpRatioCodec, GpuSpSpeedCodec};
use crate::{radix, unionfind};
use fpc_container::Header;
use fpc_core::{Algorithm, Error};
use fpc_transforms::{fcm, words};

/// Compresses and decompresses with the simulated GPU execution path.
///
/// Streams are bit-identical to those of [`fpc_core::Compressor`], so data
/// compressed "on the GPU" decompresses on the CPU and vice versa — the
/// compatibility property the paper's design centres on.
#[derive(Debug, Clone)]
pub struct GpuCompressor {
    algorithm: Algorithm,
    profile: DeviceProfile,
    threads: usize,
}

impl GpuCompressor {
    /// Creates a compressor for `algorithm` on the RTX 4090 profile.
    pub fn new(algorithm: Algorithm) -> Self {
        Self {
            algorithm,
            profile: DeviceProfile::rtx4090(),
            threads: 0,
        }
    }

    /// Selects a device profile (affects only the modeled throughput).
    pub fn with_profile(mut self, profile: DeviceProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Limits simulation worker threads (0 = all available).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The configured algorithm.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The device profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Compresses raw little-endian bytes (same stream as the CPU path).
    pub fn compress_bytes(&self, data: &[u8]) -> Vec<u8> {
        let algo = self.algorithm;
        if algo == Algorithm::Auto {
            // AUTO's per-chunk selection has no GPU-specific kernels; the
            // CPU path already produces the canonical adaptive stream.
            return fpc_core::Compressor::new(Algorithm::Auto)
                .with_threads(self.threads)
                .compress_bytes(data);
        }
        let mut header = Header::new(
            algo.id(),
            algo.element_width(),
            data.len() as u64,
            data.len() as u64,
        );
        match algo {
            Algorithm::SpSpeed => {
                fpc_container::compress(header, data, &GpuSpSpeedCodec, self.threads)
                    .expect("header matches payload")
            }
            Algorithm::SpRatio => {
                fpc_container::compress(header, data, &GpuSpRatioCodec, self.threads)
                    .expect("header matches payload")
            }
            Algorithm::DpSpeed => {
                fpc_container::compress(header, data, &GpuDpSpeedCodec, self.threads)
                    .expect("header matches payload")
            }
            Algorithm::DpRatio => {
                // Global FCM with the CUB-style radix sort (paper §3.2).
                let (w, tail) = words::bytes_to_u64(data);
                let mut pairs = fcm::hash_pairs(&w);
                radix::sort_pairs(&mut pairs);
                let enc = fcm::resolve_matches(&w, &pairs, fcm::MATCH_WINDOW);
                let mut payload = Vec::with_capacity(w.len() * 16 + tail.len());
                words::u64_to_bytes(&enc.values, &mut payload);
                words::u64_to_bytes(&enc.distances, &mut payload);
                payload.extend_from_slice(tail);
                header.payload_len = payload.len() as u64;
                fpc_container::compress(header, &payload, &GpuDpRatioChunkCodec, self.threads)
                    .expect("header matches payload")
            }
            Algorithm::Auto => unreachable!("delegated to the CPU path above"),
        }
    }

    /// Compresses single-precision values.
    ///
    /// # Panics
    ///
    /// Panics if the configured algorithm targets double precision.
    pub fn compress_f32(&self, data: &[f32]) -> Vec<u8> {
        assert!(
            self.algorithm.is_single_precision() || self.algorithm == Algorithm::Auto,
            "{} targets doubles",
            self.algorithm
        );
        if self.algorithm == Algorithm::Auto {
            // Delegate at the typed level so the header records width 4.
            return fpc_core::Compressor::new(Algorithm::Auto)
                .with_threads(self.threads)
                .compress_f32(data);
        }
        self.compress_bytes(&words::f32_slice_to_bytes(data))
    }

    /// Compresses double-precision values.
    ///
    /// # Panics
    ///
    /// Panics if the configured algorithm targets single precision.
    pub fn compress_f64(&self, data: &[f64]) -> Vec<u8> {
        assert!(
            !self.algorithm.is_single_precision(),
            "{} targets singles",
            self.algorithm
        );
        self.compress_bytes(&words::f64_slice_to_bytes(data))
    }

    /// Decompresses any FPcompress stream with the GPU-style decoders
    /// (chunk kernels plus, for DPratio, the parallel union-find FCM
    /// decode).
    ///
    /// # Errors
    ///
    /// Fails on corrupt or truncated streams.
    pub fn decompress_bytes(&self, stream: &[u8]) -> Result<Vec<u8>, Error> {
        let header = fpc_container::read_header(stream)?;
        let algorithm = Algorithm::from_id(header.algorithm)?;
        match algorithm {
            Algorithm::SpSpeed => {
                let (_, payload) =
                    fpc_container::decompress(stream, &GpuSpSpeedCodec, self.threads)?;
                Ok(payload)
            }
            Algorithm::SpRatio => {
                let (_, payload) =
                    fpc_container::decompress(stream, &GpuSpRatioCodec, self.threads)?;
                Ok(payload)
            }
            Algorithm::DpSpeed => {
                let (_, payload) =
                    fpc_container::decompress(stream, &GpuDpSpeedCodec, self.threads)?;
                Ok(payload)
            }
            Algorithm::DpRatio => {
                let (_, payload) =
                    fpc_container::decompress(stream, &GpuDpRatioChunkCodec, self.threads)?;
                let original_len = usize::try_from(header.original_len).map_err(|_| {
                    Error::Container(fpc_container::Error::Corrupt("length overflow"))
                })?;
                let nwords = original_len / 8;
                let tail_len = original_len % 8;
                if payload.len() != nwords * 16 + tail_len {
                    return Err(Error::Container(fpc_container::Error::Corrupt(
                        "fcm payload length mismatch",
                    )));
                }
                let (values, _) = words::bytes_to_u64(&payload[..nwords * 8]);
                let (distances, _) = words::bytes_to_u64(&payload[nwords * 8..nwords * 16]);
                let threads = if self.threads == 0 { 8 } else { self.threads };
                let decoded = unionfind::decode(&values, &distances, threads).map_err(|_| {
                    Error::Container(fpc_container::Error::Corrupt("fcm distance before start"))
                })?;
                let mut out = Vec::with_capacity(original_len);
                words::u64_to_bytes(&decoded, &mut out);
                out.extend_from_slice(&payload[nwords * 16..]);
                Ok(out)
            }
            Algorithm::Auto => {
                // Adaptive streams decode through the CPU dispatcher; the
                // per-chunk kernels are shared with the fixed paths.
                fpc_core::decompress_bytes_with(stream, self.threads)
            }
        }
    }

    /// Decompresses a single-precision stream.
    ///
    /// # Errors
    ///
    /// Fails on corrupt streams or width mismatch.
    pub fn decompress_f32(&self, stream: &[u8]) -> Result<Vec<f32>, Error> {
        let header = fpc_container::read_header(stream)?;
        if header.element_width != 4 {
            return Err(Error::ElementMismatch {
                expected: 4,
                actual: header.element_width,
            });
        }
        let bytes = self.decompress_bytes(stream)?;
        words::bytes_to_f32_vec(&bytes).ok_or(Error::LengthIndivisible {
            len: bytes.len() as u64,
            width: 4,
        })
    }

    /// Decompresses a double-precision stream.
    ///
    /// # Errors
    ///
    /// Fails on corrupt streams or width mismatch.
    pub fn decompress_f64(&self, stream: &[u8]) -> Result<Vec<f64>, Error> {
        let header = fpc_container::read_header(stream)?;
        if header.element_width != 8 {
            return Err(Error::ElementMismatch {
                expected: 8,
                actual: header.element_width,
            });
        }
        let bytes = self.decompress_bytes(stream)?;
        words::bytes_to_f64_vec(&bytes).ok_or(Error::LengthIndivisible {
            len: bytes.len() as u64,
            width: 8,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpc_core::Compressor;

    fn smooth_f32(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * 0.0007).sin() * 40.0).collect()
    }

    fn smooth_f64(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.0003).cos() * 7.0 + 2.0)
            .collect()
    }

    #[test]
    fn gpu_streams_bit_identical_to_cpu_sp() {
        let data = smooth_f32(60_000);
        for algo in [Algorithm::SpSpeed, Algorithm::SpRatio] {
            let gpu = GpuCompressor::new(algo).compress_f32(&data);
            let cpu = Compressor::new(algo).compress_f32(&data);
            assert_eq!(gpu, cpu, "{algo}: GPU and CPU streams must be identical");
        }
    }

    #[test]
    fn gpu_streams_bit_identical_to_cpu_dp() {
        let data = smooth_f64(30_000);
        for algo in [Algorithm::DpSpeed, Algorithm::DpRatio] {
            let gpu = GpuCompressor::new(algo).compress_f64(&data);
            let cpu = Compressor::new(algo).compress_f64(&data);
            assert_eq!(gpu, cpu, "{algo}");
        }
    }

    #[test]
    fn compress_on_gpu_decompress_on_cpu() {
        let data = smooth_f64(25_000);
        let stream = GpuCompressor::new(Algorithm::DpRatio).compress_f64(&data);
        let back = fpc_core::decompress_f64(&stream).unwrap();
        assert!(data
            .iter()
            .zip(&back)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn compress_on_cpu_decompress_on_gpu() {
        let data = smooth_f32(25_000);
        for algo in [Algorithm::SpSpeed, Algorithm::SpRatio] {
            let stream = Compressor::new(algo).compress_f32(&data);
            let back = GpuCompressor::new(algo).decompress_f32(&stream).unwrap();
            assert!(
                data.iter()
                    .zip(&back)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "{algo}"
            );
        }
        let data64 = smooth_f64(25_000);
        for algo in [Algorithm::DpSpeed, Algorithm::DpRatio] {
            let stream = Compressor::new(algo).compress_f64(&data64);
            let back = GpuCompressor::new(algo).decompress_f64(&stream).unwrap();
            assert!(
                data64
                    .iter()
                    .zip(&back)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "{algo}"
            );
        }
    }

    #[test]
    fn profiles_only_affect_model_not_bytes() {
        let data = smooth_f32(10_000);
        let rtx = GpuCompressor::new(Algorithm::SpRatio).compress_f32(&data);
        let a100 = GpuCompressor::new(Algorithm::SpRatio)
            .with_profile(DeviceProfile::a100())
            .compress_f32(&data);
        assert_eq!(rtx, a100);
    }

    #[test]
    fn width_mismatch_rejected() {
        let stream = GpuCompressor::new(Algorithm::SpSpeed).compress_f32(&smooth_f32(64));
        assert!(GpuCompressor::new(Algorithm::DpSpeed)
            .decompress_f64(&stream)
            .is_err());
    }

    #[test]
    fn corrupt_stream_rejected() {
        let data = smooth_f64(8_000);
        let stream = GpuCompressor::new(Algorithm::DpRatio).compress_f64(&data);
        assert!(GpuCompressor::new(Algorithm::DpRatio)
            .decompress_bytes(&stream[..stream.len() - 7])
            .is_err());
    }
}
