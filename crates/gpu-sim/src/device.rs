//! Device profiles and the analytic GPU throughput model.
//!
//! Real GPU throughput cannot be measured in this environment, so the
//! benchmark harness *models* it: each codec's compression and
//! decompression throughput on each device is taken from a table calibrated
//! to the positions reported in the paper's Figures 8–11 and 14–17 (e.g.
//! SPspeed ≈ 518 GB/s compression on the RTX 4090 — the number quoted in
//! §5.1). Compression **ratios** in the harness are always real, produced
//! by actually running the codecs; only GPU *speeds* are modeled. The model
//! preserves the orderings the paper's conclusions rest on: speed ≫ ratio
//! variants, Bitcomp/ANS fastest among baselines (unconcatenated output),
//! DPratio's compression ≪ its decompression (sorting), and the RTX 4090
//! beating the A100 for all but the Bitcomp variants.

/// Throughput in gigabytes per second.
pub type GBPS = f64;

/// Compression direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Input → compressed stream.
    Compress,
    /// Compressed stream → output.
    Decompress,
}

/// A simulated GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Marketing name, e.g. `"RTX 4090"`.
    pub name: &'static str,
    /// Streaming multiprocessors.
    pub sms: u32,
    /// Processing elements (CUDA cores).
    pub cores: u32,
    /// Peak global-memory bandwidth in GB/s.
    pub memory_bandwidth: GBPS,
    /// Scale applied to the RTX 4090 calibration numbers.
    throughput_scale: f64,
    /// Extra scale for the Bitcomp variants (paper: "Bitcomp-b appears to
    /// be particularly optimized for the A100").
    bitcomp_scale: f64,
}

impl DeviceProfile {
    /// NVIDIA GeForce RTX 4090 (Lovelace): 128 SMs, 16 384 cores (paper §4).
    pub fn rtx4090() -> Self {
        Self {
            name: "RTX 4090",
            sms: 128,
            cores: 16_384,
            memory_bandwidth: 1008.0,
            throughput_scale: 1.0,
            bitcomp_scale: 1.0,
        }
    }

    /// NVIDIA A100 (Ampere): 108 SMs, 6 912 cores (paper §4).
    pub fn a100() -> Self {
        Self {
            name: "A100",
            sms: 108,
            cores: 6_912,
            memory_bandwidth: 1555.0,
            throughput_scale: 0.52,
            bitcomp_scale: 2.4,
        }
    }

    /// Modeled throughput of `codec` in `direction`, or `None` for codecs
    /// with no GPU implementation (CPU-only comparators).
    pub fn modeled_gbps(&self, codec: &str, direction: Direction) -> Option<GBPS> {
        let (comp, dec) = base_rtx4090(codec)?;
        let mut v = match direction {
            Direction::Compress => comp,
            Direction::Decompress => dec,
        };
        v *= self.throughput_scale;
        if codec.starts_with("Bitcomp") {
            v *= self.bitcomp_scale / self.throughput_scale.max(1e-9);
        }
        Some(v.min(self.memory_bandwidth))
    }
}

/// RTX 4090 calibration table: (compress GB/s, decompress GB/s), read off
/// the paper's Figures 8/9 (SP) and 14/15 (DP).
fn base_rtx4090(codec: &str) -> Option<(GBPS, GBPS)> {
    Some(match codec {
        // Ours (§5.1: SPspeed "compresses and decompresses at over
        // 500 GB/s"; DPratio's compression is sort-bound).
        "SPspeed" => (518.0, 540.0),
        "SPratio" => (130.0, 215.0),
        "DPspeed" => (420.0, 460.0),
        "DPratio" => (27.0, 240.0),
        // nvCOMP codecs (unconcatenated output inflates their speeds).
        "Bitcomp" => (610.0, 680.0),
        "Bitcomp-sparse" => (540.0, 600.0),
        "ANS" => (330.0, 420.0),
        "Cascaded" => (240.0, 290.0),
        "LZ4" => (45.0, 120.0),
        "Snappy" => (55.0, 130.0),
        "Gdeflate" => (12.0, 160.0),
        "ZSTD-gpu" => (28.0, 75.0),
        // Academic GPU codecs.
        "GFC" => (160.0, 210.0),
        "MPC" => (140.0, 180.0),
        "ndzip" => (75.0, 105.0),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_paper_hardware() {
        let rtx = DeviceProfile::rtx4090();
        assert_eq!(rtx.sms, 128);
        assert_eq!(rtx.cores, 16_384);
        let a100 = DeviceProfile::a100();
        assert_eq!(a100.sms, 108);
        assert_eq!(a100.cores, 6_912);
    }

    #[test]
    fn spspeed_exceeds_500_gbps_on_rtx4090() {
        // The paper's headline number.
        let rtx = DeviceProfile::rtx4090();
        assert!(
            rtx.modeled_gbps("SPspeed", Direction::Compress)
                .expect("modeled")
                > 500.0
        );
        assert!(
            rtx.modeled_gbps("SPspeed", Direction::Decompress)
                .expect("modeled")
                > 500.0
        );
    }

    #[test]
    fn speed_variants_beat_ratio_variants() {
        let rtx = DeviceProfile::rtx4090();
        for dir in [Direction::Compress, Direction::Decompress] {
            let sp_speed = rtx.modeled_gbps("SPspeed", dir).expect("modeled");
            let sp_ratio = rtx.modeled_gbps("SPratio", dir).expect("modeled");
            assert!(sp_speed > sp_ratio);
            let dp_speed = rtx.modeled_gbps("DPspeed", dir).expect("modeled");
            let dp_ratio = rtx.modeled_gbps("DPratio", dir).expect("modeled");
            assert!(dp_speed > dp_ratio);
        }
    }

    #[test]
    fn dpratio_compression_is_sort_bound() {
        // §5.2: "DPratio's decompression throughput is much higher than its
        // compression throughput because no sorting is required".
        let rtx = DeviceProfile::rtx4090();
        let comp = rtx
            .modeled_gbps("DPratio", Direction::Compress)
            .expect("modeled");
        let dec = rtx
            .modeled_gbps("DPratio", Direction::Decompress)
            .expect("modeled");
        assert!(dec > comp * 5.0);
    }

    #[test]
    fn a100_slower_except_bitcomp() {
        let rtx = DeviceProfile::rtx4090();
        let a100 = DeviceProfile::a100();
        for codec in ["SPspeed", "SPratio", "DPspeed", "DPratio", "MPC", "ndzip"] {
            let fast = rtx
                .modeled_gbps(codec, Direction::Compress)
                .expect("modeled");
            let slow = a100
                .modeled_gbps(codec, Direction::Compress)
                .expect("modeled");
            assert!(fast > slow, "{codec}: {fast} vs {slow}");
        }
        // Bitcomp runs faster on the A100 (paper §5.1).
        let b_rtx = rtx
            .modeled_gbps("Bitcomp", Direction::Compress)
            .expect("modeled");
        let b_a100 = a100
            .modeled_gbps("Bitcomp", Direction::Compress)
            .expect("modeled");
        assert!(b_a100 > b_rtx);
    }

    #[test]
    fn cpu_only_codecs_have_no_gpu_model() {
        let rtx = DeviceProfile::rtx4090();
        for codec in [
            "FPC",
            "pFPC",
            "SPDP-fast",
            "FPzip",
            "Gzip-best",
            "Bzip2",
            "ZSTD-best",
        ] {
            assert!(
                rtx.modeled_gbps(codec, Direction::Compress).is_none(),
                "{codec}"
            );
        }
    }

    #[test]
    fn throughput_capped_by_memory_bandwidth() {
        let a100 = DeviceProfile::a100();
        for codec in ["Bitcomp", "Bitcomp-sparse"] {
            for dir in [Direction::Compress, Direction::Decompress] {
                let v = a100.modeled_gbps(codec, dir).expect("modeled");
                assert!(v <= a100.memory_bandwidth);
            }
        }
    }
}
