//! CUB-style least-significant-digit radix sort.
//!
//! The FCM encoder sorts (hash, index) pairs; on the GPU the paper uses the
//! CUB library's radix sort (§3.2). This stand-in is an 8-bit-digit LSD
//! radix sort whose per-digit pass is the standard GPU formulation:
//! histogram, exclusive prefix sum over digit counts, and a stable scatter.

/// Sorts `(key, index)` pairs by key, then index — stable, so pairs with
/// equal keys keep ascending index order, matching
/// `sort_unstable_by(...by (hash, index))` on unique (key, index) pairs.
pub fn sort_pairs(pairs: &mut Vec<(u64, u32)>) {
    let n = pairs.len();
    if n <= 1 {
        return;
    }
    let t = fpc_metrics::timer(fpc_metrics::Stage::GpuRadixSort);
    let mut src: Vec<(u64, u32)> = std::mem::take(pairs);
    let mut dst: Vec<(u64, u32)> = vec![(0, 0); n];
    // Index digits first (LSD over the composite (key, index) sort key).
    for shift in [0u32, 8, 16, 24] {
        radix_pass(&src, &mut dst, |p| ((p.1 >> shift) & 0xFF) as usize);
        std::mem::swap(&mut src, &mut dst);
    }
    for shift in [0u32, 8, 16, 24, 32, 40, 48, 56] {
        radix_pass(&src, &mut dst, |p| ((p.0 >> shift) & 0xFF) as usize);
        std::mem::swap(&mut src, &mut dst);
    }
    *pairs = src;
    t.finish(n as u64 * 12);
}

fn radix_pass<F: Fn(&(u64, u32)) -> usize>(src: &[(u64, u32)], dst: &mut [(u64, u32)], digit: F) {
    // Histogram.
    let mut counts = [0usize; 256];
    for p in src {
        counts[digit(p)] += 1;
    }
    // Exclusive prefix sum (the GPU does this with a block scan).
    let mut offsets = [0usize; 256];
    let mut acc = 0usize;
    for d in 0..256 {
        offsets[d] = acc;
        acc += counts[d];
    }
    // Stable scatter.
    for p in src {
        let d = digit(p);
        dst[offsets[d]] = *p;
        offsets[d] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single() {
        let mut v: Vec<(u64, u32)> = vec![];
        sort_pairs(&mut v);
        assert!(v.is_empty());
        let mut v = vec![(9u64, 1u32)];
        sort_pairs(&mut v);
        assert_eq!(v, vec![(9, 1)]);
    }

    #[test]
    fn matches_std_sort() {
        let mut pairs: Vec<(u64, u32)> = (0..10_000u32)
            .map(|i| ((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % 500, i))
            .collect();
        let mut expected = pairs.clone();
        expected.sort_unstable();
        sort_pairs(&mut pairs);
        assert_eq!(pairs, expected);
    }

    #[test]
    fn equal_keys_keep_index_order() {
        let mut pairs: Vec<(u64, u32)> = (0..1000u32).rev().map(|i| (7, i)).collect();
        sort_pairs(&mut pairs);
        for (expect, &(k, idx)) in pairs.iter().enumerate() {
            assert_eq!(k, 7);
            assert_eq!(idx as usize, expect);
        }
    }

    #[test]
    fn extreme_keys() {
        let mut pairs = vec![(u64::MAX, 0u32), (0, 1), (u64::MAX, 2), (1 << 63, 3)];
        sort_pairs(&mut pairs);
        assert_eq!(
            pairs,
            vec![(0, 1), (1 << 63, 3), (u64::MAX, 0), (u64::MAX, 2)]
        );
    }
}
