//! Simulated-GPU execution path for the FPcompress algorithms.
//!
//! The paper's central systems claim is that all four algorithms admit
//! *compatible* CPU and GPU implementations: data compressed on one device
//! decompresses bit-identically on the other. Without CUDA hardware in this
//! environment, this crate reproduces the GPU side as a functional
//! execution-model simulation:
//!
//! * [`warp`] — 32-lane warp primitives: shuffles, ballots, reductions, and
//!   warp scans, including the 5-step shuffle-based 32×32 bit transposition
//!   the paper uses for the BIT stage (§3.2);
//! * [`scan`] — block-level prefix sums and the Merrill–Garland decoupled
//!   look-back scan used to concatenate compressed chunks (§3.1);
//! * [`radix`] — a CUB-style least-significant-digit radix sort standing in
//!   for the CUB sort that the FCM encoder uses (§3.2);
//! * [`unionfind`] — the parallel union-find "find" with path shortening
//!   that the FCM decoder uses (§3.2);
//! * [`kernels`] — the four chunk pipelines rebuilt from warp/block
//!   primitives, asserted byte-identical to the scalar `fpc-core` path;
//! * [`device`] — device profiles (RTX 4090, A100) and the analytic
//!   throughput model used by the benchmark harness (absolute GPU GB/s
//!   cannot be measured here; see DESIGN.md's substitution table).
//!
//! The headline API is [`GpuCompressor`], a drop-in analogue of
//! `fpc_core::Compressor` whose streams are bit-identical to the CPU ones —
//! the property the paper's "compress on GPU, decompress on CPU" use case
//! rests on.
//!
//! # Example
//!
//! ```
//! use fpc_core::Algorithm;
//! use fpc_gpu_sim::GpuCompressor;
//!
//! # fn main() -> Result<(), fpc_core::Error> {
//! let data: Vec<f32> = (0..8192).map(|i| (i as f32 * 0.01).sin()).collect();
//! let gpu = GpuCompressor::new(Algorithm::SpRatio);
//! let stream = gpu.compress_f32(&data);
//! // Decompress on the "CPU" — streams are interchangeable.
//! let restored = fpc_core::decompress_f32(&stream)?;
//! assert_eq!(restored.len(), data.len());
//! # Ok(())
//! # }
//! ```

pub mod device;
pub mod kernels;
pub mod radix;
pub mod scan;
pub mod shared;
pub mod unionfind;
pub mod warp;

mod compressor;

pub use compressor::GpuCompressor;
pub use device::{DeviceProfile, Direction, GBPS};

/// Number of lanes in a warp.
pub const WARP_SIZE: usize = 32;
