//! Exhaustive CPU/GPU equivalence: the property the paper's design rests
//! on, checked deterministically over arbitrary inputs and over every
//! synthetic dataset suite.

use fpc_core::{Algorithm, Compressor};
use fpc_gpu_sim::GpuCompressor;
use fpc_prng::fuzz::run_cases;

#[test]
fn streams_identical_on_arbitrary_bytes() {
    run_cases("gpu/bytes-equivalence", 24, |rng, _| {
        let data = rng.bytes_range(0usize..20_000);
        for algo in Algorithm::ALL {
            let cpu = Compressor::new(algo).with_threads(1).compress_bytes(&data);
            let gpu = GpuCompressor::new(algo)
                .with_threads(1)
                .compress_bytes(&data);
            assert_eq!(cpu, gpu, "{algo} diverged");
            // And all four decode paths agree.
            let via_cpu = fpc_core::decompress_bytes(&cpu).unwrap();
            let via_gpu = GpuCompressor::new(algo).decompress_bytes(&cpu).unwrap();
            assert_eq!(via_cpu, data);
            assert_eq!(via_gpu, data);
        }
    });
}

#[test]
fn streams_identical_on_arbitrary_floats() {
    run_cases("gpu/float-equivalence", 24, |rng, _| {
        let n = rng.gen_range(0usize..5_000);
        let values: Vec<f32> = (0..n).map(|_| f32::from_bits(rng.next_u32())).collect();
        for algo in [Algorithm::SpSpeed, Algorithm::SpRatio] {
            let cpu = Compressor::new(algo).with_threads(2).compress_f32(&values);
            let gpu = GpuCompressor::new(algo)
                .with_threads(2)
                .compress_f32(&values);
            assert_eq!(cpu, gpu, "{algo} diverged");
        }
    });
}

#[test]
fn streams_identical_on_every_dataset_suite() {
    use fpc_datagen::{double_precision_suites, single_precision_suites, Scale};
    for suite in single_precision_suites(Scale::Small) {
        let file = &suite.files[0];
        for algo in [Algorithm::SpSpeed, Algorithm::SpRatio] {
            let cpu = Compressor::new(algo).compress_f32(&file.values);
            let gpu = GpuCompressor::new(algo).compress_f32(&file.values);
            assert_eq!(cpu, gpu, "{algo} diverged on {}", file.name);
        }
    }
    for suite in double_precision_suites(Scale::Small) {
        let file = &suite.files[0];
        for algo in [Algorithm::DpSpeed, Algorithm::DpRatio] {
            let cpu = Compressor::new(algo).compress_f64(&file.values);
            let gpu = GpuCompressor::new(algo).compress_f64(&file.values);
            assert_eq!(cpu, gpu, "{algo} diverged on {}", file.name);
        }
    }
}
