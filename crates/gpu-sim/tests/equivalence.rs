//! Exhaustive CPU/GPU equivalence: the property the paper's design rests
//! on, checked with proptest over arbitrary inputs and over every synthetic
//! dataset suite.

use fpc_core::{Algorithm, Compressor};
use fpc_gpu_sim::GpuCompressor;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn streams_identical_on_arbitrary_bytes(
        data in prop::collection::vec(any::<u8>(), 0..20_000)
    ) {
        for algo in Algorithm::ALL {
            let cpu = Compressor::new(algo).with_threads(1).compress_bytes(&data);
            let gpu = GpuCompressor::new(algo).with_threads(1).compress_bytes(&data);
            prop_assert_eq!(&cpu, &gpu, "{} diverged", algo);
            // And all four decode paths agree.
            let via_cpu = fpc_core::decompress_bytes(&cpu).unwrap();
            let via_gpu = GpuCompressor::new(algo).decompress_bytes(&cpu).unwrap();
            prop_assert_eq!(&via_cpu, &data);
            prop_assert_eq!(&via_gpu, &data);
        }
    }

    #[test]
    fn streams_identical_on_arbitrary_floats(
        values in prop::collection::vec(any::<u32>().prop_map(f32::from_bits), 0..5_000)
    ) {
        for algo in [Algorithm::SpSpeed, Algorithm::SpRatio] {
            let cpu = Compressor::new(algo).with_threads(2).compress_f32(&values);
            let gpu = GpuCompressor::new(algo).with_threads(2).compress_f32(&values);
            prop_assert_eq!(cpu, gpu, "{} diverged", algo);
        }
    }
}

#[test]
fn streams_identical_on_every_dataset_suite() {
    use fpc_datagen::{double_precision_suites, single_precision_suites, Scale};
    for suite in single_precision_suites(Scale::Small) {
        let file = &suite.files[0];
        for algo in [Algorithm::SpSpeed, Algorithm::SpRatio] {
            let cpu = Compressor::new(algo).compress_f32(&file.values);
            let gpu = GpuCompressor::new(algo).compress_f32(&file.values);
            assert_eq!(cpu, gpu, "{algo} diverged on {}", file.name);
        }
    }
    for suite in double_precision_suites(Scale::Small) {
        let file = &suite.files[0];
        for algo in [Algorithm::DpSpeed, Algorithm::DpRatio] {
            let cpu = Compressor::new(algo).compress_f64(&file.values);
            let gpu = GpuCompressor::new(algo).compress_f64(&file.values);
            assert_eq!(cpu, gpu, "{algo} diverged on {}", file.name);
        }
    }
}
