//! Content-addressed in-memory cache of compressed chunks.
//!
//! The served workloads that matter (FCBench's database/query and telemetry
//! traces) are read-heavy with highly skewed key popularity: the same hot
//! chunks are compressed and decompressed over and over. Since the container
//! already checksums every chunk with XXH64, the chunk *contents* are a
//! natural cache key — two byte-identical chunks encode to byte-identical
//! bodies (every codec is a pure function of the chunk), so a cache lookup
//! is indistinguishable from a fresh encode. That property is the whole
//! contract: **cache-on and cache-off must produce byte-identical streams**,
//! and every consumer asserts it.
//!
//! Design:
//!
//! - **Keys** ([`CacheKey`]) are two independent XXH64 hashes of the chunk
//!   bytes under different seeds, with a caller-supplied context word mixed
//!   into both (algorithm id, direction, expected length — anything that
//!   changes what the cached value means). 128 effective bits makes an
//!   accidental collision — which would silently substitute another chunk's
//!   bytes — beyond reach of any realistic working set (~2^64 chunks for a
//!   50% birthday bound).
//! - **Sharding:** keys map to one of a power-of-two number of shards, each
//!   behind its own mutex, so concurrent connections rarely contend. Each
//!   shard owns `capacity / shards` bytes of the budget; the global
//!   capacity is therefore a hard bound, never exceeded.
//! - **Eviction** is segmented LRU per shard: new entries enter a
//!   *probationary* segment; a hit promotes to a *protected* segment capped
//!   at ~80% of the shard budget (overflow demotes the protected LRU back
//!   to probation). One-hit-wonder scans flush only the probationary
//!   segment and cannot evict the hot set — the failure mode of plain LRU
//!   under zipfian traffic with scattered cold keys.
//! - **Values** are `Arc<[u8]>`, so a hit hands out a reference without
//!   copying and eviction never invalidates an outstanding reader.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use fpc_container::checksum::xxh64;

/// Seed for the high key half ("fpcCACHE" LE) — distinct from the container
/// stream seed so a cache key never doubles as a frame checksum.
const SEED_HI: u64 = u64::from_le_bytes(*b"fpcCACHE");
/// Seed for the low key half ("EHCACcpf" LE).
const SEED_LO: u64 = u64::from_le_bytes(*b"EHCACcpf");

/// Default shard count (power of two). Per-shard mutexes make this the
/// effective concurrency limit for cache operations.
pub const DEFAULT_SHARDS: usize = 16;

/// Fraction of a shard's byte budget reserved for the protected segment,
/// expressed as parts per 10 (8 == 80%).
const PROTECTED_TENTHS: u64 = 8;

const NIL: u32 = u32::MAX;

/// 128-bit content address: two XXH64 halves under independent seeds.
///
/// `context` namespaces keys whose *bytes* may coincide but whose cached
/// values differ (e.g. compress-path vs decompress-path entries, different
/// algorithms, different expected lengths).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    hi: u64,
    lo: u64,
}

impl CacheKey {
    /// Hashes `bytes` under both seeds, mixing `context` into each half.
    pub fn new(bytes: &[u8], context: u64) -> CacheKey {
        CacheKey {
            hi: xxh64(bytes, SEED_HI ^ context),
            lo: xxh64(bytes, SEED_LO ^ context.rotate_left(32)),
        }
    }

    /// Shard index for this key (`shards` must be a power of two).
    fn shard(&self, shards: usize) -> usize {
        // The low half's top bits are well mixed (XXH64 avalanche); the
        // HashMap inside the shard uses the full key, so reusing low bits
        // here costs nothing.
        (self.lo as usize) & (shards - 1)
    }
}

/// Monotonic operation counters, mirrored into the `cache.*` metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Values actually stored (oversized and duplicate inserts excluded).
    pub insertions: u64,
    /// Entries removed to make room.
    pub evictions: u64,
    /// Sum of inserted value lengths.
    pub bytes_inserted: u64,
    /// Sum of evicted value lengths.
    pub bytes_evicted: u64,
    /// Bytes currently resident across all shards.
    pub resident_bytes: u64,
    /// Entries currently resident across all shards.
    pub resident_entries: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; `0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One resident entry in a shard's slab.
struct Entry {
    key: CacheKey,
    value: Arc<[u8]>,
    prev: u32,
    next: u32,
    protected: bool,
}

/// Intrusive doubly-linked LRU list over slab indices (head = MRU).
#[derive(Clone, Copy)]
struct Segment {
    head: u32,
    tail: u32,
    bytes: u64,
}

impl Segment {
    fn new() -> Segment {
        Segment {
            head: NIL,
            tail: NIL,
            bytes: 0,
        }
    }
}

struct Shard {
    map: HashMap<CacheKey, u32>,
    slab: Vec<Entry>,
    free: Vec<u32>,
    probation: Segment,
    protected: Segment,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            probation: Segment::new(),
            protected: Segment::new(),
        }
    }

    fn bytes(&self) -> u64 {
        self.probation.bytes + self.protected.bytes
    }

    fn segment(&mut self, protected: bool) -> &mut Segment {
        if protected {
            &mut self.protected
        } else {
            &mut self.probation
        }
    }

    /// Unlinks slot `idx` from its segment (does not free the slot).
    fn unlink(&mut self, idx: u32) {
        let (prev, next, protected, len) = {
            let e = &self.slab[idx as usize];
            (e.prev, e.next, e.protected, e.value.len() as u64)
        };
        if prev == NIL {
            self.segment(protected).head = next;
        } else {
            self.slab[prev as usize].next = next;
        }
        if next == NIL {
            self.segment(protected).tail = prev;
        } else {
            self.slab[next as usize].prev = prev;
        }
        self.segment(protected).bytes -= len;
    }

    /// Links slot `idx` at the MRU end of a segment.
    fn link_front(&mut self, idx: u32, protected: bool) {
        let len = self.slab[idx as usize].value.len() as u64;
        let old_head = self.segment(protected).head;
        {
            let e = &mut self.slab[idx as usize];
            e.prev = NIL;
            e.next = old_head;
            e.protected = protected;
        }
        if old_head != NIL {
            self.slab[old_head as usize].prev = idx;
        }
        let seg = self.segment(protected);
        seg.head = idx;
        if seg.tail == NIL {
            seg.tail = idx;
        }
        seg.bytes += len;
    }

    /// Removes the LRU entry of `protected`'s segment, returning its length.
    fn evict_tail(&mut self, protected: bool) -> Option<u64> {
        let tail = self.segment(protected).tail;
        if tail == NIL {
            return None;
        }
        self.unlink(tail);
        let e = &mut self.slab[tail as usize];
        let len = e.value.len() as u64;
        self.map.remove(&e.key);
        e.value = Arc::from(&[][..]);
        self.free.push(tail);
        Some(len)
    }
}

/// Sharded, byte-budgeted, segmented-LRU cache of immutable byte values.
///
/// See the module docs for the design; the invariants a [`ChunkCache`]
/// maintains at every instant are:
///
/// 1. resident bytes never exceed `capacity` (enforced per shard);
/// 2. a `get` hit returns exactly the bytes previously `insert`ed under
///    that key;
/// 3. all operations are safe under arbitrary concurrency (per-shard
///    mutexes; no lock is held across user code).
pub struct ChunkCache {
    shards: Box<[Mutex<Shard>]>,
    shard_budget: u64,
    capacity: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    bytes_inserted: AtomicU64,
    bytes_evicted: AtomicU64,
}

impl ChunkCache {
    /// Creates a cache bounded by `capacity` bytes with
    /// [`DEFAULT_SHARDS`] shards.
    pub fn new(capacity: u64) -> ChunkCache {
        ChunkCache::with_shards(capacity, DEFAULT_SHARDS)
    }

    /// Creates a cache with an explicit shard count (rounded up to a power
    /// of two, minimum 1). A single shard gives globally exact LRU order —
    /// useful for deterministic tests; more shards trade exactness of the
    /// global order for parallelism.
    pub fn with_shards(capacity: u64, shards: usize) -> ChunkCache {
        let shards = shards.max(1).next_power_of_two();
        let mut v = Vec::with_capacity(shards);
        for _ in 0..shards {
            v.push(Mutex::new(Shard::new()));
        }
        ChunkCache {
            shards: v.into_boxed_slice(),
            shard_budget: capacity / shards as u64,
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            bytes_inserted: AtomicU64::new(0),
            bytes_evicted: AtomicU64::new(0),
        }
    }

    /// Total byte budget.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    fn lock_shard(&self, key: &CacheKey) -> MutexGuard<'_, Shard> {
        let idx = key.shard(self.shards.len());
        // A poisoned shard mutex means another thread panicked inside the
        // cache; its state is still structurally sound (no user code runs
        // under the lock), so keep serving.
        match self.shards[idx].lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Looks up `key`, promoting the entry on a hit.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<[u8]>> {
        let mut shard = self.lock_shard(key);
        let Some(&idx) = shard.map.get(key) else {
            drop(shard);
            self.misses.fetch_add(1, Ordering::Relaxed);
            fpc_metrics::incr(fpc_metrics::Counter::CacheMisses, 1);
            return None;
        };
        let value = Arc::clone(&shard.slab[idx as usize].value);
        // Segmented-LRU promotion: probation -> protected on first re-use;
        // already-protected entries just move to their segment's MRU end.
        shard.unlink(idx);
        shard.link_front(idx, true);
        let protected_cap = self.shard_budget * PROTECTED_TENTHS / 10;
        while shard.protected.bytes > protected_cap {
            let demote = shard.protected.tail;
            if demote == idx || demote == NIL {
                // Never demote the entry just promoted (a single oversized
                // hot entry would otherwise ping-pong forever).
                break;
            }
            shard.unlink(demote);
            shard.link_front(demote, false);
        }
        drop(shard);
        self.hits.fetch_add(1, Ordering::Relaxed);
        fpc_metrics::incr(fpc_metrics::Counter::CacheHits, 1);
        Some(value)
    }

    /// Inserts `value` under `key`.
    ///
    /// Values larger than a shard's byte budget are not cached (they would
    /// evict an entire shard for one entry). Re-inserting an existing key
    /// refreshes its recency but stores nothing — keys are content
    /// addresses, so the value is the same by construction.
    pub fn insert(&self, key: CacheKey, value: Arc<[u8]>) {
        let len = value.len() as u64;
        if len > self.shard_budget || len == 0 {
            return;
        }
        let mut evicted_n = 0u64;
        let mut evicted_bytes = 0u64;
        {
            let mut shard = self.lock_shard(&key);
            if let Some(&idx) = shard.map.get(&key) {
                let protected = shard.slab[idx as usize].protected;
                shard.unlink(idx);
                shard.link_front(idx, protected);
                return;
            }
            while shard.bytes() + len > self.shard_budget {
                // Probationary entries go first; the protected segment is
                // only raided when probation is already empty.
                let freed = shard
                    .evict_tail(false)
                    .or_else(|| shard.evict_tail(true))
                    .expect("non-empty shard over budget has a tail to evict");
                evicted_n += 1;
                evicted_bytes += freed;
            }
            let idx = match shard.free.pop() {
                Some(idx) => {
                    shard.slab[idx as usize] = Entry {
                        key,
                        value,
                        prev: NIL,
                        next: NIL,
                        protected: false,
                    };
                    idx
                }
                None => {
                    shard.slab.push(Entry {
                        key,
                        value,
                        prev: NIL,
                        next: NIL,
                        protected: false,
                    });
                    (shard.slab.len() - 1) as u32
                }
            };
            shard.map.insert(key, idx);
            shard.link_front(idx, false);
        }
        self.insertions.fetch_add(1, Ordering::Relaxed);
        self.bytes_inserted.fetch_add(len, Ordering::Relaxed);
        fpc_metrics::incr(fpc_metrics::Counter::CacheInsertions, 1);
        fpc_metrics::incr(fpc_metrics::Counter::CacheBytesInserted, len);
        if evicted_n > 0 {
            self.evictions.fetch_add(evicted_n, Ordering::Relaxed);
            self.bytes_evicted
                .fetch_add(evicted_bytes, Ordering::Relaxed);
            fpc_metrics::incr(fpc_metrics::Counter::CacheEvictions, evicted_n);
            fpc_metrics::incr(fpc_metrics::Counter::CacheBytesEvicted, evicted_bytes);
        }
    }

    /// Convenience get-or-compute: returns the cached value for `key`, or
    /// runs `compute`, caches its result, and returns it.
    pub fn get_or_insert_with(
        &self,
        key: CacheKey,
        compute: impl FnOnce() -> Arc<[u8]>,
    ) -> Arc<[u8]> {
        if let Some(v) = self.get(&key) {
            return v;
        }
        let v = compute();
        self.insert(key, Arc::clone(&v));
        v
    }

    /// Bytes currently resident across all shards.
    pub fn resident_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| match s.lock() {
                Ok(g) => g.bytes(),
                Err(p) => p.into_inner().bytes(),
            })
            .sum()
    }

    /// Snapshot of the operation counters and residency.
    pub fn stats(&self) -> CacheStats {
        let mut resident_bytes = 0;
        let mut resident_entries = 0;
        for s in self.shards.iter() {
            let g = match s.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            resident_bytes += g.bytes();
            resident_entries += g.map.len() as u64;
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes_inserted: self.bytes_inserted.load(Ordering::Relaxed),
            bytes_evicted: self.bytes_evicted.load(Ordering::Relaxed),
            resident_bytes,
            resident_entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> CacheKey {
        CacheKey::new(&n.to_le_bytes(), 0)
    }

    fn val(n: u64, len: usize) -> Arc<[u8]> {
        let mut v = vec![0u8; len];
        for (i, b) in v.iter_mut().enumerate() {
            *b = (n as u8).wrapping_add(i as u8);
        }
        Arc::from(v.into_boxed_slice())
    }

    #[test]
    fn keys_differ_by_bytes_and_context() {
        let a = CacheKey::new(b"chunk", 1);
        assert_eq!(a, CacheKey::new(b"chunk", 1));
        assert_ne!(a, CacheKey::new(b"chunk", 2));
        assert_ne!(a, CacheKey::new(b"chunk2", 1));
    }

    #[test]
    fn hit_returns_inserted_bytes() {
        let cache = ChunkCache::new(1 << 20);
        let v = val(7, 100);
        cache.insert(key(7), Arc::clone(&v));
        assert_eq!(cache.get(&key(7)).as_deref(), Some(&v[..]));
        assert_eq!(cache.get(&key(8)), None);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert_eq!(s.resident_bytes, 100);
    }

    #[test]
    fn eviction_is_lru_ordered() {
        // One shard => globally exact order. Budget holds two 100-byte
        // entries; the third insert must evict the least recently used.
        let cache = ChunkCache::with_shards(200, 1);
        cache.insert(key(1), val(1, 100));
        cache.insert(key(2), val(2, 100));
        cache.insert(key(3), val(3, 100)); // evicts 1 (LRU)
        assert!(cache.get(&key(1)).is_none());
        assert!(cache.get(&key(2)).is_some());
        // 2 is now protected; inserting 4 evicts 3 (probation LRU), not 2.
        cache.insert(key(4), val(4, 100));
        assert!(cache.get(&key(3)).is_none());
        assert!(cache.get(&key(2)).is_some());
        let s = cache.stats();
        assert_eq!(s.evictions, 2);
        assert_eq!(s.bytes_evicted, 200);
        assert_eq!(s.resident_bytes, 200);
    }

    #[test]
    fn protected_hot_set_survives_scan_flood() {
        let cache = ChunkCache::with_shards(1000, 1);
        // Establish a hot entry (inserted, then hit => protected).
        cache.insert(key(0), val(0, 100));
        assert!(cache.get(&key(0)).is_some());
        // Flood with one-hit wonders worth several budgets.
        for n in 1..100 {
            cache.insert(key(n), val(n, 100));
        }
        assert!(
            cache.get(&key(0)).is_some(),
            "protected entry evicted by a cold scan"
        );
    }

    #[test]
    fn oversized_and_empty_values_are_not_cached() {
        let cache = ChunkCache::with_shards(1024, 1);
        cache.insert(key(1), val(1, 2048)); // > shard budget
        cache.insert(key(2), Arc::from(&[][..]));
        assert_eq!(cache.stats().insertions, 0);
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn duplicate_insert_stores_nothing() {
        let cache = ChunkCache::with_shards(1024, 1);
        cache.insert(key(1), val(1, 64));
        cache.insert(key(1), val(1, 64));
        let s = cache.stats();
        assert_eq!(s.insertions, 1);
        assert_eq!(s.resident_bytes, 64);
        assert_eq!(s.resident_entries, 1);
    }

    #[test]
    fn capacity_never_exceeded_property() {
        // Randomized op mix over a small cache; the byte budget must hold
        // after every single operation, and hits must return the exact
        // bytes inserted for the key.
        let mut rng = fpc_prng::Rng::seed_from_u64(0xCAC4E);
        for shards in [1usize, 4] {
            let capacity = 8 * 1024;
            let cache = ChunkCache::with_shards(capacity as u64, shards);
            for _ in 0..5000 {
                let n = rng.next_u64() % 64;
                let len = 1 + (rng.next_u64() % 600) as usize;
                if rng.next_u64().is_multiple_of(3) {
                    if let Some(v) = cache.get(&key(n)) {
                        // Content-addressed: length may differ per insert n,
                        // but the *prefix pattern* is keyed by n.
                        assert_eq!(v[0], n as u8);
                    }
                } else {
                    cache.insert(key(n), val(n, len));
                }
                assert!(
                    cache.resident_bytes() <= capacity as u64,
                    "budget exceeded with {shards} shards"
                );
            }
            let s = cache.stats();
            assert_eq!(
                s.resident_bytes,
                s.bytes_inserted - s.bytes_evicted,
                "byte accounting drifted"
            );
        }
    }

    #[test]
    fn concurrent_hits_are_byte_identical_under_pool() {
        // Hammer one cache from the worker pool: every index derives a
        // deterministic value from its key, get-or-inserts it, and checks
        // the bytes that come back. Any cross-key mixup or torn state is a
        // byte mismatch or a panic.
        let cache = ChunkCache::new(64 * 1024);
        let results = fpc_pool::run_indexed(512, 8, |i| {
            let n = (i % 32) as u64;
            let expect = val(n, 128 + (n as usize) * 3);
            let got = cache.get_or_insert_with(key(n), || Arc::clone(&expect));
            got[..] == expect[..]
        });
        assert!(results.into_iter().all(|ok| ok));
        let s = cache.stats();
        assert!(
            s.hits > 0,
            "expected warm hits across 512 lookups of 32 keys"
        );
        assert!(s.resident_bytes <= 64 * 1024);
    }
}
