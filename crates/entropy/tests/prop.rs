//! Property-based tests over the entropy-coding substrate.

use fpc_entropy::bitio::{BitReader, BitWriter};
use fpc_entropy::lz::{self, Effort};
use fpc_entropy::{bitpack, bwt, huffman, rans, rle, varint};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn varint_roundtrips(v in any::<u64>()) {
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, v);
        let mut pos = 0;
        prop_assert_eq!(varint::read_u64(&buf, &mut pos).unwrap(), v);
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn bitio_roundtrips_random_schedules(
        fields in prop::collection::vec((any::<u64>(), 1u32..=64), 0..200)
    ) {
        let mut w = BitWriter::new();
        for &(v, width) in &fields {
            let v = if width == 64 { v } else { v & ((1 << width) - 1) };
            w.write_bits(v, width);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, width) in &fields {
            let v = if width == 64 { v } else { v & ((1 << width) - 1) };
            prop_assert_eq!(r.read_bits(width), Some(v));
        }
    }

    #[test]
    fn bitpack_roundtrips(values in prop::collection::vec(any::<u64>(), 0..300), width in 0u32..=64) {
        let masked: Vec<u64> = values
            .iter()
            .map(|&v| if width == 64 { v } else if width == 0 { 0 } else { v & ((1 << width) - 1) })
            .collect();
        let mut packed = Vec::new();
        bitpack::pack_u64(&masked, width, &mut packed);
        let mut out = Vec::new();
        bitpack::unpack_u64(&packed, width, masked.len(), &mut out).unwrap();
        prop_assert_eq!(out, masked);
    }

    #[test]
    fn huffman_roundtrips(data in prop::collection::vec(any::<u8>(), 0..4000)) {
        let c = huffman::compress_bytes(&data);
        prop_assert_eq!(huffman::decompress_bytes(&c).unwrap(), data);
    }

    #[test]
    fn rans_roundtrips(data in prop::collection::vec(any::<u8>(), 0..4000)) {
        let c = rans::compress(&data);
        prop_assert_eq!(rans::decompress(&c).unwrap(), data);
    }

    #[test]
    fn lz_roundtrips_both_efforts(data in prop::collection::vec(any::<u8>(), 0..3000)) {
        for effort in [Effort::Fast, Effort::Thorough] {
            let c = lz::compress_block(&data, effort);
            prop_assert_eq!(lz::decompress_block(&c).unwrap(), data.clone());
        }
    }

    #[test]
    fn lz_tokens_partition_input(data in prop::collection::vec(any::<u8>(), 0..2000)) {
        let tokens = lz::tokenize(&data, Effort::Thorough);
        let covered: usize = tokens.iter().map(|t| t.literal_len + t.match_len).sum();
        prop_assert_eq!(covered, data.len());
        let mut produced = 0usize;
        for t in &tokens {
            produced += t.literal_len;
            if t.match_len > 0 {
                prop_assert!(t.match_len >= lz::MIN_MATCH);
                prop_assert!(t.distance >= 1 && t.distance <= produced);
            }
            produced += t.match_len;
        }
    }

    #[test]
    fn rle_roundtrips(data in prop::collection::vec(0u8..4, 0..3000)) {
        // Narrow alphabet maximizes runs (the interesting case).
        let c = rle::compress_bytes(&data);
        prop_assert_eq!(rle::decompress_bytes(&c).unwrap(), data);
    }

    #[test]
    fn bwt_roundtrips(data in prop::collection::vec(any::<u8>(), 0..1200)) {
        let t = bwt::forward(&data);
        prop_assert_eq!(bwt::inverse(&t).unwrap(), data);
    }

    #[test]
    fn mtf_roundtrips(data in prop::collection::vec(any::<u8>(), 0..2000)) {
        prop_assert_eq!(bwt::mtf_inverse(&bwt::mtf_forward(&data)), data);
    }

    #[test]
    fn bwt_is_a_permutation(data in prop::collection::vec(any::<u8>(), 1..800)) {
        let t = bwt::forward(&data);
        let mut a = data.clone();
        let mut b = t.last_column.clone();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        prop_assert!(t.primary_index < data.len());
    }

    #[test]
    fn decoders_never_panic_on_random_input(data in prop::collection::vec(any::<u8>(), 0..400)) {
        let _ = huffman::decompress_bytes(&data);
        let _ = rans::decompress(&data);
        let _ = lz::decompress_block(&data);
        let _ = rle::decompress_bytes(&data);
        let mut pos = 0;
        let _ = varint::read_u64(&data, &mut pos);
    }
}
