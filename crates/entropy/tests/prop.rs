//! Deterministic property tests over the entropy-coding substrate
//! (in-repo fuzz driver; no external dependencies).

use fpc_entropy::bitio::{BitReader, BitWriter};
use fpc_entropy::lz::{self, Effort};
use fpc_entropy::{bitpack, bwt, huffman, rans, rle, varint};
use fpc_prng::fuzz::run_cases;

#[test]
fn varint_roundtrips() {
    run_cases("entropy/varint", 256, |rng, case| {
        // Mix full-range values with small ones (short encodings).
        let v = if case % 2 == 0 {
            rng.next_u64()
        } else {
            rng.next_u64() >> rng.gen_range(0u32..64)
        };
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, v);
        let mut pos = 0;
        assert_eq!(varint::read_u64(&buf, &mut pos).unwrap(), v);
        assert_eq!(pos, buf.len());
    });
}

#[test]
fn bitio_roundtrips_random_schedules() {
    run_cases("entropy/bitio", 64, |rng, _| {
        let n = rng.gen_range(0usize..200);
        let fields: Vec<(u64, u32)> = (0..n)
            .map(|_| (rng.next_u64(), rng.gen_range(1u32..65)))
            .collect();
        let mut w = BitWriter::new();
        for &(v, width) in &fields {
            let v = if width == 64 {
                v
            } else {
                v & ((1 << width) - 1)
            };
            w.write_bits(v, width);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, width) in &fields {
            let v = if width == 64 {
                v
            } else {
                v & ((1 << width) - 1)
            };
            assert_eq!(r.read_bits(width), Some(v));
        }
    });
}

#[test]
fn bitpack_roundtrips() {
    run_cases("entropy/bitpack", 64, |rng, _| {
        let n = rng.gen_range(0usize..300);
        let width = rng.gen_range(0u32..65);
        let masked: Vec<u64> = (0..n)
            .map(|_| {
                let v = rng.next_u64();
                if width == 64 {
                    v
                } else if width == 0 {
                    0
                } else {
                    v & ((1 << width) - 1)
                }
            })
            .collect();
        let mut packed = Vec::new();
        bitpack::pack_u64(&masked, width, &mut packed);
        let mut out = Vec::new();
        bitpack::unpack_u64(&packed, width, masked.len(), &mut out).unwrap();
        assert_eq!(out, masked);
    });
}

#[test]
fn huffman_roundtrips() {
    run_cases("entropy/huffman", 64, |rng, _| {
        let data = rng.bytes_range(0usize..4000);
        let c = huffman::compress_bytes(&data);
        assert_eq!(huffman::decompress_bytes(&c).unwrap(), data);
    });
}

#[test]
fn rans_roundtrips() {
    run_cases("entropy/rans", 64, |rng, _| {
        let data = rng.bytes_range(0usize..4000);
        let c = rans::compress(&data);
        assert_eq!(rans::decompress(&c, data.len()).unwrap(), data);
    });
}

#[test]
fn lz_roundtrips_both_efforts() {
    run_cases("entropy/lz", 64, |rng, _| {
        let data = rng.bytes_range(0usize..3000);
        for effort in [Effort::Fast, Effort::Thorough] {
            let c = lz::compress_block(&data, effort);
            assert_eq!(lz::decompress_block(&c, data.len()).unwrap(), data);
        }
    });
}

#[test]
fn lz_tokens_partition_input() {
    run_cases("entropy/lz-tokens", 64, |rng, _| {
        let data = rng.bytes_range(0usize..2000);
        let tokens = lz::tokenize(&data, Effort::Thorough);
        let covered: usize = tokens.iter().map(|t| t.literal_len + t.match_len).sum();
        assert_eq!(covered, data.len());
        let mut produced = 0usize;
        for t in &tokens {
            produced += t.literal_len;
            if t.match_len > 0 {
                assert!(t.match_len >= lz::MIN_MATCH);
                assert!(t.distance >= 1 && t.distance <= produced);
            }
            produced += t.match_len;
        }
    });
}

#[test]
fn rle_roundtrips() {
    run_cases("entropy/rle", 64, |rng, _| {
        // Narrow alphabet maximizes runs (the interesting case).
        let n = rng.gen_range(0usize..3000);
        let data: Vec<u8> = (0..n).map(|_| rng.gen_range(0u8..4)).collect();
        let c = rle::compress_bytes(&data);
        assert_eq!(rle::decompress_bytes(&c, data.len()).unwrap(), data);
    });
}

#[test]
fn bwt_roundtrips() {
    run_cases("entropy/bwt", 48, |rng, _| {
        let data = rng.bytes_range(0usize..1200);
        let t = bwt::forward(&data);
        assert_eq!(bwt::inverse(&t).unwrap(), data);
    });
}

#[test]
fn mtf_roundtrips() {
    run_cases("entropy/mtf", 48, |rng, _| {
        let data = rng.bytes_range(0usize..2000);
        assert_eq!(bwt::mtf_inverse(&bwt::mtf_forward(&data)), data);
    });
}

#[test]
fn bwt_is_a_permutation() {
    run_cases("entropy/bwt-perm", 48, |rng, _| {
        let data = rng.bytes_range(1usize..800);
        let t = bwt::forward(&data);
        let mut a = data.clone();
        let mut b = t.last_column.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert!(t.primary_index < data.len());
    });
}

#[test]
fn decoders_never_panic_on_random_input() {
    run_cases("entropy/random-bytes", 512, |rng, _| {
        let data = rng.bytes_range(0usize..400);
        let _ = huffman::decompress_bytes(&data);
        let _ = rans::decompress(&data, 1 << 20);
        let _ = lz::decompress_block(&data, 1 << 20);
        let _ = rle::decompress_bytes(&data, 1 << 20);
        let mut pos = 0;
        let _ = varint::read_u64(&data, &mut pos);
        let mut out = Vec::new();
        let _ = bitpack::unpack_u64(
            &data,
            rng.gen_range(0u32..65),
            rng.gen_range(0usize..64),
            &mut out,
        );
    });
}
