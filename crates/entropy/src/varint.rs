//! LEB128-style variable-length integer coding.
//!
//! Used by the LZ token serializers and several baseline container headers.

use crate::{DecodeError, Result};

/// Appends `value` to `out` as an unsigned LEB128 varint (1–10 bytes).
#[inline]
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends `value` as a varint (convenience for `usize`).
#[inline]
pub fn write_usize(out: &mut Vec<u8>, value: usize) {
    write_u64(out, value as u64);
}

/// Reads a varint from `data` starting at `*pos`, advancing `*pos`.
///
/// # Errors
///
/// Returns [`DecodeError::UnexpectedEof`] if the input ends mid-varint and
/// [`DecodeError::Corrupt`] if the encoding exceeds 10 bytes.
#[inline]
pub fn read_u64(data: &[u8], pos: &mut usize) -> Result<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *data.get(*pos).ok_or(DecodeError::UnexpectedEof)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(DecodeError::Corrupt("varint overflows u64"));
        }
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(DecodeError::Corrupt("varint too long"));
        }
    }
}

/// Reads a varint and converts it to `usize`.
///
/// # Errors
///
/// Same as [`read_u64`], plus [`DecodeError::Corrupt`] if the value does not
/// fit in `usize`.
#[inline]
pub fn read_usize(data: &[u8], pos: &mut usize) -> Result<usize> {
    usize::try_from(read_u64(data, pos)?).map_err(|_| DecodeError::Corrupt("varint exceeds usize"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_boundaries() {
        let cases = [
            0u64,
            1,
            127,
            128,
            129,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &cases {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_u64(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn truncated_input_errors() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert_eq!(
                read_u64(&buf[..cut], &mut pos),
                Err(DecodeError::UnexpectedEof)
            );
        }
    }

    #[test]
    fn overlong_encoding_errors() {
        // Eleven continuation bytes can never be a valid u64.
        let buf = [0x80u8; 11];
        let mut pos = 0;
        assert!(matches!(
            read_u64(&buf, &mut pos),
            Err(DecodeError::Corrupt(_))
        ));
    }

    #[test]
    fn encoding_is_minimal_length() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 127);
        assert_eq!(buf.len(), 1);
        buf.clear();
        write_u64(&mut buf, 128);
        assert_eq!(buf.len(), 2);
        buf.clear();
        write_u64(&mut buf, u64::MAX);
        assert_eq!(buf.len(), 10);
    }
}
