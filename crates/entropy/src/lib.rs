//! Shared entropy-coding and string-matching substrate for FPcompress-rs.
//!
//! This crate provides the low-level coding machinery used by the baseline
//! compressors reimplemented in `fpc-baselines`: bit-granular I/O
//! ([`bitio`]), fixed-width bit packing ([`bitpack`]), canonical Huffman
//! coding ([`huffman`]), range asymmetric numeral systems ([`rans`]),
//! LZ77-family string matching ([`lz`]), run-length coding ([`rle`]), and a
//! Burrows–Wheeler transform with move-to-front coding ([`bwt`]).
//!
//! The paper's own algorithms (SPspeed/SPratio/DPspeed/DPratio) deliberately
//! avoid entropy coding and LZ matching because those are hard to parallelize
//! on GPUs; they only use [`bitio`]/[`bitpack`] from this crate. The heavier
//! machinery here exists so that the comparison roster of the evaluation
//! (gzip-, zstd-, bzip2-, snappy-, ANS-class codecs) can be reproduced from
//! scratch.
//!
//! # Example
//!
//! ```
//! use fpc_entropy::bitio::{BitReader, BitWriter};
//!
//! let mut w = BitWriter::new();
//! w.write_bits(0b101, 3);
//! w.write_bits(0xFFFF, 16);
//! let bytes = w.finish();
//! let mut r = BitReader::new(&bytes);
//! assert_eq!(r.read_bits(3), Some(0b101));
//! assert_eq!(r.read_bits(16), Some(0xFFFF));
//! ```

pub mod bitio;
pub mod bitpack;
pub mod bwt;
pub mod huffman;
pub mod lz;
pub mod rans;
pub mod rle;
pub mod varint;

/// Errors produced while decoding one of the entropy-coded formats in this
/// crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the decoder finished.
    UnexpectedEof,
    /// A header or symbol table failed validation.
    InvalidHeader(&'static str),
    /// The coded stream referenced data that does not exist (e.g. an LZ match
    /// reaching before the start of the output).
    Corrupt(&'static str),
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DecodeError::UnexpectedEof => write!(f, "unexpected end of input"),
            DecodeError::InvalidHeader(what) => write!(f, "invalid header: {what}"),
            DecodeError::Corrupt(what) => write!(f, "corrupt stream: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Convenience alias for decode results.
pub type Result<T> = core::result::Result<T, DecodeError>;

/// Caps speculative preallocation from untrusted length fields: decoding
/// still produces `n` elements when the stream really contains them, but a
/// corrupt header cannot trigger a huge allocation up front.
#[inline]
#[must_use]
pub fn prealloc_limit(n: usize) -> usize {
    n.min(1 << 24)
}
