//! Fixed-width bit packing of integer slices.
//!
//! This is the workhorse of the MPLG stage (leading-zero elimination packs
//! every value of a subchunk at one common width) and of the Cascaded- and
//! Bitcomp-class baselines.
//!
//! The `BitWriter`/`BitReader` loops are the scalar reference (selected by
//! `FPC_FORCE_SCALAR=1`); normal dispatch runs the byte-identical
//! block-accumulator fast paths in `fpc_simd::bitpack` (same LSB-first
//! layout, same EOF condition).

use crate::bitio::{BitReader, BitWriter};
use crate::{DecodeError, Result};

/// Packs each `u32` at `width` bits (0..=32), appending to `out`.
///
/// Each value is masked to its low `width` bits before writing. Values that
/// exceed the width therefore lose their high bits (the roundtrip returns
/// `v & mask`) but can never corrupt neighbouring values: without the mask,
/// excess bits would bleed into the writer's accumulator and scramble the
/// rest of the stream in release builds, where the old debug-only guard
/// vanished. With `width == 0` nothing is written (all values must be zero
/// for the packing to be reversible).
///
/// # Panics
///
/// Panics if `width > 32` — an out-of-range width is a caller bug in every
/// build, not just debug.
pub fn pack_u32(values: &[u32], width: u32, out: &mut Vec<u8>) {
    assert!(width <= 32, "pack width {width} exceeds 32");
    if width == 0 {
        return;
    }
    if !fpc_simd::force_scalar() {
        return fpc_simd::bitpack::pack_u32(values, width, out);
    }
    let mask = if width == 32 {
        u32::MAX
    } else {
        (1u32 << width) - 1
    };
    let mut w = BitWriter::with_capacity((values.len() * width as usize).div_ceil(8));
    for &v in values {
        w.write_bits(u64::from(v & mask), width);
    }
    w.finish_into(out);
}

/// Unpacks `count` values of `width` bits from `data`, appending to `out`.
///
/// # Errors
///
/// Returns [`DecodeError::UnexpectedEof`] if `data` holds fewer than
/// `count * width` bits.
pub fn unpack_u32(data: &[u8], width: u32, count: usize, out: &mut Vec<u32>) -> Result<()> {
    debug_assert!(width <= 32);
    if width == 0 {
        out.resize(out.len() + count, 0);
        return Ok(());
    }
    if !fpc_simd::force_scalar() {
        return fpc_simd::bitpack::unpack_u32(data, width, count, out)
            .then_some(())
            .ok_or(DecodeError::UnexpectedEof);
    }
    let mut r = BitReader::new(data);
    out.reserve(count);
    for _ in 0..count {
        let v = r.read_bits(width).ok_or(DecodeError::UnexpectedEof)?;
        out.push(v as u32);
    }
    Ok(())
}

/// Packs each `u64` at `width` bits (0..=64), appending to `out`.
///
/// As with [`pack_u32`], each value is masked to `width` bits first, so an
/// oversized value degrades to `v & mask` instead of corrupting the stream.
///
/// # Panics
///
/// Panics if `width > 64`.
pub fn pack_u64(values: &[u64], width: u32, out: &mut Vec<u8>) {
    assert!(width <= 64, "pack width {width} exceeds 64");
    if width == 0 {
        return;
    }
    if !fpc_simd::force_scalar() {
        return fpc_simd::bitpack::pack_u64(values, width, out);
    }
    let mask = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let mut w = BitWriter::with_capacity((values.len() * width as usize).div_ceil(8));
    for &v in values {
        w.write_bits(v & mask, width);
    }
    w.finish_into(out);
}

/// Unpacks `count` values of `width` bits from `data`, appending to `out`.
///
/// # Errors
///
/// Returns [`DecodeError::UnexpectedEof`] if `data` holds fewer than
/// `count * width` bits.
pub fn unpack_u64(data: &[u8], width: u32, count: usize, out: &mut Vec<u64>) -> Result<()> {
    debug_assert!(width <= 64);
    if width == 0 {
        out.resize(out.len() + count, 0);
        return Ok(());
    }
    if !fpc_simd::force_scalar() {
        return fpc_simd::bitpack::unpack_u64(data, width, count, out)
            .then_some(())
            .ok_or(DecodeError::UnexpectedEof);
    }
    let mut r = BitReader::new(data);
    out.reserve(count);
    for _ in 0..count {
        out.push(r.read_bits(width).ok_or(DecodeError::UnexpectedEof)?);
    }
    Ok(())
}

/// Number of bytes `count` values occupy at `width` bits, rounded up.
#[inline]
pub fn packed_len(count: usize, width: u32) -> usize {
    (count * width as usize).div_ceil(8)
}

/// Smallest width that can represent every value in `values` (0 for all-zero).
#[inline]
pub fn min_width_u32(values: &[u32]) -> u32 {
    let max = if fpc_simd::force_scalar() {
        values.iter().copied().max().unwrap_or(0)
    } else {
        fpc_simd::bitpack::max_u32(values)
    };
    32 - max.leading_zeros()
}

/// Smallest width that can represent every value in `values` (0 for all-zero).
#[inline]
pub fn min_width_u64(values: &[u64]) -> u32 {
    let max = values.iter().copied().max().unwrap_or(0);
    64 - max.leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_u32_all_widths() {
        for width in 0..=32u32 {
            let mask = if width == 32 {
                u32::MAX
            } else {
                (1u32 << width) - 1
            };
            let values: Vec<u32> = (0..100u32)
                .map(|i| i.wrapping_mul(0x9E37_79B9) & mask)
                .collect();
            let mut packed = Vec::new();
            pack_u32(&values, width, &mut packed);
            assert_eq!(packed.len(), packed_len(values.len(), width));
            let mut out = Vec::new();
            unpack_u32(&packed, width, values.len(), &mut out).unwrap();
            assert_eq!(out, values, "width {width}");
        }
    }

    #[test]
    fn pack_unpack_u64_all_widths() {
        for width in 0..=64u32 {
            let mask = if width == 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            let values: Vec<u64> = (0..77u64)
                .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) & mask)
                .collect();
            let mut packed = Vec::new();
            pack_u64(&values, width, &mut packed);
            let mut out = Vec::new();
            unpack_u64(&packed, width, values.len(), &mut out).unwrap();
            assert_eq!(out, values, "width {width}");
        }
    }

    #[test]
    fn truncated_unpack_errors() {
        let values = vec![u32::MAX; 16];
        let mut packed = Vec::new();
        pack_u32(&values, 32, &mut packed);
        let mut out = Vec::new();
        assert_eq!(
            unpack_u32(&packed[..packed.len() - 1], 32, 16, &mut out),
            Err(DecodeError::UnexpectedEof)
        );
    }

    #[test]
    fn min_width_matches_values() {
        assert_eq!(min_width_u32(&[]), 0);
        assert_eq!(min_width_u32(&[0, 0]), 0);
        assert_eq!(min_width_u32(&[1]), 1);
        assert_eq!(min_width_u32(&[0xFF, 3]), 8);
        assert_eq!(min_width_u32(&[u32::MAX]), 32);
        assert_eq!(min_width_u64(&[u64::MAX]), 64);
        assert_eq!(min_width_u64(&[1 << 40]), 41);
    }

    #[test]
    fn oversized_values_are_masked_not_corrupting() {
        // Regression: values wider than `width` used to be guarded only by a
        // debug_assert!. In release builds the excess bits flowed into the
        // BitWriter accumulator and corrupted every subsequent value. The
        // pack loops now mask, so this test passes identically in debug and
        // release builds.
        let values: Vec<u32> = vec![0xFFFF_FFFF, 0x5, 0x1234_5678, 0x7];
        let width = 4u32;
        let mut packed = Vec::new();
        pack_u32(&values, width, &mut packed);
        let mut out = Vec::new();
        unpack_u32(&packed, width, values.len(), &mut out).unwrap();
        // Oversized values decode to their masked low bits…
        assert_eq!(out, vec![0xF, 0x5, 0x8, 0x7]);
        // …and in particular the in-range neighbours survive untouched.
        assert_eq!(out[1], values[1]);
        assert_eq!(out[3], values[3]);

        let values64: Vec<u64> = vec![u64::MAX, 0x3, 1 << 63, 0x9];
        let mut packed = Vec::new();
        pack_u64(&values64, 12, &mut packed);
        let mut out = Vec::new();
        unpack_u64(&packed, 12, values64.len(), &mut out).unwrap();
        assert_eq!(out, vec![0xFFF, 0x3, 0, 0x9]);
    }

    #[test]
    #[should_panic(expected = "exceeds 32")]
    fn out_of_range_width_panics() {
        pack_u32(&[1], 33, &mut Vec::new());
    }

    #[test]
    fn zero_width_roundtrip() {
        let values = vec![0u64; 9];
        let mut packed = Vec::new();
        pack_u64(&values, 0, &mut packed);
        assert!(packed.is_empty());
        let mut out = Vec::new();
        unpack_u64(&packed, 0, 9, &mut out).unwrap();
        assert_eq!(out, values);
    }
}
