//! Run-length coding.
//!
//! Two flavours: a byte-level escape format (used by the Bzip2-class
//! baseline after move-to-front) and a word-level run format (used by the
//! Cascaded-class baseline, mirroring nvCOMP's RLE stage).

use crate::varint;
use crate::{DecodeError, Result};

/// Byte-level RLE: runs of ≥ 4 equal bytes become
/// `byte ×4, varint(extra)`; shorter runs are copied verbatim.
pub fn compress_bytes(data: &[u8]) -> Vec<u8> {
    let t = fpc_metrics::timer(fpc_metrics::Stage::RleEncode);
    let mut out = Vec::with_capacity(data.len() + 8);
    varint::write_usize(&mut out, data.len());
    let force_scalar = fpc_simd::force_scalar();
    let mut i = 0usize;
    while i < data.len() {
        let b = data[i];
        // Scalar reference run scan (`FPC_FORCE_SCALAR=1`); dispatch scans
        // 8–32 bytes per step.
        let run = if force_scalar {
            let mut run = 1usize;
            while i + run < data.len() && data[i + run] == b {
                run += 1;
            }
            run
        } else {
            fpc_simd::bytescan::run_len(data, i)
        };
        if run >= 4 {
            out.extend_from_slice(&[b, b, b, b]);
            varint::write_usize(&mut out, run - 4);
        } else {
            for _ in 0..run {
                out.push(b);
            }
        }
        i += run;
    }
    t.finish(data.len() as u64);
    out
}

/// Decodes a stream produced by [`compress_bytes`]; `max_len` bounds the
/// decoded size (from the caller's framing) against decompression bombs —
/// a few hostile input bytes can declare and expand to any run length.
///
/// # Errors
///
/// Fails on truncation, if the expansion exceeds the declared length, or
/// if the declared length exceeds `max_len`.
pub fn decompress_bytes(data: &[u8], max_len: usize) -> Result<Vec<u8>> {
    let t = fpc_metrics::timer(fpc_metrics::Stage::RleDecode);
    let mut pos = 0usize;
    let n = varint::read_usize(data, &mut pos)?;
    if n > max_len {
        return Err(DecodeError::Corrupt("declared length exceeds caller limit"));
    }
    let mut out = Vec::with_capacity(crate::prealloc_limit(n));
    while out.len() < n {
        let b = *data.get(pos).ok_or(DecodeError::UnexpectedEof)?;
        pos += 1;
        out.push(b);
        // Detect a completed 4-run: the last four output bytes equal.
        let l = out.len();
        if l >= 4
            && out[l - 1] == out[l - 2]
            && out[l - 2] == out[l - 3]
            && out[l - 3] == out[l - 4]
        {
            let extra = varint::read_usize(data, &mut pos)?;
            if out.len() + extra > n {
                return Err(DecodeError::Corrupt("rle run overruns output"));
            }
            out.resize(out.len() + extra, b);
        }
    }
    t.finish(out.len() as u64);
    Ok(out)
}

/// A (value, run-length) pair for word-level RLE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run<T> {
    /// The repeated value.
    pub value: T,
    /// Number of repetitions (≥ 1).
    pub len: u64,
}

/// Splits a slice into maximal runs.
pub fn runs_of<T: Copy + PartialEq>(values: &[T]) -> Vec<Run<T>> {
    let mut runs = Vec::new();
    let mut iter = values.iter();
    let Some(&first) = iter.next() else {
        return runs;
    };
    let mut cur = Run {
        value: first,
        len: 1,
    };
    for &v in iter {
        if v == cur.value {
            cur.len += 1;
        } else {
            runs.push(cur);
            cur = Run { value: v, len: 1 };
        }
    }
    runs.push(cur);
    runs
}

/// Expands runs back into a flat vector.
pub fn expand_runs<T: Copy>(runs: &[Run<T>]) -> Vec<T> {
    let total: u64 = runs.iter().map(|r| r.len).sum();
    let mut out = Vec::with_capacity(total as usize);
    for r in runs {
        for _ in 0..r.len {
            out.push(r.value);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress_bytes(data);
        assert_eq!(decompress_bytes(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn roundtrip_empty() {
        roundtrip(&[]);
    }

    #[test]
    fn roundtrip_no_runs() {
        roundtrip(b"abcdefgh");
    }

    #[test]
    fn roundtrip_exact_four_run() {
        roundtrip(b"aaaa");
        roundtrip(b"xaaaay");
    }

    #[test]
    fn roundtrip_long_runs() {
        let mut data = vec![7u8; 1000];
        data.extend_from_slice(b"abc");
        data.extend(vec![0u8; 500]);
        roundtrip(&data);
    }

    #[test]
    fn roundtrip_adjacent_runs_same_boundary() {
        // Three then five: the 3-run must not trigger the escape.
        let mut data = vec![1u8; 3];
        data.push(2);
        data.extend(vec![1u8; 5]);
        roundtrip(&data);
    }

    #[test]
    fn long_run_compresses() {
        let data = vec![0u8; 100_000];
        let c = compress_bytes(&data);
        assert!(c.len() < 16);
    }

    #[test]
    fn corrupt_run_rejected() {
        let mut c = Vec::new();
        varint::write_usize(&mut c, 5);
        c.extend_from_slice(&[9, 9, 9, 9]);
        varint::write_usize(&mut c, 100); // would expand to 104 > 5
        assert!(matches!(
            decompress_bytes(&c, 1 << 20),
            Err(DecodeError::Corrupt(_))
        ));
    }

    #[test]
    fn word_runs_roundtrip() {
        let values = [1u64, 1, 1, 5, 5, 2, 2, 2, 2, 9];
        let runs = runs_of(&values);
        assert_eq!(
            runs,
            vec![
                Run { value: 1, len: 3 },
                Run { value: 5, len: 2 },
                Run { value: 2, len: 4 },
                Run { value: 9, len: 1 },
            ]
        );
        assert_eq!(expand_runs(&runs), values);
    }

    #[test]
    fn word_runs_empty() {
        let runs = runs_of::<u32>(&[]);
        assert!(runs.is_empty());
        assert!(expand_runs(&runs).is_empty());
    }
}
