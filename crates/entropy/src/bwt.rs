//! Burrows–Wheeler transform and move-to-front coding.
//!
//! The rotation sort uses prefix doubling (O(n log² n)), which is fast
//! enough for the block sizes the Bzip2-class baseline uses and requires no
//! sentinel byte.

use crate::{DecodeError, Result};

/// Result of a forward BWT: the last column plus the row index of the
/// original string among the sorted rotations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bwt {
    /// Last column of the sorted rotation matrix.
    pub last_column: Vec<u8>,
    /// Row of the untransformed input.
    pub primary_index: usize,
}

/// Computes the BWT of `data` by sorting all rotations (prefix doubling).
pub fn forward(data: &[u8]) -> Bwt {
    let n = data.len();
    if n == 0 {
        return Bwt {
            last_column: Vec::new(),
            primary_index: 0,
        };
    }
    let mut sa: Vec<u32> = (0..n as u32).collect();
    let mut rank: Vec<u32> = data.iter().map(|&b| u32::from(b)).collect();
    let mut tmp = vec![0u32; n];
    let mut k = 1usize;
    while k < n {
        let key = |i: u32| -> (u32, u32) {
            let i = i as usize;
            (rank[i], rank[(i + k) % n])
        };
        sa.sort_unstable_by_key(|&i| key(i));
        tmp[sa[0] as usize] = 0;
        for w in 1..n {
            let prev = sa[w - 1];
            let cur = sa[w];
            tmp[cur as usize] = tmp[prev as usize] + u32::from(key(prev) != key(cur));
        }
        rank.copy_from_slice(&tmp);
        if rank[sa[n - 1] as usize] as usize == n - 1 {
            break;
        }
        k *= 2;
    }
    let mut last_column = Vec::with_capacity(n);
    let mut primary_index = 0;
    for (row, &start) in sa.iter().enumerate() {
        let start = start as usize;
        last_column.push(data[(start + n - 1) % n]);
        if start == 0 {
            primary_index = row;
        }
    }
    Bwt {
        last_column,
        primary_index,
    }
}

/// Inverts a BWT.
///
/// # Errors
///
/// Fails if `primary_index` is out of range. Note that an arbitrary
/// (corrupt) last column still inverts to *some* byte string; integrity is
/// the caller's responsibility (the Bzip2-class baseline stores a length).
pub fn inverse(bwt: &Bwt) -> Result<Vec<u8>> {
    let l = &bwt.last_column;
    let n = l.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    if bwt.primary_index >= n {
        return Err(DecodeError::Corrupt("bwt primary index out of range"));
    }
    // C[c]: number of bytes in L strictly smaller than c.
    let mut counts = [0usize; 256];
    for &b in l {
        counts[b as usize] += 1;
    }
    let mut c = [0usize; 256];
    let mut sum = 0;
    for b in 0..256 {
        c[b] = sum;
        sum += counts[b];
    }
    // lf[i] = C[L[i]] + occurrences of L[i] in L[0..i].
    let mut occ_so_far = [0usize; 256];
    let mut lf = vec![0u32; n];
    for (i, &b) in l.iter().enumerate() {
        lf[i] = (c[b as usize] + occ_so_far[b as usize]) as u32;
        occ_so_far[b as usize] += 1;
    }
    let mut out = vec![0u8; n];
    let mut row = bwt.primary_index;
    for slot in out.iter_mut().rev() {
        *slot = l[row];
        row = lf[row] as usize;
    }
    Ok(out)
}

/// Move-to-front encodes `data` in place semantics (returns a new vector of
/// alphabet indices).
pub fn mtf_forward(data: &[u8]) -> Vec<u8> {
    let mut table: Vec<u8> = (0..=255).collect();
    data.iter()
        .map(|&b| {
            let idx = table
                .iter()
                .position(|&t| t == b)
                .expect("byte alphabet is complete") as u8;
            table.copy_within(0..idx as usize, 1);
            table[0] = b;
            idx
        })
        .collect()
}

/// Inverts [`mtf_forward`].
pub fn mtf_inverse(indices: &[u8]) -> Vec<u8> {
    let mut table: Vec<u8> = (0..=255).collect();
    indices
        .iter()
        .map(|&idx| {
            let b = table[idx as usize];
            table.copy_within(0..idx as usize, 1);
            table[0] = b;
            b
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let bwt = forward(data);
        assert_eq!(inverse(&bwt).unwrap(), data);
    }

    #[test]
    fn banana() {
        let bwt = forward(b"banana");
        assert_eq!(inverse(&bwt).unwrap(), b"banana");
        // Classic result: rotations of "banana" sorted give last column
        // "nnbaaa" with the original at row 3.
        assert_eq!(bwt.last_column, b"nnbaaa");
        assert_eq!(bwt.primary_index, 3);
    }

    #[test]
    fn roundtrip_empty_and_small() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"aa");
    }

    #[test]
    fn roundtrip_all_equal() {
        roundtrip(&[5u8; 257]);
    }

    #[test]
    fn roundtrip_periodic() {
        roundtrip(&b"abab".repeat(100));
        roundtrip(&b"xyz".repeat(77));
    }

    #[test]
    fn roundtrip_random_like() {
        let data: Vec<u8> = (0..5000u64)
            .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48) as u8)
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn roundtrip_text() {
        roundtrip(b"she sells seashells by the seashore, the shells she sells are seashells");
    }

    #[test]
    fn bwt_groups_similar_context() {
        // BWT of repetitive text should have long runs (that's its point).
        let data = b"the cat sat on the mat. the cat sat on the mat. ".repeat(40);
        let bwt = forward(&data);
        let runs = crate::rle::runs_of(&bwt.last_column);
        assert!(
            runs.len() < data.len() / 4,
            "bwt produced {} runs",
            runs.len()
        );
    }

    #[test]
    fn invalid_primary_index_rejected() {
        let bwt = Bwt {
            last_column: vec![1, 2, 3],
            primary_index: 3,
        };
        assert!(inverse(&bwt).is_err());
    }

    #[test]
    fn mtf_roundtrip() {
        let data = b"aaabbbcccaaabbbccc".to_vec();
        assert_eq!(mtf_inverse(&mtf_forward(&data)), data);
    }

    #[test]
    fn mtf_runs_become_zeros() {
        let coded = mtf_forward(b"aaaa");
        assert_eq!(&coded[1..], &[0, 0, 0]);
    }

    #[test]
    fn mtf_all_bytes() {
        let data: Vec<u8> = (0..=255u8).rev().cycle().take(1000).collect();
        assert_eq!(mtf_inverse(&mtf_forward(&data)), data);
    }
}
