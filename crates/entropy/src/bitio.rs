//! Bit-granular reading and writing.
//!
//! Bits are stored least-significant-first within each byte, which matches
//! the packing order used by the MPLG, RAZE, and RARE transformations as
//! well as the rANS and Huffman coders in this crate.

/// Accumulates bits least-significant-first into a byte vector.
///
/// # Example
///
/// ```
/// use fpc_entropy::bitio::BitWriter;
///
/// let mut w = BitWriter::new();
/// w.write_bits(0b11, 2);
/// w.write_bits(0, 6); // pad to a full byte
/// assert_eq!(w.finish(), vec![0b0000_0011]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    acc: u128,
    nbits: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with pre-allocated capacity (in bytes).
    pub fn with_capacity(bytes: usize) -> Self {
        Self {
            out: Vec::with_capacity(bytes),
            acc: 0,
            nbits: 0,
        }
    }

    /// Appends the low `count` bits of `value` (0..=64 bits).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `count > 64` or if `value` has bits set
    /// above `count`.
    #[inline]
    pub fn write_bits(&mut self, value: u64, count: u32) {
        debug_assert!(count <= 64);
        debug_assert!(
            count == 64 || value < (1u64 << count),
            "value {value:#x} exceeds {count} bits"
        );
        self.acc |= (value as u128) << self.nbits;
        self.nbits += count;
        while self.nbits >= 8 {
            self.out.push(self.acc as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    /// Appends a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(bit as u64, 1);
    }

    /// Number of complete bits written so far.
    pub fn bit_len(&self) -> usize {
        self.out.len() * 8 + self.nbits as usize
    }

    /// Pads with zero bits to the next byte boundary and returns the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.out.push(self.acc as u8);
        }
        self.out
    }

    /// Pads to a byte boundary and appends the result to `dst`, returning the
    /// number of bytes appended.
    pub fn finish_into(mut self, dst: &mut Vec<u8>) -> usize {
        if self.nbits > 0 {
            self.out.push(self.acc as u8);
            self.acc = 0;
            self.nbits = 0;
        }
        dst.extend_from_slice(&self.out);
        self.out.len()
    }
}

/// Reads bits least-significant-first from a byte slice.
///
/// All read methods return `None` once the underlying bytes are exhausted.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Next byte to load into the accumulator.
    pos: usize,
    acc: u128,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Self {
            data,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    #[inline]
    fn refill(&mut self, need: u32) -> bool {
        while self.nbits < need {
            if self.pos >= self.data.len() {
                return false;
            }
            self.acc |= (self.data[self.pos] as u128) << self.nbits;
            self.pos += 1;
            self.nbits += 8;
        }
        true
    }

    /// Reads `count` bits (0..=64), or `None` if the input is exhausted.
    #[inline]
    pub fn read_bits(&mut self, count: u32) -> Option<u64> {
        debug_assert!(count <= 64);
        if count == 0 {
            return Some(0);
        }
        if !self.refill(count) {
            return None;
        }
        let mask = if count == 64 {
            u64::MAX as u128
        } else {
            (1u128 << count) - 1
        };
        let v = (self.acc & mask) as u64;
        self.acc >>= count;
        self.nbits -= count;
        Some(v)
    }

    /// Reads one bit.
    #[inline]
    pub fn read_bit(&mut self) -> Option<bool> {
        self.read_bits(1).map(|b| b != 0)
    }

    /// Number of bits consumed so far.
    pub fn bits_consumed(&self) -> usize {
        self.pos * 8 - self.nbits as usize
    }

    /// Remaining bits available, including any trailing padding.
    pub fn bits_remaining(&self) -> usize {
        (self.data.len() - self.pos) * 8 + self.nbits as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let widths = [1u32, 3, 7, 8, 13, 16, 24, 31, 32, 33, 48, 63, 64];
        let mut w = BitWriter::new();
        for (i, &width) in widths.iter().enumerate() {
            let v = (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1))
                & if width == 64 {
                    u64::MAX
                } else {
                    (1 << width) - 1
                };
            w.write_bits(v, width);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for (i, &width) in widths.iter().enumerate() {
            let v = (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1))
                & if width == 64 {
                    u64::MAX
                } else {
                    (1 << width) - 1
                };
            assert_eq!(r.read_bits(width), Some(v), "width {width}");
        }
    }

    #[test]
    fn empty_writer_produces_no_bytes() {
        assert!(BitWriter::new().finish().is_empty());
    }

    #[test]
    fn zero_width_read_is_zero() {
        let mut r = BitReader::new(&[]);
        assert_eq!(r.read_bits(0), Some(0));
        assert_eq!(r.read_bits(1), None);
    }

    #[test]
    fn reader_stops_at_end() {
        let mut w = BitWriter::new();
        w.write_bits(0x5, 3);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3), Some(0x5));
        // 5 padding bits remain in the final byte.
        assert_eq!(r.read_bits(5), Some(0));
        assert_eq!(r.read_bits(1), None);
    }

    #[test]
    fn single_bits() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            w.write_bit(b);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit(), Some(b));
        }
    }

    #[test]
    fn bit_len_tracks_written_bits() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0, 5);
        assert_eq!(w.bit_len(), 5);
        w.write_bits(0, 11);
        assert_eq!(w.bit_len(), 16);
    }

    #[test]
    fn bits_consumed_and_remaining() {
        let bytes = [0xAB, 0xCD];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.bits_remaining(), 16);
        r.read_bits(5).unwrap();
        assert_eq!(r.bits_consumed(), 5);
        assert_eq!(r.bits_remaining(), 11);
    }

    #[test]
    fn finish_into_appends() {
        let mut dst = vec![0xFF];
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        let n = w.finish_into(&mut dst);
        assert_eq!(n, 1);
        assert_eq!(dst, vec![0xFF, 0x01]);
    }

    #[test]
    fn full_u64_values() {
        let mut w = BitWriter::new();
        w.write_bits(u64::MAX, 64);
        w.write_bits(0, 64);
        w.write_bits(0xDEAD_BEEF_CAFE_F00D, 64);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(64), Some(u64::MAX));
        assert_eq!(r.read_bits(64), Some(0));
        assert_eq!(r.read_bits(64), Some(0xDEAD_BEEF_CAFE_F00D));
    }
}
