//! LZ77-family string matching and block formats.
//!
//! Provides a hash-chain matcher producing a token stream (literal runs and
//! back-references) plus a byte-oriented block serialization in the spirit of
//! LZ4/Snappy. The Deflate- and Zstd-class baselines consume the raw token
//! stream and entropy-code it themselves.

use crate::varint;
use crate::{DecodeError, Result};

/// Minimum useful match length.
pub const MIN_MATCH: usize = 4;
/// Maximum back-reference distance (64 KiB window).
pub const MAX_DISTANCE: usize = 1 << 16;

const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;
const NO_POS: u32 = u32::MAX;

/// One LZ token: a run of literals followed by an optional match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Number of literal bytes preceding the match.
    pub literal_len: usize,
    /// Match length in bytes; 0 for the final token when no match follows.
    pub match_len: usize,
    /// Back-reference distance (1..=MAX_DISTANCE); meaningless if
    /// `match_len == 0`.
    pub distance: usize,
}

#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Matcher effort level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Single hash probe, greedy (Snappy/LZ4-fast class).
    Fast,
    /// Hash chains with bounded depth and one-step lazy matching
    /// (gzip/zstd mid-level class).
    Thorough,
}

/// Tokenizes `data` with a hash-chain LZ77 matcher.
///
/// The produced tokens exactly cover the input: the sum of
/// `literal_len + match_len` equals `data.len()`, and each match references
/// bytes already emitted.
pub fn tokenize(data: &[u8], effort: Effort) -> Vec<Token> {
    let mut tokens = Vec::new();
    if data.len() < MIN_MATCH {
        if !data.is_empty() {
            tokens.push(Token {
                literal_len: data.len(),
                match_len: 0,
                distance: 0,
            });
        }
        return tokens;
    }
    let max_depth = match effort {
        Effort::Fast => 1,
        Effort::Thorough => 32,
    };
    let mut head = vec![NO_POS; HASH_SIZE];
    let mut chain = vec![NO_POS; data.len()];

    let insert = |head: &mut Vec<u32>, chain: &mut Vec<u32>, i: usize| {
        let h = hash4(data, i);
        chain[i] = head[h];
        head[h] = i as u32;
    };

    let find_match = |head: &[u32], chain: &[u32], i: usize| -> Option<(usize, usize)> {
        let mut best_len = MIN_MATCH - 1;
        let mut best_dist = 0usize;
        let mut cand = head[hash4(data, i)];
        let mut depth = 0;
        while cand != NO_POS && depth < max_depth {
            let c = cand as usize;
            if i - c > MAX_DISTANCE {
                break;
            }
            let limit = data.len() - i;
            let mut len = 0;
            while len < limit && data[c + len] == data[i + len] {
                len += 1;
            }
            if len > best_len {
                best_len = len;
                best_dist = i - c;
                if len >= limit {
                    break;
                }
            }
            cand = chain[c];
            depth += 1;
        }
        (best_len >= MIN_MATCH).then_some((best_len, best_dist))
    };

    let mut i = 0usize;
    let mut literal_start = 0usize;
    let insert_limit = data.len() - MIN_MATCH + 1;
    while i + MIN_MATCH <= data.len() {
        match find_match(&head, &chain, i) {
            Some((mut len, mut dist)) => {
                // One-step lazy evaluation: prefer a longer match at i+1.
                if effort == Effort::Thorough && i + 1 + MIN_MATCH <= data.len() {
                    insert(&mut head, &mut chain, i);
                    if let Some((len2, dist2)) = find_match(&head, &chain, i + 1) {
                        if len2 > len + 1 {
                            i += 1;
                            len = len2;
                            dist = dist2;
                        }
                    }
                } else {
                    insert(&mut head, &mut chain, i);
                }
                tokens.push(Token {
                    literal_len: i - literal_start,
                    match_len: len,
                    distance: dist,
                });
                // Index positions inside the match (sparsely for speed).
                let end = i + len;
                let step = if len > 64 { 8 } else { 1 };
                let mut j = i + 1;
                while j < end.min(insert_limit) {
                    insert(&mut head, &mut chain, j);
                    j += step;
                }
                i = end;
                literal_start = end;
            }
            None => {
                insert(&mut head, &mut chain, i);
                i += 1;
            }
        }
    }
    if literal_start < data.len() {
        tokens.push(Token {
            literal_len: data.len() - literal_start,
            match_len: 0,
            distance: 0,
        });
    }
    tokens
}

/// Reconstructs the original bytes from tokens plus the literal bytes laid
/// out in token order.
///
/// # Errors
///
/// Fails if a token references data before the start of the output or the
/// literal stream is too short.
pub fn detokenize(tokens: &[Token], literals: &[u8], expected_len: usize) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(crate::prealloc_limit(expected_len));
    let mut lit_pos = 0usize;
    for t in tokens {
        let lit_end = lit_pos
            .checked_add(t.literal_len)
            .ok_or(DecodeError::Corrupt("literal overflow"))?;
        if lit_end > literals.len() {
            return Err(DecodeError::UnexpectedEof);
        }
        out.extend_from_slice(&literals[lit_pos..lit_end]);
        lit_pos = lit_end;
        if t.match_len > 0 {
            if t.distance == 0 || t.distance > out.len() {
                return Err(DecodeError::Corrupt("match distance out of range"));
            }
            // Bound the copy *before* performing it, so a hostile token
            // cannot grow the output past the declared length.
            if t.match_len > expected_len.saturating_sub(out.len()) {
                return Err(DecodeError::Corrupt("match overruns expected length"));
            }
            let start = out.len() - t.distance;
            // Overlapping copies are the normal RLE-like case; copy bytewise.
            for k in 0..t.match_len {
                let b = out[start + k];
                out.push(b);
            }
        }
    }
    if out.len() != expected_len {
        return Err(DecodeError::Corrupt("decoded length mismatch"));
    }
    Ok(out)
}

/// Extracts the literal bytes of `data` in token order.
pub fn literals_of(data: &[u8], tokens: &[Token]) -> Vec<u8> {
    let mut lits = Vec::new();
    let mut pos = 0usize;
    for t in tokens {
        lits.extend_from_slice(&data[pos..pos + t.literal_len]);
        pos += t.literal_len + t.match_len;
    }
    lits
}

/// Compresses `data` into a self-contained LZ4/Snappy-style block:
/// varint length, then a sequence of (varint literal_len, literals,
/// varint match_len, varint distance) records.
pub fn compress_block(data: &[u8], effort: Effort) -> Vec<u8> {
    let t = fpc_metrics::timer(fpc_metrics::Stage::LzEncode);
    let tokens = tokenize(data, effort);
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    varint::write_usize(&mut out, data.len());
    let mut pos = 0usize;
    for t in &tokens {
        varint::write_usize(&mut out, t.literal_len);
        out.extend_from_slice(&data[pos..pos + t.literal_len]);
        varint::write_usize(&mut out, t.match_len);
        if t.match_len > 0 {
            varint::write_usize(&mut out, t.distance);
        }
        pos += t.literal_len + t.match_len;
    }
    t.finish(data.len() as u64);
    out
}

/// Decompresses a block produced by [`compress_block`].
///
/// `max_len` is the caller's upper bound on the decoded size (known from
/// the enclosing framing — a block size, a chunk size, the expected file
/// length). It exists to stop decompression bombs: a hostile block can
/// declare any length and expand a few input bytes into it via
/// self-referential matches, so without an external bound the decoder
/// would allocate whatever the stream asks for.
///
/// # Errors
///
/// Fails on truncated or corrupt input, or if the declared decoded length
/// exceeds `max_len`.
pub fn decompress_block(data: &[u8], max_len: usize) -> Result<Vec<u8>> {
    let t = fpc_metrics::timer(fpc_metrics::Stage::LzDecode);
    let mut pos = 0usize;
    let n = varint::read_usize(data, &mut pos)?;
    if n > max_len {
        return Err(DecodeError::Corrupt("declared length exceeds caller limit"));
    }
    let mut out = Vec::with_capacity(crate::prealloc_limit(n));
    while out.len() < n {
        let lit = varint::read_usize(data, &mut pos)?;
        let end = pos
            .checked_add(lit)
            .ok_or(DecodeError::Corrupt("literal overflow"))?;
        if end > data.len() {
            return Err(DecodeError::UnexpectedEof);
        }
        if lit > n - out.len() {
            return Err(DecodeError::Corrupt("block overruns declared length"));
        }
        out.extend_from_slice(&data[pos..end]);
        pos = end;
        let mlen = varint::read_usize(data, &mut pos)?;
        if mlen > 0 {
            if mlen > n - out.len() {
                return Err(DecodeError::Corrupt("block overruns declared length"));
            }
            let dist = varint::read_usize(data, &mut pos)?;
            if dist == 0 || dist > out.len() {
                return Err(DecodeError::Corrupt("match distance out of range"));
            }
            let start = out.len() - dist;
            for k in 0..mlen {
                let b = out[start + k];
                out.push(b);
            }
        }
    }
    t.finish(out.len() as u64);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8], effort: Effort) {
        let c = compress_block(data, effort);
        assert_eq!(decompress_block(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn roundtrip_empty() {
        roundtrip(&[], Effort::Fast);
        roundtrip(&[], Effort::Thorough);
    }

    #[test]
    fn roundtrip_short() {
        roundtrip(b"abc", Effort::Fast);
        roundtrip(b"a", Effort::Thorough);
    }

    #[test]
    fn roundtrip_repetitive() {
        let data = b"abcabcabcabcabcabcabcabcabc".repeat(50);
        roundtrip(&data, Effort::Fast);
        roundtrip(&data, Effort::Thorough);
    }

    #[test]
    fn roundtrip_runs() {
        let mut data = vec![0u8; 5000];
        data.extend_from_slice(&[1, 2, 3, 4, 5]);
        data.extend(vec![9u8; 3000]);
        roundtrip(&data, Effort::Fast);
        roundtrip(&data, Effort::Thorough);
    }

    #[test]
    fn roundtrip_incompressible() {
        let data: Vec<u8> = (0..10_000u64)
            .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 56) as u8)
            .collect();
        roundtrip(&data, Effort::Fast);
        roundtrip(&data, Effort::Thorough);
    }

    #[test]
    fn repetitive_compresses() {
        let data = b"the quick brown fox jumps over the lazy dog ".repeat(200);
        let c = compress_block(&data, Effort::Thorough);
        assert!(c.len() < data.len() / 10, "got {}", c.len());
    }

    #[test]
    fn thorough_not_worse_than_fast() {
        let data = b"mississippi riverbank mississippi delta mississippi mud ".repeat(100);
        let fast = compress_block(&data, Effort::Fast).len();
        let thorough = compress_block(&data, Effort::Thorough).len();
        assert!(thorough <= fast, "thorough {thorough} > fast {fast}");
    }

    #[test]
    fn tokens_cover_input_exactly() {
        let data = b"abcdefabcdefabcdefXYZabcdef".repeat(10);
        for effort in [Effort::Fast, Effort::Thorough] {
            let tokens = tokenize(&data, effort);
            let total: usize = tokens.iter().map(|t| t.literal_len + t.match_len).sum();
            assert_eq!(total, data.len());
            let lits = literals_of(&data, &tokens);
            assert_eq!(detokenize(&tokens, &lits, data.len()).unwrap(), data);
        }
    }

    #[test]
    fn overlapping_match_copy() {
        // "aaaa..." forces distance-1 overlapping matches.
        let data = vec![b'a'; 1000];
        let tokens = tokenize(&data, Effort::Thorough);
        assert!(tokens.iter().any(|t| t.match_len > 0 && t.distance == 1));
        roundtrip(&data, Effort::Thorough);
    }

    #[test]
    fn corrupt_distance_rejected() {
        let mut c = Vec::new();
        varint::write_usize(&mut c, 10);
        varint::write_usize(&mut c, 1); // 1 literal
        c.push(b'x');
        varint::write_usize(&mut c, 9); // match len 9
        varint::write_usize(&mut c, 5); // distance 5 > out.len()==1
        assert!(matches!(
            decompress_block(&c, 1 << 20),
            Err(DecodeError::Corrupt(_))
        ));
    }

    #[test]
    fn truncated_block_rejected() {
        let data = b"hello world hello world hello world".repeat(20);
        let c = compress_block(&data, Effort::Fast);
        assert!(decompress_block(&c[..c.len() / 2], 1 << 20).is_err());
    }

    #[test]
    fn matches_never_reach_before_start() {
        let data = b"xyzxyzxyzxyz";
        let tokens = tokenize(data, Effort::Thorough);
        let mut produced = 0usize;
        for t in &tokens {
            produced += t.literal_len;
            if t.match_len > 0 {
                assert!(t.distance <= produced);
            }
            produced += t.match_len;
        }
    }
}
