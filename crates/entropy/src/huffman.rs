//! Canonical Huffman coding.
//!
//! Supports alphabets of up to 65 536 symbols with a maximum code length of
//! 15 bits (over-deep trees are handled by zlib-style frequency halving).
//! Used by the Deflate-class, Bzip2-class, and SPDP baselines.

use crate::bitio::{BitReader, BitWriter};
use crate::varint;
use crate::{DecodeError, Result};

/// Maximum canonical code length in bits.
pub const MAX_CODE_LEN: u8 = 15;

/// A canonical Huffman code book: per-symbol code lengths plus the
/// bit-reversed codes used for LSB-first emission.
#[derive(Debug, Clone)]
pub struct CodeBook {
    lengths: Vec<u8>,
    /// Codes stored bit-reversed so that writing them LSB-first emits the
    /// canonical code MSB-first on the wire.
    codes: Vec<u32>,
}

impl CodeBook {
    /// Builds a canonical code book from symbol frequencies.
    ///
    /// Symbols with zero frequency receive no code. If every frequency is
    /// zero the book is empty; if exactly one symbol occurs it is assigned a
    /// 1-bit code.
    pub fn from_freqs(freqs: &[u64]) -> Self {
        let lengths = build_lengths(freqs, MAX_CODE_LEN);
        let codes = assign_codes(&lengths);
        Self { lengths, codes }
    }

    /// Code length (bits) for `sym`; 0 means the symbol has no code.
    pub fn len_of(&self, sym: usize) -> u8 {
        self.lengths.get(sym).copied().unwrap_or(0)
    }

    /// Per-symbol code lengths.
    pub fn lengths(&self) -> &[u8] {
        &self.lengths
    }

    /// Total coded size in bits for the given frequency histogram.
    pub fn cost_bits(&self, freqs: &[u64]) -> u64 {
        freqs
            .iter()
            .zip(&self.lengths)
            .map(|(&f, &l)| f * u64::from(l))
            .sum()
    }

    /// Emits the code for `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` has no code (zero frequency during construction).
    #[inline]
    pub fn encode(&self, w: &mut BitWriter, sym: usize) {
        let len = self.lengths[sym];
        assert!(len > 0, "symbol {sym} has no Huffman code");
        w.write_bits(u64::from(self.codes[sym]), u32::from(len));
    }

    /// Serializes the code lengths (varint symbol count, then 4-bit lengths).
    pub fn write_header(&self, out: &mut Vec<u8>) {
        varint::write_usize(out, self.lengths.len());
        let mut w = BitWriter::with_capacity(self.lengths.len().div_ceil(2));
        for &len in &self.lengths {
            w.write_bits(u64::from(len), 4);
        }
        w.finish_into(out);
    }

    /// Reads a header produced by [`CodeBook::write_header`].
    ///
    /// # Errors
    ///
    /// Fails if the input is truncated or the lengths violate Kraft's
    /// inequality (making unambiguous decoding impossible).
    pub fn read_header(data: &[u8], pos: &mut usize) -> Result<Self> {
        let nsyms = varint::read_usize(data, pos)?;
        if nsyms > 1 << 16 {
            return Err(DecodeError::InvalidHeader("huffman alphabet too large"));
        }
        let nbytes = nsyms.div_ceil(2);
        let end = pos
            .checked_add(nbytes)
            .ok_or(DecodeError::Corrupt("header overflow"))?;
        if end > data.len() {
            return Err(DecodeError::UnexpectedEof);
        }
        let mut r = BitReader::new(&data[*pos..end]);
        let mut lengths = Vec::with_capacity(nsyms);
        for _ in 0..nsyms {
            lengths.push(r.read_bits(4).ok_or(DecodeError::UnexpectedEof)? as u8);
        }
        *pos = end;
        validate_kraft(&lengths)?;
        let codes = assign_codes(&lengths);
        Ok(Self { lengths, codes })
    }
}

/// Canonical Huffman decoder built from code lengths.
#[derive(Debug, Clone)]
pub struct Decoder {
    /// `first_code[len]` is the smallest canonical code of length `len`.
    first_code: [u32; MAX_CODE_LEN as usize + 1],
    /// `count[len]` is the number of codes of length `len`.
    count: [u32; MAX_CODE_LEN as usize + 1],
    /// `offset[len]` indexes into `symbols` for the first code of `len`.
    offset: [u32; MAX_CODE_LEN as usize + 1],
    /// Symbols sorted by (length, symbol).
    symbols: Vec<u16>,
}

impl Decoder {
    /// Builds a decoder from a code book.
    pub fn new(book: &CodeBook) -> Self {
        Self::from_lengths(&book.lengths)
    }

    /// Builds a decoder directly from per-symbol code lengths.
    pub fn from_lengths(lengths: &[u8]) -> Self {
        let mut count = [0u32; MAX_CODE_LEN as usize + 1];
        for &len in lengths {
            if len > 0 {
                count[len as usize] += 1;
            }
        }
        let mut first_code = [0u32; MAX_CODE_LEN as usize + 1];
        let mut offset = [0u32; MAX_CODE_LEN as usize + 1];
        let mut code = 0u32;
        let mut idx = 0u32;
        for len in 1..=MAX_CODE_LEN as usize {
            first_code[len] = code;
            offset[len] = idx;
            code = (code + count[len]) << 1;
            idx += count[len];
        }
        let mut symbols = vec![0u16; idx as usize];
        let mut next = offset;
        for (sym, &len) in lengths.iter().enumerate() {
            if len > 0 {
                symbols[next[len as usize] as usize] = sym as u16;
                next[len as usize] += 1;
            }
        }
        Self {
            first_code,
            count,
            offset,
            symbols,
        }
    }

    /// Decodes one symbol.
    ///
    /// # Errors
    ///
    /// Fails on truncated input or a bit pattern not matching any code.
    #[inline]
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u16> {
        let mut code = 0u32;
        for len in 1..=MAX_CODE_LEN as usize {
            let bit = r.read_bit().ok_or(DecodeError::UnexpectedEof)?;
            code = (code << 1) | u32::from(bit);
            let rel = code.wrapping_sub(self.first_code[len]);
            if rel < self.count[len] {
                return Ok(self.symbols[(self.offset[len] + rel) as usize]);
            }
        }
        Err(DecodeError::Corrupt("invalid huffman code"))
    }
}

/// Computes code lengths for `freqs`, halving frequencies until the longest
/// code fits in `max_len` bits.
fn build_lengths(freqs: &[u64], max_len: u8) -> Vec<u8> {
    let mut working: Vec<u64> = freqs.to_vec();
    loop {
        let lengths = huffman_lengths(&working);
        if lengths.iter().all(|&l| l <= max_len) {
            return lengths;
        }
        for f in &mut working {
            if *f > 0 {
                *f = (*f).div_ceil(2);
            }
        }
    }
}

/// Plain (unbounded) Huffman code lengths via a heap-built tree.
fn huffman_lengths(freqs: &[u64]) -> Vec<u8> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let live: Vec<usize> = (0..freqs.len()).filter(|&i| freqs[i] > 0).collect();
    let mut lengths = vec![0u8; freqs.len()];
    match live.len() {
        0 => return lengths,
        1 => {
            lengths[live[0]] = 1;
            return lengths;
        }
        _ => {}
    }

    // Tree nodes: leaves first, then internal nodes with parent links.
    let mut parent: Vec<u32> = vec![u32::MAX; live.len()];
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = live
        .iter()
        .enumerate()
        .map(|(node, &sym)| Reverse((freqs[sym], node as u32)))
        .collect();
    while heap.len() > 1 {
        let Reverse((fa, a)) = heap.pop().expect("heap has >1 element");
        let Reverse((fb, b)) = heap.pop().expect("heap has >1 element");
        let node = parent.len() as u32;
        parent.push(u32::MAX);
        parent[a as usize] = node;
        parent[b as usize] = node;
        heap.push(Reverse((fa + fb, node)));
    }
    for (node, &sym) in live.iter().enumerate() {
        let mut depth = 0u8;
        let mut cur = node as u32;
        while parent[cur as usize] != u32::MAX {
            cur = parent[cur as usize];
            depth += 1;
        }
        lengths[sym] = depth;
    }
    lengths
}

/// Assigns canonical codes (bit-reversed for LSB-first emission).
fn assign_codes(lengths: &[u8]) -> Vec<u32> {
    let mut count = [0u32; MAX_CODE_LEN as usize + 1];
    for &len in lengths {
        count[len as usize] += 1;
    }
    let mut next = [0u32; MAX_CODE_LEN as usize + 1];
    let mut code = 0u32;
    for len in 1..=MAX_CODE_LEN as usize {
        next[len] = code;
        code = (code + count[len]) << 1;
    }
    lengths
        .iter()
        .map(|&len| {
            if len == 0 {
                0
            } else {
                let canonical = next[len as usize];
                next[len as usize] += 1;
                reverse_bits(canonical, len)
            }
        })
        .collect()
}

fn validate_kraft(lengths: &[u8]) -> Result<()> {
    let mut total = 0u64;
    let mut nonzero = 0usize;
    for &len in lengths {
        if len > MAX_CODE_LEN {
            return Err(DecodeError::InvalidHeader("code length exceeds maximum"));
        }
        if len > 0 {
            nonzero += 1;
            total += 1u64 << (MAX_CODE_LEN - len);
        }
    }
    // A single 1-bit code (half-full tree) is allowed as a degenerate case.
    let full = 1u64 << MAX_CODE_LEN;
    if total > full || (nonzero > 1 && total != full) {
        return Err(DecodeError::InvalidHeader(
            "code lengths violate kraft inequality",
        ));
    }
    Ok(())
}

#[inline]
fn reverse_bits(code: u32, len: u8) -> u32 {
    code.reverse_bits() >> (32 - u32::from(len))
}

/// Compresses `data` as a single Huffman-coded block over the byte alphabet.
///
/// Layout: varint original length, code-length header, coded payload.
pub fn compress_bytes(data: &[u8]) -> Vec<u8> {
    let t = fpc_metrics::timer(fpc_metrics::Stage::HuffmanEncode);
    let mut freqs = [0u64; 256];
    for &b in data {
        freqs[b as usize] += 1;
    }
    let book = CodeBook::from_freqs(&freqs);
    let mut out = Vec::new();
    varint::write_usize(&mut out, data.len());
    book.write_header(&mut out);
    let mut w = BitWriter::with_capacity(data.len() / 2);
    for &b in data {
        book.encode(&mut w, b as usize);
    }
    w.finish_into(&mut out);
    t.finish(data.len() as u64);
    out
}

/// Decompresses a block produced by [`compress_bytes`].
///
/// # Errors
///
/// Fails on truncated or corrupt input.
pub fn decompress_bytes(data: &[u8]) -> Result<Vec<u8>> {
    let t = fpc_metrics::timer(fpc_metrics::Stage::HuffmanDecode);
    let mut pos = 0;
    let n = varint::read_usize(data, &mut pos)?;
    let book = CodeBook::read_header(data, &mut pos)?;
    let decoder = Decoder::new(&book);
    let mut r = BitReader::new(&data[pos..]);
    let mut out = Vec::with_capacity(crate::prealloc_limit(n));
    for _ in 0..n {
        out.push(decoder.decode(&mut r)? as u8);
    }
    t.finish(out.len() as u64);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let compressed = compress_bytes(data);
        assert_eq!(decompress_bytes(&compressed).unwrap(), data);
    }

    #[test]
    fn roundtrip_empty() {
        roundtrip(&[]);
    }

    #[test]
    fn roundtrip_single_symbol() {
        roundtrip(&[42u8; 1000]);
    }

    #[test]
    fn roundtrip_two_symbols() {
        let data: Vec<u8> = (0..500).map(|i| if i % 3 == 0 { 1 } else { 2 }).collect();
        roundtrip(&data);
    }

    #[test]
    fn roundtrip_all_bytes() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        roundtrip(&data);
    }

    #[test]
    fn roundtrip_skewed() {
        // Heavily skewed distribution exercises long codes.
        let mut data = vec![0u8; 10_000];
        for (i, b) in data.iter_mut().enumerate() {
            *b = match i % 1000 {
                0 => 255,
                1..=9 => 7,
                10..=99 => 3,
                _ => 0,
            };
        }
        roundtrip(&data);
    }

    #[test]
    fn skewed_compresses() {
        let mut data = vec![0u8; 65536];
        for (i, b) in data.iter_mut().enumerate() {
            if i % 100 == 0 {
                *b = (i / 100) as u8;
            }
        }
        let compressed = compress_bytes(&data);
        assert!(
            compressed.len() < data.len() / 4,
            "got {}",
            compressed.len()
        );
    }

    #[test]
    fn lengths_satisfy_kraft() {
        let freqs: Vec<u64> = (0..256).map(|i| (i * i) as u64).collect();
        let book = CodeBook::from_freqs(&freqs);
        assert!(
            validate_kraft(book.lengths()).is_ok() || {
                // Not necessarily a full tree when lengths are bounded, so only
                // require that no code exceeds the maximum.
                book.lengths().iter().all(|&l| l <= MAX_CODE_LEN)
            }
        );
    }

    #[test]
    fn depth_limited_on_exponential_freqs() {
        // Fibonacci-like frequencies force deep trees in unbounded Huffman.
        let mut freqs = vec![0u64; 40];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freqs.iter_mut() {
            *f = a;
            let c = a + b;
            a = b;
            b = c;
        }
        let book = CodeBook::from_freqs(&freqs);
        assert!(book.lengths().iter().all(|&l| l <= MAX_CODE_LEN));
        // Roundtrip a stream drawn from this alphabet via the generic API.
        let mut w = BitWriter::new();
        let syms: Vec<usize> = (0..39).chain(0..39).collect();
        for &s in &syms {
            book.encode(&mut w, s);
        }
        let bytes = w.finish();
        let dec = Decoder::new(&book);
        let mut r = BitReader::new(&bytes);
        for &s in &syms {
            assert_eq!(dec.decode(&mut r).unwrap(), s as u16);
        }
    }

    #[test]
    fn corrupt_header_rejected() {
        let compressed = compress_bytes(b"hello world hello world");
        // Truncate inside the header.
        assert!(decompress_bytes(&compressed[..2]).is_err());
    }

    #[test]
    fn truncated_payload_rejected() {
        let compressed = compress_bytes(&[1u8, 2, 3, 4, 5, 6, 7, 8].repeat(100));
        assert!(decompress_bytes(&compressed[..compressed.len() - 5]).is_err());
    }

    #[test]
    fn invalid_lengths_rejected() {
        // Hand-craft a header whose lengths overfill the code space.
        let mut out = Vec::new();
        varint::write_usize(&mut out, 4);
        let mut w = BitWriter::new();
        for _ in 0..4 {
            w.write_bits(1, 4); // four 1-bit codes: impossible
        }
        w.finish_into(&mut out);
        let mut pos = 0;
        assert!(CodeBook::read_header(&out, &mut pos).is_err());
    }

    #[test]
    fn cost_bits_matches_encoded_size() {
        let data: Vec<u8> = (0..2048u32).map(|i| (i % 17) as u8).collect();
        let mut freqs = [0u64; 256];
        for &b in &data {
            freqs[b as usize] += 1;
        }
        let book = CodeBook::from_freqs(&freqs);
        let mut w = BitWriter::new();
        for &b in &data {
            book.encode(&mut w, b as usize);
        }
        assert_eq!(w.bit_len() as u64, book.cost_bits(&freqs));
    }
}
