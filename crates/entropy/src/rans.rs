//! Range asymmetric numeral systems (rANS) entropy coding.
//!
//! A static-model, byte-oriented rANS coder with 12-bit quantized
//! frequencies, matching the style of coder used by nvCOMP's ANS compressor
//! and by Zstandard's FSE stage. Encoding proceeds in reverse symbol order;
//! decoding is strictly forward, which is what makes ANS attractive for
//! high-throughput implementations.

use crate::varint;
use crate::{DecodeError, Result};

/// Probability precision in bits (frequencies sum to `1 << SCALE_BITS`).
pub const SCALE_BITS: u32 = 12;
const SCALE: u32 = 1 << SCALE_BITS;
/// Lower bound of the normalized interval.
const RANS_L: u32 = 1 << 23;

/// Quantized symbol statistics for one block.
#[derive(Debug, Clone)]
pub struct Model {
    freq: [u16; 256],
    cum: [u32; 257],
    /// Maps a slot in `0..SCALE` to its symbol.
    slot_to_sym: Vec<u8>,
}

impl Model {
    /// Builds a model from raw byte counts, normalizing to `SCALE`.
    ///
    /// Every symbol that occurs receives frequency ≥ 1. Returns `None` if
    /// `data` is empty.
    pub fn from_data(data: &[u8]) -> Option<Self> {
        if data.is_empty() {
            return None;
        }
        let mut counts = [0u64; 256];
        for &b in data {
            counts[b as usize] += 1;
        }
        Some(Self::from_counts(&counts))
    }

    /// Builds a model from a histogram (total count must be nonzero).
    pub fn from_counts(counts: &[u64; 256]) -> Self {
        let total: u64 = counts.iter().sum();
        assert!(total > 0, "cannot model an empty histogram");
        let mut freq = [0u16; 256];
        let mut assigned = 0u32;
        // Initial proportional assignment, guaranteeing >=1 for present syms.
        for i in 0..256 {
            if counts[i] > 0 {
                let f = ((counts[i] as u128 * SCALE as u128) / total as u128) as u32;
                let f = f.clamp(1, SCALE - 1);
                freq[i] = f as u16;
                assigned += f;
            }
        }
        // Redistribute the rounding error, stealing from / giving to the
        // largest buckets (which are least sensitive to +-1 changes).
        while assigned != SCALE {
            if assigned < SCALE {
                let i = (0..256)
                    .filter(|&i| freq[i] > 0)
                    .max_by_key(|&i| counts[i])
                    .expect("nonempty");
                freq[i] += 1;
                assigned += 1;
            } else {
                let i = (0..256)
                    .filter(|&i| freq[i] > 1)
                    .max_by_key(|&i| freq[i])
                    .expect("scale overflow with all freq==1 is impossible for 256 symbols");
                freq[i] -= 1;
                assigned -= 1;
            }
        }
        Self::from_freqs(freq)
    }

    fn from_freqs(freq: [u16; 256]) -> Self {
        let mut cum = [0u32; 257];
        for i in 0..256 {
            cum[i + 1] = cum[i] + u32::from(freq[i]);
        }
        debug_assert_eq!(cum[256], SCALE);
        let mut slot_to_sym = vec![0u8; SCALE as usize];
        for sym in 0..256 {
            for slot in cum[sym]..cum[sym + 1] {
                slot_to_sym[slot as usize] = sym as u8;
            }
        }
        Self {
            freq,
            cum,
            slot_to_sym,
        }
    }

    /// Serializes the frequency table (zero-run-length coded).
    pub fn write_header(&self, out: &mut Vec<u8>) {
        let mut i = 0;
        while i < 256 {
            if self.freq[i] == 0 {
                let start = i;
                while i < 256 && self.freq[i] == 0 {
                    i += 1;
                }
                // Zero run: 0x00 marker + run length.
                out.push(0);
                varint::write_usize(out, i - start);
            } else {
                // Nonzero: varint of freq (>=1).
                varint::write_u64(out, u64::from(self.freq[i]));
                i += 1;
            }
        }
    }

    /// Reads a table written by [`Model::write_header`].
    ///
    /// # Errors
    ///
    /// Fails on truncation or if the frequencies do not sum to the scale.
    pub fn read_header(data: &[u8], pos: &mut usize) -> Result<Self> {
        let mut freq = [0u16; 256];
        let mut i = 0usize;
        while i < 256 {
            let v = varint::read_u64(data, pos)?;
            if v == 0 {
                let run = varint::read_usize(data, pos)?;
                i = i
                    .checked_add(run)
                    .ok_or(DecodeError::Corrupt("freq run overflow"))?;
                if i > 256 {
                    return Err(DecodeError::InvalidHeader("rans zero run too long"));
                }
            } else {
                if v > u64::from(SCALE) {
                    return Err(DecodeError::InvalidHeader("rans frequency too large"));
                }
                freq[i] = v as u16;
                i += 1;
            }
        }
        let total: u32 = freq.iter().map(|&f| u32::from(f)).sum();
        if total != SCALE {
            return Err(DecodeError::InvalidHeader(
                "rans frequencies do not sum to scale",
            ));
        }
        Ok(Self::from_freqs(freq))
    }
}

/// Encodes `data` with a static model built from it.
///
/// Layout: varint length, model header, varint payload length, payload
/// (renormalization bytes followed by the 4-byte final state).
pub fn compress(data: &[u8]) -> Vec<u8> {
    let t = fpc_metrics::timer(fpc_metrics::Stage::RansEncode);
    let mut out = Vec::new();
    varint::write_usize(&mut out, data.len());
    let Some(model) = Model::from_data(data) else {
        t.stop();
        return out; // empty input: length 0 only
    };
    model.write_header(&mut out);

    let mut payload: Vec<u8> = Vec::with_capacity(data.len() / 2 + 8);
    let mut state: u32 = RANS_L;
    // rANS encodes in reverse so the decoder emits forward.
    for &byte in data.iter().rev() {
        let f = u32::from(model.freq[byte as usize]);
        let x_max = ((RANS_L >> SCALE_BITS) << 8) * f;
        while state >= x_max {
            payload.push(state as u8);
            state >>= 8;
        }
        state = ((state / f) << SCALE_BITS) | ((state % f) + model.cum[byte as usize]);
    }
    payload.extend_from_slice(&state.to_le_bytes());

    varint::write_usize(&mut out, payload.len());
    out.extend_from_slice(&payload);
    t.finish(data.len() as u64);
    out
}

/// Decodes a stream produced by [`compress`]; `max_len` bounds the decoded
/// size (from the caller's framing) against decompression bombs.
///
/// # Errors
///
/// Fails on truncated or internally inconsistent input, or if the declared
/// decoded length exceeds `max_len`.
pub fn decompress(data: &[u8], max_len: usize) -> Result<Vec<u8>> {
    let t = fpc_metrics::timer(fpc_metrics::Stage::RansDecode);
    let mut pos = 0;
    let n = varint::read_usize(data, &mut pos)?;
    if n > max_len {
        // A single-symbol model emits bytes without consuming input, so a
        // hostile stream can expand to any declared length; the caller's
        // framing bound is the only honest limit.
        return Err(DecodeError::Corrupt("declared length exceeds caller limit"));
    }
    if n == 0 {
        t.stop();
        return Ok(Vec::new());
    }
    let model = Model::read_header(data, &mut pos)?;
    let payload_len = varint::read_usize(data, &mut pos)?;
    let end = pos
        .checked_add(payload_len)
        .ok_or(DecodeError::Corrupt("payload overflow"))?;
    if end > data.len() {
        return Err(DecodeError::UnexpectedEof);
    }
    let payload = &data[pos..end];
    let Some((renorm, state_bytes)) = payload.split_last_chunk::<4>() else {
        return Err(DecodeError::UnexpectedEof);
    };
    let mut state = u32::from_le_bytes(*state_bytes);
    let mut remaining = renorm; // consumed back-to-front
    let mut out = Vec::with_capacity(crate::prealloc_limit(n));
    for _ in 0..n {
        let slot = state & (SCALE - 1);
        let sym = model.slot_to_sym[slot as usize];
        let f = u32::from(model.freq[sym as usize]);
        state = f * (state >> SCALE_BITS) + slot - model.cum[sym as usize];
        while state < RANS_L {
            let Some((&b, rest)) = remaining.split_last() else {
                return Err(DecodeError::UnexpectedEof);
            };
            remaining = rest;
            state = (state << 8) | u32::from(b);
        }
        out.push(sym);
    }
    t.finish(out.len() as u64);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        assert_eq!(decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn roundtrip_empty() {
        roundtrip(&[]);
    }

    #[test]
    fn roundtrip_single_byte() {
        roundtrip(&[7]);
    }

    #[test]
    fn roundtrip_uniform_single_symbol() {
        roundtrip(&[0xAB; 10_000]);
    }

    #[test]
    fn roundtrip_all_bytes() {
        let data: Vec<u8> = (0..=255u8).cycle().take(3000).collect();
        roundtrip(&data);
    }

    #[test]
    fn roundtrip_skewed_distribution() {
        let mut data = Vec::new();
        for i in 0..50_000u32 {
            data.push(match i % 1024 {
                0..=511 => 0u8,
                512..=767 => 1,
                768..=1000 => 2,
                _ => (i % 251) as u8,
            });
        }
        roundtrip(&data);
    }

    #[test]
    fn skewed_compresses_well() {
        let mut data = vec![0u8; 100_000];
        for (i, b) in data.iter_mut().enumerate() {
            if i % 50 == 0 {
                *b = (i % 7) as u8 + 1;
            }
        }
        let c = compress(&data);
        // Entropy is ~0.2 bits/byte; allow generous slack over that.
        assert!(c.len() < data.len() / 8, "got {}", c.len());
    }

    #[test]
    fn model_normalizes_to_scale() {
        let mut counts = [0u64; 256];
        counts[0] = 1;
        counts[1] = 1_000_000;
        counts[255] = 3;
        let m = Model::from_counts(&counts);
        let total: u32 = m.freq.iter().map(|&f| u32::from(f)).sum();
        assert_eq!(total, SCALE);
        assert!(m.freq[0] >= 1 && m.freq[255] >= 1);
    }

    #[test]
    fn header_roundtrip() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 13) as u8).collect();
        let m = Model::from_data(&data).unwrap();
        let mut buf = Vec::new();
        m.write_header(&mut buf);
        let mut pos = 0;
        let m2 = Model::read_header(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        assert_eq!(m.freq, m2.freq);
    }

    #[test]
    fn truncated_stream_rejected() {
        let c = compress(&[1u8, 2, 3].repeat(500));
        for cut in 1..c.len().min(30) {
            assert!(decompress(&c[..c.len() - cut], 1 << 20).is_err() || cut == 0);
        }
    }

    #[test]
    fn bad_frequency_table_rejected() {
        // freq table claiming a single symbol with freq != SCALE
        let mut buf = Vec::new();
        varint::write_usize(&mut buf, 10); // claims 10 bytes of content
        varint::write_u64(&mut buf, 100); // sym 0 freq 100
        buf.push(0);
        varint::write_usize(&mut buf, 255); // rest zero -> total 100 != 4096
        varint::write_usize(&mut buf, 4);
        buf.extend_from_slice(&[0, 0, 0, 0]);
        assert!(decompress(&buf, 1 << 20).is_err());
    }
}
