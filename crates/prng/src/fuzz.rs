//! Deterministic property-test / fuzz driver.
//!
//! A minimal in-repo replacement for the `proptest` dependency: every test
//! runs a fixed number of cases, each case derives its own [`Rng`] from the
//! test name and case index, and a failing case panics with a message that
//! pinpoints the exact case — which, being deterministic, reproduces on any
//! machine by just re-running the test.
//!
//! The [`Mutation`] operators cover the hostile-input classes the decoders
//! must survive: truncation, single-bit flips, byte patches (structure-aware
//! corruption of headers and tables), and wholesale random bytes.
//!
//! Two environment knobs support CI:
//!
//! * `FPC_FUZZ_CASES=<n>` overrides every property's case count (the
//!   nightly/extended fuzz job cranks it up without a recompile);
//! * `FPC_FUZZ_DUMP_DIR=<dir>` makes a failing case write the bytes last
//!   passed to [`record_input`] into `<dir>`, so CI can upload the exact
//!   failing input as an artifact.

use crate::{splitmix64, Rng};
use std::cell::RefCell;
use std::path::{Path, PathBuf};

/// Derives the per-case RNG for `(name, case)`.
///
/// Hashing the test name in keeps different tests' case streams decorrelated
/// even though everything is deterministic.
pub fn case_rng(name: &str, case: u64) -> Rng {
    let mut h = 0x5E_ED_0F_F1_CE_u64;
    for b in name.bytes() {
        h = splitmix64(&mut h) ^ u64::from(b);
    }
    Rng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

thread_local! {
    /// The bytes under test for the current case (see [`record_input`]).
    static CURRENT_INPUT: RefCell<Option<Vec<u8>>> = const { RefCell::new(None) };
}

/// Registers the exact bytes the current case is about to feed a decoder.
///
/// Purely advisory: when the case later fails and a dump directory is
/// configured, the driver writes these bytes to disk so the failure
/// artifact carries the input, not just the seed. Calling it multiple
/// times keeps only the latest input.
pub fn record_input(bytes: &[u8]) {
    CURRENT_INPUT.with(|c| *c.borrow_mut() = Some(bytes.to_vec()));
}

/// Resolves the case count: `FPC_FUZZ_CASES` when set and valid, else the
/// test's built-in default.
pub fn fuzz_cases(default: u64) -> u64 {
    parse_cases(std::env::var("FPC_FUZZ_CASES").ok().as_deref(), default)
}

fn parse_cases(var: Option<&str>, default: u64) -> u64 {
    var.and_then(|s| s.trim().parse::<u64>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// Keeps dump file names portable (test names contain `/`).
fn sanitize_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn dump_failing_input(dir: &Path, name: &str, case: u64) -> Option<PathBuf> {
    let input = CURRENT_INPUT.with(|c| c.borrow_mut().take())?;
    let path = dir.join(format!("{}-case{case}.bin", sanitize_name(name)));
    std::fs::create_dir_all(dir).ok()?;
    std::fs::write(&path, &input).ok()?;
    Some(path)
}

/// Runs `cases` deterministic cases of the property `f`.
///
/// `f` receives a fresh seeded RNG and the case index; it should panic (via
/// `assert!` etc.) on property violation. The driver wraps each case so the
/// panic message of a failure names the test and case index.
///
/// The case count is overridable via `FPC_FUZZ_CASES`; on failure, the
/// input last passed to [`record_input`] is written under
/// `FPC_FUZZ_DUMP_DIR` when that is set.
pub fn run_cases(name: &str, cases: u64, f: impl FnMut(&mut Rng, u64)) {
    let dump_dir = std::env::var_os("FPC_FUZZ_DUMP_DIR").map(PathBuf::from);
    run_cases_with(name, fuzz_cases(cases), dump_dir.as_deref(), f);
}

/// [`run_cases`] with the environment knobs resolved by the caller
/// (exercised directly by tests so they need not mutate the environment).
pub fn run_cases_with(
    name: &str,
    cases: u64,
    dump_dir: Option<&Path>,
    mut f: impl FnMut(&mut Rng, u64),
) {
    for case in 0..cases {
        let mut rng = case_rng(name, case);
        CURRENT_INPUT.with(|c| *c.borrow_mut() = None);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            f(&mut rng, case);
        }));
        if let Err(payload) = result {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("non-string panic payload");
            let dumped = dump_dir.and_then(|dir| dump_failing_input(dir, name, case));
            let where_ = match dumped {
                Some(path) => format!("; failing input dumped to {}", path.display()),
                None => "; set FPC_FUZZ_DUMP_DIR to dump failing inputs".to_string(),
            };
            panic!("property '{name}' failed at case {case}/{cases}: {msg}{where_}");
        }
    }
}

/// A single corruption to apply to an otherwise valid stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mutation {
    /// Flip one bit at byte `pos`, bit `bit`.
    FlipBit {
        /// Byte offset of the flipped bit.
        pos: usize,
        /// Bit index within the byte (0..8).
        bit: u8,
    },
    /// Overwrite the byte at `pos` with `value`.
    Patch {
        /// Byte offset to overwrite.
        pos: usize,
        /// Replacement value.
        value: u8,
    },
    /// Keep only the first `len` bytes.
    Truncate {
        /// New stream length.
        len: usize,
    },
    /// Append `extra` garbage bytes.
    Extend {
        /// Number of appended bytes.
        extra: usize,
    },
}

impl Mutation {
    /// Applies the mutation to a copy of `data` and returns it.
    pub fn apply(&self, data: &[u8], rng: &mut Rng) -> Vec<u8> {
        let mut out = data.to_vec();
        match *self {
            Mutation::FlipBit { pos, bit } => {
                if !out.is_empty() {
                    let p = pos % out.len();
                    out[p] ^= 1 << (bit % 8);
                }
            }
            Mutation::Patch { pos, value } => {
                if !out.is_empty() {
                    let p = pos % out.len();
                    out[p] = value;
                }
            }
            Mutation::Truncate { len } => out.truncate(len.min(data.len())),
            Mutation::Extend { extra } => out.extend((0..extra).map(|_| rng.next_u64() as u8)),
        }
        out
    }

    /// Draws a random mutation appropriate for a stream of `len` bytes.
    pub fn arbitrary(rng: &mut Rng, len: usize) -> Self {
        match rng.gen_range(0u32..4) {
            0 => Mutation::FlipBit {
                pos: rng.next_u64() as usize,
                bit: rng.gen_range(0u8..8),
            },
            1 => Mutation::Patch {
                pos: rng.next_u64() as usize,
                value: rng.next_u64() as u8,
            },
            2 => Mutation::Truncate {
                len: if len == 0 {
                    0
                } else {
                    rng.gen_range(0usize..len)
                },
            },
            _ => Mutation::Extend {
                extra: rng.gen_range(1usize..16),
            },
        }
    }
}

/// Every single-bit flip position for a sweep with at least `min_positions`
/// distinct byte offsets (or every byte when the stream is short).
///
/// Returns `(byte, bit)` pairs covering the full stream evenly; used by the
/// corruption sweeps that require "≥ N flip positions, 100% detection".
pub fn flip_positions(len: usize, min_positions: usize) -> Vec<(usize, u8)> {
    if len == 0 {
        return Vec::new();
    }
    let step = (len / min_positions.max(1)).max(1);
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < len {
        // Alternate low/high bits so both cheap and expensive-to-detect
        // flips are exercised.
        out.push((pos, (pos % 8) as u8));
        pos += step;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn driver_is_deterministic() {
        let mut a = Vec::new();
        run_cases("drv", 5, |rng, case| a.push((case, rng.next_u64())));
        let mut b = Vec::new();
        run_cases("drv", 5, |rng, case| b.push((case, rng.next_u64())));
        assert_eq!(a, b);
        let mut c = Vec::new();
        run_cases("other-name", 5, |rng, case| c.push((case, rng.next_u64())));
        assert_ne!(a, c, "different tests must get different case streams");
    }

    #[test]
    fn driver_reports_case_index() {
        let err = std::panic::catch_unwind(|| {
            run_cases("boom", 10, |_, case| assert!(case < 3, "case too big"));
        })
        .expect_err("must propagate failure");
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(
            msg.contains("'boom'") && msg.contains("case 3/10"),
            "got: {msg}"
        );
    }

    #[test]
    fn mutations_behave() {
        let data = vec![0u8; 16];
        let mut rng = Rng::seed_from_u64(1);
        let flipped = Mutation::FlipBit { pos: 3, bit: 2 }.apply(&data, &mut rng);
        assert_eq!(flipped[3], 4);
        assert_eq!(flipped.len(), data.len());
        let patched = Mutation::Patch { pos: 18, value: 9 }.apply(&data, &mut rng);
        assert_eq!(patched[2], 9, "position wraps modulo length");
        let cut = Mutation::Truncate { len: 5 }.apply(&data, &mut rng);
        assert_eq!(cut.len(), 5);
        let grown = Mutation::Extend { extra: 3 }.apply(&data, &mut rng);
        assert_eq!(grown.len(), 19);
        // Empty input never panics.
        let empty = Mutation::FlipBit { pos: 0, bit: 0 }.apply(&[], &mut rng);
        assert!(empty.is_empty());
    }

    #[test]
    fn parse_cases_override() {
        assert_eq!(parse_cases(None, 64), 64);
        assert_eq!(parse_cases(Some("2048"), 64), 2048);
        assert_eq!(parse_cases(Some(" 16 "), 64), 16);
        assert_eq!(parse_cases(Some("0"), 64), 64, "zero would skip the test");
        assert_eq!(parse_cases(Some("nope"), 64), 64);
    }

    #[test]
    fn failing_case_dumps_recorded_input() {
        let dir = std::env::temp_dir().join("fpc-fuzz-dump-test");
        let _ = std::fs::remove_dir_all(&dir);
        let err = std::panic::catch_unwind(|| {
            run_cases_with("dump/me", 4, Some(&dir), |_, case| {
                record_input(&[case as u8; 8]);
                assert!(case < 2, "boom");
            });
        })
        .expect_err("must propagate failure");
        let msg = err.downcast_ref::<String>().expect("string payload");
        let path = dir.join("dump_me-case2.bin");
        assert!(
            msg.contains(&path.display().to_string()),
            "message must name the dump: {msg}"
        );
        assert_eq!(std::fs::read(&path).expect("dump written"), vec![2u8; 8]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn passing_cases_do_not_dump() {
        let dir = std::env::temp_dir().join("fpc-fuzz-nodump-test");
        let _ = std::fs::remove_dir_all(&dir);
        run_cases_with("dump/none", 4, Some(&dir), |_, _| {
            record_input(&[1, 2, 3]);
        });
        assert!(!dir.exists(), "no failure, no dump directory");
    }

    #[test]
    fn failure_without_recorded_input_suggests_knob() {
        let err = std::panic::catch_unwind(|| {
            run_cases_with("dump/unrecorded", 1, None, |_, _| panic!("x"));
        })
        .expect_err("must propagate failure");
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("FPC_FUZZ_DUMP_DIR"), "got: {msg}");
    }

    #[test]
    fn flip_positions_cover_stream() {
        let ps = flip_positions(10_000, 200);
        assert!(ps.len() >= 200);
        assert!(ps.iter().all(|&(p, b)| p < 10_000 && b < 8));
        assert_eq!(ps.first(), Some(&(0, 0)));
        assert!(ps.last().expect("nonempty").0 >= 10_000 - 50);
        assert!(flip_positions(0, 200).is_empty());
        assert_eq!(flip_positions(3, 200).len(), 3);
    }
}
