//! Deterministic property-test / fuzz driver.
//!
//! A minimal in-repo replacement for the `proptest` dependency: every test
//! runs a fixed number of cases, each case derives its own [`Rng`] from the
//! test name and case index, and a failing case panics with a message that
//! pinpoints the exact case — which, being deterministic, reproduces on any
//! machine by just re-running the test.
//!
//! The [`Mutation`] operators cover the hostile-input classes the decoders
//! must survive: truncation, single-bit flips, byte patches (structure-aware
//! corruption of headers and tables), and wholesale random bytes.

use crate::{splitmix64, Rng};

/// Derives the per-case RNG for `(name, case)`.
///
/// Hashing the test name in keeps different tests' case streams decorrelated
/// even though everything is deterministic.
pub fn case_rng(name: &str, case: u64) -> Rng {
    let mut h = 0x5E_ED_0F_F1_CE_u64;
    for b in name.bytes() {
        h = splitmix64(&mut h) ^ u64::from(b);
    }
    Rng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Runs `cases` deterministic cases of the property `f`.
///
/// `f` receives a fresh seeded RNG and the case index; it should panic (via
/// `assert!` etc.) on property violation. The driver wraps each case so the
/// panic message of a failure names the test and case index.
pub fn run_cases(name: &str, cases: u64, mut f: impl FnMut(&mut Rng, u64)) {
    for case in 0..cases {
        let mut rng = case_rng(name, case);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            f(&mut rng, case);
        }));
        if let Err(payload) = result {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("non-string panic payload");
            panic!("property '{name}' failed at case {case}/{cases}: {msg}");
        }
    }
}

/// A single corruption to apply to an otherwise valid stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mutation {
    /// Flip one bit at byte `pos`, bit `bit`.
    FlipBit {
        /// Byte offset of the flipped bit.
        pos: usize,
        /// Bit index within the byte (0..8).
        bit: u8,
    },
    /// Overwrite the byte at `pos` with `value`.
    Patch {
        /// Byte offset to overwrite.
        pos: usize,
        /// Replacement value.
        value: u8,
    },
    /// Keep only the first `len` bytes.
    Truncate {
        /// New stream length.
        len: usize,
    },
    /// Append `extra` garbage bytes.
    Extend {
        /// Number of appended bytes.
        extra: usize,
    },
}

impl Mutation {
    /// Applies the mutation to a copy of `data` and returns it.
    pub fn apply(&self, data: &[u8], rng: &mut Rng) -> Vec<u8> {
        let mut out = data.to_vec();
        match *self {
            Mutation::FlipBit { pos, bit } => {
                if !out.is_empty() {
                    let p = pos % out.len();
                    out[p] ^= 1 << (bit % 8);
                }
            }
            Mutation::Patch { pos, value } => {
                if !out.is_empty() {
                    let p = pos % out.len();
                    out[p] = value;
                }
            }
            Mutation::Truncate { len } => out.truncate(len.min(data.len())),
            Mutation::Extend { extra } => out.extend((0..extra).map(|_| rng.next_u64() as u8)),
        }
        out
    }

    /// Draws a random mutation appropriate for a stream of `len` bytes.
    pub fn arbitrary(rng: &mut Rng, len: usize) -> Self {
        match rng.gen_range(0u32..4) {
            0 => Mutation::FlipBit {
                pos: rng.next_u64() as usize,
                bit: rng.gen_range(0u8..8),
            },
            1 => Mutation::Patch {
                pos: rng.next_u64() as usize,
                value: rng.next_u64() as u8,
            },
            2 => Mutation::Truncate {
                len: if len == 0 {
                    0
                } else {
                    rng.gen_range(0usize..len)
                },
            },
            _ => Mutation::Extend {
                extra: rng.gen_range(1usize..16),
            },
        }
    }
}

/// Every single-bit flip position for a sweep with at least `min_positions`
/// distinct byte offsets (or every byte when the stream is short).
///
/// Returns `(byte, bit)` pairs covering the full stream evenly; used by the
/// corruption sweeps that require "≥ N flip positions, 100% detection".
pub fn flip_positions(len: usize, min_positions: usize) -> Vec<(usize, u8)> {
    if len == 0 {
        return Vec::new();
    }
    let step = (len / min_positions.max(1)).max(1);
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < len {
        // Alternate low/high bits so both cheap and expensive-to-detect
        // flips are exercised.
        out.push((pos, (pos % 8) as u8));
        pos += step;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn driver_is_deterministic() {
        let mut a = Vec::new();
        run_cases("drv", 5, |rng, case| a.push((case, rng.next_u64())));
        let mut b = Vec::new();
        run_cases("drv", 5, |rng, case| b.push((case, rng.next_u64())));
        assert_eq!(a, b);
        let mut c = Vec::new();
        run_cases("other-name", 5, |rng, case| c.push((case, rng.next_u64())));
        assert_ne!(a, c, "different tests must get different case streams");
    }

    #[test]
    fn driver_reports_case_index() {
        let err = std::panic::catch_unwind(|| {
            run_cases("boom", 10, |_, case| assert!(case < 3, "case too big"));
        })
        .expect_err("must propagate failure");
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(
            msg.contains("'boom'") && msg.contains("case 3/10"),
            "got: {msg}"
        );
    }

    #[test]
    fn mutations_behave() {
        let data = vec![0u8; 16];
        let mut rng = Rng::seed_from_u64(1);
        let flipped = Mutation::FlipBit { pos: 3, bit: 2 }.apply(&data, &mut rng);
        assert_eq!(flipped[3], 4);
        assert_eq!(flipped.len(), data.len());
        let patched = Mutation::Patch { pos: 18, value: 9 }.apply(&data, &mut rng);
        assert_eq!(patched[2], 9, "position wraps modulo length");
        let cut = Mutation::Truncate { len: 5 }.apply(&data, &mut rng);
        assert_eq!(cut.len(), 5);
        let grown = Mutation::Extend { extra: 3 }.apply(&data, &mut rng);
        assert_eq!(grown.len(), 19);
        // Empty input never panics.
        let empty = Mutation::FlipBit { pos: 0, bit: 0 }.apply(&[], &mut rng);
        assert!(empty.is_empty());
    }

    #[test]
    fn flip_positions_cover_stream() {
        let ps = flip_positions(10_000, 200);
        assert!(ps.len() >= 200);
        assert!(ps.iter().all(|&(p, b)| p < 10_000 && b < 8));
        assert_eq!(ps.first(), Some(&(0, 0)));
        assert!(ps.last().expect("nonempty").0 >= 10_000 - 50);
        assert!(flip_positions(0, 200).is_empty());
        assert_eq!(flip_positions(3, 200).len(), 3);
    }
}
