//! In-repo deterministic pseudo-random generation.
//!
//! The workspace must build and test with **zero external dependencies**
//! (the tier-1 verify runs with `--offline`), so the `rand` crate is off
//! the table. This crate provides the two things the rest of the workspace
//! actually needs from a PRNG:
//!
//! * [`Rng`] — a seeded xoshiro256++ generator (seeded through splitmix64,
//!   as its authors recommend) with uniform range sampling over the float
//!   and integer types the dataset generators use. Statistical quality is
//!   far beyond what synthetic-data generation and fuzzing require, and
//!   every stream is a pure function of its seed, forever.
//! * [`fuzz`] — a deterministic property-test/fuzz driver plus the
//!   corruption operators (bit flips, truncations, random bytes,
//!   structure-aware byte patches) used to harden the decoders.
//!
//! Determinism is load-bearing: two builds, two machines, or two CI runs
//! always generate byte-identical datasets and byte-identical fuzz cases,
//! so a failure report like "case 17 of `rans_fuzz`" reproduces anywhere.

pub mod fuzz;

/// splitmix64 step: the stateless generator used to expand a 64-bit seed
/// into the xoshiro256++ state (and useful on its own for cheap hashing).
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded xoshiro256++ pseudo-random generator.
///
/// Replacement for the `rand` crate's `SmallRng` in this workspace: small,
/// fast, and — unlike `SmallRng`, whose algorithm is explicitly not stable
/// across `rand` versions — guaranteed to produce the same stream for the
/// same seed in every future build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed (splitmix64-expanded).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Next 64 uniformly distributed bits (xoshiro256++ step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.s = [s0, s1, s2, s3];
        result
    }

    /// Next 32 uniformly distributed bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, 1)` with 53 random mantissa bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fills `out` with random bytes.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        let mut chunks = out.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    /// A fresh vector of `len` random bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        self.fill_bytes(&mut out);
        out
    }

    /// A fresh vector of random bytes with a length sampled from `range` —
    /// the common fuzz-input idiom, as one call so `self` is borrowed once.
    pub fn bytes_range<R: UniformRange<Output = usize>>(&mut self, range: R) -> Vec<u8> {
        let len = self.gen_range(range);
        self.bytes(len)
    }

    /// `true` with probability `p`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform sample from a half-open range.
    ///
    /// Mirrors `rand::Rng::gen_range` for the range types the workspace
    /// uses; see [`UniformRange`] for the sampling details.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty (`low >= high`).
    #[inline]
    pub fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

/// Half-open ranges [`Rng::gen_range`] can sample uniformly.
pub trait UniformRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample from `rng`.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // 128-bit multiply-shift (Lemire): unbiased enough for data
                // generation and exactly uniform when span divides 2^64.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformRange for core::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + (self.end - self.start) * rng.next_f64();
        // Rounding can land exactly on `end`; fold back into the range.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl UniformRange for core::ops::Range<f32> {
    type Output = f32;
    #[inline]
    fn sample(self, rng: &mut Rng) -> f32 {
        (f64::from(self.start)..f64::from(self.end)).sample(rng) as f32
    }
}

impl UniformRange for core::ops::RangeInclusive<usize> {
    type Output = usize;
    #[inline]
    fn sample(self, rng: &mut Rng) -> usize {
        let (start, end) = (*self.start(), *self.end());
        if end == usize::MAX {
            // Avoid overflow in end+1; one rejection branch suffices.
            return rng.next_u64() as usize;
        }
        (start..end + 1).sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn known_answer_is_pinned_forever() {
        // xoshiro256++ seeded via splitmix64(0): any change to either
        // algorithm breaks dataset determinism, so pin the first outputs.
        let mut r = Rng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut again = Rng::seed_from_u64(0);
        assert_eq!(first, (0..4).map(|_| again.next_u64()).collect::<Vec<_>>());
        // splitmix64 known-answer (reference test vector for seed 0).
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-50i32..-10);
            assert!((-50..-10).contains(&w));
            let x = r.gen_range(0u64..1);
            assert_eq!(x, 0);
        }
    }

    #[test]
    fn int_ranges_cover_all_values() {
        let mut r = Rng::seed_from_u64(8);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..10)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "10 buckets not covered in 1000 draws"
        );
    }

    #[test]
    fn float_ranges_stay_in_bounds_and_spread() {
        let mut r = Rng::seed_from_u64(9);
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for _ in 0..10_000 {
            let v = r.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&v));
            min = min.min(v);
            max = max.max(v);
        }
        assert!(min < -1.5 && max > 2.5, "poor spread: [{min}, {max}]");
    }

    #[test]
    fn fill_bytes_handles_all_tail_lengths() {
        for len in 0..=17 {
            let mut r = Rng::seed_from_u64(10);
            let v = r.bytes(len);
            assert_eq!(v.len(), len);
        }
        // Nonzero content.
        let mut r = Rng::seed_from_u64(10);
        assert!(r.bytes(16).iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_bool_probability_roughly_holds() {
        let mut r = Rng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = Rng::seed_from_u64(12);
        let _ = r.gen_range(5usize..5);
    }
}
