//! Per-stage pipeline anatomy: how much each transformation contributes.
//!
//! The paper motivates each stage qualitatively (§3); this module makes the
//! contribution measurable by running an algorithm's pipeline stage by
//! stage over the chunked input and recording the data volume after every
//! stage. Size-preserving stages (DIFFMS, BIT) show up with unchanged
//! volume — their value is enabling the coding stages that follow — while
//! MPLG/RZE/RAZE/RARE show the actual shrink and FCM shows its deliberate
//! 2× expansion.

use crate::Algorithm;
use fpc_entropy::varint;
use fpc_transforms::{bit_transpose, diffms, fcm, mplg, rare, raze, rze, words};

/// Data volume after one pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageVolume {
    /// Stage name as in Figure 1.
    pub stage: &'static str,
    /// Total bytes after this stage (across all chunks).
    pub bytes: usize,
}

/// Stage-by-stage anatomy of one compression run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Anatomy {
    /// The analyzed algorithm.
    pub algorithm: Algorithm,
    /// Input size in bytes.
    pub input_bytes: usize,
    /// Volume after each stage, in pipeline order.
    pub stages: Vec<StageVolume>,
}

impl Anatomy {
    /// Overall transformation ratio (input / final stage volume). This
    /// excludes container framing, so it slightly exceeds the ratio
    /// reported by [`crate::info`].
    pub fn transform_ratio(&self) -> f64 {
        match self.stages.last() {
            Some(last) if last.bytes > 0 => self.input_bytes as f64 / last.bytes as f64,
            _ => 0.0,
        }
    }
}

impl core::fmt::Display for Anatomy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "{}: {} input bytes", self.algorithm, self.input_bytes)?;
        for s in &self.stages {
            writeln!(
                f,
                "  after {:8} {:>12} bytes ({:.3}x vs input)",
                s.stage,
                s.bytes,
                self.input_bytes as f64 / s.bytes.max(1) as f64
            )?;
        }
        Ok(())
    }
}

/// Runs `algorithm`'s pipeline over `data`, recording per-stage volumes.
///
/// The final stage's volume equals the concatenated chunk payload the real
/// compressor would produce (before container framing and the raw-chunk
/// fallback).
pub fn analyze_bytes(data: &[u8], algorithm: Algorithm) -> Anatomy {
    let chunk_size = fpc_container::DEFAULT_CHUNK_SIZE;
    let mut stages: Vec<StageVolume> = Vec::new();
    let add = |stages: &mut Vec<StageVolume>, stage: &'static str, bytes: usize| match stages
        .iter_mut()
        .find(|s| s.stage == stage)
    {
        Some(s) => s.bytes += bytes,
        None => stages.push(StageVolume { stage, bytes }),
    };

    match algorithm {
        Algorithm::SpSpeed | Algorithm::DpSpeed => {
            for chunk in data.chunks(chunk_size.max(1)) {
                if algorithm == Algorithm::SpSpeed {
                    let (mut w, tail) = words::bytes_to_u32(chunk);
                    diffms::encode32(&mut w);
                    add(&mut stages, "DIFFMS", w.len() * 4 + tail.len());
                    let mut out = Vec::new();
                    mplg::encode32(&w, &mut out);
                    add(&mut stages, "MPLG", out.len() + tail.len());
                } else {
                    let (mut w, tail) = words::bytes_to_u64(chunk);
                    diffms::encode64(&mut w);
                    add(&mut stages, "DIFFMS", w.len() * 8 + tail.len());
                    let mut out = Vec::new();
                    mplg::encode64(&w, &mut out);
                    add(&mut stages, "MPLG", out.len() + tail.len());
                }
            }
        }
        Algorithm::SpRatio => {
            for chunk in data.chunks(chunk_size.max(1)) {
                let (mut w, tail) = words::bytes_to_u32(chunk);
                diffms::encode32(&mut w);
                add(&mut stages, "DIFFMS", w.len() * 4 + tail.len());
                bit_transpose::transpose32(&mut w);
                add(&mut stages, "BIT", w.len() * 4 + tail.len());
                let mut bytes = Vec::new();
                words::u32_to_bytes(&w, &mut bytes);
                let mut out = Vec::new();
                rze::encode(&bytes, &mut out);
                add(&mut stages, "RZE", out.len() + tail.len());
            }
        }
        Algorithm::DpRatio => {
            let (w, tail) = words::bytes_to_u64(data);
            let enc = fcm::encode(&w);
            let mut payload = Vec::with_capacity(w.len() * 16 + tail.len());
            words::u64_to_bytes(&enc.values, &mut payload);
            words::u64_to_bytes(&enc.distances, &mut payload);
            payload.extend_from_slice(tail);
            add(&mut stages, "FCM", payload.len());
            for chunk in payload.chunks(chunk_size.max(1)) {
                let (mut cw, ctail) = words::bytes_to_u64(chunk);
                diffms::encode64(&mut cw);
                add(&mut stages, "DIFFMS", cw.len() * 8 + ctail.len());
                let mut razed = Vec::new();
                raze::encode(&cw, &mut razed);
                add(&mut stages, "RAZE", razed.len() + ctail.len());
                let (w2, t2) = words::bytes_to_u64(&razed);
                let mut out = Vec::new();
                varint::write_usize(&mut out, razed.len());
                rare::encode(&w2, &mut out);
                add(&mut stages, "RARE", out.len() + t2.len() + ctail.len());
            }
        }
        Algorithm::Auto => {
            // The adaptive mode has no fixed stage sequence; its anatomy is
            // the per-chunk winner volume (capped at raw, mirroring the
            // container's store-raw fallback).
            let auto = crate::AutoCodec::default();
            for chunk in data.chunks(chunk_size.max(1)) {
                let mut enc = Vec::new();
                fpc_container::AdaptiveChunkCodec::encode_chunk(&auto, chunk, &mut enc);
                add(&mut stages, "AUTO", enc.len().min(chunk.len()));
            }
        }
    }
    Anatomy {
        algorithm,
        input_bytes: data.len(),
        stages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_bytes_f32(n: usize) -> Vec<u8> {
        (0..n)
            .flat_map(|i| (5.0f32 + i as f32 * 1e-4).to_bits().to_le_bytes())
            .collect()
    }

    fn smooth_bytes_f64(n: usize) -> Vec<u8> {
        (0..n)
            .flat_map(|i| (5.0f64 + i as f64 * 1e-7).to_bits().to_le_bytes())
            .collect()
    }

    #[test]
    fn stage_names_match_figure1() {
        let data = smooth_bytes_f32(10_000);
        let anatomy = analyze_bytes(&data, Algorithm::SpRatio);
        let names: Vec<&str> = anatomy.stages.iter().map(|s| s.stage).collect();
        assert_eq!(names, Algorithm::SpRatio.stages());
        let anatomy = analyze_bytes(&smooth_bytes_f64(5_000), Algorithm::DpRatio);
        let names: Vec<&str> = anatomy.stages.iter().map(|s| s.stage).collect();
        assert_eq!(names, Algorithm::DpRatio.stages());
    }

    #[test]
    fn diffms_and_bit_preserve_volume() {
        let data = smooth_bytes_f32(20_000);
        let anatomy = analyze_bytes(&data, Algorithm::SpRatio);
        assert_eq!(
            anatomy.stages[0].bytes,
            data.len(),
            "DIFFMS is size-preserving"
        );
        assert_eq!(
            anatomy.stages[1].bytes,
            data.len(),
            "BIT is size-preserving"
        );
        assert!(
            anatomy.stages[2].bytes < data.len(),
            "RZE must shrink smooth data"
        );
    }

    #[test]
    fn fcm_doubles_then_later_stages_recover() {
        let values: Vec<f64> = (0..20_000).map(|i| ((i % 64) as f64).sqrt()).collect();
        let data: Vec<u8> = values
            .iter()
            .flat_map(|v| v.to_bits().to_le_bytes())
            .collect();
        let anatomy = analyze_bytes(&data, Algorithm::DpRatio);
        assert_eq!(anatomy.stages[0].stage, "FCM");
        assert_eq!(
            anatomy.stages[0].bytes,
            data.len() * 2,
            "FCM doubles the data"
        );
        let final_bytes = anatomy.stages.last().expect("stages").bytes;
        assert!(
            final_bytes < data.len(),
            "pipeline must net-compress recurring values"
        );
        assert!(anatomy.transform_ratio() > 1.0);
    }

    #[test]
    fn final_volume_tracks_real_compressed_size() {
        // The anatomy's last stage should approximate the real stream size
        // (within container overhead of a few bytes per chunk).
        let data = smooth_bytes_f32(50_000);
        let anatomy = analyze_bytes(&data, Algorithm::SpSpeed);
        let stream = crate::Compressor::new(Algorithm::SpSpeed).compress_bytes(&data);
        let final_bytes = anatomy.stages.last().expect("stages").bytes;
        let overhead = stream.len() as i64 - final_bytes as i64;
        assert!(
            (0..1024).contains(&overhead),
            "container overhead {overhead} out of expected range"
        );
    }

    #[test]
    fn display_renders_all_stages() {
        let data = smooth_bytes_f32(4_096);
        let anatomy = analyze_bytes(&data, Algorithm::SpRatio);
        let text = anatomy.to_string();
        for stage in Algorithm::SpRatio.stages() {
            assert!(text.contains(stage), "missing {stage}");
        }
    }

    #[test]
    fn empty_input() {
        let anatomy = analyze_bytes(&[], Algorithm::SpSpeed);
        assert_eq!(anatomy.input_bytes, 0);
        assert_eq!(anatomy.transform_ratio(), 0.0);
    }
}
