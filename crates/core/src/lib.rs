//! The four FPcompress lossless floating-point compression algorithms.
//!
//! This crate implements the primary contribution of *"Efficient Lossless
//! Compression of Scientific Floating-Point Data on CPUs and GPUs"*
//! (ASPLOS 2025): **SPspeed**, **SPratio**, **DPspeed**, and **DPratio** —
//! chunk-parallel lossless compressors for single- and double-precision
//! data built from the transformations in `fpc-transforms` on top of the
//! container format in `fpc-container`.
//!
//! * The two *speed* algorithms chain DIFFMS → MPLG.
//! * SPratio chains DIFFMS → BIT → RZE.
//! * DPratio chains FCM (global) → DIFFMS → RAZE → RARE.
//!
//! Values are processed bit-for-bit as integers, so every float — including
//! NaN payloads, signed zeros, infinities, and subnormals — is restored
//! exactly.
//!
//! # Example
//!
//! ```
//! use fpc_core::{Algorithm, Compressor};
//!
//! # fn main() -> Result<(), fpc_core::Error> {
//! let data: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.01).cos()).collect();
//! let compressor = Compressor::new(Algorithm::DpRatio);
//! let stream = compressor.compress_f64(&data);
//! let restored = compressor.decompress_f64(&stream)?;
//! assert!(data.iter().zip(&restored).all(|(a, b)| a.to_bits() == b.to_bits()));
//! # Ok(())
//! # }
//! ```

pub mod analysis;
pub mod auto;
mod error;
mod options;
mod pipeline;
pub mod stream;
pub mod streaming;

pub use analysis::{analyze_bytes, Anatomy};
pub use auto::{AutoCodec, DpRatioLocalCodec};
pub use error::Error;
pub use options::PipelineOptions;
pub use pipeline::{DpRatioChunkCodec, DpSpeedCodec, SpRatioCodec, SpSpeedCodec};
pub use streaming::{StreamingCompressor, StreamingDecompressor};

use fpc_container::{
    Header, ALGO_AUTO, ALGO_DP_RATIO, ALGO_DP_SPEED, ALGO_SP_RATIO, ALGO_SP_SPEED,
};
use fpc_transforms::{fcm, words};

/// Convenience alias for results returned by this crate.
pub type Result<T> = core::result::Result<T, Error>;

/// The four compression algorithms of the paper (Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Single precision, throughput-oriented: DIFFMS → MPLG.
    SpSpeed,
    /// Single precision, ratio-oriented: DIFFMS → BIT → RZE.
    SpRatio,
    /// Double precision, throughput-oriented: DIFFMS → MPLG (64-bit).
    DpSpeed,
    /// Double precision, ratio-oriented: FCM → DIFFMS → RAZE → RARE.
    DpRatio,
    /// Adaptive per-chunk selection among the four fixed pipelines, with
    /// the container's store-raw fallback for incompressible chunks. Not
    /// part of [`Algorithm::ALL`]: it is a meta-mode over the paper's four
    /// algorithms, not a fifth pipeline.
    Auto,
}

impl Algorithm {
    /// All four algorithms, in paper order.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::SpSpeed,
        Algorithm::SpRatio,
        Algorithm::DpSpeed,
        Algorithm::DpRatio,
    ];

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::SpSpeed => "SPspeed",
            Algorithm::SpRatio => "SPratio",
            Algorithm::DpSpeed => "DPspeed",
            Algorithm::DpRatio => "DPratio",
            Algorithm::Auto => "AUTO",
        }
    }

    /// The stage names of the pipeline, in encode order (paper Figure 1).
    pub fn stages(self) -> &'static [&'static str] {
        match self {
            Algorithm::SpSpeed | Algorithm::DpSpeed => &["DIFFMS", "MPLG"],
            Algorithm::SpRatio => &["DIFFMS", "BIT", "RZE"],
            Algorithm::DpRatio => &["FCM", "DIFFMS", "RAZE", "RARE"],
            Algorithm::Auto => &["AUTO"],
        }
    }

    /// Element width in bytes (4 for the SP pair, 8 for the DP pair and
    /// for AUTO's byte-oriented default; [`Compressor::compress_f32`]
    /// stamps 4 when AUTO compresses single-precision values).
    pub fn element_width(self) -> u8 {
        match self {
            Algorithm::SpSpeed | Algorithm::SpRatio => 4,
            Algorithm::DpSpeed | Algorithm::DpRatio | Algorithm::Auto => 8,
        }
    }

    /// Whether this is one of the single-precision algorithms.
    pub fn is_single_precision(self) -> bool {
        self.element_width() == 4
    }

    /// Container algorithm identifier.
    pub fn id(self) -> u8 {
        match self {
            Algorithm::SpSpeed => ALGO_SP_SPEED,
            Algorithm::SpRatio => ALGO_SP_RATIO,
            Algorithm::DpSpeed => ALGO_DP_SPEED,
            Algorithm::DpRatio => ALGO_DP_RATIO,
            Algorithm::Auto => ALGO_AUTO,
        }
    }

    /// Inverse of [`Algorithm::id`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownAlgorithm`] for unrecognized identifiers.
    pub fn from_id(id: u8) -> Result<Self> {
        match id {
            ALGO_SP_SPEED => Ok(Algorithm::SpSpeed),
            ALGO_SP_RATIO => Ok(Algorithm::SpRatio),
            ALGO_DP_SPEED => Ok(Algorithm::DpSpeed),
            ALGO_DP_RATIO => Ok(Algorithm::DpRatio),
            ALGO_AUTO => Ok(Algorithm::Auto),
            other => Err(Error::UnknownAlgorithm(other)),
        }
    }
}

impl core::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Configurable compressor for one of the four algorithms.
///
/// The configuration only affects *encoding*; any FPcompress stream can be
/// decompressed by any `Compressor` (or the free [`decompress_bytes`])
/// because the stream is self-describing.
#[derive(Debug, Clone)]
pub struct Compressor {
    algorithm: Algorithm,
    threads: usize,
    chunk_size: usize,
    options: PipelineOptions,
}

impl Compressor {
    /// Creates a compressor using all available CPU parallelism and the
    /// paper's 16 KiB chunk size.
    pub fn new(algorithm: Algorithm) -> Self {
        Self {
            algorithm,
            threads: 0,
            chunk_size: fpc_container::DEFAULT_CHUNK_SIZE,
            options: PipelineOptions::default(),
        }
    }

    /// Limits worker threads (`0` = all available, `1` = serial).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Overrides the chunk size (used by the chunk-size ablation).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero or above
    /// [`fpc_container::MAX_CHUNK_SIZE`].
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        assert!(
            chunk_size > 0 && chunk_size <= fpc_container::MAX_CHUNK_SIZE,
            "chunk size out of range"
        );
        self.chunk_size = chunk_size;
        self
    }

    /// Overrides pipeline options (used by the ablation study).
    pub fn with_options(mut self, options: PipelineOptions) -> Self {
        self.options = options;
        self
    }

    /// The configured algorithm.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// Compresses raw little-endian bytes.
    ///
    /// The byte length does not have to be a multiple of the element width;
    /// trailing bytes are stored verbatim.
    pub fn compress_bytes(&self, data: &[u8]) -> Vec<u8> {
        self.compress_bytes_width(data, self.algorithm.element_width())
    }

    /// Compresses with an explicit element width stamped into the header.
    /// Only AUTO is width-agnostic; the fixed algorithms always pass their
    /// own width.
    fn compress_bytes_width(&self, data: &[u8], element_width: u8) -> Vec<u8> {
        let algo = self.algorithm;
        let mut header = Header::new(
            algo.id(),
            element_width,
            data.len() as u64,
            data.len() as u64,
        );
        header.chunk_size = self.chunk_size as u32;
        match algo {
            Algorithm::SpSpeed => {
                let codec = SpSpeedCodec {
                    fallback: self.options.mplg_fallback,
                };
                fpc_container::compress(header, data, &codec, self.threads)
                    .expect("header matches payload")
            }
            Algorithm::SpRatio => {
                fpc_container::compress(header, data, &SpRatioCodec, self.threads)
                    .expect("header matches payload")
            }
            Algorithm::DpSpeed => {
                let codec = DpSpeedCodec {
                    fallback: self.options.mplg_fallback,
                };
                fpc_container::compress(header, data, &codec, self.threads)
                    .expect("header matches payload")
            }
            Algorithm::DpRatio => {
                // Global FCM stage (paper §3.2): the only stage that sees the
                // whole input. It doubles the payload; the chunked stages
                // then compress the value and distance arrays.
                let (words, tail) = words::bytes_to_u64(data);
                let enc = fcm::encode_with_window(&words, self.options.fcm_window);
                let mut payload = Vec::with_capacity(words.len() * 16 + tail.len());
                words::u64_to_bytes(&enc.values, &mut payload);
                words::u64_to_bytes(&enc.distances, &mut payload);
                payload.extend_from_slice(tail);
                header.payload_len = payload.len() as u64;
                let codec = DpRatioChunkCodec {
                    fixed_split: self.options.fixed_split,
                };
                fpc_container::compress(header, &payload, &codec, self.threads)
                    .expect("header matches payload")
            }
            Algorithm::Auto => {
                let codec = AutoCodec::new(&self.options);
                fpc_container::compress_adaptive(header, data, &codec, self.threads)
                    .expect("header matches payload")
            }
        }
    }

    /// Compresses single-precision values.
    ///
    /// # Panics
    ///
    /// Panics if the configured algorithm targets double precision; use
    /// [`Compressor::compress_bytes`] to force a width-agnostic encoding.
    /// AUTO accepts both precisions.
    pub fn compress_f32(&self, data: &[f32]) -> Vec<u8> {
        assert!(
            self.algorithm.is_single_precision() || self.algorithm == Algorithm::Auto,
            "{} targets double-precision data; use compress_f64 or compress_bytes",
            self.algorithm
        );
        self.compress_bytes_width(&words::f32_slice_to_bytes(data), 4)
    }

    /// Compresses double-precision values.
    ///
    /// # Panics
    ///
    /// Panics if the configured algorithm targets single precision; use
    /// [`Compressor::compress_bytes`] to force a width-agnostic encoding.
    /// AUTO accepts both precisions.
    pub fn compress_f64(&self, data: &[f64]) -> Vec<u8> {
        assert!(
            !self.algorithm.is_single_precision(),
            "{} targets single-precision data; use compress_f32 or compress_bytes",
            self.algorithm
        );
        self.compress_bytes(&words::f64_slice_to_bytes(data))
    }

    /// Decompresses any FPcompress stream to raw bytes.
    ///
    /// # Errors
    ///
    /// Fails on corrupt or truncated streams.
    pub fn decompress_bytes(&self, stream: &[u8]) -> Result<Vec<u8>> {
        decompress_bytes_with(stream, self.threads)
    }

    /// Decompresses a single-precision stream.
    ///
    /// # Errors
    ///
    /// Fails on corrupt streams or if the stream does not hold
    /// single-precision data.
    pub fn decompress_f32(&self, stream: &[u8]) -> Result<Vec<f32>> {
        decompress_f32_with(stream, self.threads)
    }

    /// Decompresses a double-precision stream.
    ///
    /// # Errors
    ///
    /// Fails on corrupt streams or if the stream does not hold
    /// double-precision data.
    pub fn decompress_f64(&self, stream: &[u8]) -> Result<Vec<f64>> {
        decompress_f64_with(stream, self.threads)
    }
}

/// Decompresses any FPcompress stream using all available parallelism.
///
/// # Errors
///
/// Fails on corrupt or truncated streams.
pub fn decompress_bytes(stream: &[u8]) -> Result<Vec<u8>> {
    decompress_bytes_with(stream, 0)
}

/// Decompresses any FPcompress stream with an explicit thread count.
///
/// # Errors
///
/// Fails on corrupt or truncated streams.
pub fn decompress_bytes_with(stream: &[u8], threads: usize) -> Result<Vec<u8>> {
    let header = fpc_container::read_header(stream)?;
    let algorithm = Algorithm::from_id(header.algorithm)?;
    match algorithm {
        Algorithm::SpSpeed => {
            let codec = SpSpeedCodec { fallback: true };
            let (_, payload) = fpc_container::decompress(stream, &codec, threads)?;
            finish_plain(header, payload)
        }
        Algorithm::SpRatio => {
            let (_, payload) = fpc_container::decompress(stream, &SpRatioCodec, threads)?;
            finish_plain(header, payload)
        }
        Algorithm::DpSpeed => {
            let codec = DpSpeedCodec { fallback: true };
            let (_, payload) = fpc_container::decompress(stream, &codec, threads)?;
            finish_plain(header, payload)
        }
        Algorithm::DpRatio => {
            let codec = DpRatioChunkCodec { fixed_split: None };
            let (_, payload) = fpc_container::decompress(stream, &codec, threads)?;
            let original_len = usize::try_from(header.original_len)
                .map_err(|_| Error::Container(fpc_container::Error::Corrupt("length overflow")))?;
            let nwords = original_len / 8;
            let tail_len = original_len % 8;
            if payload.len() != nwords * 16 + tail_len {
                return Err(Error::Container(fpc_container::Error::Corrupt(
                    "fcm payload length mismatch",
                )));
            }
            let (values, _) = words::bytes_to_u64(&payload[..nwords * 8]);
            let (distances, _) = words::bytes_to_u64(&payload[nwords * 8..nwords * 16]);
            let decoded = fcm::decode_arrays(&values, &distances).map_err(pipeline::map_decode)?;
            let mut out = Vec::with_capacity(original_len);
            words::u64_to_bytes(&decoded, &mut out);
            out.extend_from_slice(&payload[nwords * 16..]);
            Ok(out)
        }
        Algorithm::Auto => {
            let codec = AutoCodec::default();
            let (_, payload) = fpc_container::decompress_adaptive(stream, &codec, threads)?;
            finish_plain(header, payload)
        }
    }
}

/// Decompresses a single-precision stream.
///
/// # Errors
///
/// Fails on corrupt streams or element-width mismatch.
pub fn decompress_f32(stream: &[u8]) -> Result<Vec<f32>> {
    decompress_f32_with(stream, 0)
}

fn decompress_f32_with(stream: &[u8], threads: usize) -> Result<Vec<f32>> {
    let header = fpc_container::read_header(stream)?;
    if header.element_width != 4 {
        return Err(Error::ElementMismatch {
            expected: 4,
            actual: header.element_width,
        });
    }
    let bytes = decompress_bytes_with(stream, threads)?;
    words::bytes_to_f32_vec(&bytes).ok_or(Error::LengthIndivisible {
        len: bytes.len() as u64,
        width: 4,
    })
}

/// Decompresses a double-precision stream.
///
/// # Errors
///
/// Fails on corrupt streams or element-width mismatch.
pub fn decompress_f64(stream: &[u8]) -> Result<Vec<f64>> {
    decompress_f64_with(stream, 0)
}

fn decompress_f64_with(stream: &[u8], threads: usize) -> Result<Vec<f64>> {
    let header = fpc_container::read_header(stream)?;
    if header.element_width != 8 {
        return Err(Error::ElementMismatch {
            expected: 8,
            actual: header.element_width,
        });
    }
    let bytes = decompress_bytes_with(stream, threads)?;
    words::bytes_to_f64_vec(&bytes).ok_or(Error::LengthIndivisible {
        len: bytes.len() as u64,
        width: 8,
    })
}

fn finish_plain(header: Header, payload: Vec<u8>) -> Result<Vec<u8>> {
    if payload.len() as u64 != header.original_len {
        return Err(Error::Container(fpc_container::Error::Corrupt(
            "payload length disagrees with header",
        )));
    }
    Ok(payload)
}

/// Decompresses only the bytes in `[offset, offset + len)` of the original
/// data, touching just the chunks that cover the range — the random-access
/// corollary of the paper's independent-chunk design (§3).
///
/// Uses all available parallelism; see [`decompress_range_with`] for an
/// explicit thread count and the range-semantics details.
///
/// # Errors
///
/// As [`decompress_range_with`].
pub fn decompress_range(stream: &[u8], offset: u64, len: u64) -> Result<Vec<u8>> {
    decompress_range_with(stream, offset, len, 0)
}

/// Decompresses only the bytes in `[offset, offset + len)` of the original
/// data with an explicit thread count.
///
/// The range has an inclusive start and exclusive end, in original-data
/// byte coordinates. For SPspeed, SPratio, and DPspeed the stream's frame
/// is parsed once ([`fpc_container::Region`]) and only the chunks
/// overlapping the range are decoded, so the cost scales with the range,
/// not the file. DPratio's global FCM stage makes chunks interdependent;
/// its streams fall back to a full decode and slice, returning the same
/// bytes at whole-file cost (the `container.range.*` selectivity counters
/// only move on the chunk-subset path).
///
/// # Errors
///
/// Fails on corrupt streams or if the range exceeds the original data
/// ([`Error::RangeOutOfBounds`]).
pub fn decompress_range_with(
    stream: &[u8],
    offset: u64,
    len: u64,
    threads: usize,
) -> Result<Vec<u8>> {
    let header = fpc_container::read_header(stream)?;
    let algorithm = Algorithm::from_id(header.algorithm)?;
    let out_of_bounds = Error::RangeOutOfBounds {
        offset,
        len,
        available: header.original_len,
    };
    let end = offset.checked_add(len).ok_or(out_of_bounds.clone())?;
    if end > header.original_len {
        return Err(out_of_bounds);
    }
    if len == 0 {
        return Ok(Vec::new());
    }
    let codec: Box<dyn fpc_container::ChunkCodec> = match algorithm {
        Algorithm::SpSpeed => Box::new(SpSpeedCodec { fallback: true }),
        Algorithm::SpRatio => Box::new(SpRatioCodec),
        Algorithm::DpSpeed => Box::new(DpSpeedCodec { fallback: true }),
        Algorithm::DpRatio => {
            let full = decompress_bytes_with(stream, threads)?;
            return Ok(full[offset as usize..end as usize].to_vec());
        }
        Algorithm::Auto => {
            // AUTO chunks are independent (chunk-local FCM), so ranges use
            // the chunk-subset path even when DPratio chunks are mixed in.
            let codec = AutoCodec::default();
            return Ok(fpc_container::decode_range_adaptive(
                stream, &codec, offset, len, threads,
            )?);
        }
    };
    Ok(fpc_container::decode_range(
        stream,
        codec.as_ref(),
        offset,
        len,
        threads,
    )?)
}

/// [`decompress_range_with`] backed by a content-addressed hot-chunk
/// cache: each touched chunk is looked up by its (checksum-verified)
/// stored bytes before decoding, and decoded results are inserted for the
/// next request. Keys are identical to the ones
/// [`StreamingDecompressor::with_cache`] uses, so a range request hits
/// entries a streamed decompress of the same stream warmed, and vice
/// versa. Returned bytes are always identical to the uncached path.
///
/// Raw-stored chunks bypass the cache (their stored bytes are the decoded
/// bytes), and DPratio streams fall back to the uncached full-decode path
/// (the global FCM stage leaves nothing per-chunk to cache).
///
/// # Errors
///
/// As [`decompress_range_with`].
pub fn decompress_range_cached_with(
    stream: &[u8],
    offset: u64,
    len: u64,
    threads: usize,
    cache: &std::sync::Arc<fpc_cache::ChunkCache>,
) -> Result<Vec<u8>> {
    use std::sync::Arc;

    let header = fpc_container::read_header(stream)?;
    let algorithm = Algorithm::from_id(header.algorithm)?;
    let out_of_bounds = Error::RangeOutOfBounds {
        offset,
        len,
        available: header.original_len,
    };
    let end = offset.checked_add(len).ok_or(out_of_bounds.clone())?;
    if end > header.original_len {
        return Err(out_of_bounds);
    }
    if len == 0 {
        return Ok(Vec::new());
    }
    // DPratio chunks are interdependent (global FCM): the uncached path
    // already does a full decode + slice, and there is no per-chunk result
    // worth caching.
    if algorithm == Algorithm::DpRatio {
        return decompress_range_with(stream, offset, len, threads);
    }
    let fixed: Option<Box<dyn fpc_container::ChunkCodec + Send + Sync>> = match algorithm {
        Algorithm::SpSpeed => Some(Box::new(SpSpeedCodec { fallback: true })),
        Algorithm::SpRatio => Some(Box::new(SpRatioCodec)),
        Algorithm::DpSpeed => Some(Box::new(DpSpeedCodec { fallback: true })),
        Algorithm::Auto => None,
        Algorithm::DpRatio => unreachable!("handled above"),
    };
    let auto = AutoCodec::default();
    let region = fpc_container::Region::parse(stream)?;
    let chunk_size = u64::from(region.header().chunk_size);
    let first = (offset / chunk_size) as usize;
    let last = ((end - 1) / chunk_size) as usize;
    let touched = last - first + 1;
    fpc_metrics::incr(fpc_metrics::Counter::ContainerRangeRequests, 1);
    fpc_metrics::incr(
        fpc_metrics::Counter::ContainerRangeChunksTotal,
        region.chunks() as u64,
    );
    let decode_plain = |index: usize| -> Result<Vec<u8>> {
        Ok(match &fixed {
            Some(codec) => region.decode_chunk(index, codec.as_ref())?,
            None => region.decode_chunk_adaptive(index, &auto)?,
        })
    };
    let decoded = fpc_container::parallel_map(touched, threads, |i| -> Result<Vec<u8>> {
        let index = first + i;
        // Raw chunks bypass the cache; decode_chunk just copies them out.
        if region.chunk_raw(index) {
            return decode_plain(index);
        }
        // chunk_body verifies the stored checksum, so the bytes are safe
        // to address by. Fixed-codec streams have no codec table and key
        // with id 0, exactly like the streaming decoder's chunks.
        let body = region.chunk_body(index)?;
        let codec_id = region.chunk_codec_ids().get(index).copied().unwrap_or(0);
        let context =
            streaming::decode_chunk_context(algorithm, codec_id, false, region.chunk_len(index));
        let key = fpc_cache::CacheKey::new(body, context);
        if let Some(hit) = cache.get(&key) {
            return Ok(hit.to_vec());
        }
        let out = decode_plain(index)?;
        cache.insert(key, Arc::from(&out[..]));
        Ok(out)
    });
    let mut buf = Vec::with_capacity((touched as u64 * chunk_size) as usize);
    for chunk in decoded {
        buf.extend_from_slice(&chunk?);
    }
    fpc_metrics::incr(
        fpc_metrics::Counter::ContainerRangeChunksTouched,
        touched as u64,
    );
    fpc_metrics::incr(
        fpc_metrics::Counter::ContainerRangeBytesDecoded,
        buf.len() as u64,
    );
    fpc_metrics::incr(fpc_metrics::Counter::ContainerRangeBytesReturned, len);
    let skip = (offset - first as u64 * chunk_size) as usize;
    Ok(buf[skip..skip + len as usize].to_vec())
}

/// Summary of a compressed stream (for tooling and reports).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamInfo {
    /// The algorithm that produced the stream.
    pub algorithm: Algorithm,
    /// Original data length in bytes.
    pub original_len: u64,
    /// Complete stream length in bytes.
    pub compressed_len: u64,
    /// Number of chunks.
    pub chunks: usize,
    /// Chunks stored raw (incompressible).
    pub raw_chunks: usize,
    /// Per-codec pick counts `(codec id, chunks)` for AUTO streams, sorted
    /// by id; empty for fixed-algorithm streams. Raw chunks are counted in
    /// [`StreamInfo::raw_chunks`], not here.
    pub codec_picks: Vec<(u8, usize)>,
}

impl StreamInfo {
    /// Compression ratio (original / compressed).
    pub fn ratio(&self) -> f64 {
        if self.compressed_len == 0 {
            return 0.0;
        }
        self.original_len as f64 / self.compressed_len as f64
    }
}

/// Inspects a compressed stream without decompressing it.
///
/// # Errors
///
/// Fails on malformed headers or chunk tables.
pub fn info(stream: &[u8]) -> Result<StreamInfo> {
    let header = fpc_container::read_header(stream)?;
    let algorithm = Algorithm::from_id(header.algorithm)?;
    let stats = fpc_container::stats(stream)?;
    Ok(StreamInfo {
        algorithm,
        original_len: header.original_len,
        compressed_len: stream.len() as u64,
        chunks: stats.chunks,
        raw_chunks: stats.raw_chunks,
        codec_picks: stats.codec_picks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_f32(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| (i as f32 * 0.001).sin() * 10.0 + 20.0)
            .collect()
    }

    fn smooth_f64(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.0001).cos() * 3.0 - 1.0)
            .collect()
    }

    #[test]
    fn sp_algorithms_roundtrip_f32() {
        let data = smooth_f32(20_000);
        for algo in [Algorithm::SpSpeed, Algorithm::SpRatio] {
            let c = Compressor::new(algo);
            let stream = c.compress_f32(&data);
            let back = c.decompress_f32(&stream).unwrap();
            assert_eq!(back.len(), data.len());
            assert!(
                data.iter()
                    .zip(&back)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "{algo}"
            );
            assert!(stream.len() < data.len() * 4, "{algo} did not compress");
        }
    }

    #[test]
    fn dp_algorithms_roundtrip_f64() {
        let data = smooth_f64(10_000);
        for algo in [Algorithm::DpSpeed, Algorithm::DpRatio] {
            let c = Compressor::new(algo);
            let stream = c.compress_f64(&data);
            let back = c.decompress_f64(&stream).unwrap();
            assert!(
                data.iter()
                    .zip(&back)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "{algo}"
            );
            assert!(stream.len() < data.len() * 8, "{algo} did not compress");
        }
    }

    #[test]
    fn empty_input_roundtrips() {
        for algo in Algorithm::ALL {
            let c = Compressor::new(algo);
            let stream = c.compress_bytes(&[]);
            assert_eq!(c.decompress_bytes(&stream).unwrap(), Vec::<u8>::new());
        }
    }

    #[test]
    fn non_multiple_lengths_roundtrip() {
        for algo in Algorithm::ALL {
            let c = Compressor::new(algo).with_threads(1);
            for len in [1usize, 3, 7, 9, 4095, 4097, 16384, 16389] {
                let data: Vec<u8> = (0..len).map(|i| (i % 253) as u8).collect();
                let stream = c.compress_bytes(&data);
                assert_eq!(
                    c.decompress_bytes(&stream).unwrap(),
                    data,
                    "{algo} len {len}"
                );
            }
        }
    }

    #[test]
    fn special_float_values_roundtrip() {
        let data = vec![
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            0.0,
            -0.0,
            f32::MIN_POSITIVE,
            f32::from_bits(0x7FC0_1234), // NaN with payload
            f32::from_bits(1),           // smallest subnormal
            f32::MAX,
            f32::MIN,
        ];
        for algo in [Algorithm::SpSpeed, Algorithm::SpRatio] {
            let c = Compressor::new(algo);
            let stream = c.compress_f32(&data);
            let back = c.decompress_f32(&stream).unwrap();
            let a: Vec<u32> = data.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = back.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "{algo}");
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let data = smooth_f64(50_000);
        for algo in [Algorithm::DpSpeed, Algorithm::DpRatio] {
            let serial = Compressor::new(algo).with_threads(1).compress_f64(&data);
            let parallel = Compressor::new(algo).with_threads(8).compress_f64(&data);
            assert_eq!(serial, parallel, "{algo}");
        }
    }

    #[test]
    fn cross_algorithm_decompress_is_self_describing() {
        let data = smooth_f32(5_000);
        let stream = Compressor::new(Algorithm::SpRatio).compress_f32(&data);
        // The free function needs no algorithm knowledge.
        let bytes = decompress_bytes(&stream).unwrap();
        assert_eq!(bytes.len(), data.len() * 4);
    }

    #[test]
    fn element_width_mismatch_rejected() {
        let stream = Compressor::new(Algorithm::SpSpeed).compress_f32(&smooth_f32(100));
        assert!(matches!(
            decompress_f64(&stream),
            Err(Error::ElementMismatch {
                expected: 8,
                actual: 4
            })
        ));
    }

    #[test]
    #[should_panic(expected = "targets double-precision")]
    fn wrong_typed_compress_panics() {
        let _ = Compressor::new(Algorithm::DpSpeed).compress_f32(&[1.0]);
    }

    #[test]
    fn corrupt_streams_rejected_not_panicking() {
        let data = smooth_f64(8_000);
        for algo in [Algorithm::DpSpeed, Algorithm::DpRatio] {
            let stream = Compressor::new(algo).compress_f64(&data);
            // Flip bytes throughout the stream; decoding must never panic.
            for i in (0..stream.len()).step_by(stream.len() / 40 + 1) {
                let mut bad = stream.clone();
                bad[i] ^= 0x5A;
                let _ = decompress_bytes(&bad); // Ok(garbage) or Err, never panic
            }
            // Truncations must error (never silently succeed with full data).
            for cut in [1usize, 10, stream.len() / 2] {
                assert!(
                    decompress_bytes(&stream[..stream.len() - cut]).is_err(),
                    "{algo}"
                );
            }
        }
    }

    #[test]
    fn info_reports_ratio() {
        let data = smooth_f32(40_000);
        let stream = Compressor::new(Algorithm::SpRatio).compress_f32(&data);
        let info = info(&stream).unwrap();
        assert_eq!(info.algorithm, Algorithm::SpRatio);
        assert_eq!(info.original_len, data.len() as u64 * 4);
        assert!(info.ratio() > 1.0);
        assert_eq!(info.chunks, (data.len() * 4).div_ceil(16 * 1024));
    }

    #[test]
    fn ratio_mode_beats_speed_mode_on_smooth_data() {
        // The paper's core tradeoff: ratio mode compresses more.
        let sp = smooth_f32(100_000);
        let speed = Compressor::new(Algorithm::SpSpeed).compress_f32(&sp).len();
        let ratio = Compressor::new(Algorithm::SpRatio).compress_f32(&sp).len();
        assert!(ratio < speed, "SPratio {ratio} should beat SPspeed {speed}");
    }

    #[test]
    fn incompressible_data_expansion_is_capped() {
        // Random bytes: every chunk should fall back to raw storage, so
        // expansion is limited to headers + chunk table.
        let data: Vec<u8> = (0..100_000u64)
            .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as u8)
            .collect();
        for algo in [Algorithm::SpSpeed, Algorithm::SpRatio, Algorithm::DpSpeed] {
            let stream = Compressor::new(algo).compress_bytes(&data);
            let overhead = stream.len() as i64 - data.len() as i64;
            assert!(overhead < 200, "{algo} expanded by {overhead}");
            assert_eq!(decompress_bytes(&stream).unwrap(), data);
        }
    }

    #[test]
    fn custom_chunk_size_roundtrips() {
        let data = smooth_f32(30_000);
        for chunk_size in [1024usize, 4096, 65536] {
            let c = Compressor::new(Algorithm::SpRatio).with_chunk_size(chunk_size);
            let stream = c.compress_f32(&data);
            let back = decompress_f32(&stream).unwrap();
            assert_eq!(back.len(), data.len());
        }
    }

    #[test]
    fn pipeline_options_roundtrip() {
        let data = smooth_f64(20_000);
        let opts = PipelineOptions {
            mplg_fallback: false,
            fcm_window: 2,
            fixed_split: Some(4),
        };
        for algo in [Algorithm::DpSpeed, Algorithm::DpRatio] {
            let c = Compressor::new(algo).with_options(opts.clone());
            let stream = c.compress_f64(&data);
            let back = c.decompress_f64(&stream).unwrap();
            assert!(
                data.iter()
                    .zip(&back)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "{algo}"
            );
        }
    }

    #[test]
    fn algorithm_metadata_is_consistent() {
        for algo in Algorithm::ALL {
            assert_eq!(Algorithm::from_id(algo.id()).unwrap(), algo);
            assert!(!algo.stages().is_empty());
            assert!(algo.name().len() >= 7);
        }
        assert!(Algorithm::from_id(99).is_err());
        assert_eq!(Algorithm::SpRatio.stages(), &["DIFFMS", "BIT", "RZE"]);
        assert_eq!(
            Algorithm::DpRatio.stages(),
            &["FCM", "DIFFMS", "RAZE", "RARE"]
        );
    }

    #[test]
    fn range_decompression_matches_full() {
        // 400_000 original bytes for every algorithm (f32 and f64 views of
        // the same length in bytes) so the offsets below hit the same
        // chunk-relative positions across all four.
        for algo in Algorithm::ALL {
            let stream = if algo.is_single_precision() {
                Compressor::new(algo).compress_f32(&smooth_f32(100_000))
            } else {
                Compressor::new(algo).compress_f64(&smooth_f64(50_000))
            };
            let full = decompress_bytes(&stream).unwrap();
            assert_eq!(full.len(), 400_000);
            for (offset, len) in [
                (0u64, 10u64),
                (3, 5),
                (16 * 1024 - 2, 8),
                (100_000, 40_000),
                (399_999, 1),
                (0, 400_000),
            ] {
                let range = decompress_range(&stream, offset, len).unwrap();
                assert_eq!(
                    range,
                    &full[offset as usize..(offset + len) as usize],
                    "{algo} range {offset}+{len}"
                );
            }
            assert!(decompress_range(&stream, 0, 0).unwrap().is_empty());
            assert!(decompress_range(&stream, 400_000, 0).unwrap().is_empty());
        }
    }

    #[test]
    fn range_decompression_rejects_bad_requests() {
        let data = smooth_f64(5_000);
        for algo in [Algorithm::DpSpeed, Algorithm::DpRatio] {
            let stream = Compressor::new(algo).compress_f64(&data);
            assert!(matches!(
                decompress_range(&stream, 39_999, 2),
                Err(Error::RangeOutOfBounds { .. })
            ));
            assert!(matches!(
                decompress_range(&stream, u64::MAX, 2),
                Err(Error::RangeOutOfBounds { .. })
            ));
            assert!(matches!(
                decompress_range(&stream, 40_000, 1),
                Err(Error::RangeOutOfBounds { .. })
            ));
        }
    }

    /// A stream mixing smooth f32-friendly data, recurring f64 values, and
    /// incompressible noise — the workload AUTO exists for.
    fn mixed_bytes() -> Vec<u8> {
        let mut data = Vec::new();
        let f32s: Vec<f32> = (0..8192).map(|i| 1.5 + i as f32 * 1e-4).collect();
        data.extend_from_slice(&words::f32_slice_to_bytes(&f32s));
        let pattern: Vec<f64> = (0..128).map(|i| (i as f64).sqrt()).collect();
        let f64s: Vec<f64> = pattern.iter().cycle().take(4096).copied().collect();
        data.extend_from_slice(&words::f64_slice_to_bytes(&f64s));
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        for _ in 0..4096 {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            data.extend_from_slice(&(z ^ (z >> 31)).to_le_bytes());
        }
        data
    }

    #[test]
    fn auto_roundtrips_and_mixes_codecs() {
        let data = mixed_bytes();
        let c = Compressor::new(Algorithm::Auto);
        let stream = c.compress_bytes(&data);
        assert_eq!(c.decompress_bytes(&stream).unwrap(), data);
        let info = info(&stream).unwrap();
        assert_eq!(info.algorithm, Algorithm::Auto);
        assert!(info.raw_chunks > 0, "noise chunks should store raw");
        assert!(
            info.codec_picks.len() >= 2,
            "expected mixed picks, got {:?}",
            info.codec_picks
        );
    }

    #[test]
    fn auto_matches_or_beats_best_fixed_on_mixed_data() {
        let data = mixed_bytes();
        let auto_len = Compressor::new(Algorithm::Auto).compress_bytes(&data).len();
        let best_fixed = Algorithm::ALL
            .iter()
            .map(|&a| Compressor::new(a).compress_bytes(&data).len())
            .min()
            .unwrap();
        // The dominance claim, with the 1% slack the CI gate enforces.
        assert!(
            auto_len as f64 <= best_fixed as f64 * 1.01,
            "AUTO {auto_len} vs best fixed {best_fixed}"
        );
    }

    #[test]
    fn auto_roundtrips_typed_values() {
        let c = Compressor::new(Algorithm::Auto);
        let f32s = smooth_f32(20_000);
        let stream = c.compress_f32(&f32s);
        let back = c.decompress_f32(&stream).unwrap();
        assert!(f32s
            .iter()
            .zip(&back)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
        // The header carries width 4, so f64 decode is rejected.
        assert!(matches!(
            decompress_f64(&stream),
            Err(Error::ElementMismatch { .. })
        ));
        let f64s = smooth_f64(10_000);
        let stream = c.compress_f64(&f64s);
        let back = c.decompress_f64(&stream).unwrap();
        assert!(f64s
            .iter()
            .zip(&back)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn auto_range_matches_full_decode() {
        let data = mixed_bytes();
        let stream = Compressor::new(Algorithm::Auto).compress_bytes(&data);
        let full = decompress_bytes(&stream).unwrap();
        let chunk = 16 * 1024u64;
        for (offset, len) in [
            (0u64, 16u64),
            (chunk - 3, 7),
            (chunk * 2 - 1, chunk + 2),
            (data.len() as u64 - 1, 1),
            (0, data.len() as u64),
        ] {
            assert_eq!(
                decompress_range(&stream, offset, len).unwrap(),
                &full[offset as usize..(offset + len) as usize],
                "range {offset}+{len}"
            );
        }
        assert!(matches!(
            decompress_range(&stream, data.len() as u64, 1),
            Err(Error::RangeOutOfBounds { .. })
        ));
    }

    #[test]
    fn auto_is_deterministic_across_threads() {
        let data = mixed_bytes();
        let serial = Compressor::new(Algorithm::Auto)
            .with_threads(1)
            .compress_bytes(&data);
        let parallel = Compressor::new(Algorithm::Auto)
            .with_threads(8)
            .compress_bytes(&data);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn auto_empty_and_odd_inputs_roundtrip() {
        let c = Compressor::new(Algorithm::Auto).with_threads(1);
        for len in [0usize, 1, 3, 7, 9, 4095, 4097, 16384, 16389] {
            let data: Vec<u8> = (0..len).map(|i| (i % 253) as u8).collect();
            let stream = c.compress_bytes(&data);
            assert_eq!(c.decompress_bytes(&stream).unwrap(), data, "len {len}");
        }
    }

    #[test]
    fn auto_metadata() {
        assert_eq!(
            Algorithm::from_id(Algorithm::Auto.id()).unwrap(),
            Algorithm::Auto
        );
        assert_eq!(Algorithm::Auto.name(), "AUTO");
        assert_eq!(Algorithm::Auto.element_width(), 8);
        assert!(!Algorithm::Auto.is_single_precision());
        assert!(!Algorithm::ALL.contains(&Algorithm::Auto));
    }

    #[test]
    fn repeated_values_favor_dpratio() {
        // FCM's raison d'être: values recurring far apart.
        let pattern: Vec<f64> = (0..256).map(|i| (i as f64).sqrt()).collect();
        let data: Vec<f64> = pattern.iter().cycle().take(64 * 1024).copied().collect();
        let ratio_stream = Compressor::new(Algorithm::DpRatio).compress_f64(&data);
        let speed_stream = Compressor::new(Algorithm::DpSpeed).compress_f64(&data);
        assert!(
            ratio_stream.len() < speed_stream.len(),
            "DPratio {} should beat DPspeed {} on recurring data",
            ratio_stream.len(),
            speed_stream.len()
        );
        assert_eq!(decompress_f64(&ratio_stream).unwrap().len(), data.len());
    }
}
