//! Encoder tuning knobs for the ablation study.

use fpc_transforms::fcm;

/// Encoder-side options.
///
/// Every option only changes how streams are *encoded*; the stream format is
/// self-describing, so decoding never needs these. Defaults reproduce the
/// paper's algorithms exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineOptions {
    /// Apply the enhanced-MPLG zigzag fallback when a subchunk's maximum has
    /// no leading zeros (paper §3.1). Default `true`.
    pub mplg_fallback: bool,
    /// FCM match window: how many preceding same-hash pairs are checked
    /// (paper: 4).
    pub fcm_window: usize,
    /// Force a fixed RAZE/RARE byte split instead of the adaptive choice
    /// (`None` = adaptive, the paper's design).
    pub fixed_split: Option<u8>,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        Self {
            mplg_fallback: true,
            fcm_window: fcm::MATCH_WINDOW,
            fixed_split: None,
        }
    }
}

impl PipelineOptions {
    /// Options matching the paper exactly (same as [`Default`]).
    pub fn paper() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let opts = PipelineOptions::default();
        assert!(opts.mplg_fallback);
        assert_eq!(opts.fcm_window, 4);
        assert_eq!(opts.fixed_split, None);
        assert_eq!(opts, PipelineOptions::paper());
    }
}
