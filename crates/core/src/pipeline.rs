//! Per-chunk codec implementations wiring the transformations into the
//! container's [`ChunkCodec`] interface.
//!
//! Each codec corresponds to the chunked portion of one algorithm's pipeline
//! (paper Figure 1). DPratio's global FCM stage runs outside the chunk loop
//! in `lib.rs`.

use fpc_container::{ChunkCodec, Error};
use fpc_entropy::varint;
use fpc_transforms::{bit_transpose, diffms, mplg, rare, raze, rze, words, DecodeError};

/// Maps transformation-level decode errors onto container errors.
pub(crate) fn map_decode(e: DecodeError) -> Error {
    match e {
        DecodeError::UnexpectedEof => Error::UnexpectedEof,
        DecodeError::InvalidHeader(what) | DecodeError::Corrupt(what) => Error::Corrupt(what),
    }
}

fn take<'a>(data: &'a [u8], pos: &mut usize, len: usize) -> Result<&'a [u8], Error> {
    let end = pos
        .checked_add(len)
        .ok_or(Error::Corrupt("chunk offset overflow"))?;
    let slice = data.get(*pos..end).ok_or(Error::UnexpectedEof)?;
    *pos = end;
    Ok(slice)
}

fn expect_consumed(data: &[u8], pos: usize) -> Result<(), Error> {
    if pos == data.len() {
        Ok(())
    } else {
        Err(Error::Corrupt("trailing bytes after chunk payload"))
    }
}

/// SPspeed chunk pipeline: DIFFMS(32) → MPLG(32).
#[derive(Debug, Clone, Copy)]
pub struct SpSpeedCodec {
    /// Enhanced-MPLG zigzag fallback (paper default: on).
    pub fallback: bool,
}

impl ChunkCodec for SpSpeedCodec {
    fn encode_chunk(&self, chunk: &[u8], out: &mut Vec<u8>) {
        let (mut w, tail) = words::bytes_to_u32(chunk);
        diffms::encode32(&mut w);
        mplg::encode32_with(&w, out, self.fallback);
        out.extend_from_slice(tail);
    }

    fn decode_chunk(
        &self,
        data: &[u8],
        expected_len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), Error> {
        let count = expected_len / 4;
        let tail_len = expected_len % 4;
        let mut pos = 0;
        let mut w = Vec::with_capacity(count);
        mplg::decode32(data, &mut pos, count, &mut w).map_err(map_decode)?;
        diffms::decode32(&mut w);
        words::u32_to_bytes(&w, out);
        out.extend_from_slice(take(data, &mut pos, tail_len)?);
        expect_consumed(data, pos)
    }
}

/// DPspeed chunk pipeline: DIFFMS(64) → MPLG(64).
#[derive(Debug, Clone, Copy)]
pub struct DpSpeedCodec {
    /// Enhanced-MPLG zigzag fallback (paper default: on).
    pub fallback: bool,
}

impl ChunkCodec for DpSpeedCodec {
    fn encode_chunk(&self, chunk: &[u8], out: &mut Vec<u8>) {
        let (mut w, tail) = words::bytes_to_u64(chunk);
        diffms::encode64(&mut w);
        mplg::encode64_with(&w, out, self.fallback);
        out.extend_from_slice(tail);
    }

    fn decode_chunk(
        &self,
        data: &[u8],
        expected_len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), Error> {
        let count = expected_len / 8;
        let tail_len = expected_len % 8;
        let mut pos = 0;
        let mut w = Vec::with_capacity(count);
        mplg::decode64(data, &mut pos, count, &mut w).map_err(map_decode)?;
        diffms::decode64(&mut w);
        words::u64_to_bytes(&w, out);
        out.extend_from_slice(take(data, &mut pos, tail_len)?);
        expect_consumed(data, pos)
    }
}

/// SPratio chunk pipeline: DIFFMS(32) → BIT → RZE.
#[derive(Debug, Clone, Copy)]
pub struct SpRatioCodec;

impl ChunkCodec for SpRatioCodec {
    fn encode_chunk(&self, chunk: &[u8], out: &mut Vec<u8>) {
        let (mut w, tail) = words::bytes_to_u32(chunk);
        diffms::encode32(&mut w);
        bit_transpose::transpose32(&mut w);
        let mut transposed = Vec::with_capacity(w.len() * 4);
        words::u32_to_bytes(&w, &mut transposed);
        rze::encode(&transposed, out);
        out.extend_from_slice(tail);
    }

    fn decode_chunk(
        &self,
        data: &[u8],
        expected_len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), Error> {
        let count = expected_len / 4;
        let tail_len = expected_len % 4;
        let mut pos = 0;
        let mut transposed = Vec::with_capacity(count * 4);
        rze::decode(data, &mut pos, count * 4, &mut transposed).map_err(map_decode)?;
        let (mut w, rest) = words::bytes_to_u32(&transposed);
        debug_assert!(rest.is_empty());
        bit_transpose::transpose32(&mut w);
        diffms::decode32(&mut w);
        words::u32_to_bytes(&w, out);
        out.extend_from_slice(take(data, &mut pos, tail_len)?);
        expect_consumed(data, pos)
    }
}

/// DPratio chunked stages: DIFFMS(64) → RAZE → RARE.
///
/// RARE operates on the *byte stream* RAZE emits, viewed as 64-bit words;
/// the RAZE stream length is recorded as a varint because it is not
/// derivable from the chunk length.
#[derive(Debug, Clone, Copy)]
pub struct DpRatioChunkCodec {
    /// Fixed RAZE/RARE byte split override (`None` = adaptive).
    pub fixed_split: Option<u8>,
}

impl ChunkCodec for DpRatioChunkCodec {
    fn encode_chunk(&self, chunk: &[u8], out: &mut Vec<u8>) {
        let (mut w, ctail) = words::bytes_to_u64(chunk);
        diffms::encode64(&mut w);
        let mut razed = Vec::with_capacity(chunk.len());
        match self.fixed_split {
            Some(kb) => raze::encode_with_split(&w, &mut razed, kb as usize),
            None => raze::encode(&w, &mut razed),
        }
        let (w2, t2) = words::bytes_to_u64(&razed);
        varint::write_usize(out, razed.len());
        match self.fixed_split {
            Some(kb) => rare::encode_with_split(&w2, out, kb as usize),
            None => rare::encode(&w2, out),
        }
        out.extend_from_slice(t2);
        out.extend_from_slice(ctail);
    }

    fn decode_chunk(
        &self,
        data: &[u8],
        expected_len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), Error> {
        let count = expected_len / 8;
        let ctail_len = expected_len % 8;
        let mut pos = 0;
        let razed_len = varint::read_usize(data, &mut pos).map_err(map_decode)?;
        if razed_len > expected_len * 2 + 64 {
            return Err(Error::Corrupt("raze stream implausibly large"));
        }
        let w2_count = razed_len / 8;
        let t2_len = razed_len % 8;
        let mut w2 = Vec::with_capacity(w2_count);
        rare::decode(data, &mut pos, w2_count, &mut w2).map_err(map_decode)?;
        let mut razed = Vec::with_capacity(razed_len);
        words::u64_to_bytes(&w2, &mut razed);
        razed.extend_from_slice(take(data, &mut pos, t2_len)?);
        let mut razed_pos = 0;
        let mut w = Vec::with_capacity(count);
        raze::decode(&razed, &mut razed_pos, count, &mut w).map_err(map_decode)?;
        if razed_pos != razed.len() {
            return Err(Error::Corrupt("raze stream not fully consumed"));
        }
        diffms::decode64(&mut w);
        words::u64_to_bytes(&w, out);
        out.extend_from_slice(take(data, &mut pos, ctail_len)?);
        expect_consumed(data, pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk_roundtrip(codec: &dyn ChunkCodec, chunk: &[u8]) -> usize {
        let mut enc = Vec::new();
        codec.encode_chunk(chunk, &mut enc);
        let mut dec = Vec::new();
        codec.decode_chunk(&enc, chunk.len(), &mut dec).unwrap();
        assert_eq!(dec, chunk);
        enc.len()
    }

    fn smooth_chunk_f32() -> Vec<u8> {
        let floats: Vec<f32> = (0..4096).map(|i| 3.0 + (i as f32) * 1e-4).collect();
        words::f32_slice_to_bytes(&floats)
    }

    fn smooth_chunk_f64() -> Vec<u8> {
        let floats: Vec<f64> = (0..2048).map(|i| -7.0 + (i as f64) * 1e-7).collect();
        words::f64_slice_to_bytes(&floats)
    }

    #[test]
    fn spspeed_chunk() {
        let chunk = smooth_chunk_f32();
        let size = chunk_roundtrip(&SpSpeedCodec { fallback: true }, &chunk);
        assert!(size < chunk.len(), "no compression: {size}");
    }

    #[test]
    fn spratio_chunk_compresses_more() {
        let chunk = smooth_chunk_f32();
        let speed = chunk_roundtrip(&SpSpeedCodec { fallback: true }, &chunk);
        let ratio = chunk_roundtrip(&SpRatioCodec, &chunk);
        assert!(ratio < speed, "SPratio {ratio} vs SPspeed {speed}");
    }

    #[test]
    fn dpspeed_chunk() {
        let chunk = smooth_chunk_f64();
        let size = chunk_roundtrip(&DpSpeedCodec { fallback: true }, &chunk);
        assert!(size < chunk.len());
    }

    #[test]
    fn dpratio_chunk() {
        let chunk = smooth_chunk_f64();
        let size = chunk_roundtrip(&DpRatioChunkCodec { fixed_split: None }, &chunk);
        assert!(size < chunk.len());
    }

    #[test]
    fn odd_sized_chunks() {
        for codec in [
            &SpSpeedCodec { fallback: true } as &dyn ChunkCodec,
            &SpRatioCodec,
            &DpSpeedCodec { fallback: true },
            &DpRatioChunkCodec { fixed_split: None },
        ] {
            for len in [1usize, 2, 5, 9, 17, 100, 1023] {
                let chunk: Vec<u8> = (0..len).map(|i| (i * 7 % 251) as u8).collect();
                chunk_roundtrip(codec, &chunk);
            }
        }
    }

    #[test]
    fn truncated_chunks_error() {
        let chunk = smooth_chunk_f64();
        for codec in [
            &DpSpeedCodec { fallback: true } as &dyn ChunkCodec,
            &DpRatioChunkCodec { fixed_split: None },
        ] {
            let mut enc = Vec::new();
            codec.encode_chunk(&chunk, &mut enc);
            let mut dec = Vec::new();
            assert!(codec
                .decode_chunk(&enc[..enc.len() - 3], chunk.len(), &mut dec)
                .is_err());
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let chunk = smooth_chunk_f32();
        let codec = SpRatioCodec;
        let mut enc = Vec::new();
        codec.encode_chunk(&chunk, &mut enc);
        enc.push(0xAB);
        let mut dec = Vec::new();
        assert!(matches!(
            codec.decode_chunk(&enc, chunk.len(), &mut dec),
            Err(Error::Corrupt(_))
        ));
    }

    #[test]
    fn fixed_split_roundtrips_all_values() {
        let chunk = smooth_chunk_f64();
        for kb in 0..=8u8 {
            let codec = DpRatioChunkCodec {
                fixed_split: Some(kb),
            };
            let mut enc = Vec::new();
            codec.encode_chunk(&chunk, &mut enc);
            // Decoding uses the split stored in the stream, not the option.
            let dec_codec = DpRatioChunkCodec { fixed_split: None };
            let mut dec = Vec::new();
            dec_codec.decode_chunk(&enc, chunk.len(), &mut dec).unwrap();
            assert_eq!(dec, chunk, "kb={kb}");
        }
    }
}
