//! The adaptive AUTO mode: per-chunk codec selection over the four fixed
//! pipelines.
//!
//! The paper fixes one algorithm per stream; AUTO instead picks a winner
//! for every chunk independently (the chunk table records the choice, see
//! [`fpc_container::FLAG_CHUNK_CODECS`]) so mixed streams — an MPI message
//! buffer interleaving smooth f32 fields, quantized f64 readings, and
//! incompressible segments — get the best of all four pipelines at once.
//!
//! Selection is cheap by construction: large chunks are *estimated* from a
//! prefix sample (one trial encode of [`SAMPLE_LEN`] bytes per candidate),
//! and only the candidates within [`SHORTLIST_PERCENT`] of the best
//! estimate are trial-encoded in full. Small chunks skip the estimate and
//! trial-encode everything. The store-raw fallback for incompressible
//! chunks is the container's own (a chunk whose encoding does not shrink
//! is stored verbatim and its pick is voided), so AUTO never expands a
//! chunk beyond raw.
//!
//! DPratio needs care: the paper's DPratio runs a *global* FCM stage over
//! the whole input, which would make chunks interdependent and break both
//! per-chunk mixing and seekable ranges. AUTO therefore uses
//! [`DpRatioLocalCodec`], which runs FCM *within* the chunk — same
//! pipeline, chunk-local window — keeping every chunk independently
//! decodable.

use crate::pipeline::{map_decode, DpRatioChunkCodec, DpSpeedCodec, SpRatioCodec, SpSpeedCodec};
use crate::PipelineOptions;
use fpc_container::{
    AdaptiveChunkCodec, ChunkCodec, Error, ALGO_DP_RATIO, ALGO_DP_SPEED, ALGO_SP_RATIO,
    ALGO_SP_SPEED,
};
use fpc_transforms::{fcm, words};

/// Prefix-sample length (bytes) used to estimate per-candidate encoded
/// sizes on large chunks. A multiple of 8 so both word widths sample whole
/// elements.
pub const SAMPLE_LEN: usize = 2048;

/// A candidate stays on the trial-encode shortlist if its estimated size is
/// within this percentage of the best estimate. The margin is wide enough
/// to absorb the FCM candidate's systematic sampling bias: context-model
/// match rates grow with context length, so a prefix sample overestimates
/// its full-chunk encoded size.
pub const SHORTLIST_PERCENT: usize = 8;

/// DPratio with a chunk-local FCM stage.
///
/// Encodes exactly the DPratio chunk pipeline (DIFFMS → RAZE → RARE) over
/// an FCM transform computed from the chunk alone, so the chunk decodes
/// without any stream-global state. Streams produced through this codec are
/// only ever referenced from AUTO's chunk table (codec id
/// [`ALGO_DP_RATIO`]); the fixed DPratio stream format is unchanged.
#[derive(Debug, Clone, Copy)]
pub struct DpRatioLocalCodec {
    /// FCM match window (paper: 4).
    pub fcm_window: usize,
    /// Fixed RAZE/RARE byte split override (`None` = adaptive).
    pub fixed_split: Option<u8>,
}

impl Default for DpRatioLocalCodec {
    fn default() -> Self {
        let opts = PipelineOptions::default();
        Self {
            fcm_window: opts.fcm_window,
            fixed_split: opts.fixed_split,
        }
    }
}

impl ChunkCodec for DpRatioLocalCodec {
    fn encode_chunk(&self, chunk: &[u8], out: &mut Vec<u8>) {
        let (w, tail) = words::bytes_to_u64(chunk);
        let enc = fcm::encode_with_window(&w, self.fcm_window);
        let inner = DpRatioChunkCodec {
            fixed_split: self.fixed_split,
        };
        // The value array (float-like bytes at non-match positions) and the
        // distance array (small integers) have very different byte
        // statistics; encoding them as two separate inner chunks lets
        // RAZE/RARE choose a byte split per array, exactly as the fixed
        // DPratio pipeline does when it chunks the global FCM intermediate.
        // Layout: [values-enc len u32][values enc][distances enc][raw tail].
        let mut part = Vec::with_capacity(w.len() * 8);
        words::u64_to_bytes(&enc.values, &mut part);
        let mut enc_values = Vec::new();
        inner.encode_chunk(&part, &mut enc_values);
        part.clear();
        words::u64_to_bytes(&enc.distances, &mut part);
        let mut enc_distances = Vec::new();
        inner.encode_chunk(&part, &mut enc_distances);
        out.extend_from_slice(
            &u32::try_from(enc_values.len())
                .expect("chunk fits u32")
                .to_le_bytes(),
        );
        out.extend_from_slice(&enc_values);
        out.extend_from_slice(&enc_distances);
        out.extend_from_slice(tail);
    }

    fn decode_chunk(
        &self,
        data: &[u8],
        expected_len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), Error> {
        let nwords = expected_len / 8;
        let tail_len = expected_len % 8;
        if data.len() < 4 + tail_len {
            return Err(Error::Corrupt("fcm chunk too short"));
        }
        let values_len = u32::from_le_bytes([data[0], data[1], data[2], data[3]]) as usize;
        let body = &data[4..data.len() - tail_len];
        if values_len > body.len() {
            return Err(Error::Corrupt("fcm value-part length out of range"));
        }
        let inner = DpRatioChunkCodec { fixed_split: None };
        let mut part = Vec::with_capacity(nwords * 8);
        inner.decode_chunk(&body[..values_len], nwords * 8, &mut part)?;
        if part.len() != nwords * 8 {
            return Err(Error::Corrupt("fcm value array length mismatch"));
        }
        let (values, _) = words::bytes_to_u64(&part);
        part.clear();
        inner.decode_chunk(&body[values_len..], nwords * 8, &mut part)?;
        if part.len() != nwords * 8 {
            return Err(Error::Corrupt("fcm distance array length mismatch"));
        }
        let (distances, _) = words::bytes_to_u64(&part);
        let decoded = fcm::decode_arrays(&values, &distances).map_err(map_decode)?;
        words::u64_to_bytes(&decoded, out);
        out.extend_from_slice(&data[data.len() - tail_len..]);
        Ok(())
    }
}

/// The AUTO adaptive codec: per-chunk selection among the four pipelines.
///
/// Implements [`AdaptiveChunkCodec`], so it plugs into
/// [`fpc_container::compress_adaptive`] and friends; the container records
/// the returned codec id per chunk and routes decode back through
/// [`AutoCodec::decode_chunk`].
#[derive(Debug, Clone, Copy)]
pub struct AutoCodec {
    sp_speed: SpSpeedCodec,
    sp_ratio: SpRatioCodec,
    dp_speed: DpSpeedCodec,
    dp_ratio: DpRatioLocalCodec,
}

impl Default for AutoCodec {
    fn default() -> Self {
        Self::new(&PipelineOptions::default())
    }
}

impl AutoCodec {
    /// Builds the candidate set from encoder options (decode ignores them;
    /// the stream is self-describing).
    pub fn new(options: &PipelineOptions) -> Self {
        Self {
            sp_speed: SpSpeedCodec {
                fallback: options.mplg_fallback,
            },
            sp_ratio: SpRatioCodec,
            dp_speed: DpSpeedCodec {
                fallback: options.mplg_fallback,
            },
            dp_ratio: DpRatioLocalCodec {
                fcm_window: options.fcm_window,
                fixed_split: options.fixed_split,
            },
        }
    }

    /// Candidate order is the tie-break order: on an exact size tie the
    /// earlier (cheaper-to-decode) pipeline wins, deterministically.
    fn candidates(&self) -> [(u8, &dyn ChunkCodec); 4] {
        [
            (ALGO_SP_SPEED, &self.sp_speed),
            (ALGO_SP_RATIO, &self.sp_ratio),
            (ALGO_DP_SPEED, &self.dp_speed),
            (ALGO_DP_RATIO, &self.dp_ratio),
        ]
    }

    fn codec_for(&self, codec_id: u8) -> Option<&dyn ChunkCodec> {
        self.candidates()
            .into_iter()
            .find(|(id, _)| *id == codec_id)
            .map(|(_, c)| c)
    }
}

impl AdaptiveChunkCodec for AutoCodec {
    fn encode_chunk(&self, chunk: &[u8], out: &mut Vec<u8>) -> u8 {
        let candidates = self.candidates();
        // Small chunks: the sample would cover most of the chunk anyway, so
        // trial-encode every candidate in full.
        if chunk.len() <= 2 * SAMPLE_LEN {
            let mut best: Option<(u8, Vec<u8>)> = None;
            for (id, codec) in candidates {
                let mut enc = Vec::new();
                codec.encode_chunk(chunk, &mut enc);
                if best.as_ref().is_none_or(|(_, b)| enc.len() < b.len()) {
                    best = Some((id, enc));
                }
            }
            let (id, enc) = best.expect("candidate set is non-empty");
            out.extend_from_slice(&enc);
            return id;
        }
        // Large chunks: estimate from a prefix sample, then trial-encode
        // only the shortlist of estimates within SHORTLIST_PERCENT of the
        // best one.
        let sample = &chunk[..SAMPLE_LEN];
        let mut estimates = [0usize; 4];
        for (slot, (_, codec)) in estimates.iter_mut().zip(candidates) {
            let mut enc = Vec::new();
            codec.encode_chunk(sample, &mut enc);
            *slot = enc.len() * chunk.len() / sample.len();
        }
        let best_estimate = *estimates.iter().min().expect("four estimates");
        let cutoff = best_estimate + best_estimate * SHORTLIST_PERCENT / 100;
        let mut best: Option<(u8, Vec<u8>)> = None;
        for ((id, codec), estimate) in candidates.into_iter().zip(estimates) {
            if estimate > cutoff {
                continue;
            }
            let mut enc = Vec::new();
            codec.encode_chunk(chunk, &mut enc);
            if best.as_ref().is_none_or(|(_, b)| enc.len() < b.len()) {
                best = Some((id, enc));
            }
        }
        let (id, enc) = best.expect("the best estimate is always on the shortlist");
        out.extend_from_slice(&enc);
        id
    }

    fn knows_codec(&self, codec_id: u8) -> bool {
        self.codec_for(codec_id).is_some()
    }

    fn decode_chunk(
        &self,
        codec_id: u8,
        data: &[u8],
        expected_len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), Error> {
        match self.codec_for(codec_id) {
            Some(codec) => codec.decode_chunk(data, expected_len, out),
            // The container checks knows_codec before dispatching, so this
            // only guards direct misuse of the codec.
            None => Err(Error::Corrupt("codec id not known to the AUTO decoder")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_f64_chunk(n: usize) -> Vec<u8> {
        let floats: Vec<f64> = (0..n).map(|i| (i as f64 * 0.001).sin() * 5.0).collect();
        words::f64_slice_to_bytes(&floats)
    }

    fn smooth_f32_chunk(n: usize) -> Vec<u8> {
        let floats: Vec<f32> = (0..n).map(|i| 2.0 + i as f32 * 1e-4).collect();
        words::f32_slice_to_bytes(&floats)
    }

    #[test]
    fn dpratio_local_roundtrips() {
        let codec = DpRatioLocalCodec::default();
        for len in [0usize, 1, 7, 8, 9, 1024, 16 * 1024, 16 * 1024 + 3] {
            let chunk: Vec<u8> = smooth_f64_chunk(len / 8 + 1)[..len].to_vec();
            let mut enc = Vec::new();
            codec.encode_chunk(&chunk, &mut enc);
            let mut dec = Vec::new();
            codec.decode_chunk(&enc, chunk.len(), &mut dec).unwrap();
            assert_eq!(dec, chunk, "len {len}");
        }
    }

    #[test]
    fn dpratio_local_compresses_recurring_values() {
        // FCM's specialty, now available per chunk.
        let pattern: Vec<f64> = (0..64).map(|i| (i as f64).sqrt()).collect();
        let values: Vec<f64> = pattern.iter().cycle().take(2048).copied().collect();
        let chunk = words::f64_slice_to_bytes(&values);
        let codec = DpRatioLocalCodec::default();
        let mut enc = Vec::new();
        codec.encode_chunk(&chunk, &mut enc);
        assert!(enc.len() < chunk.len() / 2, "got {}", enc.len());
    }

    #[test]
    fn auto_picks_roundtrip_on_all_candidates() {
        let auto = AutoCodec::default();
        for chunk in [
            smooth_f32_chunk(4096),
            smooth_f64_chunk(2048),
            (0..16 * 1024).map(|i| (i % 251) as u8).collect::<Vec<u8>>(),
            Vec::new(),
            vec![7u8; 16 * 1024],
        ] {
            let mut enc = Vec::new();
            let id = auto.encode_chunk(&chunk, &mut enc);
            assert!(auto.knows_codec(id), "picked unknown id {id}");
            let mut dec = Vec::new();
            auto.decode_chunk(id, &enc, chunk.len(), &mut dec).unwrap();
            assert_eq!(dec, chunk);
        }
    }

    #[test]
    fn auto_matches_best_full_trial_within_shortlist_margin() {
        // The sampled estimate may only lose to an exhaustive trial by the
        // shortlist margin (plus sampling noise bounded by that margin on
        // these homogeneous chunks).
        let auto = AutoCodec::default();
        for chunk in [smooth_f32_chunk(8192), smooth_f64_chunk(4096)] {
            let mut picked = Vec::new();
            auto.encode_chunk(&chunk, &mut picked);
            let exhaustive = auto
                .candidates()
                .into_iter()
                .map(|(_, c)| {
                    let mut e = Vec::new();
                    c.encode_chunk(&chunk, &mut e);
                    e.len()
                })
                .min()
                .unwrap();
            assert!(
                picked.len() <= exhaustive + exhaustive / 10,
                "picked {} vs exhaustive best {exhaustive}",
                picked.len()
            );
        }
    }

    #[test]
    fn unknown_id_is_structured_error() {
        let auto = AutoCodec::default();
        assert!(!auto.knows_codec(0));
        assert!(!auto.knows_codec(5));
        assert!(!auto.knows_codec(250));
        let mut out = Vec::new();
        assert!(matches!(
            auto.decode_chunk(250, &[1, 2, 3], 3, &mut out),
            Err(Error::Corrupt(_))
        ));
    }
}
