//! Streaming (framed) compression for data that should not be buffered
//! whole: an [`FrameWriter`] compresses fixed-size frames as they fill, and
//! a [`FrameReader`] decompresses frame by frame.
//!
//! This addresses the paper's deployment setting — instruments producing
//! hundreds of GB/s (§1) cannot buffer a full acquisition before
//! compressing. Each frame is a complete, self-describing FPcompress
//! container, so a stream can also be decompressed frame-parallel by
//! seeking over the frame length prefixes.
//!
//! # Wire format
//!
//! ```text
//! [frame length: u32 LE][container bytes] … [0u32 end marker]
//! ```
//!
//! # Example
//!
//! ```
//! use fpc_core::stream::{FrameReader, FrameWriter};
//! use fpc_core::Algorithm;
//! use std::io::{Read, Write};
//!
//! # fn main() -> std::io::Result<()> {
//! let data: Vec<u8> = (0..100_000u32).flat_map(|i| (i as f32).to_bits().to_le_bytes()).collect();
//! let mut writer = FrameWriter::new(Vec::new(), Algorithm::SpSpeed);
//! writer.write_all(&data)?;
//! let compressed = writer.finish()?;
//!
//! let mut restored = Vec::new();
//! FrameReader::new(compressed.as_slice()).read_to_end(&mut restored)?;
//! assert_eq!(restored, data);
//! # Ok(())
//! # }
//! ```

use crate::{Algorithm, Compressor};
use std::io::{self, Read, Write};

/// Default uncompressed frame size (4 MiB: 256 chunks per frame keeps the
/// per-frame chunk table small while giving the parallel executor work).
pub const DEFAULT_FRAME_SIZE: usize = 4 * 1024 * 1024;

/// Streaming compressor: buffers input into frames and writes each frame's
/// container as soon as it is full.
#[derive(Debug)]
pub struct FrameWriter<W: Write> {
    sink: W,
    compressor: Compressor,
    frame_size: usize,
    buf: Vec<u8>,
    finished: bool,
}

impl<W: Write> FrameWriter<W> {
    /// Creates a writer with the default frame size. A `&mut` reference can
    /// be passed as `sink` if the caller wants to keep ownership.
    pub fn new(sink: W, algorithm: Algorithm) -> Self {
        Self::with_compressor(sink, Compressor::new(algorithm))
    }

    /// Creates a writer using a configured [`Compressor`].
    pub fn with_compressor(sink: W, compressor: Compressor) -> Self {
        Self {
            sink,
            compressor,
            frame_size: DEFAULT_FRAME_SIZE,
            buf: Vec::new(),
            finished: false,
        }
    }

    /// Overrides the frame size.
    ///
    /// # Panics
    ///
    /// Panics if `frame_size` is zero.
    pub fn with_frame_size(mut self, frame_size: usize) -> Self {
        assert!(frame_size > 0, "frame size must be nonzero");
        self.frame_size = frame_size;
        self
    }

    fn emit_frame(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let frame = self.compressor.compress_bytes(&self.buf);
        self.buf.clear();
        let len = u32::try_from(frame.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame exceeds 4 GiB"))?;
        self.sink.write_all(&len.to_le_bytes())?;
        self.sink.write_all(&frame)
    }

    /// Flushes any buffered data as a final (possibly short) frame, writes
    /// the end marker, and returns the sink.
    ///
    /// Dropping the writer without calling `finish` loses buffered data and
    /// omits the end marker.
    ///
    /// # Errors
    ///
    /// Propagates sink I/O errors.
    pub fn finish(mut self) -> io::Result<W> {
        self.emit_frame()?;
        self.sink.write_all(&0u32.to_le_bytes())?;
        self.sink.flush()?;
        self.finished = true;
        Ok(self.sink)
    }
}

impl<W: Write> Write for FrameWriter<W> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        let take = data.len().min(self.frame_size - self.buf.len());
        self.buf.extend_from_slice(&data[..take]);
        if self.buf.len() == self.frame_size {
            self.emit_frame()?;
        }
        Ok(take)
    }

    fn flush(&mut self) -> io::Result<()> {
        // Frames must stay aligned to frame_size until finish(), so flush
        // only forwards to the sink.
        self.sink.flush()
    }
}

/// Streaming decompressor over a frame stream produced by [`FrameWriter`].
#[derive(Debug)]
pub struct FrameReader<R: Read> {
    source: R,
    current: Vec<u8>,
    pos: usize,
    done: bool,
}

impl<R: Read> FrameReader<R> {
    /// Creates a reader.
    pub fn new(source: R) -> Self {
        Self {
            source,
            current: Vec::new(),
            pos: 0,
            done: false,
        }
    }

    fn next_frame(&mut self) -> io::Result<bool> {
        let mut len_bytes = [0u8; 4];
        self.source.read_exact(&mut len_bytes)?;
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len == 0 {
            self.done = true;
            return Ok(false);
        }
        let mut frame = vec![0u8; len];
        self.source.read_exact(&mut frame)?;
        self.current = crate::decompress_bytes(&frame)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        self.pos = 0;
        Ok(true)
    }
}

impl<R: Read> Read for FrameReader<R> {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        loop {
            if self.pos < self.current.len() {
                let take = out.len().min(self.current.len() - self.pos);
                out[..take].copy_from_slice(&self.current[self.pos..self.pos + take]);
                self.pos += take;
                return Ok(take);
            }
            if self.done || out.is_empty() {
                return Ok(0);
            }
            if !self.next_frame()? {
                return Ok(0);
            }
        }
    }
}

/// Compresses everything from `reader` into `writer`; returns the number of
/// uncompressed bytes consumed.
///
/// # Errors
///
/// Propagates I/O errors from either side.
pub fn compress_stream<R: Read, W: Write>(
    mut reader: R,
    writer: W,
    algorithm: Algorithm,
) -> io::Result<u64> {
    let mut fw = FrameWriter::new(writer, algorithm);
    let copied = io::copy(&mut reader, &mut fw)?;
    fw.finish()?;
    Ok(copied)
}

/// Decompresses a frame stream from `reader` into `writer`; returns the
/// number of uncompressed bytes produced.
///
/// # Errors
///
/// Fails on I/O errors or corrupt frames.
pub fn decompress_stream<R: Read, W: Write>(reader: R, mut writer: W) -> io::Result<u64> {
    let mut fr = FrameReader::new(reader);
    io::copy(&mut fr, &mut writer)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<u8> {
        (0..n as u32)
            .flat_map(|i| ((i as f32 * 1e-3).sin()).to_bits().to_le_bytes())
            .collect()
    }

    #[test]
    fn roundtrip_multiple_frames() {
        let data = sample(100_000); // 400 kB
        for algo in Algorithm::ALL {
            let mut fw = FrameWriter::new(Vec::new(), algo).with_frame_size(64 * 1024);
            fw.write_all(&data).unwrap();
            let stream = fw.finish().unwrap();
            let mut out = Vec::new();
            FrameReader::new(stream.as_slice())
                .read_to_end(&mut out)
                .unwrap();
            assert_eq!(out, data, "{algo}");
        }
    }

    #[test]
    fn empty_stream() {
        let fw = FrameWriter::new(Vec::new(), Algorithm::SpSpeed);
        let stream = fw.finish().unwrap();
        assert_eq!(stream, 0u32.to_le_bytes());
        let mut out = Vec::new();
        FrameReader::new(stream.as_slice())
            .read_to_end(&mut out)
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn partial_final_frame() {
        let data = sample(10_000);
        let mut fw = FrameWriter::new(Vec::new(), Algorithm::SpRatio).with_frame_size(30_000);
        fw.write_all(&data).unwrap();
        let stream = fw.finish().unwrap();
        let mut out = Vec::new();
        FrameReader::new(stream.as_slice())
            .read_to_end(&mut out)
            .unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn frames_are_independent_containers() {
        let data = sample(50_000);
        let mut fw = FrameWriter::new(Vec::new(), Algorithm::SpSpeed).with_frame_size(65_536);
        fw.write_all(&data).unwrap();
        let stream = fw.finish().unwrap();
        // Walk the frame headers: each frame must parse as a container.
        let mut pos = 0;
        let mut frames = 0;
        loop {
            let len = u32::from_le_bytes(stream[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 4;
            if len == 0 {
                break;
            }
            let frame = &stream[pos..pos + len];
            let info = crate::info(frame).unwrap();
            assert_eq!(info.algorithm, Algorithm::SpSpeed);
            pos += len;
            frames += 1;
        }
        assert_eq!(pos, stream.len());
        assert!(frames >= 3, "expected several frames, got {frames}");
    }

    #[test]
    fn truncated_stream_errors() {
        let data = sample(50_000);
        let mut fw = FrameWriter::new(Vec::new(), Algorithm::SpSpeed).with_frame_size(65_536);
        fw.write_all(&data).unwrap();
        let stream = fw.finish().unwrap();
        let mut out = Vec::new();
        // Missing end marker or cut frame must error, not silently succeed.
        let err = FrameReader::new(&stream[..stream.len() - 6])
            .read_to_end(&mut out)
            .unwrap_err();
        assert!(matches!(
            err.kind(),
            io::ErrorKind::UnexpectedEof | io::ErrorKind::InvalidData
        ));
    }

    #[test]
    fn corrupt_frame_errors() {
        let data = sample(20_000);
        let mut fw = FrameWriter::new(Vec::new(), Algorithm::DpSpeed).with_frame_size(65_536);
        fw.write_all(&data).unwrap();
        let mut stream = fw.finish().unwrap();
        stream[13] ^= 0xFF; // corrupt the first frame's original-length field
        let mut out = Vec::new();
        assert!(FrameReader::new(stream.as_slice())
            .read_to_end(&mut out)
            .is_err());
    }

    #[test]
    fn stream_helpers_roundtrip() {
        let data = sample(80_000);
        let mut compressed = Vec::new();
        let consumed =
            compress_stream(data.as_slice(), &mut compressed, Algorithm::SpRatio).unwrap();
        assert_eq!(consumed, data.len() as u64);
        assert!(compressed.len() < data.len());
        let mut out = Vec::new();
        let produced = decompress_stream(compressed.as_slice(), &mut out).unwrap();
        assert_eq!(produced, data.len() as u64);
        assert_eq!(out, data);
    }

    #[test]
    fn small_reads_cross_frame_boundaries() {
        let data = sample(40_000);
        let mut fw = FrameWriter::new(Vec::new(), Algorithm::SpSpeed).with_frame_size(10_000);
        fw.write_all(&data).unwrap();
        let stream = fw.finish().unwrap();
        let mut fr = FrameReader::new(stream.as_slice());
        let mut out = Vec::new();
        let mut tiny = [0u8; 7]; // deliberately misaligned with frames
        loop {
            let n = fr.read(&mut tiny).unwrap();
            if n == 0 {
                break;
            }
            out.extend_from_slice(&tiny[..n]);
        }
        assert_eq!(out, data);
    }
}
