//! Incremental compression/decompression engines with an optional
//! content-addressed hot-chunk cache.
//!
//! These are the feed/finish counterparts of [`crate::Compressor`] and
//! [`crate::decompress_bytes_with`]: callers push bytes as they arrive (a
//! socket, a pipe) and the engine processes whole 16 KiB chunks as soon as
//! they complete, holding only O(chunk table + one chunk) instead of the
//! whole payload. The produced/accepted streams are **byte-identical** to
//! the whole-buffer entry points — both run the same per-chunk codecs
//! through the container's [`fpc_container::FrameAssembler`] /
//! [`fpc_container::StreamingDecoder`] machinery — and a [`ChunkCache`]
//! hit substitutes a previously computed result for the identical bytes,
//! so caching cannot change output either.
//!
//! Memory bounds (the contract servers rely on):
//!
//! - [`StreamingCompressor`]: holds at most one partial input chunk plus
//!   all *compressed* chunk bodies (the container layout places the chunk
//!   table before the bodies, so output can only be assembled at finish).
//!   Input-side memory is O(chunk); held output is the compressed size,
//!   typically a fraction of the input.
//! - [`StreamingDecompressor`]: holds the chunk table, at most one
//!   in-flight compressed chunk, plus decoded output the caller has not
//!   drained yet — O(chunk) end-to-end when the caller drains eagerly.
//! - **DPratio is the documented exception on both paths**: its global FCM
//!   stage needs the whole payload, so the engines fall back to buffering
//!   internally (`held_bytes` reports it honestly; servers budget
//!   accordingly).

use std::collections::VecDeque;
use std::sync::Arc;

use fpc_cache::{CacheKey, ChunkCache};
use fpc_container::checksum::xxh64;
use fpc_container::{
    decode_stream_chunk, decode_stream_chunk_adaptive, encode_chunk, encode_chunk_adaptive,
    AdaptiveChunkCodec, ChunkCodec, EncodedChunk, FrameAssembler, Header, StreamingDecoder,
    FLAG_CHUNK_CODECS,
};
use fpc_transforms::{fcm, words};

use crate::pipeline;
use crate::{
    Algorithm, AutoCodec, Compressor, DpRatioChunkCodec, DpSpeedCodec, Error, PipelineOptions,
    Result, SpRatioCodec, SpSpeedCodec,
};

/// Cache-key context tags: the direction byte keeps compress-path entries
/// (value = encoded chunk) and decompress-path entries (value = decoded
/// bytes) in disjoint key spaces even for identical content bytes.
const CTX_ENCODE: u64 = 1;
const CTX_DECODE: u64 = 2;

/// Fingerprint of the encoder options that change emitted bytes, mixed
/// into compress-path cache keys so engines with different options never
/// share entries.
fn options_tag(options: &PipelineOptions) -> u64 {
    let mut canon = Vec::with_capacity(11);
    canon.push(options.mplg_fallback as u8);
    canon.extend_from_slice(&(options.fcm_window as u64).to_le_bytes());
    match options.fixed_split {
        None => canon.extend_from_slice(&[0, 0]),
        Some(s) => canon.extend_from_slice(&[1, s]),
    }
    xxh64(&canon, CTX_ENCODE)
}

fn encode_context(algo: Algorithm, opts_tag: u64) -> u64 {
    CTX_ENCODE | (u64::from(algo.id()) << 8) ^ (opts_tag << 16)
}

/// Decode-path cache-key context from a chunk's table metadata. Shared by
/// the streaming decompressor and the cached range decode
/// ([`crate::decompress_range_cached_with`]) so a chunk decoded through
/// either path hits entries the other inserted: `codec_id` is the chunk
/// table's id for adaptive streams and `0` for fixed-codec streams,
/// matching [`fpc_container::StreamChunk::codec_id`].
pub(crate) fn decode_chunk_context(
    algo: Algorithm,
    codec_id: u8,
    raw: bool,
    expected_len: usize,
) -> u64 {
    CTX_DECODE
        | (u64::from(algo.id()) << 8)
        | (u64::from(codec_id) << 16)
        | (u64::from(raw) << 24)
        | ((expected_len as u64) << 32)
}

fn decode_context(algo: Algorithm, chunk: &fpc_container::StreamChunk) -> u64 {
    decode_chunk_context(algo, chunk.codec_id, chunk.raw, chunk.expected_len)
}

/// Serialized cache value for the compress path:
/// `[codec_id][raw][checksum: u64 LE][body…]`.
fn encode_cache_value(c: &EncodedChunk) -> Arc<[u8]> {
    let mut v = Vec::with_capacity(10 + c.body.len());
    v.push(c.codec_id);
    v.push(c.raw as u8);
    v.extend_from_slice(&c.checksum.to_le_bytes());
    v.extend_from_slice(&c.body);
    Arc::from(v.into_boxed_slice())
}

fn decode_cache_value(v: &[u8]) -> Option<EncodedChunk> {
    let (meta, body) = v.split_at_checked(10)?;
    let checksum = u64::from_le_bytes(meta[2..10].try_into().ok()?);
    Some(EncodedChunk {
        codec_id: meta[0],
        raw: meta[1] != 0,
        checksum,
        body: body.to_vec(),
    })
}

enum EncCodec {
    Fixed(Box<dyn ChunkCodec + Send + Sync>),
    Adaptive(Box<dyn AdaptiveChunkCodec + Send + Sync>),
}

enum CompState {
    /// Chunk-local algorithms: encode each chunk the moment it completes.
    Chunked {
        codec: EncCodec,
        asm: FrameAssembler,
        pending: Vec<u8>,
    },
    /// DPratio's global FCM stage sees the whole input: buffer, then run
    /// the ordinary whole-buffer compressor at finish.
    Buffered(Vec<u8>),
}

/// Feed/finish compressor producing streams byte-identical to
/// [`Compressor::compress_bytes`] with the same algorithm, thread count,
/// and options.
pub struct StreamingCompressor {
    algo: Algorithm,
    threads: usize,
    options: PipelineOptions,
    chunk_size: usize,
    state: CompState,
    cache: Option<Arc<ChunkCache>>,
    ctx: u64,
    total_in: u64,
}

impl StreamingCompressor {
    /// Creates an engine for `algo` with default options (the
    /// configuration [`Compressor::new`] uses).
    pub fn new(algo: Algorithm, threads: usize) -> StreamingCompressor {
        Self::with_options(algo, threads, PipelineOptions::default())
    }

    /// Creates an engine with explicit encoder options.
    pub fn with_options(
        algo: Algorithm,
        threads: usize,
        options: PipelineOptions,
    ) -> StreamingCompressor {
        let state = match algo {
            Algorithm::DpRatio => CompState::Buffered(Vec::new()),
            Algorithm::Auto => CompState::Chunked {
                codec: EncCodec::Adaptive(Box::new(AutoCodec::new(&options))),
                asm: FrameAssembler::new(true, true),
                pending: Vec::new(),
            },
            Algorithm::SpSpeed => CompState::Chunked {
                codec: EncCodec::Fixed(Box::new(SpSpeedCodec {
                    fallback: options.mplg_fallback,
                })),
                asm: FrameAssembler::new(false, true),
                pending: Vec::new(),
            },
            Algorithm::SpRatio => CompState::Chunked {
                codec: EncCodec::Fixed(Box::new(SpRatioCodec)),
                asm: FrameAssembler::new(false, true),
                pending: Vec::new(),
            },
            Algorithm::DpSpeed => CompState::Chunked {
                codec: EncCodec::Fixed(Box::new(DpSpeedCodec {
                    fallback: options.mplg_fallback,
                })),
                asm: FrameAssembler::new(false, true),
                pending: Vec::new(),
            },
        };
        let ctx = encode_context(algo, options_tag(&options));
        StreamingCompressor {
            algo,
            threads,
            options,
            chunk_size: fpc_container::DEFAULT_CHUNK_SIZE,
            state,
            cache: None,
            ctx,
            total_in: 0,
        }
    }

    /// Attaches a content-addressed cache: chunks whose bytes were encoded
    /// before (by any engine sharing the cache and configuration) reuse
    /// the cached encoding instead of re-running the codec.
    pub fn with_cache(mut self, cache: Arc<ChunkCache>) -> StreamingCompressor {
        self.cache = Some(cache);
        self
    }

    /// Whether this algorithm truly streams (`false` only for DPratio,
    /// which buffers the whole input for its global FCM stage).
    pub fn is_streaming(&self) -> bool {
        matches!(self.state, CompState::Chunked { .. })
    }

    /// Bytes currently held by the engine: the partial input chunk plus
    /// compressed bodies awaiting assembly (or the whole buffered input
    /// for DPratio).
    pub fn held_bytes(&self) -> u64 {
        match &self.state {
            CompState::Chunked { asm, pending, .. } => asm.body_bytes() + pending.len() as u64,
            CompState::Buffered(buf) => buf.len() as u64,
        }
    }

    fn encode_one(
        codec: &EncCodec,
        cache: &Option<Arc<ChunkCache>>,
        ctx: u64,
        chunk: &[u8],
    ) -> EncodedChunk {
        if let Some(cache) = cache {
            let key = CacheKey::new(chunk, ctx);
            if let Some(hit) = cache.get(&key) {
                if let Some(decoded) = decode_cache_value(&hit) {
                    return decoded;
                }
            }
            let encoded = match codec {
                EncCodec::Fixed(c) => encode_chunk(chunk, c.as_ref(), true),
                EncCodec::Adaptive(c) => encode_chunk_adaptive(chunk, c.as_ref(), true),
            };
            cache.insert(key, encode_cache_value(&encoded));
            encoded
        } else {
            match codec {
                EncCodec::Fixed(c) => encode_chunk(chunk, c.as_ref(), true),
                EncCodec::Adaptive(c) => encode_chunk_adaptive(chunk, c.as_ref(), true),
            }
        }
    }

    /// Feeds the next bytes of the input, encoding every chunk that
    /// completes.
    ///
    /// # Errors
    ///
    /// Fails only on a chunk body overflowing the container's 31-bit size
    /// field (pathological inputs only).
    pub fn feed(&mut self, bytes: &[u8]) -> Result<()> {
        self.total_in += bytes.len() as u64;
        match &mut self.state {
            CompState::Buffered(buf) => {
                buf.extend_from_slice(bytes);
                Ok(())
            }
            CompState::Chunked {
                codec,
                asm,
                pending,
            } => {
                let chunk_size = self.chunk_size;
                let mut rest = bytes;
                // Fill the partial chunk first; thereafter encode straight
                // from the input slice, copying only the final remainder.
                if !pending.is_empty() {
                    let need = chunk_size - pending.len();
                    let take = need.min(rest.len());
                    pending.extend_from_slice(&rest[..take]);
                    rest = &rest[take..];
                    if pending.len() == chunk_size {
                        let encoded = Self::encode_one(codec, &self.cache, self.ctx, pending);
                        asm.push(encoded).map_err(Error::Container)?;
                        pending.clear();
                    }
                }
                while rest.len() >= chunk_size {
                    let (chunk, tail) = rest.split_at(chunk_size);
                    rest = tail;
                    let encoded = Self::encode_one(codec, &self.cache, self.ctx, chunk);
                    asm.push(encoded).map_err(Error::Container)?;
                }
                pending.extend_from_slice(rest);
                Ok(())
            }
        }
    }

    /// Completes the stream, returning the full container — byte-identical
    /// to `Compressor::compress_bytes` over the concatenated input.
    ///
    /// # Errors
    ///
    /// As [`StreamingCompressor::feed`].
    pub fn finish(self) -> Result<Vec<u8>> {
        match self.state {
            CompState::Buffered(buf) => {
                let mut c = Compressor::new(self.algo).with_threads(self.threads);
                c = c.with_options(self.options);
                Ok(c.compress_bytes(&buf))
            }
            CompState::Chunked {
                codec,
                mut asm,
                pending,
            } => {
                if !pending.is_empty() {
                    let encoded = Self::encode_one(&codec, &self.cache, self.ctx, &pending);
                    asm.push(encoded).map_err(Error::Container)?;
                }
                let mut header = Header::new(
                    self.algo.id(),
                    self.algo.element_width(),
                    self.total_in,
                    self.total_in,
                );
                header.chunk_size = self.chunk_size as u32;
                if matches!(codec, EncCodec::Adaptive(_)) {
                    header.flags |= FLAG_CHUNK_CODECS;
                }
                asm.finish(header).map_err(Error::Container)
            }
        }
    }
}

enum DecCodec {
    Fixed(Box<dyn ChunkCodec + Send + Sync>),
    Adaptive(Box<dyn AdaptiveChunkCodec + Send + Sync>),
}

enum DecState {
    /// Header not yet parsed.
    Probe,
    /// Chunk-local algorithms: decoded chunks are final output.
    Plain(DecCodec),
    /// DPratio: decoded chunks accumulate into the FCM-transformed
    /// payload; the inverse FCM runs at finish.
    DpRatio {
        codec: DpRatioChunkCodec,
        payload: Vec<u8>,
    },
}

/// Feed/finish decompressor accepting exactly the streams
/// [`crate::decompress_bytes_with`] accepts, producing identical bytes.
///
/// Drive it with [`feed`](StreamingDecompressor::feed), drain decoded
/// output with [`take_output`](StreamingDecompressor::take_output) after
/// every feed, and call [`finish`](StreamingDecompressor::finish) at end
/// of stream (then drain once more: DPratio emits everything there).
pub struct StreamingDecompressor {
    dec: StreamingDecoder,
    state: DecState,
    algo: Option<Algorithm>,
    cache: Option<Arc<ChunkCache>>,
    ready: VecDeque<Vec<u8>>,
    ready_bytes: u64,
    produced: u64,
}

impl Default for StreamingDecompressor {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingDecompressor {
    /// Creates an empty engine; the algorithm is read from the stream
    /// header once enough bytes arrive.
    pub fn new() -> StreamingDecompressor {
        StreamingDecompressor {
            dec: StreamingDecoder::new(),
            state: DecState::Probe,
            algo: None,
            cache: None,
            ready: VecDeque::new(),
            ready_bytes: 0,
            produced: 0,
        }
    }

    /// Attaches a content-addressed cache of decoded chunks.
    pub fn with_cache(mut self, cache: Arc<ChunkCache>) -> StreamingDecompressor {
        self.cache = Some(cache);
        self
    }

    /// The stream's algorithm, once the header has been parsed.
    pub fn algorithm(&self) -> Option<Algorithm> {
        self.algo
    }

    /// Bytes currently held: undrained decoded output, buffered
    /// not-yet-complete input, and (DPratio only) the accumulated
    /// transformed payload.
    pub fn held_bytes(&self) -> u64 {
        let state = match &self.state {
            DecState::DpRatio { payload, .. } => payload.len() as u64,
            _ => 0,
        };
        self.dec.buffered_bytes() as u64 + self.ready_bytes + state
    }

    /// Whether the stream's algorithm decodes incrementally (`false` for
    /// DPratio, whose output is only available at finish).
    pub fn is_streaming(&self) -> bool {
        !matches!(self.state, DecState::DpRatio { .. })
    }

    fn on_header(&mut self, header: &Header) -> Result<()> {
        let algo = Algorithm::from_id(header.algorithm)?;
        let flagged = header.flags & FLAG_CHUNK_CODECS != 0;
        // Mirror the container's frame/decoder mode check: a fixed-codec
        // stream offers no codec ids for an adaptive decoder and vice
        // versa.
        match (algo, flagged) {
            (Algorithm::Auto, false) => {
                return Err(Error::Container(fpc_container::Error::Corrupt(
                    "stream carries no per-chunk codec table",
                )))
            }
            (Algorithm::Auto, true) => {}
            (_, true) => {
                return Err(Error::Container(fpc_container::Error::Corrupt(
                    "per-chunk codec stream requires an adaptive decoder",
                )))
            }
            (_, false) => {}
        }
        self.algo = Some(algo);
        self.state = match algo {
            Algorithm::SpSpeed => {
                DecState::Plain(DecCodec::Fixed(Box::new(SpSpeedCodec { fallback: true })))
            }
            Algorithm::SpRatio => DecState::Plain(DecCodec::Fixed(Box::new(SpRatioCodec))),
            Algorithm::DpSpeed => {
                DecState::Plain(DecCodec::Fixed(Box::new(DpSpeedCodec { fallback: true })))
            }
            Algorithm::Auto => DecState::Plain(DecCodec::Adaptive(Box::new(AutoCodec::default()))),
            Algorithm::DpRatio => DecState::DpRatio {
                codec: DpRatioChunkCodec { fixed_split: None },
                payload: Vec::new(),
            },
        };
        Ok(())
    }

    fn drain_chunks(&mut self) -> Result<()> {
        while let Some(chunk) = self.dec.next_chunk().map_err(Error::Container)? {
            let algo = self.algo.expect("state past Probe implies algo");
            let decode = |chunk: &fpc_container::StreamChunk| -> Result<Vec<u8>> {
                match &self.state {
                    DecState::Probe => unreachable!("chunks only pop after the header parses"),
                    DecState::Plain(DecCodec::Fixed(c)) => {
                        decode_stream_chunk(chunk, c.as_ref()).map_err(Error::Container)
                    }
                    DecState::Plain(DecCodec::Adaptive(c)) => {
                        decode_stream_chunk_adaptive(chunk, c.as_ref()).map_err(Error::Container)
                    }
                    DecState::DpRatio { codec, .. } => {
                        decode_stream_chunk(chunk, codec).map_err(Error::Container)
                    }
                }
            };
            // Raw chunks decode to their own bytes — caching them would
            // store pure copies; skip. The chunk checksum was already
            // verified by the streaming decoder, so cached entries are
            // keyed by trusted bytes.
            let decoded = match (&self.cache, chunk.raw) {
                (Some(cache), false) => {
                    let key = CacheKey::new(&chunk.body, decode_context(algo, &chunk));
                    if let Some(hit) = cache.get(&key) {
                        hit.to_vec()
                    } else {
                        let out = decode(&chunk)?;
                        cache.insert(key, Arc::from(&out[..]));
                        out
                    }
                }
                _ => decode(&chunk)?,
            };
            match &mut self.state {
                DecState::DpRatio { payload, .. } => payload.extend_from_slice(&decoded),
                _ => {
                    self.produced += decoded.len() as u64;
                    self.ready_bytes += decoded.len() as u64;
                    self.ready.push_back(decoded);
                }
            }
        }
        Ok(())
    }

    /// Feeds the next bytes of the compressed stream, decoding every chunk
    /// that completes.
    ///
    /// # Errors
    ///
    /// Fails as soon as the stream is provably invalid (bad framing or
    /// header, checksum mismatch, codec rejection) — identical failure
    /// classes to [`crate::decompress_bytes_with`].
    pub fn feed(&mut self, bytes: &[u8]) -> Result<()> {
        self.dec.feed(bytes).map_err(Error::Container)?;
        if matches!(self.state, DecState::Probe) {
            if let Some(header) = self.dec.header().copied() {
                self.on_header(&header)?;
            }
        }
        if !matches!(self.state, DecState::Probe) {
            self.drain_chunks()?;
        }
        Ok(())
    }

    /// Takes the next decoded block, if any. Call in a loop after every
    /// [`feed`](StreamingDecompressor::feed) (and after
    /// [`finish`](StreamingDecompressor::finish)) to keep
    /// [`held_bytes`](StreamingDecompressor::held_bytes) bounded.
    pub fn take_output(&mut self) -> Option<Vec<u8>> {
        let out = self.ready.pop_front()?;
        self.ready_bytes -= out.len() as u64;
        Some(out)
    }

    /// Completes the stream: validates that every chunk arrived and the
    /// total length matches the header, and (DPratio) runs the inverse
    /// FCM stage, queueing its output for
    /// [`take_output`](StreamingDecompressor::take_output).
    ///
    /// # Errors
    ///
    /// Truncated streams, length mismatches, or FCM post-stage failures —
    /// identical failure classes to [`crate::decompress_bytes_with`].
    pub fn finish(&mut self) -> Result<()> {
        self.dec.finish().map_err(Error::Container)?;
        let header = *self.dec.header().expect("finish() implies parsed meta");
        match std::mem::replace(&mut self.state, DecState::Probe) {
            DecState::Probe => unreachable!("finish() implies parsed meta"),
            plain @ DecState::Plain(_) => {
                self.state = plain;
                if self.produced != header.original_len {
                    return Err(Error::Container(fpc_container::Error::Corrupt(
                        "payload length disagrees with header",
                    )));
                }
                Ok(())
            }
            DecState::DpRatio { codec, payload } => {
                self.state = DecState::DpRatio {
                    codec,
                    payload: Vec::new(),
                };
                let original_len = usize::try_from(header.original_len).map_err(|_| {
                    Error::Container(fpc_container::Error::Corrupt("length overflow"))
                })?;
                let nwords = original_len / 8;
                let tail_len = original_len % 8;
                if payload.len() != nwords * 16 + tail_len {
                    return Err(Error::Container(fpc_container::Error::Corrupt(
                        "fcm payload length mismatch",
                    )));
                }
                let (values, _) = words::bytes_to_u64(&payload[..nwords * 8]);
                let (distances, _) = words::bytes_to_u64(&payload[nwords * 8..nwords * 16]);
                let decoded =
                    fcm::decode_arrays(&values, &distances).map_err(pipeline::map_decode)?;
                let mut out = Vec::with_capacity(original_len);
                words::u64_to_bytes(&decoded, &mut out);
                out.extend_from_slice(&payload[nwords * 16..]);
                self.produced += out.len() as u64;
                self.ready_bytes += out.len() as u64;
                self.ready.push_back(out);
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompress_bytes_with;

    fn sample(len: usize) -> Vec<u8> {
        // A float-ish byte pattern with enough structure that codecs
        // actually shrink it, plus enough variety to cover AUTO's picks.
        let mut v = Vec::with_capacity(len);
        let mut x = 1.0f64;
        while v.len() < len {
            x = x * 1.0000001 + 0.25;
            v.extend_from_slice(&x.to_le_bytes());
        }
        v.truncate(len);
        v
    }

    fn feed_sizes() -> [usize; 3] {
        [1 << 10, 40_000, usize::MAX]
    }

    #[test]
    fn streaming_compress_matches_whole_buffer_for_all_algorithms() {
        let data = sample(fpc_container::DEFAULT_CHUNK_SIZE * 4 + 777);
        for algo in [
            Algorithm::SpSpeed,
            Algorithm::SpRatio,
            Algorithm::DpSpeed,
            Algorithm::DpRatio,
            Algorithm::Auto,
        ] {
            let whole = Compressor::new(algo).with_threads(1).compress_bytes(&data);
            for step in feed_sizes() {
                let mut eng = StreamingCompressor::new(algo, 1);
                for piece in data.chunks(step.min(data.len())) {
                    eng.feed(piece).unwrap();
                }
                assert_eq!(
                    eng.finish().unwrap(),
                    whole,
                    "{algo:?} step {step} not byte-identical"
                );
            }
        }
    }

    #[test]
    fn streaming_compress_cache_hits_are_byte_identical() {
        // Two identical inputs through one cache: the second pass is all
        // hits and must emit identical bytes.
        let data = sample(fpc_container::DEFAULT_CHUNK_SIZE * 3);
        for algo in [Algorithm::SpRatio, Algorithm::Auto] {
            let cache = Arc::new(ChunkCache::new(8 << 20));
            let run = |cache: &Arc<ChunkCache>| {
                let mut eng = StreamingCompressor::new(algo, 1).with_cache(Arc::clone(cache));
                eng.feed(&data).unwrap();
                eng.finish().unwrap()
            };
            let cold = run(&cache);
            let hits_before = cache.stats().hits;
            let warm = run(&cache);
            assert_eq!(cold, warm, "{algo:?} cache hit changed bytes");
            assert!(cache.stats().hits > hits_before, "{algo:?} never hit");
            assert_eq!(
                cold,
                Compressor::new(algo).with_threads(1).compress_bytes(&data)
            );
        }
    }

    #[test]
    fn streaming_decompress_matches_whole_buffer_for_all_algorithms() {
        let data = sample(fpc_container::DEFAULT_CHUNK_SIZE * 4 + 123);
        for algo in [
            Algorithm::SpSpeed,
            Algorithm::SpRatio,
            Algorithm::DpSpeed,
            Algorithm::DpRatio,
            Algorithm::Auto,
        ] {
            let stream = Compressor::new(algo).with_threads(1).compress_bytes(&data);
            for step in feed_sizes() {
                let mut eng = StreamingDecompressor::new();
                let mut out = Vec::new();
                for piece in stream.chunks(step.min(stream.len())) {
                    eng.feed(piece).unwrap();
                    while let Some(block) = eng.take_output() {
                        out.extend_from_slice(&block);
                    }
                }
                eng.finish().unwrap();
                while let Some(block) = eng.take_output() {
                    out.extend_from_slice(&block);
                }
                assert_eq!(out, data, "{algo:?} step {step} decode mismatch");
                assert_eq!(eng.algorithm(), Some(algo));
            }
        }
    }

    #[test]
    fn streaming_decompress_bounded_memory_when_drained() {
        let data = sample(fpc_container::DEFAULT_CHUNK_SIZE * 64);
        let stream = Compressor::new(Algorithm::SpRatio)
            .with_threads(1)
            .compress_bytes(&data);
        let step = 4096;
        let mut eng = StreamingDecompressor::new();
        let mut out = Vec::new();
        let mut high_water = 0;
        for piece in stream.chunks(step) {
            eng.feed(piece).unwrap();
            while let Some(block) = eng.take_output() {
                out.extend_from_slice(&block);
            }
            high_water = high_water.max(eng.held_bytes());
        }
        eng.finish().unwrap();
        assert_eq!(out, data);
        // Table + one chunk + one feed, nowhere near the 1 MiB payload.
        assert!(
            high_water < 3 * fpc_container::DEFAULT_CHUNK_SIZE as u64,
            "held {high_water} bytes"
        );
    }

    #[test]
    fn streaming_decompress_cache_round_trips() {
        // Gently-varying f32 data: compressible under every algorithm, so
        // no chunk is stored raw (raw chunks bypass the decode cache).
        let mut data = Vec::new();
        let mut x = 1.0f32;
        while data.len() < fpc_container::DEFAULT_CHUNK_SIZE * 3 + 48 {
            x += 0.125;
            data.extend_from_slice(&x.to_le_bytes());
        }
        for algo in [Algorithm::SpSpeed, Algorithm::Auto, Algorithm::DpRatio] {
            let stream = Compressor::new(algo).with_threads(1).compress_bytes(&data);
            let cache = Arc::new(ChunkCache::new(8 << 20));
            for round in 0..2 {
                let mut eng = StreamingDecompressor::new().with_cache(Arc::clone(&cache));
                eng.feed(&stream).unwrap();
                eng.finish().unwrap();
                let mut out = Vec::new();
                while let Some(block) = eng.take_output() {
                    out.extend_from_slice(&block);
                }
                assert_eq!(out, data, "{algo:?} round {round}");
            }
            assert!(cache.stats().hits > 0, "{algo:?} decode cache never hit");
        }
    }

    #[test]
    fn cached_range_decode_shares_entries_with_streaming_decompress() {
        // Gently-varying f32 data so every chunk compresses (raw chunks
        // bypass the decode cache and would mask the sharing assertion).
        let mut data = Vec::new();
        let mut x = 1.0f32;
        while data.len() < fpc_container::DEFAULT_CHUNK_SIZE * 4 + 96 {
            x += 0.125;
            data.extend_from_slice(&x.to_le_bytes());
        }
        let offset = fpc_container::DEFAULT_CHUNK_SIZE as u64 + 101;
        let len = (fpc_container::DEFAULT_CHUNK_SIZE * 2) as u64;
        for algo in [Algorithm::SpSpeed, Algorithm::SpRatio, Algorithm::Auto] {
            let stream = Compressor::new(algo).with_threads(1).compress_bytes(&data);
            let expected = &data[offset as usize..(offset + len) as usize];
            let cache = Arc::new(ChunkCache::new(8 << 20));

            let cold =
                crate::decompress_range_cached_with(&stream, offset, len, 1, &cache).unwrap();
            assert_eq!(cold, expected, "{algo:?} cold range wrong");
            let warm =
                crate::decompress_range_cached_with(&stream, offset, len, 1, &cache).unwrap();
            assert_eq!(warm, expected, "{algo:?} warm range wrong");
            assert!(cache.stats().hits > 0, "{algo:?} warm range never hit");

            // A streamed decompress of the same stream must hit the
            // range-warmed entries: both paths build identical keys.
            let hits_before = cache.stats().hits;
            let mut eng = StreamingDecompressor::new().with_cache(Arc::clone(&cache));
            eng.feed(&stream).unwrap();
            eng.finish().unwrap();
            let mut out = Vec::new();
            while let Some(block) = eng.take_output() {
                out.extend_from_slice(&block);
            }
            assert_eq!(out, data, "{algo:?} streamed decode wrong");
            assert!(
                cache.stats().hits > hits_before,
                "{algo:?} streamed decode missed range-warmed entries"
            );
        }
        // DPratio falls back to the uncached full-decode path but must
        // still return the exact slice.
        let stream = Compressor::new(Algorithm::DpRatio)
            .with_threads(1)
            .compress_bytes(&data);
        let cache = Arc::new(ChunkCache::new(8 << 20));
        let got = crate::decompress_range_cached_with(&stream, offset, len, 1, &cache).unwrap();
        assert_eq!(got, &data[offset as usize..(offset + len) as usize]);
    }

    #[test]
    fn streaming_decompress_rejects_what_buffered_rejects() {
        let data = sample(fpc_container::DEFAULT_CHUNK_SIZE + 10);
        let stream = Compressor::new(Algorithm::SpSpeed)
            .with_threads(1)
            .compress_bytes(&data);

        // Truncation: finish must fail.
        let mut eng = StreamingDecompressor::new();
        eng.feed(&stream[..stream.len() - 1]).unwrap();
        assert!(eng.finish().is_err());

        // Flipped body byte: rejected mid-stream, like the whole-buffer path.
        let mut bad = stream.clone();
        let n = bad.len();
        bad[n - 2] ^= 0x10;
        assert!(decompress_bytes_with(&bad, 1).is_err());
        let mut eng = StreamingDecompressor::new();
        let result = eng.feed(&bad).and_then(|_| eng.finish());
        assert!(result.is_err());

        // Garbage header: immediate error.
        let mut eng = StreamingDecompressor::new();
        assert!(eng.feed(&[0xFFu8; 64]).is_err());
    }

    #[test]
    fn empty_input_round_trips() {
        for algo in [Algorithm::SpSpeed, Algorithm::Auto, Algorithm::DpRatio] {
            let eng = StreamingCompressor::new(algo, 1);
            let stream = eng.finish().unwrap();
            assert_eq!(
                stream,
                Compressor::new(algo).with_threads(1).compress_bytes(&[])
            );
            let mut dec = StreamingDecompressor::new();
            dec.feed(&stream).unwrap();
            dec.finish().unwrap();
            let mut out = Vec::new();
            while let Some(b) = dec.take_output() {
                out.extend_from_slice(&b);
            }
            assert!(out.is_empty(), "{algo:?}");
        }
    }
}
