//! Error type for the compression API.

/// Errors returned by the decompression and inspection functions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The container layer rejected the stream.
    Container(fpc_container::Error),
    /// The stream's algorithm identifier is not one of the four algorithms.
    UnknownAlgorithm(u8),
    /// A typed decompression was attempted on a stream of the other width.
    ElementMismatch {
        /// Width the caller asked for (4 or 8).
        expected: u8,
        /// Width recorded in the stream.
        actual: u8,
    },
    /// Decompressed byte length is not a multiple of the element width.
    LengthIndivisible {
        /// Decompressed length in bytes.
        len: u64,
        /// Requested element width.
        width: u8,
    },
    /// A requested byte range extends beyond the original data.
    RangeOutOfBounds {
        /// Requested start offset.
        offset: u64,
        /// Requested length.
        len: u64,
        /// Original data length.
        available: u64,
    },
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Error::Container(e) => write!(f, "{e}"),
            Error::UnknownAlgorithm(id) => write!(f, "unknown algorithm identifier {id}"),
            Error::ElementMismatch { expected, actual } => write!(
                f,
                "stream holds {actual}-byte elements but {expected}-byte elements were requested"
            ),
            Error::LengthIndivisible { len, width } => {
                write!(f, "decompressed length {len} is not a multiple of {width}")
            }
            Error::RangeOutOfBounds {
                offset,
                len,
                available,
            } => {
                write!(
                    f,
                    "range {offset}+{len} exceeds original length {available}"
                )
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Container(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fpc_container::Error> for Error {
    fn from(e: fpc_container::Error) -> Self {
        match e {
            // Keep range violations as one structured variant across
            // layers so callers (CLI exit codes, the wire error mapping)
            // need a single match arm.
            fpc_container::Error::RangeOutOfBounds {
                offset,
                len,
                available,
            } => Error::RangeOutOfBounds {
                offset,
                len,
                available,
            },
            e => Error::Container(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(Error::UnknownAlgorithm(7).to_string().contains('7'));
        assert!(Error::ElementMismatch {
            expected: 4,
            actual: 8
        }
        .to_string()
        .contains('8'));
        assert!(Error::LengthIndivisible { len: 5, width: 4 }
            .to_string()
            .contains('5'));
    }

    #[test]
    fn container_source_preserved() {
        use std::error::Error as _;
        let e = Error::from(fpc_container::Error::BadMagic);
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
