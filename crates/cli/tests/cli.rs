//! End-to-end tests of the `fpcc` binary.

use std::path::PathBuf;
use std::process::Command;

fn fpcc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fpcc"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fpcc-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn sample_file(dir: &std::path::Path) -> PathBuf {
    let values: Vec<f32> = (0..50_000).map(|i| (i as f32 * 1e-3).sin() * 7.0).collect();
    let bytes: Vec<u8> = values
        .iter()
        .flat_map(|v| v.to_bits().to_le_bytes())
        .collect();
    let path = dir.join("input.bin");
    std::fs::write(&path, bytes).expect("write sample");
    path
}

#[test]
fn compress_decompress_roundtrip() {
    let dir = temp_dir("roundtrip");
    let input = sample_file(&dir);
    let compressed = dir.join("out.fpc");
    let restored = dir.join("restored.bin");

    let status = fpcc()
        .args(["compress", "--algo", "spratio"])
        .arg(&input)
        .arg(&compressed)
        .status()
        .expect("run fpcc compress");
    assert!(status.success());
    assert!(compressed.exists());
    let original = std::fs::read(&input).expect("read input");
    let stream = std::fs::read(&compressed).expect("read stream");
    assert!(stream.len() < original.len(), "no compression achieved");

    let status = fpcc()
        .arg("decompress")
        .arg(&compressed)
        .arg(&restored)
        .status()
        .expect("run fpcc decompress");
    assert!(status.success());
    assert_eq!(std::fs::read(&restored).expect("read restored"), original);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cat_streams_decoded_bytes_and_ranges() {
    let dir = temp_dir("cat");
    let input = sample_file(&dir);
    let compressed = dir.join("out.fpc");
    assert!(fpcc()
        .args(["compress", "--algo", "spspeed"])
        .arg(&input)
        .arg(&compressed)
        .status()
        .expect("compress")
        .success());
    let original = std::fs::read(&input).expect("read input");

    // Without --range, cat reproduces the whole input on stdout.
    let output = fpcc().arg("cat").arg(&compressed).output().expect("cat");
    assert!(output.status.success());
    assert_eq!(output.stdout, original);

    // A mid-file range (chunk-unaligned on both ends) is byte-identical
    // to the same slice of the original.
    let output = fpcc()
        .args(["cat", "--range", "65519:4242"])
        .arg(&compressed)
        .output()
        .expect("cat range");
    assert!(output.status.success());
    assert_eq!(output.stdout, &original[65_519..65_519 + 4_242]);

    // Asking past the end is a usage error (exit 2), as is a bad spec.
    let output = fpcc()
        .args(["cat", "--range", "200000:1"])
        .arg(&compressed)
        .output()
        .expect("cat oob");
    assert_eq!(output.status.code(), Some(2), "out-of-bounds range exits 2");
    assert!(String::from_utf8_lossy(&output.stderr).contains("exceeds"));
    let output = fpcc()
        .args(["cat", "--range", "12"])
        .arg(&compressed)
        .output()
        .expect("cat bad spec");
    assert_eq!(output.status.code(), Some(2), "malformed --range exits 2");

    // Garbage input is a corrupt stream (exit 4), same as decompress.
    let bogus = dir.join("bogus.fpc");
    std::fs::write(&bogus, b"not a container").expect("write");
    let output = fpcc()
        .args(["cat", "--range", "0:1"])
        .arg(&bogus)
        .output()
        .expect("cat garbage");
    assert_eq!(output.status.code(), Some(4), "corrupt streams exit 4");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cat_range_touches_only_the_chunks_it_needs() {
    let dir = temp_dir("catmetrics");
    let input = sample_file(&dir);
    let compressed = dir.join("out.fpc");
    assert!(fpcc()
        .args(["compress", "--algo", "spspeed"])
        .arg(&input)
        .arg(&compressed)
        .status()
        .expect("compress")
        .success());
    // 200_000 bytes at the 16 KiB default chunk size is 13 chunks; one
    // byte from the middle must decode exactly one of them. The
    // container.range.* counters land in the --metrics json report on
    // stderr (only populated in metrics builds, hence the gate below).
    let output = fpcc()
        .args(["cat", "--range", "100000:1", "--metrics", "json"])
        .arg(&compressed)
        .output()
        .expect("cat range with metrics");
    assert!(output.status.success());
    assert_eq!(output.stdout.len(), 1);
    let report = String::from_utf8_lossy(&output.stderr);
    // Pulls a counter value out of the fpc-metrics-v1 JSON report
    // ({"name": N, "value": V} objects; zero-valued counters are omitted).
    fn counter(report: &str, name: &str) -> Option<u64> {
        let compact: String = report.chars().filter(|c| !c.is_whitespace()).collect();
        let tag = format!("\"name\":\"{name}\",\"value\":");
        let rest = &compact[compact.find(&tag)? + tag.len()..];
        let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
        digits.parse().ok()
    }
    if counter(&report, "container.range.requests") != Some(1) {
        return; // metrics feature compiled out of this binary
    }
    assert_eq!(
        counter(&report, "container.range.chunks.touched"),
        Some(1),
        "single-byte range must decode a single chunk: {report}"
    );
    assert_eq!(
        counter(&report, "container.range.chunks.total"),
        Some(13),
        "expected a 13-chunk container: {report}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn info_reports_algorithm() {
    let dir = temp_dir("info");
    let input = sample_file(&dir);
    let compressed = dir.join("out.fpc");
    assert!(fpcc()
        .args(["compress", "--algo", "spspeed"])
        .arg(&input)
        .arg(&compressed)
        .status()
        .expect("compress")
        .success());
    let output = fpcc().arg("info").arg(&compressed).output().expect("info");
    assert!(output.status.success());
    let text = String::from_utf8_lossy(&output.stdout);
    assert!(text.contains("SPspeed"), "{text}");
    assert!(text.contains("DIFFMS -> MPLG"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_algorithm_fails_cleanly() {
    let dir = temp_dir("badalgo");
    let input = sample_file(&dir);
    let out = dir.join("x.fpc");
    let output = fpcc()
        .args(["compress", "--algo", "bogus"])
        .arg(&input)
        .arg(&out)
        .output()
        .expect("run");
    assert_eq!(output.status.code(), Some(2), "usage errors exit 2");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown algorithm"), "{stderr}");
    // The message must list the valid vocabulary so the fix is one
    // copy-paste away.
    for choice in ["spspeed", "spratio", "dpspeed", "dpratio", "auto"] {
        assert!(stderr.contains(choice), "missing '{choice}' in: {stderr}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn auto_compresses_mixed_data_and_info_shows_picks() {
    let dir = temp_dir("auto");
    // A mixed stream: smooth f32 section, recurring f64 section, noise.
    let mut bytes: Vec<u8> = (0..40_000u32)
        .flat_map(|i| ((i as f32 * 1e-3).sin() * 7.0).to_bits().to_le_bytes())
        .collect();
    bytes.extend((0..10_000u64).flat_map(|i| (((i % 128) as f64).sqrt()).to_bits().to_le_bytes()));
    let mut x = 0xDEAD_BEEF_u64;
    for _ in 0..5_000 {
        x = x
            .wrapping_mul(0x5851_F42D_4C95_7F2D)
            .wrapping_add(0x14057B7EF767814F);
        bytes.extend_from_slice(&x.to_le_bytes());
    }
    let input = dir.join("mixed.bin");
    std::fs::write(&input, &bytes).expect("write input");
    let compressed = dir.join("mixed.fpc");
    let restored = dir.join("mixed.out");

    assert!(fpcc()
        .args(["compress", "--algo", "auto"])
        .arg(&input)
        .arg(&compressed)
        .status()
        .expect("compress auto")
        .success());
    assert!(fpcc()
        .arg("decompress")
        .arg(&compressed)
        .arg(&restored)
        .status()
        .expect("decompress")
        .success());
    assert_eq!(std::fs::read(&restored).expect("read restored"), bytes);

    let output = fpcc().arg("info").arg(&compressed).output().expect("info");
    assert!(output.status.success());
    let text = String::from_utf8_lossy(&output.stdout);
    assert!(text.contains("AUTO"), "{text}");
    assert!(text.contains("codec picks:"), "{text}");

    // Ranged cat dispatches per chunk from the codec table.
    let output = fpcc()
        .args(["cat", "--range", "150000:20000"])
        .arg(&compressed)
        .output()
        .expect("cat range");
    assert!(output.status.success());
    assert_eq!(output.stdout, &bytes[150_000..170_000]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_input_is_io_error() {
    let dir = temp_dir("missing");
    let output = fpcc()
        .args(["compress", "--algo", "spratio"])
        .arg(dir.join("does-not-exist.bin"))
        .arg(dir.join("out.fpc"))
        .output()
        .expect("run");
    assert_eq!(output.status.code(), Some(3), "I/O errors exit 3");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn decompress_rejects_garbage() {
    let dir = temp_dir("garbage");
    let bogus = dir.join("bogus.fpc");
    std::fs::write(&bogus, b"this is not a stream").expect("write");
    let output = fpcc()
        .arg("decompress")
        .arg(&bogus)
        .arg(dir.join("out.bin"))
        .output()
        .expect("run");
    assert_eq!(output.status.code(), Some(4), "corrupt streams exit 4");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn anatomy_prints_stage_breakdown() {
    let dir = temp_dir("anatomy");
    let input = sample_file(&dir);
    let output = fpcc()
        .args(["anatomy", "--algo", "spratio"])
        .arg(&input)
        .output()
        .expect("run anatomy");
    assert!(output.status.success());
    let text = String::from_utf8_lossy(&output.stdout);
    for stage in ["DIFFMS", "BIT", "RZE"] {
        assert!(text.contains(stage), "missing {stage} in {text}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn no_args_prints_usage() {
    let output = fpcc().output().expect("run");
    assert_eq!(output.status.code(), Some(2), "usage errors exit 2");
    assert!(String::from_utf8_lossy(&output.stderr).contains("usage"));
}

#[test]
fn outputs_are_written_atomically_with_no_temp_debris() {
    let dir = temp_dir("atomic");
    let input = sample_file(&dir);
    let compressed = dir.join("out.fpc");
    assert!(fpcc()
        .args(["compress", "--algo", "spspeed"])
        .arg(&input)
        .arg(&compressed)
        .status()
        .expect("compress")
        .success());
    assert!(compressed.exists());
    // The same-directory temp used for the atomic rename must be gone.
    let debris: Vec<String> = std::fs::read_dir(&dir)
        .expect("read dir")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|name| name.contains("fpcc-tmp"))
        .collect();
    assert!(debris.is_empty(), "temp files left behind: {debris:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fpc_faults_env_write_fault_fails_clean_without_partial_output() {
    if !fpc_faults::ENABLED {
        return; // hooks compiled out of the fpcc binary under test too
    }
    let dir = temp_dir("envfault");
    let input = sample_file(&dir);
    let out = dir.join("out.fpc");
    let output = fpcc()
        .env("FPC_FAULTS", "file-write=1:5")
        .args(["compress", "--algo", "spspeed"])
        .arg(&input)
        .arg(&out)
        .output()
        .expect("run");
    assert_eq!(
        output.status.code(),
        Some(3),
        "injected write fault exits 3"
    );
    assert!(!out.exists(), "no partial output may appear on failure");
    let debris: Vec<String> = std::fs::read_dir(&dir)
        .expect("read dir")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|name| name.contains("fpcc-tmp"))
        .collect();
    assert!(debris.is_empty(), "temp files left behind: {debris:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fpc_faults_env_chunk_damage_is_caught_by_verify() {
    if !fpc_faults::ENABLED {
        return;
    }
    let dir = temp_dir("envdamage");
    let input = sample_file(&dir);
    let out = dir.join("damaged.fpc");
    // Certainty-one bit-rot on every chunk body, injected after each
    // checksum is computed: compression itself succeeds...
    assert!(fpcc()
        .env("FPC_FAULTS", "chunk-damage=1:3")
        .args(["compress", "--algo", "spspeed"])
        .arg(&input)
        .arg(&out)
        .status()
        .expect("compress")
        .success());
    // ...and the unarmed verify audit must flag every chunk (exit 4).
    let output = fpcc().arg("verify").arg(&out).output().expect("verify");
    assert_eq!(output.status.code(), Some(4), "damage must exit 4");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn invalid_fpc_faults_env_is_ignored_with_a_warning() {
    let dir = temp_dir("envbad");
    let input = sample_file(&dir);
    let out = dir.join("out.fpc");
    let output = fpcc()
        .env("FPC_FAULTS", "not a valid spec")
        .args(["compress", "--algo", "spspeed"])
        .arg(&input)
        .arg(&out)
        .output()
        .expect("run");
    // A bad spec must never take the tool down — it is ignored (with a
    // warning when the hooks are compiled in).
    assert!(output.status.success(), "invalid spec must not break fpcc");
    assert!(out.exists());
    if fpc_faults::ENABLED {
        assert!(
            String::from_utf8_lossy(&output.stderr).contains("FPC_FAULTS"),
            "expected a warning naming FPC_FAULTS"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn gen_writes_datasets() {
    let dir = temp_dir("gen");
    let out = dir.join("sets");
    let status = fpcc()
        .args(["gen", "--precision", "dp", "--scale", "small", "--out"])
        .arg(&out)
        .status()
        .expect("run gen");
    assert!(status.success());
    let entries: Vec<_> = std::fs::read_dir(&out).expect("read dir").collect();
    assert!(entries.len() >= 10, "only {} dataset files", entries.len());
    std::fs::remove_dir_all(&dir).ok();
}
