//! `fpcc` — command-line front end for the FPcompress algorithms.
//!
//! ```text
//! fpcc compress   --algo spratio [--threads N] <input> <output>
//! fpcc decompress [--threads N] <input> <output>
//! fpcc cat        [--range OFFSET:LEN] [--threads N] <file>  # decoded bytes to stdout
//! fpcc info       <file>
//! fpcc verify     <file>                  # checksum audit, no decompression
//! fpcc survey     --width 4|8 [--threads N] <file>  # run every applicable codec
//! fpcc gen        --precision sp|dp --out DIR   # synthetic datasets + manifest
//! fpcc anatomy    --algo spratio <file>    # per-stage volume breakdown
//! fpcc stats      <report.json>            # pretty-print a metrics/bench JSON
//! fpcc serve      [--addr A] [--threads N] [--max-conns M]  # fpc-wire-v1 server
//! fpcc remote     <compress|decompress|verify|range|ping> --addr A ...  # client
//! ```
//!
//! Every command accepts `--metrics json|text`: after the command finishes,
//! a per-stage instrumentation report is written to **stderr** (stdout stays
//! reserved for the command's own output). The report is only populated in
//! binaries built with `--features metrics`; without the feature the probes
//! are compiled out and the report says so.
//!
//! # Exit codes
//!
//! Failure classes get distinct exit codes so scripts and CI can react to
//! them: **2** usage error (bad flags/arguments), **3** I/O or transport
//! failure (filesystem, sockets, server busy/timeout), **4** corrupt or
//! damaged stream (container parse/checksum/decode failures, roundtrip
//! mismatches). 0 is success.

use fpc_baselines::Meta;
use fpc_core::{Algorithm, Compressor};
use fpc_serve::{ClientError, ErrorCode, ResilientClient, RetryPolicy, ServeConfig, Server};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

/// Exit code for usage errors (unknown command, bad flag, missing operand).
const EXIT_USAGE: u8 = 2;
/// Exit code for I/O and transport failures.
const EXIT_IO: u8 = 3;
/// Exit code for corrupt/damaged streams.
const EXIT_CORRUPT: u8 = 4;

/// A classified command failure: the message goes to stderr, the code
/// becomes the process exit status.
struct CliError {
    code: u8,
    message: String,
}

impl CliError {
    fn usage(message: impl Into<String>) -> CliError {
        CliError {
            code: EXIT_USAGE,
            message: message.into(),
        }
    }

    fn io(message: impl Into<String>) -> CliError {
        CliError {
            code: EXIT_IO,
            message: message.into(),
        }
    }

    fn corrupt(message: impl Into<String>) -> CliError {
        CliError {
            code: EXIT_CORRUPT,
            message: message.into(),
        }
    }
}

/// Classifies a remote-operation failure: server-reported stream damage is
/// "corrupt" (4); everything else (transport, protocol, saturation,
/// timeouts) is I/O (3).
impl From<ClientError> for CliError {
    fn from(e: ClientError) -> CliError {
        match &e {
            ClientError::Remote(we) if we.code == ErrorCode::CorruptStream => {
                CliError::corrupt(e.to_string())
            }
            ClientError::Remote(we) if we.code == ErrorCode::UnknownAlgorithm => {
                CliError::usage(e.to_string())
            }
            // An out-of-bounds range is the caller asking for bytes that
            // don't exist — a usage error, same as the local `cat --range`.
            ClientError::Remote(we) if we.code == ErrorCode::RangeOutOfBounds => {
                CliError::usage(e.to_string())
            }
            _ => CliError::io(e.to_string()),
        }
    }
}

type CliResult = Result<(), CliError>;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let metrics_fmt = match parse_metrics_flag(&args) {
        Ok(fmt) => fmt,
        Err(msg) => {
            eprintln!("fpcc: {msg}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let result = match args.first().map(String::as_str) {
        Some("compress") => cmd_compress(&args[1..]),
        Some("decompress") => cmd_decompress(&args[1..]),
        Some("cat") => cmd_cat(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("survey") => cmd_survey(&args[1..]),
        Some("gen") => cmd_gen(&args[1..]),
        Some("anatomy") => cmd_anatomy(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("remote") => cmd_remote(&args[1..]),
        _ => {
            eprintln!(
                "usage: fpcc <compress|decompress|cat|info|verify|survey|gen|anatomy|stats|serve|remote> ...\n\
                 \n\
                 compress   --algo <spspeed|spratio|dpspeed|dpratio|auto> [--threads N] <in> <out>\n\
                 decompress [--threads N] <in> <out>\n\
                 cat        [--range OFFSET:LEN] [--threads N] <file>   # decoded bytes to stdout\n\
                 info       <file>\n\
                 verify     <file>   # per-chunk checksum audit, exit 4 on damage\n\
                 survey     --width <4|8> [--threads N] <file>\n\
                 gen        --precision <sp|dp> --out <dir>\n\
                 anatomy    --algo <name> <file>   # per-stage volume breakdown\n\
                 stats      <report.json>   # pretty-print a metrics/bench JSON report\n\
                 serve      [--addr HOST:PORT] [--threads N] [--max-conns M] [--max-frame BYTES]\n\
                 \u{20}          [--timeout-secs S] [--idle-secs S] [--progress-secs S] [--shed-inflight BYTES]\n\
                 \u{20}          [--cache-bytes BYTES]   # content-addressed hot-chunk cache (0 = off)\n\
                 remote     compress   --addr HOST:PORT --algo <name> <in> <out>\n\
                 remote     decompress --addr HOST:PORT <in> <out>\n\
                 remote     verify     --addr HOST:PORT <file>\n\
                 remote     range      --addr HOST:PORT --range OFFSET:LEN <file>   # to stdout\n\
                 remote     ping       --addr HOST:PORT\n\
                 \u{20}          remote flags: [--timeout-secs S] [--retries N] [--deadline-secs S]\n\
                 \n\
                 global: --metrics <json|text>   # instrumentation report on stderr\n\
                         (populated only in builds with --features metrics)\n\
                 exit codes: 2 usage, 3 I/O or transport, 4 corrupt stream"
            );
            return ExitCode::from(EXIT_USAGE);
        }
    };
    emit_metrics(metrics_fmt);
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fpcc: {}", e.message);
            ExitCode::from(e.code)
        }
    }
}

/// Output format for the shared `--metrics` flag.
#[derive(Clone, Copy, PartialEq)]
enum MetricsFormat {
    Off,
    Json,
    Text,
}

fn parse_metrics_flag(args: &[String]) -> Result<MetricsFormat, String> {
    match flag_value(args, "--metrics") {
        None => Ok(MetricsFormat::Off),
        Some("json") => Ok(MetricsFormat::Json),
        Some("text") => Ok(MetricsFormat::Text),
        Some(other) => Err(format!("--metrics must be 'json' or 'text', got '{other}'")),
    }
}

/// Writes the end-of-run instrumentation snapshot to stderr.
fn emit_metrics(fmt: MetricsFormat) {
    if fmt == MetricsFormat::Off {
        return;
    }
    let report = fpc_metrics::snapshot();
    match fmt {
        MetricsFormat::Json => eprint!("{}", report.to_value().to_json_pretty()),
        MetricsFormat::Text => eprint!("{}", report.render_text()),
        MetricsFormat::Off => unreachable!(),
    }
}

fn cmd_stats(args: &[String]) -> CliResult {
    let pos = positional(args);
    let [input] = pos.as_slice() else {
        return Err(CliError::usage("expected <report.json>"));
    };
    let text = std::fs::read_to_string(input)
        .map_err(|e| CliError::io(format!("reading {input}: {e}")))?;
    let value = fpc_metrics::json::Value::parse(&text)
        .map_err(|e| CliError::corrupt(format!("parsing {input}: {e}")))?;
    let rendered = fpc_metrics::report::render_value(&value)
        .map_err(|e| CliError::corrupt(format!("rendering {input}: {e}")))?;
    print!("{rendered}");
    Ok(())
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn positional(args: &[String]) -> Vec<&str> {
    let mut out = Vec::new();
    let mut skip = false;
    for (i, a) in args.iter().enumerate() {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            // All our flags take a value.
            skip = args.get(i + 1).is_some();
            continue;
        }
        out.push(a.as_str());
    }
    out
}

/// Parses the shared `--threads N` flag (0 = all cores, the default).
fn parse_threads(args: &[String]) -> Result<usize, CliError> {
    flag_value(args, "--threads")
        .map(|t| {
            t.parse()
                .map_err(|_| CliError::usage("invalid --threads".to_string()))
        })
        .transpose()
        .map(|t| t.unwrap_or(0))
}

/// The `--algo` vocabulary, for error messages and usage text.
const ALGO_CHOICES: &str = "spspeed, spratio, dpspeed, dpratio, auto";

fn parse_algo(name: &str) -> Result<Algorithm, CliError> {
    match name.to_ascii_lowercase().as_str() {
        "spspeed" => Ok(Algorithm::SpSpeed),
        "spratio" => Ok(Algorithm::SpRatio),
        "dpspeed" => Ok(Algorithm::DpSpeed),
        "dpratio" => Ok(Algorithm::DpRatio),
        "auto" => Ok(Algorithm::Auto),
        other => Err(CliError::usage(format!(
            "unknown algorithm '{other}' (valid choices: {ALGO_CHOICES})"
        ))),
    }
}

fn read_file(path: &str) -> Result<Vec<u8>, CliError> {
    if let Some(e) = fpc_faults::file_fault(fpc_faults::FaultKind::FileRead) {
        return Err(CliError::io(format!("reading {path}: {e}")));
    }
    std::fs::read(path).map_err(|e| CliError::io(format!("reading {path}: {e}")))
}

/// Crash-safe output: writes to a same-directory temp file and renames it
/// over `path` only once every byte landed. An interrupt, crash, or
/// injected I/O error mid-write can leave a stray temp file, but never a
/// truncated artifact at the destination (rename is atomic on POSIX when
/// source and target share a filesystem — hence same-directory).
fn write_file(path: &str, bytes: &[u8]) -> CliResult {
    if let Some(e) = fpc_faults::file_fault(fpc_faults::FaultKind::FileWrite) {
        return Err(CliError::io(format!("writing {path}: {e}")));
    }
    let target = std::path::Path::new(path);
    let dir = target.parent().filter(|d| !d.as_os_str().is_empty());
    let name = target
        .file_name()
        .ok_or_else(|| CliError::usage(format!("'{path}' is not a file path")))?;
    let tmp_name = format!(
        ".{}.fpcc-tmp.{}",
        name.to_string_lossy(),
        std::process::id()
    );
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => PathBuf::from(&tmp_name),
    };
    let result = std::fs::write(&tmp, bytes).and_then(|()| std::fs::rename(&tmp, target));
    result.map_err(|e| {
        // Best-effort cleanup; the destination was never touched.
        let _ = std::fs::remove_file(&tmp);
        CliError::io(format!("writing {path}: {e}"))
    })
}

fn cmd_compress(args: &[String]) -> CliResult {
    let algo = parse_algo(
        flag_value(args, "--algo").ok_or_else(|| CliError::usage("--algo is required"))?,
    )?;
    let threads = parse_threads(args)?;
    let pos = positional(args);
    let [input, output] = pos.as_slice() else {
        return Err(CliError::usage("expected <input> <output>"));
    };
    let data = read_file(input)?;
    let start = std::time::Instant::now();
    let stream = Compressor::new(algo)
        .with_threads(threads)
        .compress_bytes(&data);
    let dt = start.elapsed().as_secs_f64();
    write_file(output, &stream)?;
    println!(
        "{algo}: {} -> {} bytes (ratio {:.3}) in {:.3}s ({:.3} GB/s)",
        data.len(),
        stream.len(),
        data.len() as f64 / stream.len() as f64,
        dt,
        data.len() as f64 / 1e9 / dt
    );
    Ok(())
}

fn cmd_decompress(args: &[String]) -> CliResult {
    let threads = parse_threads(args)?;
    let pos = positional(args);
    let [input, output] = pos.as_slice() else {
        return Err(CliError::usage("expected <input> <output>"));
    };
    let stream = read_file(input)?;
    let start = std::time::Instant::now();
    let data = fpc_core::decompress_bytes_with(&stream, threads)
        .map_err(|e| CliError::corrupt(e.to_string()))?;
    let dt = start.elapsed().as_secs_f64();
    write_file(output, &data)?;
    println!(
        "{} -> {} bytes in {:.3}s ({:.3} GB/s)",
        stream.len(),
        data.len(),
        dt,
        data.len() as f64 / 1e9 / dt
    );
    Ok(())
}

/// Parses the shared `--range OFFSET:LEN` flag (decimal byte coordinates
/// into the *original* data; `None` when the flag is absent).
fn parse_range(args: &[String]) -> Result<Option<(u64, u64)>, CliError> {
    let Some(spec) = flag_value(args, "--range") else {
        return Ok(None);
    };
    let err = || {
        CliError::usage(format!(
            "--range must be OFFSET:LEN in decimal bytes, got '{spec}'"
        ))
    };
    let (offset, len) = spec.split_once(':').ok_or_else(err)?;
    let offset = offset.parse().map_err(|_| err())?;
    let len = len.parse().map_err(|_| err())?;
    Ok(Some((offset, len)))
}

/// Maps a local decode failure to the exit taxonomy: asking for bytes the
/// container never held is a usage error (2); everything else on the
/// decode path means the stream is damaged (4).
fn classify_decode_error(e: fpc_core::Error) -> CliError {
    match e {
        fpc_core::Error::RangeOutOfBounds { .. } => CliError::usage(e.to_string()),
        e => CliError::corrupt(e.to_string()),
    }
}

fn cmd_cat(args: &[String]) -> CliResult {
    let threads = parse_threads(args)?;
    let range = parse_range(args)?;
    let pos = positional(args);
    let [input] = pos.as_slice() else {
        return Err(CliError::usage("expected <file>"));
    };
    let stream = read_file(input)?;
    // With --range only the chunks overlapping the request are decoded
    // (see fpc_container::Region); without it this is a full decode.
    let data = match range {
        Some((offset, len)) => fpc_core::decompress_range_with(&stream, offset, len, threads)
            .map_err(classify_decode_error)?,
        None => fpc_core::decompress_bytes_with(&stream, threads).map_err(classify_decode_error)?,
    };
    use std::io::Write;
    std::io::stdout()
        .write_all(&data)
        .map_err(|e| CliError::io(format!("writing stdout: {e}")))?;
    Ok(())
}

fn cmd_info(args: &[String]) -> CliResult {
    let pos = positional(args);
    let [input] = pos.as_slice() else {
        return Err(CliError::usage("expected <file>"));
    };
    let stream = read_file(input)?;
    let info = fpc_core::info(&stream).map_err(|e| CliError::corrupt(e.to_string()))?;
    println!("algorithm:      {}", info.algorithm);
    println!("stages:         {}", info.algorithm.stages().join(" -> "));
    println!("original bytes: {}", info.original_len);
    println!("stream bytes:   {}", info.compressed_len);
    println!("ratio:          {:.4}", info.ratio());
    println!(
        "chunks:         {} ({} stored raw)",
        info.chunks, info.raw_chunks
    );
    if !info.codec_picks.is_empty() {
        let picks: Vec<String> = info
            .codec_picks
            .iter()
            .map(|&(id, n)| {
                let name = Algorithm::from_id(id)
                    .map(|a| a.to_string())
                    .unwrap_or_else(|_| format!("codec#{id}"));
                format!("{name}={n}")
            })
            .collect();
        println!("codec picks:    {}", picks.join(" "));
    }
    Ok(())
}

fn cmd_verify(args: &[String]) -> CliResult {
    let pos = positional(args);
    let [input] = pos.as_slice() else {
        return Err(CliError::usage("expected <file>"));
    };
    let stream = read_file(input)?;
    // verify() walks the chunk table and re-hashes each compressed chunk in
    // place — nothing is decompressed or materialized.
    let (header, report) =
        fpc_container::verify(&stream).map_err(|e| CliError::corrupt(e.to_string()))?;
    println!("format version: {}", header.version);
    println!("chunks:         {}", report.chunks);
    if !report.checksummed {
        println!("checksums:      none (v1 stream) — integrity cannot be audited");
        return Ok(());
    }
    if report.is_clean() {
        println!("checksums:      all {} chunk(s) verified OK", report.chunks);
        return Ok(());
    }
    for d in &report.damaged {
        println!(
            "DAMAGED chunk {:>6} at byte offset {:>10}: {}",
            d.chunk, d.offset, d.error
        );
    }
    Err(CliError::corrupt(format!(
        "{} of {} chunk(s) damaged",
        report.damaged.len(),
        report.chunks
    )))
}

fn cmd_survey(args: &[String]) -> CliResult {
    let width: u8 = flag_value(args, "--width")
        .unwrap_or("4")
        .parse()
        .map_err(|_| CliError::usage("bad --width"))?;
    if width != 4 && width != 8 {
        return Err(CliError::usage("--width must be 4 or 8"));
    }
    let threads = parse_threads(args)?;
    let pos = positional(args);
    let [input] = pos.as_slice() else {
        return Err(CliError::usage("expected <file>"));
    };
    let data = read_file(input)?;
    let meta = Meta {
        element_width: width,
        dims: [1, 1, data.len() / usize::from(width)],
    };
    println!("| codec | ratio | compress GB/s | decompress GB/s |");
    println!("|---|---|---|---|");
    // Ours first.
    let our_algos: &[Algorithm] = if width == 4 {
        &[Algorithm::SpSpeed, Algorithm::SpRatio]
    } else {
        &[Algorithm::DpSpeed, Algorithm::DpRatio]
    };
    for &algo in our_algos {
        let compressor = Compressor::new(algo).with_threads(threads);
        let t0 = std::time::Instant::now();
        let stream = compressor.compress_bytes(&data);
        let ct = t0.elapsed().as_secs_f64();
        let t1 = std::time::Instant::now();
        let back = fpc_core::decompress_bytes_with(&stream, threads)
            .map_err(|e| CliError::corrupt(e.to_string()))?;
        let dt = t1.elapsed().as_secs_f64();
        if back != data {
            return Err(CliError::corrupt(format!("{algo} roundtrip mismatch")));
        }
        print_survey_row(&algo.to_string(), &data, &stream, ct, dt);
    }
    for codec in fpc_baselines::roster() {
        if !codec.datatype().supports_width(width) {
            continue;
        }
        let t0 = std::time::Instant::now();
        let stream = codec.compress(&data, &meta);
        let ct = t0.elapsed().as_secs_f64();
        let t1 = std::time::Instant::now();
        let back = codec
            .decompress(&stream, &meta)
            .map_err(|e| CliError::corrupt(e.to_string()))?;
        let dt = t1.elapsed().as_secs_f64();
        if back != data {
            return Err(CliError::corrupt(format!(
                "{} roundtrip mismatch",
                codec.name()
            )));
        }
        print_survey_row(codec.name(), &data, &stream, ct, dt);
    }
    Ok(())
}

fn print_survey_row(name: &str, data: &[u8], stream: &[u8], ct: f64, dt: f64) {
    println!(
        "| {name} | {:.3} | {:.3} | {:.3} |",
        data.len() as f64 / stream.len() as f64,
        data.len() as f64 / 1e9 / ct,
        data.len() as f64 / 1e9 / dt
    );
}

fn cmd_anatomy(args: &[String]) -> CliResult {
    let algo = parse_algo(
        flag_value(args, "--algo").ok_or_else(|| CliError::usage("--algo is required"))?,
    )?;
    let pos = positional(args);
    let [input] = pos.as_slice() else {
        return Err(CliError::usage("expected <file>"));
    };
    let data = read_file(input)?;
    print!("{}", fpc_core::analyze_bytes(&data, algo));
    Ok(())
}

fn cmd_gen(args: &[String]) -> CliResult {
    let precision = flag_value(args, "--precision").unwrap_or("sp");
    let out_dir = PathBuf::from(flag_value(args, "--out").unwrap_or("datasets"));
    let scale = match flag_value(args, "--scale").unwrap_or("small") {
        "small" => fpc_datagen::Scale::Small,
        "full" => fpc_datagen::Scale::Full,
        other => return Err(CliError::usage(format!("unknown scale '{other}'"))),
    };
    match precision {
        "sp" => {
            let suites = fpc_datagen::single_precision_suites(scale);
            fpc_datagen::external::write_manifest_f32(&out_dir, &suites)
                .map_err(|e| CliError::io(e.to_string()))?;
        }
        "dp" => {
            let suites = fpc_datagen::double_precision_suites(scale);
            fpc_datagen::external::write_manifest_f64(&out_dir, &suites)
                .map_err(|e| CliError::io(e.to_string()))?;
        }
        other => return Err(CliError::usage(format!("unknown precision '{other}'"))),
    }
    println!(
        "datasets and manifest written to {} (harness: --data {})",
        out_dir.display(),
        out_dir.display()
    );
    Ok(())
}

/// Default service address for `fpcc serve` / `fpcc remote`.
const DEFAULT_ADDR: &str = "127.0.0.1:9463";

fn cmd_serve(args: &[String]) -> CliResult {
    let addr = flag_value(args, "--addr").unwrap_or(DEFAULT_ADDR);
    let threads = parse_threads(args)?;
    let parse_num = |flag: &str| -> Result<Option<u64>, CliError> {
        flag_value(args, flag)
            .map(|v| {
                v.parse::<u64>()
                    .map_err(|_| CliError::usage(format!("invalid {flag}")))
            })
            .transpose()
    };
    let mut config = ServeConfig {
        threads,
        ..ServeConfig::default()
    };
    if let Some(m) = parse_num("--max-conns")? {
        config.max_conns = m as usize;
    }
    if let Some(f) = parse_num("--max-frame")? {
        let f = u32::try_from(f).map_err(|_| CliError::usage("--max-frame too large"))?;
        if f == 0 {
            return Err(CliError::usage("--max-frame must be positive"));
        }
        config.max_frame = f;
    }
    if let Some(r) = parse_num("--max-request")? {
        config.max_request = r;
    }
    if let Some(t) = parse_num("--timeout-secs")? {
        let t = (t > 0).then(|| Duration::from_secs(t));
        config.read_timeout = t;
        config.write_timeout = t;
    }
    if let Some(t) = parse_num("--idle-secs")? {
        config.idle_timeout = (t > 0).then(|| Duration::from_secs(t));
    }
    if let Some(t) = parse_num("--progress-secs")? {
        config.progress_deadline = (t > 0).then(|| Duration::from_secs(t));
    }
    if let Some(s) = parse_num("--shed-inflight")? {
        config.shed_inflight = s;
    }
    if let Some(c) = parse_num("--cache-bytes")? {
        config.cache_bytes = c;
    }
    let conns = config.effective_conns();
    let server =
        Server::bind(addr, config).map_err(|e| CliError::io(format!("binding {addr}: {e}")))?;
    let local = server
        .local_addr()
        .map_err(|e| CliError::io(e.to_string()))?;
    println!(
        "fpcc serve: listening on {local} ({conns} connection workers); SIGINT/SIGTERM for graceful shutdown"
    );
    // Bridge SIGINT/SIGTERM to the server's shutdown flag: the handler
    // itself only stores an atomic; this watcher thread does the
    // cross-Arc plumbing.
    let sig = fpc_serve::shutdown_signal_flag();
    let shutdown = server.shutdown_flag();
    std::thread::spawn(move || loop {
        if sig.load(std::sync::atomic::Ordering::SeqCst) {
            shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    });
    server.run().map_err(|e| CliError::io(e.to_string()))?;
    println!("fpcc serve: drained and stopped");
    Ok(())
}

fn connect(args: &[String]) -> Result<ResilientClient, CliError> {
    let addr = flag_value(args, "--addr").unwrap_or(DEFAULT_ADDR);
    let timeout = match flag_value(args, "--timeout-secs") {
        None => Some(Duration::from_secs(30)),
        Some(v) => {
            let secs: u64 = v
                .parse()
                .map_err(|_| CliError::usage("invalid --timeout-secs"))?;
            (secs > 0).then(|| Duration::from_secs(secs))
        }
    };
    let mut policy = RetryPolicy::default();
    if let Some(v) = flag_value(args, "--retries") {
        let retries: u32 = v
            .parse()
            .map_err(|_| CliError::usage("invalid --retries"))?;
        policy.attempts = retries + 1;
    }
    if let Some(v) = flag_value(args, "--deadline-secs") {
        let secs: u64 = v
            .parse()
            .map_err(|_| CliError::usage("invalid --deadline-secs"))?;
        policy.deadline = (secs > 0).then(|| Duration::from_secs(secs));
    }
    ResilientClient::connect(addr, timeout, policy)
        .map_err(|e| CliError::io(format!("connecting {addr}: {e}")))
}

fn cmd_remote(args: &[String]) -> CliResult {
    match args.first().map(String::as_str) {
        Some("compress") => cmd_remote_compress(&args[1..]),
        Some("decompress") => cmd_remote_decompress(&args[1..]),
        Some("verify") => cmd_remote_verify(&args[1..]),
        Some("range") => cmd_remote_range(&args[1..]),
        Some("ping") => cmd_remote_ping(&args[1..]),
        _ => Err(CliError::usage(
            "expected remote <compress|decompress|verify|range|ping> --addr HOST:PORT ...",
        )),
    }
}

fn cmd_remote_compress(args: &[String]) -> CliResult {
    let algo = parse_algo(
        flag_value(args, "--algo").ok_or_else(|| CliError::usage("--algo is required"))?,
    )?;
    let pos = positional(args);
    let [input, output] = pos.as_slice() else {
        return Err(CliError::usage("expected <input> <output>"));
    };
    let data = read_file(input)?;
    let mut client = connect(args)?;
    let start = std::time::Instant::now();
    let stream = client.compress(algo, &data)?;
    let dt = start.elapsed().as_secs_f64();
    write_file(output, &stream)?;
    println!(
        "{algo} (remote): {} -> {} bytes (ratio {:.3}) in {:.3}s ({:.3} GB/s incl. wire)",
        data.len(),
        stream.len(),
        data.len() as f64 / stream.len() as f64,
        dt,
        data.len() as f64 / 1e9 / dt
    );
    Ok(())
}

fn cmd_remote_decompress(args: &[String]) -> CliResult {
    let pos = positional(args);
    let [input, output] = pos.as_slice() else {
        return Err(CliError::usage("expected <input> <output>"));
    };
    let stream = read_file(input)?;
    let mut client = connect(args)?;
    let start = std::time::Instant::now();
    let data = client.decompress(&stream)?;
    let dt = start.elapsed().as_secs_f64();
    write_file(output, &data)?;
    println!(
        "remote: {} -> {} bytes in {:.3}s ({:.3} GB/s incl. wire)",
        stream.len(),
        data.len(),
        dt,
        data.len() as f64 / 1e9 / dt
    );
    Ok(())
}

fn cmd_remote_verify(args: &[String]) -> CliResult {
    let pos = positional(args);
    let [input] = pos.as_slice() else {
        return Err(CliError::usage("expected <file>"));
    };
    let stream = read_file(input)?;
    let mut client = connect(args)?;
    let report = client.verify(&stream)?;
    println!("format version: {}", report.format_version);
    println!("chunks:         {}", report.chunks);
    if !report.checksummed {
        println!("checksums:      none (v1 stream) — integrity cannot be audited");
        return Ok(());
    }
    if report.is_clean() {
        println!("checksums:      all {} chunk(s) verified OK", report.chunks);
        return Ok(());
    }
    for &(chunk, offset) in &report.damaged {
        println!("DAMAGED chunk {chunk:>6} at byte offset {offset:>10}");
    }
    Err(CliError::corrupt(format!(
        "{} of {} chunk(s) damaged",
        report.damaged_count, report.chunks
    )))
}

fn cmd_remote_range(args: &[String]) -> CliResult {
    let (offset, len) =
        parse_range(args)?.ok_or_else(|| CliError::usage("--range OFFSET:LEN is required"))?;
    let pos = positional(args);
    let [input] = pos.as_slice() else {
        return Err(CliError::usage("expected <file>"));
    };
    let stream = read_file(input)?;
    let mut client = connect(args)?;
    let data = client.range(&stream, offset, len)?;
    use std::io::Write;
    std::io::stdout()
        .write_all(&data)
        .map_err(|e| CliError::io(format!("writing stdout: {e}")))?;
    Ok(())
}

fn cmd_remote_ping(args: &[String]) -> CliResult {
    let mut client = connect(args)?;
    let start = std::time::Instant::now();
    client.ping(b"fpcc")?;
    println!("pong from {} in {:.1?}", client.addr(), start.elapsed());
    Ok(())
}
