//! `fpcc` — command-line front end for the FPcompress algorithms.
//!
//! ```text
//! fpcc compress   --algo spratio [--threads N] <input> <output>
//! fpcc decompress [--threads N] <input> <output>
//! fpcc info       <file>
//! fpcc verify     <file>                  # checksum audit, no decompression
//! fpcc survey     --width 4|8 [--threads N] <file>  # run every applicable codec
//! fpcc gen        --precision sp|dp --out DIR   # synthetic datasets + manifest
//! fpcc anatomy    --algo spratio <file>    # per-stage volume breakdown
//! fpcc stats      <report.json>            # pretty-print a metrics/bench JSON
//! ```
//!
//! Every command accepts `--metrics json|text`: after the command finishes,
//! a per-stage instrumentation report is written to **stderr** (stdout stays
//! reserved for the command's own output). The report is only populated in
//! binaries built with `--features metrics`; without the feature the probes
//! are compiled out and the report says so.

use fpc_baselines::Meta;
use fpc_core::{Algorithm, Compressor};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let metrics_fmt = match parse_metrics_flag(&args) {
        Ok(fmt) => fmt,
        Err(msg) => {
            eprintln!("fpcc: {msg}");
            return ExitCode::from(2);
        }
    };
    let result = match args.first().map(String::as_str) {
        Some("compress") => cmd_compress(&args[1..]),
        Some("decompress") => cmd_decompress(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("survey") => cmd_survey(&args[1..]),
        Some("gen") => cmd_gen(&args[1..]),
        Some("anatomy") => cmd_anatomy(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        _ => {
            eprintln!(
                "usage: fpcc <compress|decompress|info|verify|survey|gen|anatomy|stats> ...\n\
                 \n\
                 compress   --algo <spspeed|spratio|dpspeed|dpratio> [--threads N] <in> <out>\n\
                 decompress [--threads N] <in> <out>\n\
                 info       <file>\n\
                 verify     <file>   # per-chunk checksum audit, exit 1 on damage\n\
                 survey     --width <4|8> [--threads N] <file>\n\
                 gen        --precision <sp|dp> --out <dir>\n\
                 anatomy    --algo <name> <file>   # per-stage volume breakdown\n\
                 stats      <report.json>   # pretty-print a metrics/bench JSON report\n\
                 \n\
                 global: --metrics <json|text>   # instrumentation report on stderr\n\
                         (populated only in builds with --features metrics)"
            );
            return ExitCode::from(2);
        }
    };
    emit_metrics(metrics_fmt);
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("fpcc: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Output format for the shared `--metrics` flag.
#[derive(Clone, Copy, PartialEq)]
enum MetricsFormat {
    Off,
    Json,
    Text,
}

fn parse_metrics_flag(args: &[String]) -> Result<MetricsFormat, String> {
    match flag_value(args, "--metrics") {
        None => Ok(MetricsFormat::Off),
        Some("json") => Ok(MetricsFormat::Json),
        Some("text") => Ok(MetricsFormat::Text),
        Some(other) => Err(format!("--metrics must be 'json' or 'text', got '{other}'")),
    }
}

/// Writes the end-of-run instrumentation snapshot to stderr.
fn emit_metrics(fmt: MetricsFormat) {
    if fmt == MetricsFormat::Off {
        return;
    }
    let report = fpc_metrics::snapshot();
    match fmt {
        MetricsFormat::Json => eprint!("{}", report.to_value().to_json_pretty()),
        MetricsFormat::Text => eprint!("{}", report.render_text()),
        MetricsFormat::Off => unreachable!(),
    }
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let [input] = pos.as_slice() else {
        return Err("expected <report.json>".into());
    };
    let text = std::fs::read_to_string(input).map_err(|e| format!("reading {input}: {e}"))?;
    let value =
        fpc_metrics::json::Value::parse(&text).map_err(|e| format!("parsing {input}: {e}"))?;
    let rendered =
        fpc_metrics::report::render_value(&value).map_err(|e| format!("rendering {input}: {e}"))?;
    print!("{rendered}");
    Ok(())
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn positional(args: &[String]) -> Vec<&str> {
    let mut out = Vec::new();
    let mut skip = false;
    for (i, a) in args.iter().enumerate() {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            // All our flags take a value.
            skip = args.get(i + 1).is_some();
            continue;
        }
        out.push(a.as_str());
    }
    out
}

/// Parses the shared `--threads N` flag (0 = all cores, the default).
fn parse_threads(args: &[String]) -> Result<usize, String> {
    flag_value(args, "--threads")
        .map(|t| t.parse().map_err(|_| "invalid --threads".to_string()))
        .transpose()
        .map(|t| t.unwrap_or(0))
}

fn parse_algo(name: &str) -> Result<Algorithm, String> {
    match name.to_ascii_lowercase().as_str() {
        "spspeed" => Ok(Algorithm::SpSpeed),
        "spratio" => Ok(Algorithm::SpRatio),
        "dpspeed" => Ok(Algorithm::DpSpeed),
        "dpratio" => Ok(Algorithm::DpRatio),
        other => Err(format!("unknown algorithm '{other}'")),
    }
}

fn cmd_compress(args: &[String]) -> Result<(), String> {
    let algo = parse_algo(flag_value(args, "--algo").ok_or("--algo is required")?)?;
    let threads = parse_threads(args)?;
    let pos = positional(args);
    let [input, output] = pos.as_slice() else {
        return Err("expected <input> <output>".into());
    };
    let data = std::fs::read(input).map_err(|e| format!("reading {input}: {e}"))?;
    let start = std::time::Instant::now();
    let stream = Compressor::new(algo)
        .with_threads(threads)
        .compress_bytes(&data);
    let dt = start.elapsed().as_secs_f64();
    std::fs::write(output, &stream).map_err(|e| format!("writing {output}: {e}"))?;
    println!(
        "{algo}: {} -> {} bytes (ratio {:.3}) in {:.3}s ({:.3} GB/s)",
        data.len(),
        stream.len(),
        data.len() as f64 / stream.len() as f64,
        dt,
        data.len() as f64 / 1e9 / dt
    );
    Ok(())
}

fn cmd_decompress(args: &[String]) -> Result<(), String> {
    let threads = parse_threads(args)?;
    let pos = positional(args);
    let [input, output] = pos.as_slice() else {
        return Err("expected <input> <output>".into());
    };
    let stream = std::fs::read(input).map_err(|e| format!("reading {input}: {e}"))?;
    let start = std::time::Instant::now();
    let data = fpc_core::decompress_bytes_with(&stream, threads).map_err(|e| e.to_string())?;
    let dt = start.elapsed().as_secs_f64();
    std::fs::write(output, &data).map_err(|e| format!("writing {output}: {e}"))?;
    println!(
        "{} -> {} bytes in {:.3}s ({:.3} GB/s)",
        stream.len(),
        data.len(),
        dt,
        data.len() as f64 / 1e9 / dt
    );
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let [input] = pos.as_slice() else {
        return Err("expected <file>".into());
    };
    let stream = std::fs::read(input).map_err(|e| format!("reading {input}: {e}"))?;
    let info = fpc_core::info(&stream).map_err(|e| e.to_string())?;
    println!("algorithm:      {}", info.algorithm);
    println!("stages:         {}", info.algorithm.stages().join(" -> "));
    println!("original bytes: {}", info.original_len);
    println!("stream bytes:   {}", info.compressed_len);
    println!("ratio:          {:.4}", info.ratio());
    println!(
        "chunks:         {} ({} stored raw)",
        info.chunks, info.raw_chunks
    );
    Ok(())
}

fn cmd_verify(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let [input] = pos.as_slice() else {
        return Err("expected <file>".into());
    };
    let stream = std::fs::read(input).map_err(|e| format!("reading {input}: {e}"))?;
    // verify() walks the chunk table and re-hashes each compressed chunk in
    // place — nothing is decompressed or materialized.
    let (header, report) = fpc_container::verify(&stream).map_err(|e| e.to_string())?;
    println!("format version: {}", header.version);
    println!("chunks:         {}", report.chunks);
    if !report.checksummed {
        println!("checksums:      none (v1 stream) — integrity cannot be audited");
        return Ok(());
    }
    if report.is_clean() {
        println!("checksums:      all {} chunk(s) verified OK", report.chunks);
        return Ok(());
    }
    for d in &report.damaged {
        println!(
            "DAMAGED chunk {:>6} at byte offset {:>10}: {}",
            d.chunk, d.offset, d.error
        );
    }
    Err(format!(
        "{} of {} chunk(s) damaged",
        report.damaged.len(),
        report.chunks
    ))
}

fn cmd_survey(args: &[String]) -> Result<(), String> {
    let width: u8 = flag_value(args, "--width")
        .unwrap_or("4")
        .parse()
        .map_err(|_| "bad --width")?;
    if width != 4 && width != 8 {
        return Err("--width must be 4 or 8".into());
    }
    let threads = parse_threads(args)?;
    let pos = positional(args);
    let [input] = pos.as_slice() else {
        return Err("expected <file>".into());
    };
    let data = std::fs::read(input).map_err(|e| format!("reading {input}: {e}"))?;
    let meta = Meta {
        element_width: width,
        dims: [1, 1, data.len() / usize::from(width)],
    };
    println!("| codec | ratio | compress GB/s | decompress GB/s |");
    println!("|---|---|---|---|");
    // Ours first.
    let our_algos: &[Algorithm] = if width == 4 {
        &[Algorithm::SpSpeed, Algorithm::SpRatio]
    } else {
        &[Algorithm::DpSpeed, Algorithm::DpRatio]
    };
    for &algo in our_algos {
        let compressor = Compressor::new(algo).with_threads(threads);
        let t0 = std::time::Instant::now();
        let stream = compressor.compress_bytes(&data);
        let ct = t0.elapsed().as_secs_f64();
        let t1 = std::time::Instant::now();
        let back = fpc_core::decompress_bytes_with(&stream, threads).map_err(|e| e.to_string())?;
        let dt = t1.elapsed().as_secs_f64();
        if back != data {
            return Err(format!("{algo} roundtrip mismatch"));
        }
        print_survey_row(&algo.to_string(), &data, &stream, ct, dt);
    }
    for codec in fpc_baselines::roster() {
        if !codec.datatype().supports_width(width) {
            continue;
        }
        let t0 = std::time::Instant::now();
        let stream = codec.compress(&data, &meta);
        let ct = t0.elapsed().as_secs_f64();
        let t1 = std::time::Instant::now();
        let back = codec
            .decompress(&stream, &meta)
            .map_err(|e| e.to_string())?;
        let dt = t1.elapsed().as_secs_f64();
        if back != data {
            return Err(format!("{} roundtrip mismatch", codec.name()));
        }
        print_survey_row(codec.name(), &data, &stream, ct, dt);
    }
    Ok(())
}

fn print_survey_row(name: &str, data: &[u8], stream: &[u8], ct: f64, dt: f64) {
    println!(
        "| {name} | {:.3} | {:.3} | {:.3} |",
        data.len() as f64 / stream.len() as f64,
        data.len() as f64 / 1e9 / ct,
        data.len() as f64 / 1e9 / dt
    );
}

fn cmd_anatomy(args: &[String]) -> Result<(), String> {
    let algo = parse_algo(flag_value(args, "--algo").ok_or("--algo is required")?)?;
    let pos = positional(args);
    let [input] = pos.as_slice() else {
        return Err("expected <file>".into());
    };
    let data = std::fs::read(input).map_err(|e| format!("reading {input}: {e}"))?;
    print!("{}", fpc_core::analyze_bytes(&data, algo));
    Ok(())
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let precision = flag_value(args, "--precision").unwrap_or("sp");
    let out_dir = PathBuf::from(flag_value(args, "--out").unwrap_or("datasets"));
    let scale = match flag_value(args, "--scale").unwrap_or("small") {
        "small" => fpc_datagen::Scale::Small,
        "full" => fpc_datagen::Scale::Full,
        other => return Err(format!("unknown scale '{other}'")),
    };
    match precision {
        "sp" => {
            let suites = fpc_datagen::single_precision_suites(scale);
            fpc_datagen::external::write_manifest_f32(&out_dir, &suites)
                .map_err(|e| e.to_string())?;
        }
        "dp" => {
            let suites = fpc_datagen::double_precision_suites(scale);
            fpc_datagen::external::write_manifest_f64(&out_dir, &suites)
                .map_err(|e| e.to_string())?;
        }
        other => return Err(format!("unknown precision '{other}'")),
    }
    println!(
        "datasets and manifest written to {} (harness: --data {})",
        out_dir.display(),
        out_dir.display()
    );
    Ok(())
}
