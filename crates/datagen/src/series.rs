//! One-dimensional generators: trajectories, instrument readings, and
//! message streams.

use fpc_prng::Rng;

/// Sum of sinusoids + random walk + noise: a generic smooth signal.
pub fn smooth_series(rng: &mut Rng, n: usize, walk: f64, noise: f64) -> Vec<f64> {
    let freqs: Vec<(f64, f64, f64)> = (0..4)
        .map(|_| {
            (
                rng.gen_range(0.0005..0.05),
                rng.gen_range(0.1..2.0),
                rng.gen_range(0.0..std::f64::consts::TAU),
            )
        })
        .collect();
    let mut drift = 0.0f64;
    (0..n)
        .map(|i| {
            drift += rng.gen_range(-walk..walk.max(f64::MIN_POSITIVE));
            let s: f64 = freqs
                .iter()
                .map(|&(f, a, p)| a * (i as f64 * f + p).sin())
                .sum();
            s + drift + rng.gen_range(-noise..noise.max(f64::MIN_POSITIVE))
        })
        .collect()
}

/// Particle positions: `particles` particles × 3 interleaved coordinates,
/// each following a slow random walk within a periodic box (EXAALT/HACC
/// style).
pub fn particle_positions(
    rng: &mut Rng,
    particles: usize,
    steps: usize,
    box_size: f64,
) -> Vec<f64> {
    let mut pos: Vec<f64> = (0..particles * 3)
        .map(|_| rng.gen_range(0.0..box_size))
        .collect();
    let mut out = Vec::with_capacity(particles * 3 * steps);
    let step_size = box_size * 1e-4;
    for _ in 0..steps {
        for p in pos.iter_mut() {
            *p = (*p + rng.gen_range(-step_size..step_size)).rem_euclid(box_size);
        }
        out.extend_from_slice(&pos);
    }
    out
}

/// Quantized instrument readings: an *oversampled* smooth signal snapped to
/// a measurement grid. Oversampling (16× linear interpolation, as a sensor
/// sampling far above its signal bandwidth produces) keeps consecutive
/// readings within a few quantization levels, so both values and short
/// contexts recur exactly — the redundancy FCM exploits.
pub fn quantized_readings(rng: &mut Rng, n: usize, levels: f64) -> Vec<f64> {
    const STRETCH: usize = 16;
    let coarse = smooth_series(rng, n / STRETCH + 2, 1e-4, 1e-3);
    (0..n)
        .map(|i| {
            let base = i / STRETCH;
            let frac = (i % STRETCH) as f64 / STRETCH as f64;
            let v = coarse[base] * (1.0 - frac) + coarse[base + 1] * frac;
            (v * levels).round() / levels
        })
        .collect()
}

/// MPI-message-like stream: message *templates* (short sequences of
/// distinct doubles) that are resent throughout the whole trace, mixed with
/// monotone counters and occasional fresh values.
///
/// Template resends recur at arbitrary — typically large — distances. That
/// is precisely the redundancy the paper credits FCM for ("find repeating
/// values … even when they are far apart", §5.2) and that windowed LZ
/// compressors miss once the gap exceeds their window.
pub fn message_stream(rng: &mut Rng, n: usize) -> Vec<f64> {
    let templates: Vec<Vec<f64>> = (0..256)
        .map(|_| {
            let len = rng.gen_range(8..48);
            (0..len).map(|_| rng.gen_range(-1e3..1e3)).collect()
        })
        .collect();
    let mut out = Vec::with_capacity(n);
    let mut counter = 0u64;
    while out.len() < n {
        match rng.gen_range(0..10) {
            0..=6 => {
                // Resend one of the known message templates.
                let t = &templates[rng.gen_range(0..templates.len())];
                let take = t.len().min(n - out.len());
                out.extend_from_slice(&t[..take]);
            }
            7..=8 => {
                // Monotone sequence numbers stored as doubles.
                let run = rng.gen_range(4usize..20).min(n - out.len());
                for _ in 0..run {
                    counter += 1;
                    out.push(counter as f64);
                }
            }
            _ => {
                out.push(rng.gen_range(-1.0..1.0));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    #[test]
    fn smooth_series_properties() {
        let mut r = rng(10);
        let s = smooth_series(&mut r, 10_000, 1e-4, 1e-5);
        assert_eq!(s.len(), 10_000);
        assert!(s.iter().all(|v| v.is_finite()));
        let mean_delta: f64 =
            s.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (s.len() - 1) as f64;
        assert!(mean_delta < 0.2, "series too rough: {mean_delta}");
    }

    #[test]
    fn particles_stay_in_box() {
        let mut r = rng(11);
        let p = particle_positions(&mut r, 100, 20, 50.0);
        assert_eq!(p.len(), 100 * 3 * 20);
        assert!(p.iter().all(|&v| (0.0..50.0).contains(&v)));
        // Per-particle displacement between steps must be tiny.
        let stride = 300;
        let disp = (p[stride] - p[0]).abs();
        assert!(disp < 0.1, "particle moved {disp}");
    }

    #[test]
    fn quantized_values_recur() {
        let mut r = rng(12);
        let q = quantized_readings(&mut r, 5000, 100.0);
        use std::collections::HashSet;
        let distinct: HashSet<u64> = q.iter().map(|v| v.to_bits()).collect();
        assert!(
            distinct.len() < q.len() / 2,
            "{} distinct of {}",
            distinct.len(),
            q.len()
        );
    }

    #[test]
    fn message_stream_has_exact_length() {
        let mut r = rng(13);
        for n in [1usize, 100, 4097] {
            assert_eq!(message_stream(&mut r, n).len(), n);
        }
    }
}
