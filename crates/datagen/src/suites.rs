//! The named dataset suites mirroring the paper's evaluation inputs.
//!
//! Seven single-precision domains (SDRBench-like) and five double-precision
//! domains (SDRBench + FPdouble-like). Domain profiles differ in
//! smoothness, dynamic range, noise floor, and value-recurrence rate so the
//! relative strengths of the transformations are exercised the way the real
//! inputs exercise them.

use crate::field::{field2, field3, slice_modulate, FieldSpec};
use crate::series::{message_stream, particle_positions, quantized_readings, smooth_series};
use crate::{rng, Dataset, Dims, Suite};

/// Dataset sizing: `Small` for unit/integration tests, `Full` for the
/// benchmark harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ~50k values per file; fast enough for tests.
    Small,
    /// ~1M values per file; used to regenerate the paper's figures.
    Full,
}

impl Scale {
    fn grid3(self) -> (usize, usize, usize) {
        match self {
            Scale::Small => (8, 64, 96),
            Scale::Full => (32, 180, 180),
        }
    }

    fn grid2(self) -> (usize, usize) {
        match self {
            Scale::Small => (192, 256),
            Scale::Full => (1024, 1024),
        }
    }

    fn series(self) -> usize {
        match self {
            Scale::Small => 49_152,
            Scale::Full => 1 << 20,
        }
    }

    fn particles(self) -> (usize, usize) {
        match self {
            Scale::Small => (1024, 16),
            Scale::Full => (8192, 40),
        }
    }
}

fn to_f32(values: Vec<f64>) -> Vec<f32> {
    values.into_iter().map(|v| v as f32).collect()
}

/// Zeroes the low `23 - keep_bits` mantissa bits of each value.
///
/// Real SDRBench fields have *limited effective precision* — model output
/// and instrument data rarely carry 24 significant bits — which shows up as
/// trailing-zero mantissa bit planes. This is the property SPratio's BIT +
/// RZE stages exploit (whole zero bit planes) that subchunk-width MPLG
/// cannot, so reproducing it is essential for the paper's SPratio-vs-
/// SPspeed ratio gap.
fn quantize_mantissa(values: Vec<f32>, keep_bits: u32) -> Vec<f32> {
    debug_assert!(keep_bits <= 23);
    let drop = 23 - keep_bits;
    let mask = !((1u32 << drop) - 1);
    values
        .into_iter()
        .map(|v| f32::from_bits(v.to_bits() & mask))
        .collect()
}

/// The seven single-precision domain suites.
pub fn single_precision_suites(scale: Scale) -> Vec<Suite<f32>> {
    let (s3, r3, c3) = scale.grid3();
    let (r2, c2) = scale.grid2();
    let (npart, nsteps) = scale.particles();
    let mut suites = Vec::new();

    // CESM-ATM-like: smooth 3-D climate fields, moderate noise.
    {
        let mut files = Vec::new();
        for (i, (name, amp, offset)) in [
            ("CLDHGH", 0.4, 0.5),
            ("FLDSC", 60.0, 320.0),
            ("PHIS", 800.0, 2000.0),
        ]
        .iter()
        .enumerate()
        {
            let mut r = rng(100 + i as u64);
            let spec = FieldSpec {
                amplitude: *amp,
                offset: *offset,
                noise: 1e-6,
                smoothing_passes: 6,
                octaves: 2,
            };
            let mut v = field3(&mut r, s3, r3, c3, spec);
            slice_modulate(&mut v, s3, &mut r, 0.08);
            slice_modulate(&mut v, s3 * r3, &mut r, 0.015);
            if *name == "CLDHGH" {
                // Cloud fraction saturates at exactly 0 and 1 over large
                // regions — the hallmark of the real CESM cloud fields.
                for x in &mut v {
                    *x = x.clamp(0.45, 0.55);
                }
            }
            // Climate model output carries ~4 significant decimal digits.
            let v = quantize_mantissa(to_f32(v), 12);
            files.push(Dataset::new(
                format!("cesm-like/{name}"),
                Dims::D3(s3, r3, c3),
                v,
            ));
        }
        suites.push(Suite {
            domain: "CESM-ATM-like (climate)",
            files,
        });
    }

    // EXAALT-like: molecular-dynamics particle coordinates (copper).
    {
        let mut files = Vec::new();
        for (i, axis) in ["x", "y", "z"].iter().enumerate() {
            let mut r = rng(200 + i as u64);
            let v = particle_positions(&mut r, npart, nsteps, 80.0);
            let n = v.len();
            files.push(Dataset::new(
                format!("exaalt-like/copper_{axis}"),
                Dims::D1(n),
                to_f32(v),
            ));
        }
        suites.push(Suite {
            domain: "EXAALT-like (molecular dynamics)",
            files,
        });
    }

    // HACC-like: cosmology particle positions and velocities.
    {
        let mut files = Vec::new();
        for (i, name) in ["xx", "vx", "vy"].iter().enumerate() {
            let mut r = rng(300 + i as u64);
            let n = scale.series();
            let walk = if name.starts_with('v') { 1e-3 } else { 1e-2 };
            let v = smooth_series(&mut r, n, walk, 1e-4);
            files.push(Dataset::new(
                format!("hacc-like/{name}"),
                Dims::D1(n),
                to_f32(v),
            ));
        }
        suites.push(Suite {
            domain: "HACC-like (cosmology particles)",
            files,
        });
    }

    // Hurricane-ISABEL-like: 3-D weather variables, wide dynamic range.
    {
        let mut files = Vec::new();
        for (i, (name, amp)) in [("CLOUD", 1e-3), ("PRECIP", 1e-2), ("U", 40.0)]
            .iter()
            .enumerate()
        {
            let mut r = rng(400 + i as u64);
            let spec = FieldSpec {
                amplitude: *amp,
                offset: 0.0,
                noise: 1e-6,
                octaves: 3,
                smoothing_passes: 4,
            };
            let mut v = field3(&mut r, s3, r3, c3, spec);
            slice_modulate(&mut v, s3, &mut r, 0.12);
            slice_modulate(&mut v, s3 * r3, &mut r, 0.02);
            if *name != "U" {
                // Cloud water and precipitation are exactly zero outside
                // storm cells (most of the volume), as in the real ISABEL
                // fields.
                for x in &mut v {
                    *x = x.max(0.0);
                }
            }
            let v = quantize_mantissa(to_f32(v), 10);
            files.push(Dataset::new(
                format!("isabel-like/{name}"),
                Dims::D3(s3, r3, c3),
                v,
            ));
        }
        suites.push(Suite {
            domain: "Hurricane-ISABEL-like (weather)",
            files,
        });
    }

    // NYX-like: cosmology grid fields (densities are positive, log-spread).
    {
        let mut files = Vec::new();
        for (i, name) in ["baryon_density", "temperature"].iter().enumerate() {
            let mut r = rng(500 + i as u64);
            let spec = FieldSpec {
                amplitude: 1.5,
                offset: 0.0,
                noise: 1e-6,
                smoothing_passes: 5,
                octaves: 2,
            };
            let mut raw = field3(&mut r, s3, r3, c3, spec);
            slice_modulate(&mut raw, s3, &mut r, 0.10);
            slice_modulate(&mut raw, s3 * r3, &mut r, 0.015);
            let v: Vec<f64> = raw.into_iter().map(|x| x.exp()).collect();
            let v = quantize_mantissa(to_f32(v), 13);
            files.push(Dataset::new(
                format!("nyx-like/{name}"),
                Dims::D3(s3, r3, c3),
                v,
            ));
        }
        suites.push(Suite {
            domain: "NYX-like (cosmology grid)",
            files,
        });
    }

    // QMCPACK-like: many small correlated 2-D orbital slices.
    {
        let mut files = Vec::new();
        for i in 0..2u64 {
            let mut r = rng(600 + i);
            let spec = FieldSpec {
                amplitude: 0.01,
                offset: 0.02,
                noise: 1e-7,
                smoothing_passes: 5,
                octaves: 1,
            };
            let mut raw = field2(&mut r, r2, c2, spec);
            slice_modulate(&mut raw, r2, &mut r, 0.01);
            let v = quantize_mantissa(to_f32(raw), 15);
            files.push(Dataset::new(
                format!("qmcpack-like/orbital_{i}"),
                Dims::D2(r2, c2),
                v,
            ));
        }
        suites.push(Suite {
            domain: "QMCPACK-like (quantum Monte Carlo)",
            files,
        });
    }

    // SCALE-LETKF-like: ensemble weather fields, smoother than ISABEL.
    {
        let mut files = Vec::new();
        for (i, name) in ["QC", "RH"].iter().enumerate() {
            let mut r = rng(700 + i as u64);
            let spec = FieldSpec {
                amplitude: 30.0,
                offset: 50.0,
                noise: 1e-6,
                smoothing_passes: 6,
                octaves: 2,
            };
            let mut raw = field3(&mut r, s3, r3, c3, spec);
            slice_modulate(&mut raw, s3, &mut r, 0.08);
            slice_modulate(&mut raw, s3 * r3, &mut r, 0.015);
            let v = quantize_mantissa(to_f32(raw), 13);
            files.push(Dataset::new(
                format!("scale-like/{name}"),
                Dims::D3(s3, r3, c3),
                v,
            ));
        }
        suites.push(Suite {
            domain: "SCALE-LETKF-like (ensemble weather)",
            files,
        });
    }

    suites
}

/// The five double-precision domain suites.
pub fn double_precision_suites(scale: Scale) -> Vec<Suite<f64>> {
    let n = scale.series();
    let (s3, r3, c3) = scale.grid3();
    let mut suites = Vec::new();

    // Instrument observations: quantized readings (exact recurrences).
    {
        let mut files = Vec::new();
        for (i, levels) in [200.0, 5000.0].iter().enumerate() {
            let mut r = rng(800 + i as u64);
            let v = quantized_readings(&mut r, n, *levels);
            files.push(Dataset::new(format!("obs-like/sensor_{i}"), Dims::D1(n), v));
        }
        suites.push(Suite {
            domain: "instrument-like (observations)",
            files,
        });
    }

    // Simulation checkpoints: smooth 3-D double fields.
    {
        let mut files = Vec::new();
        for (i, name) in ["pressure", "energy"].iter().enumerate() {
            let mut r = rng(900 + i as u64);
            let spec = FieldSpec {
                amplitude: 1e5,
                offset: 1e5,
                noise: 1e-9,
                ..FieldSpec::default()
            };
            let mut v = field3(&mut r, s3, r3, c3, spec);
            slice_modulate(&mut v, s3, &mut r, 0.05);
            files.push(Dataset::new(
                format!("sim-like/{name}"),
                Dims::D3(s3, r3, c3),
                v,
            ));
        }
        suites.push(Suite {
            domain: "simulation-like (checkpoints)",
            files,
        });
    }

    // MPI messages: repeated payloads and counters.
    {
        let mut files = Vec::new();
        for i in 0..2u64 {
            let mut r = rng(1000 + i);
            let v = message_stream(&mut r, n);
            files.push(Dataset::new(format!("msg-like/trace_{i}"), Dims::D1(n), v));
        }
        suites.push(Suite {
            domain: "MPI-message-like (traces)",
            files,
        });
    }

    // Numeric time series: smooth with full-precision mantissas.
    {
        let mut files = Vec::new();
        for i in 0..2u64 {
            let mut r = rng(1100 + i);
            let v = smooth_series(&mut r, n, 1e-6, 1e-9);
            files.push(Dataset::new(format!("num-like/series_{i}"), Dims::D1(n), v));
        }
        suites.push(Suite {
            domain: "numeric-like (time series)",
            files,
        });
    }

    // Mixed-stream suites live in [`mixed_stream_suites`]; the fixed-width
    // suites above stay exactly seven SP and five DP domains (§4).

    // Brain/engineering-like: piecewise-smooth with regime switches.
    {
        let mut files = Vec::new();
        for i in 0..2u64 {
            let mut r = rng(1200 + i);
            let mut v = smooth_series(&mut r, n, 1e-5, 1e-8);
            // Inject level shifts every ~64k values (checkpoint phases).
            let mut level = 0.0f64;
            for (j, x) in v.iter_mut().enumerate() {
                if j % 65536 == 0 {
                    level = (j / 65536) as f64 * 10.0;
                }
                *x += level;
            }
            files.push(Dataset::new(format!("eng-like/signal_{i}"), Dims::D1(n), v));
        }
        suites.push(Suite {
            domain: "engineering-like (piecewise)",
            files,
        });
    }

    suites
}

fn f32_bytes(values: &[f32]) -> Vec<u8> {
    values
        .iter()
        .flat_map(|v| v.to_bits().to_le_bytes())
        .collect()
}

fn f64_bytes(values: &[f64]) -> Vec<u8> {
    values
        .iter()
        .flat_map(|v| v.to_bits().to_le_bytes())
        .collect()
}

/// Heterogeneous *byte* streams: MPI-rank-buffer-like concatenations of
/// segments with different element widths and statistics (smooth f32
/// fields, quantized f64 readings, message traces, and incompressible
/// blobs) in one allocation.
///
/// No single fixed algorithm fits such a stream — the segments disagree on
/// width and on which transformation wins — which is exactly the workload
/// the adaptive per-chunk AUTO mode exists for, and what its CI dominance
/// gate measures against. Segment lengths are deliberately not multiples
/// of the container chunk size, so most chunks straddle a segment
/// boundary.
pub fn mixed_stream_suites(scale: Scale) -> Vec<Suite<u8>> {
    let n = match scale {
        Scale::Small => 24_576,
        Scale::Full => 1 << 19,
    };
    let mut files = Vec::new();
    for i in 0..3u64 {
        let mut r = rng(1300 + i);
        let mut bytes = Vec::new();
        // Smooth single-precision field segment (SPspeed/SPratio country).
        let field: Vec<f32> = smooth_series(&mut r, n, 1e-3, 1e-6)
            .into_iter()
            .map(|v| v as f32)
            .collect();
        bytes.extend(f32_bytes(&field[..n - 1357]));
        // Quantized double-precision readings (FCM recurrences).
        let readings = quantized_readings(&mut r, n / 4, 500.0);
        bytes.extend(f64_bytes(&readings[..n / 4 - 211]));
        // Incompressible blob (already-compressed or encrypted payload).
        bytes.extend(r.bytes(n / 4 + 97));
        // Message-trace doubles (templates resent at long distances).
        let trace = message_stream(&mut r, n / 4);
        bytes.extend(f64_bytes(&trace));
        // Second smooth f32 segment so codec runs alternate.
        let field2: Vec<f32> = smooth_series(&mut r, n / 2, 1e-2, 1e-5)
            .into_iter()
            .map(|v| v as f32)
            .collect();
        bytes.extend(f32_bytes(&field2));
        let len = bytes.len();
        files.push(Dataset::new(
            format!("mixed-like/rank_buffer_{i}"),
            Dims::D1(len),
            bytes,
        ));
    }
    vec![Suite {
        domain: "mixed-stream-like (MPI rank buffers)",
        files,
    }]
}
