//! Loading *real* datasets (e.g. the actual SDRBench files) from disk.
//!
//! The synthetic suites stand in for SDRBench because the real files are
//! not redistributable — but anyone who has them can run every experiment
//! on the real data by writing a manifest and passing `--data DIR` to the
//! harness. `fpcc gen` emits a manifest alongside its synthetic datasets,
//! so the format is self-demonstrating.
//!
//! # Manifest format
//!
//! One line per file, `|`-separated, `#` starts a comment:
//!
//! ```text
//! # domain | name | dtype | dims | path (relative to the manifest)
//! CESM-ATM | CLDHGH | f32 | 26x1800x3600 | cesm/CLDHGH_1_26_1800_3600.dat
//! ```
//!
//! `dims` is `cols`, `rows x cols`, or `slices x rows x cols` (the shape
//! information MPC/ndzip/FPzip-class baselines require). Files are raw
//! little-endian values, the layout SDRBench distributes.

use crate::{Dataset, Dims, Suite};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// One parsed manifest row.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Row {
    domain: String,
    name: String,
    f64_typed: bool,
    dims: Dims,
    path: String,
}

fn parse_dims(s: &str) -> Option<Dims> {
    let parts: Vec<usize> = s
        .split('x')
        .map(|p| p.trim().parse().ok())
        .collect::<Option<Vec<_>>>()?;
    match parts.as_slice() {
        [c] => Some(Dims::D1(*c)),
        [r, c] => Some(Dims::D2(*r, *c)),
        [s, r, c] => Some(Dims::D3(*s, *r, *c)),
        _ => None,
    }
}

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn parse_manifest(content: &str, path: &Path) -> io::Result<Vec<Row>> {
    let mut rows = Vec::new();
    for (lineno, raw) in content.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('|').map(str::trim).collect();
        let err = |what: &str| bad_data(format!("{}:{}: {what}", path.display(), lineno + 1));
        let [domain, name, dtype, dims, rel_path] = fields.as_slice() else {
            return Err(err("expected 5 |-separated fields"));
        };
        let f64_typed = match *dtype {
            "f32" => false,
            "f64" => true,
            _ => return Err(err("dtype must be f32 or f64")),
        };
        let dims = parse_dims(dims).ok_or_else(|| err("invalid dims"))?;
        rows.push(Row {
            domain: domain.to_string(),
            name: name.to_string(),
            f64_typed,
            dims,
            path: rel_path.to_string(),
        });
    }
    Ok(rows)
}

fn read_values<T, F: Fn(&[u8]) -> T>(path: &Path, width: usize, convert: F) -> io::Result<Vec<T>> {
    let bytes = std::fs::read(path)?;
    if bytes.len() % width != 0 {
        return Err(bad_data(format!(
            "{}: length {} is not a multiple of {width}",
            path.display(),
            bytes.len()
        )));
    }
    Ok(bytes.chunks_exact(width).map(convert).collect())
}

fn group<T>(files: Vec<(String, Dataset<T>)>) -> Vec<Suite<T>> {
    let mut by_domain: BTreeMap<String, Vec<Dataset<T>>> = BTreeMap::new();
    for (domain, dataset) in files {
        by_domain.entry(domain).or_default().push(dataset);
    }
    by_domain
        .into_iter()
        .map(|(domain, files)| Suite {
            // Domains are dynamic for external data; the harness process
            // keeps them for its lifetime, so leaking is fine.
            domain: Box::leak(domain.into_boxed_str()),
            files,
        })
        .collect()
}

/// Loads the single-precision suites listed in `manifest` (f64 rows are
/// skipped), grouped by domain.
///
/// # Errors
///
/// Fails on I/O problems, malformed manifest rows, files whose length is
/// not a multiple of 4, or dims that disagree with the file length.
pub fn load_sp_suites(manifest: &Path) -> io::Result<Vec<Suite<f32>>> {
    let content = std::fs::read_to_string(manifest)?;
    let base = manifest.parent().unwrap_or(Path::new("."));
    let mut files = Vec::new();
    for row in parse_manifest(&content, manifest)? {
        if row.f64_typed {
            continue;
        }
        let path = base.join(&row.path);
        let values = read_values(&path, 4, |c| {
            f32::from_bits(u32::from_le_bytes(c.try_into().expect("chunks_exact(4)")))
        })?;
        if row.dims.len() != values.len() {
            return Err(bad_data(format!(
                "{}: dims {} imply {} values but file holds {}",
                path.display(),
                row.dims,
                row.dims.len(),
                values.len()
            )));
        }
        files.push((
            row.domain,
            Dataset {
                name: row.name,
                dims: row.dims,
                values,
            },
        ));
    }
    Ok(group(files))
}

/// Loads the double-precision suites listed in `manifest` (f32 rows are
/// skipped), grouped by domain.
///
/// # Errors
///
/// Same conditions as [`load_sp_suites`], with width 8.
pub fn load_dp_suites(manifest: &Path) -> io::Result<Vec<Suite<f64>>> {
    let content = std::fs::read_to_string(manifest)?;
    let base = manifest.parent().unwrap_or(Path::new("."));
    let mut files = Vec::new();
    for row in parse_manifest(&content, manifest)? {
        if !row.f64_typed {
            continue;
        }
        let path = base.join(&row.path);
        let values = read_values(&path, 8, |c| {
            f64::from_bits(u64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
        })?;
        if row.dims.len() != values.len() {
            return Err(bad_data(format!(
                "{}: dims {} imply {} values but file holds {}",
                path.display(),
                row.dims,
                row.dims.len(),
                values.len()
            )));
        }
        files.push((
            row.domain,
            Dataset {
                name: row.name,
                dims: row.dims,
                values,
            },
        ));
    }
    Ok(group(files))
}

/// Writes `suites` as raw `.bin` files plus a manifest into `dir`, the
/// inverse of [`load_sp_suites`]/[`load_dp_suites`].
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_manifest_f32(dir: &Path, suites: &[Suite<f32>]) -> io::Result<()> {
    write_manifest_impl(dir, suites, "f32", |values| {
        values
            .iter()
            .flat_map(|v| v.to_bits().to_le_bytes())
            .collect()
    })
}

/// Double-precision counterpart of [`write_manifest_f32`]; appends to an
/// existing manifest so mixed-precision directories work.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_manifest_f64(dir: &Path, suites: &[Suite<f64>]) -> io::Result<()> {
    write_manifest_impl(dir, suites, "f64", |values| {
        values
            .iter()
            .flat_map(|v| v.to_bits().to_le_bytes())
            .collect()
    })
}

fn write_manifest_impl<T>(
    dir: &Path,
    suites: &[Suite<T>],
    dtype: &str,
    to_bytes: impl Fn(&[T]) -> Vec<u8>,
) -> io::Result<()> {
    use std::io::Write as _;
    std::fs::create_dir_all(dir)?;
    let manifest_path = dir.join("manifest.txt");
    let mut manifest = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&manifest_path)?;
    for suite in suites {
        for file in &suite.files {
            let rel = format!("{}.bin", file.name.replace('/', "_"));
            std::fs::write(dir.join(&rel), to_bytes(&file.values))?;
            writeln!(
                manifest,
                "{} | {} | {dtype} | {} | {rel}",
                suite.domain, file.name, file.dims
            )?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{double_precision_suites, single_precision_suites, Scale};

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("fpc-ext-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    #[test]
    fn manifest_roundtrip_f32() {
        let dir = temp_dir("sp");
        let suites: Vec<Suite<f32>> = single_precision_suites(Scale::Small)
            .into_iter()
            .take(2)
            .collect();
        write_manifest_f32(&dir, &suites).unwrap();
        let loaded = load_sp_suites(&dir.join("manifest.txt")).unwrap();
        assert_eq!(loaded.len(), 2);
        let total_orig: usize = suites.iter().map(Suite::total_values).sum();
        let total_loaded: usize = loaded.iter().map(Suite::total_values).sum();
        assert_eq!(total_orig, total_loaded);
        // Values are bit-exact.
        let orig = &suites[0].files[0];
        let back = loaded
            .iter()
            .flat_map(|s| &s.files)
            .find(|f| f.name == orig.name)
            .expect("file present");
        assert_eq!(back.dims, orig.dims);
        assert!(orig
            .values
            .iter()
            .zip(&back.values)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_roundtrip_f64_mixed_directory() {
        let dir = temp_dir("mixed");
        let sp: Vec<Suite<f32>> = single_precision_suites(Scale::Small)
            .into_iter()
            .take(1)
            .collect();
        let dp: Vec<Suite<f64>> = double_precision_suites(Scale::Small)
            .into_iter()
            .take(1)
            .collect();
        write_manifest_f32(&dir, &sp).unwrap();
        write_manifest_f64(&dir, &dp).unwrap();
        // Loading filters by dtype, so both precisions coexist.
        let manifest = dir.join("manifest.txt");
        assert_eq!(load_sp_suites(&manifest).unwrap().len(), 1);
        let dp_loaded = load_dp_suites(&manifest).unwrap();
        assert_eq!(dp_loaded.len(), 1);
        assert_eq!(dp_loaded[0].total_values(), dp[0].total_values());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_manifests_rejected() {
        let dir = temp_dir("bad");
        let manifest = dir.join("manifest.txt");
        for bad in [
            "too | few | fields",
            "d | n | f16 | 4 | x.bin",
            "d | n | f32 | 4x4x4x4 | x.bin",
            "d | n | f32 | notanumber | x.bin",
        ] {
            std::fs::write(&manifest, bad).unwrap();
            assert!(load_sp_suites(&manifest).is_err(), "{bad}");
        }
        // Comments and blank lines are fine.
        std::fs::write(&manifest, "# just a comment\n\n").unwrap();
        assert!(load_sp_suites(&manifest).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dims_mismatch_rejected() {
        let dir = temp_dir("dims");
        std::fs::write(dir.join("x.bin"), [0u8; 16]).unwrap(); // 4 f32 values
        std::fs::write(dir.join("manifest.txt"), "d | x | f32 | 5 | x.bin").unwrap();
        let err = load_sp_suites(&dir.join("manifest.txt")).unwrap_err();
        assert!(err.to_string().contains("imply"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn odd_file_length_rejected() {
        let dir = temp_dir("odd");
        std::fs::write(dir.join("x.bin"), [0u8; 7]).unwrap();
        std::fs::write(dir.join("manifest.txt"), "d | x | f32 | 1 | x.bin").unwrap();
        assert!(load_sp_suites(&dir.join("manifest.txt")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
