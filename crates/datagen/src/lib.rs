//! Synthetic SDRBench-like dataset generation.
//!
//! The paper evaluates on 90 single-precision files from 7 scientific
//! domains of the SDRBench suite plus 20 double-precision files from 5
//! domains. Those datasets are not redistributable here, so this crate
//! generates deterministic synthetic stand-ins that reproduce the
//! *statistical properties the compressors exploit* (paper §3: "smooth,
//! normal, and centered around zero"):
//!
//! * spatially correlated 2-D/3-D fields (climate, weather, cosmology
//!   grids) — clustered exponents, small value-to-value deltas;
//! * particle coordinates and velocities (molecular dynamics, cosmology)
//!   — per-particle smoothness with interleaved components;
//! * quantized instrument readings — exactly recurring values, which is
//!   what DPratio's FCM stage targets;
//! * message/trace streams — counters stored as doubles and message
//!   templates resent at arbitrary (often window-exceeding) distances,
//!   which is where FCM beats windowed LZ (paper §5.2).
//!
//! Every generator is seeded, so all crates observe identical bytes. The
//! [`external`] module loads *real* datasets (e.g. the actual SDRBench
//! files) from a manifest, so every experiment can also run on real data.

pub mod external;
mod field;
mod series;
mod suites;

pub use suites::{double_precision_suites, mixed_stream_suites, single_precision_suites, Scale};

use fpc_prng::Rng;

/// Grid dimensionality of a dataset (1-, 2-, or 3-dimensional).
///
/// Some baselines (ndzip-, MPC-, fpzip-class) require the dimensionality or
/// tuple size of the input; the paper's own algorithms do not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dims {
    /// Flat sequence of `n` values.
    D1(usize),
    /// Row-major `rows × cols` grid.
    D2(usize, usize),
    /// Slice-major `slices × rows × cols` grid.
    D3(usize, usize, usize),
}

impl Dims {
    /// Total number of values.
    pub fn len(self) -> usize {
        match self {
            Dims::D1(n) => n,
            Dims::D2(r, c) => r * c,
            Dims::D3(s, r, c) => s * r * c,
        }
    }

    /// Whether the dataset is empty.
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// Size of the innermost (fastest-varying) dimension.
    pub fn innermost(self) -> usize {
        match self {
            Dims::D1(n) => n,
            Dims::D2(_, c) => c,
            Dims::D3(_, _, c) => c,
        }
    }
}

impl core::fmt::Display for Dims {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Dims::D1(n) => write!(f, "{n}"),
            Dims::D2(r, c) => write!(f, "{r}x{c}"),
            Dims::D3(s, r, c) => write!(f, "{s}x{r}x{c}"),
        }
    }
}

/// One synthetic input file.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset<T> {
    /// File name, e.g. `"cesm-like/CLDHGH_1"`.
    pub name: String,
    /// Grid shape.
    pub dims: Dims,
    /// The values, row-major.
    pub values: Vec<T>,
}

impl<T> Dataset<T> {
    fn new(name: impl Into<String>, dims: Dims, values: Vec<T>) -> Self {
        let dataset = Self {
            name: name.into(),
            dims,
            values,
        };
        debug_assert_eq!(dataset.dims.len(), dataset.values.len());
        dataset
    }
}

/// A group of files from one scientific domain (the unit over which the
/// paper computes per-dataset geometric means).
#[derive(Debug, Clone, PartialEq)]
pub struct Suite<T> {
    /// Domain name, e.g. `"CESM-ATM-like (climate)"`.
    pub domain: &'static str,
    /// The files in the domain.
    pub files: Vec<Dataset<T>>,
}

impl<T> Suite<T> {
    /// Total number of values across all files.
    pub fn total_values(&self) -> usize {
        self.files.iter().map(|f| f.values.len()).sum()
    }
}

pub(crate) fn rng(seed: u64) -> Rng {
    Rng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_len() {
        assert_eq!(Dims::D1(10).len(), 10);
        assert_eq!(Dims::D2(4, 5).len(), 20);
        assert_eq!(Dims::D3(2, 3, 4).len(), 24);
        assert_eq!(Dims::D3(2, 3, 4).innermost(), 4);
        assert!(!Dims::D1(1).is_empty());
        assert!(Dims::D1(0).is_empty());
        assert_eq!(Dims::D2(4, 5).to_string(), "4x5");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = single_precision_suites(Scale::Small);
        let b = single_precision_suites(Scale::Small);
        assert_eq!(a.len(), b.len());
        for (sa, sb) in a.iter().zip(&b) {
            assert_eq!(sa.domain, sb.domain);
            for (fa, fb) in sa.files.iter().zip(&sb.files) {
                assert_eq!(fa.name, fb.name);
                let bits_a: Vec<u32> = fa.values.iter().map(|v| v.to_bits()).collect();
                let bits_b: Vec<u32> = fb.values.iter().map(|v| v.to_bits()).collect();
                assert_eq!(bits_a, bits_b, "{}", fa.name);
            }
        }
    }

    #[test]
    fn seven_sp_domains_five_dp_domains() {
        // Matches the paper's evaluation structure (§4).
        assert_eq!(single_precision_suites(Scale::Small).len(), 7);
        assert_eq!(double_precision_suites(Scale::Small).len(), 5);
    }

    #[test]
    fn mixed_streams_are_deterministic_and_heterogeneous() {
        let a = mixed_stream_suites(Scale::Small);
        let b = mixed_stream_suites(Scale::Small);
        assert_eq!(a, b, "mixed streams must be seeded");
        assert_eq!(a.len(), 1);
        let suite = &a[0];
        assert_eq!(suite.files.len(), 3);
        for f in &suite.files {
            assert_eq!(f.dims.len(), f.values.len(), "{}", f.name);
            // Each rank buffer must be big enough to span many chunks.
            assert!(f.values.len() > 16 * 1024 * 4, "{} too small", f.name);
        }
        // Full scale streams are larger.
        let full = mixed_stream_suites(Scale::Full);
        assert!(full[0].total_values() > suite.total_values() * 4);
    }

    #[test]
    fn every_file_is_nonempty_and_consistent() {
        for suite in single_precision_suites(Scale::Small) {
            assert!(!suite.files.is_empty(), "{}", suite.domain);
            for f in &suite.files {
                assert!(!f.values.is_empty(), "{}", f.name);
                assert_eq!(f.dims.len(), f.values.len(), "{}", f.name);
                assert!(f.values.iter().all(|v| v.is_finite()), "{}", f.name);
            }
        }
        for suite in double_precision_suites(Scale::Small) {
            for f in &suite.files {
                assert_eq!(f.dims.len(), f.values.len(), "{}", f.name);
            }
        }
    }

    #[test]
    fn data_is_smooth_enough_to_compress() {
        // Average |delta| between consecutive values must be small relative
        // to the value range for most files (the property DIFFMS exploits).
        for suite in single_precision_suites(Scale::Small) {
            for f in &suite.files {
                let n = f.values.len();
                let mean_abs: f64 =
                    f.values.iter().map(|v| f64::from(v.abs())).sum::<f64>() / n as f64;
                let mean_delta: f64 = f
                    .values
                    .windows(2)
                    .map(|w| f64::from((w[1] - w[0]).abs()))
                    .sum::<f64>()
                    / (n - 1) as f64;
                // Deltas at least 2x smaller than magnitudes on average.
                if mean_abs > 1e-12 {
                    assert!(
                        mean_delta < mean_abs,
                        "{}: mean_delta {mean_delta} vs mean_abs {mean_abs}",
                        f.name
                    );
                }
            }
        }
    }

    #[test]
    fn full_scale_is_larger_than_small() {
        let small = &single_precision_suites(Scale::Small)[0];
        let full = &single_precision_suites(Scale::Full)[0];
        assert!(full.total_values() > small.total_values() * 4);
    }

    #[test]
    fn dp_message_suite_has_repeats_for_fcm() {
        let suites = double_precision_suites(Scale::Small);
        let msg = suites
            .iter()
            .find(|s| s.domain.contains("message"))
            .expect("message domain");
        // Count exact value recurrences: FCM needs them.
        use std::collections::HashMap;
        let f = &msg.files[0];
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for v in &f.values {
            *counts.entry(v.to_bits()).or_default() += 1;
        }
        let repeated: usize = counts.values().filter(|&&c| c > 1).copied().sum();
        assert!(
            repeated > f.values.len() / 4,
            "only {repeated}/{} values recur",
            f.values.len()
        );
    }
}
