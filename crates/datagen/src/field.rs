//! Spatially correlated 2-D and 3-D field generators.
//!
//! Fields are built as white noise smoothed by repeated separable box
//! filters (approximating a Gaussian random field), optionally summed over
//! several octaves for multi-scale structure, then scaled and offset. This
//! reproduces the key property of gridded scientific data: neighbouring
//! values are close, so exponents cluster and deltas are small.

use fpc_prng::Rng;

/// Parameters of a synthetic field.
#[derive(Debug, Clone, Copy)]
pub struct FieldSpec {
    /// Smoothing passes per axis (higher = smoother).
    pub smoothing_passes: usize,
    /// Number of octaves summed (1 = single scale).
    pub octaves: usize,
    /// Output scale factor.
    pub amplitude: f64,
    /// Output offset (centers the data; SDRBench data is near zero).
    pub offset: f64,
    /// Relative white-noise floor added after smoothing (models sensor or
    /// round-off noise; raises mantissa entropy).
    pub noise: f64,
}

impl Default for FieldSpec {
    fn default() -> Self {
        Self {
            smoothing_passes: 3,
            octaves: 2,
            amplitude: 1.0,
            offset: 0.0,
            noise: 1e-6,
        }
    }
}

fn box_blur_axis(data: &mut [f64], stride: usize, len: usize, lanes: usize) {
    // One box-blur pass along an axis of a flattened grid. `lanes` is the
    // number of independent lines, each `len` elements spaced by `stride`,
    // with consecutive lines offset so the whole array is covered.
    let mut line = vec![0.0f64; len];
    for lane in 0..lanes {
        // Lines are laid out so that the lane index maps to the base offset
        // skipping the strided axis.
        let base = (lane / stride) * stride * len + (lane % stride);
        for (i, slot) in line.iter_mut().enumerate() {
            *slot = data[base + i * stride];
        }
        for i in 0..len {
            let prev = line[i.saturating_sub(1)];
            let next = line[(i + 1).min(len - 1)];
            data[base + i * stride] = (prev + line[i] + next) / 3.0;
        }
    }
}

/// Generates a smooth 3-D field of `slices × rows × cols` values.
pub fn field3(rng: &mut Rng, slices: usize, rows: usize, cols: usize, spec: FieldSpec) -> Vec<f64> {
    let n = slices * rows * cols;
    let mut acc = vec![0.0f64; n];
    let mut octave_amp = 1.0f64;
    for _ in 0..spec.octaves.max(1) {
        let mut noise: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        for _ in 0..spec.smoothing_passes {
            // cols axis: stride 1, len cols, lines = slices*rows
            box_blur_axis(&mut noise, 1, cols, slices * rows);
            // rows axis: stride cols, len rows, lines = slices*cols
            if rows > 1 {
                for s in 0..slices {
                    let plane = &mut noise[s * rows * cols..(s + 1) * rows * cols];
                    box_blur_axis(plane, cols, rows, cols);
                }
            }
            // slices axis
            if slices > 1 {
                box_blur_axis(&mut noise, rows * cols, slices, rows * cols);
            }
        }
        for (a, v) in acc.iter_mut().zip(&noise) {
            *a += octave_amp * v;
        }
        octave_amp *= 0.5;
    }
    for v in acc.iter_mut() {
        let jitter = if spec.noise > 0.0 {
            rng.gen_range(-spec.noise..spec.noise)
        } else {
            0.0
        };
        *v = spec.offset + spec.amplitude * (*v + jitter);
    }
    acc
}

/// Generates a smooth 2-D field of `rows × cols` values.
pub fn field2(rng: &mut Rng, rows: usize, cols: usize, spec: FieldSpec) -> Vec<f64> {
    field3(rng, 1, rows, cols, spec)
}

/// Applies a per-slice affine drift (scale and offset jitter of relative
/// `strength`) to a `slices × rows × cols` field.
///
/// Real gridded geoscience data varies systematically between vertical
/// levels (altitude/depth): adjacent slices are similar in *shape* but not
/// bit-level-predictable from one another. Without this, synthetic fields
/// are unrealistically coherent along the slice axis and overstate how
/// much dimension-aware predictors (ndzip/FPzip-class Lorenzo) gain over
/// the paper's dimension-oblivious algorithms.
pub fn slice_modulate(values: &mut [f64], slices: usize, rng: &mut Rng, strength: f64) {
    if slices <= 1 || values.is_empty() {
        return;
    }
    let per = values.len() / slices;
    let typical = values.iter().map(|v| v.abs()).sum::<f64>() / values.len() as f64;
    for s in 0..slices {
        let scale = 1.0 + strength * rng.gen_range(-1.0..1.0);
        let offset = strength * typical * rng.gen_range(-1.0..1.0);
        for v in &mut values[s * per..(s + 1) * per] {
            *v = *v * scale + offset;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    #[test]
    fn field_is_smooth() {
        let mut r = rng(1);
        let f = field2(&mut r, 64, 64, FieldSpec::default());
        assert_eq!(f.len(), 64 * 64);
        let mean_abs: f64 = f.iter().map(|v| v.abs()).sum::<f64>() / f.len() as f64;
        let mean_delta: f64 =
            f.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (f.len() - 1) as f64;
        assert!(
            mean_delta < mean_abs,
            "field not smooth: {mean_delta} vs {mean_abs}"
        );
    }

    #[test]
    fn field3_covers_grid() {
        let mut r = rng(2);
        let f = field3(&mut r, 4, 8, 16, FieldSpec::default());
        assert_eq!(f.len(), 4 * 8 * 16);
        assert!(f.iter().all(|v| v.is_finite()));
        // Not constant.
        let min = f.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = f.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max > min);
    }

    #[test]
    fn offset_and_amplitude_applied() {
        let mut r = rng(3);
        let spec = FieldSpec {
            offset: 100.0,
            amplitude: 0.001,
            ..FieldSpec::default()
        };
        let f = field2(&mut r, 16, 16, spec);
        assert!(f.iter().all(|&v| (v - 100.0).abs() < 1.0));
    }

    #[test]
    fn octaves_add_detail() {
        let mut r1 = rng(4);
        let one = field2(
            &mut r1,
            32,
            32,
            FieldSpec {
                octaves: 1,
                ..FieldSpec::default()
            },
        );
        let mut r2 = rng(4);
        let three = field2(
            &mut r2,
            32,
            32,
            FieldSpec {
                octaves: 3,
                ..FieldSpec::default()
            },
        );
        assert_ne!(one, three);
    }
}
