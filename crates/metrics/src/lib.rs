//! Zero-dependency observability for the FPcompress hot paths.
//!
//! Every probe in this crate is **feature-gated**: with the `metrics` cargo
//! feature disabled (the default), [`timer`], [`incr`], and friends are
//! empty `#[inline]` functions and [`Timer`]/[`Stopwatch`] are zero-sized —
//! the instrumented crates compile to exactly the code they had before
//! instrumentation, and compressed output is byte-identical either way
//! (probes never touch data, only clocks and counters).
//!
//! With the feature enabled, collection is lock-free and thread-safe:
//!
//! * **Stage timers** ([`timer`] / [`Timer::finish`]) accumulate monotonic
//!   wall-clock nanoseconds, call counts, and processed bytes per [`Stage`]
//!   into `static` relaxed atomics, plus a 64-bucket log₂ histogram sketch
//!   of per-call latency.
//! * **Counters** ([`incr`]) accumulate event counts per [`Counter`]
//!   (pool telemetry, chunk statistics).
//! * [`snapshot`] materializes a [`report::MetricsReport`] (serializable to
//!   JSON via [`json`]); [`reset`] zeroes everything — both are safe to call
//!   while other threads record, with relaxed (not linearizable)
//!   consistency.
//!
//! Nested stages overlap by design: e.g. RAZE/RARE embed an RZE pass, so
//! `RZE.*` time is also inside `RAZE.*`/`RARE.*` time. Per-stage numbers
//! answer "where do the nanoseconds go", not "do the stages sum to the
//! total".
//!
//! The [`json`] and [`report`] modules are compiled unconditionally so
//! tooling (`fpcc stats`, the bench harness's `BENCH_*.json`) can parse and
//! render saved reports even in a no-op build.

pub mod json;
pub mod report;

/// `true` when the crate was built with the `metrics` feature.
///
/// Branch on this (`if fpc_metrics::ENABLED { ... }`) around probe code with
/// a real runtime cost of its own (e.g. an extra atomic swap); the compiler
/// removes the branch entirely in no-op builds.
pub const ENABLED: bool = cfg!(feature = "metrics");

/// An instrumented pipeline stage. One cell of statistics exists per
/// variant; names follow `<layer>.<operation>` so reports group naturally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// DIFFMS difference+zigzag encode (32- and 64-bit).
    DiffmsEncode,
    /// DIFFMS decode.
    DiffmsDecode,
    /// MPLG leading-zero elimination encode.
    MplgEncode,
    /// MPLG decode.
    MplgDecode,
    /// BIT bit transposition (self-inverse: used by encode and decode).
    BitTranspose,
    /// RZE repeated-zero-elimination encode.
    RzeEncode,
    /// RZE decode.
    RzeDecode,
    /// FCM global context-model encode.
    FcmEncode,
    /// FCM decode from value/distance arrays.
    FcmDecode,
    /// RAZE encode.
    RazeEncode,
    /// RAZE decode.
    RazeDecode,
    /// RARE encode.
    RareEncode,
    /// RARE decode.
    RareDecode,
    /// Whole-container compression (chunking + codec + framing).
    ContainerCompress,
    /// Whole-container decompression (parse + codec + reassembly).
    ContainerDecode,
    /// Huffman entropy encode.
    HuffmanEncode,
    /// Huffman entropy decode.
    HuffmanDecode,
    /// rANS entropy encode.
    RansEncode,
    /// rANS entropy decode.
    RansDecode,
    /// LZ block compress.
    LzEncode,
    /// LZ block decompress.
    LzDecode,
    /// RLE compress.
    RleEncode,
    /// RLE decompress.
    RleDecode,
    /// Simulated-GPU decoupled look-back scan.
    GpuScan,
    /// Simulated-GPU radix sort (FCM encode path).
    GpuRadixSort,
    /// Simulated-GPU union-find FCM decode.
    GpuUnionFind,
    /// Service-side compress request (fpc-serve), wire receipt excluded.
    ServeCompress,
    /// Service-side decompress request.
    ServeDecompress,
    /// Service-side verify request.
    ServeVerify,
    /// Service-side ping request.
    ServePing,
    /// Service-side range request (partial decode).
    ServeRange,
}

impl Stage {
    /// Number of stages (size of the statistics table).
    pub const COUNT: usize = 31;

    /// Every stage, in report order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::DiffmsEncode,
        Stage::DiffmsDecode,
        Stage::MplgEncode,
        Stage::MplgDecode,
        Stage::BitTranspose,
        Stage::RzeEncode,
        Stage::RzeDecode,
        Stage::FcmEncode,
        Stage::FcmDecode,
        Stage::RazeEncode,
        Stage::RazeDecode,
        Stage::RareEncode,
        Stage::RareDecode,
        Stage::ContainerCompress,
        Stage::ContainerDecode,
        Stage::HuffmanEncode,
        Stage::HuffmanDecode,
        Stage::RansEncode,
        Stage::RansDecode,
        Stage::LzEncode,
        Stage::LzDecode,
        Stage::RleEncode,
        Stage::RleDecode,
        Stage::GpuScan,
        Stage::GpuRadixSort,
        Stage::GpuUnionFind,
        Stage::ServeCompress,
        Stage::ServeDecompress,
        Stage::ServeVerify,
        Stage::ServePing,
        Stage::ServeRange,
    ];

    /// Stable report name (`<layer>.<operation>`).
    pub fn name(self) -> &'static str {
        match self {
            Stage::DiffmsEncode => "DIFFMS.encode",
            Stage::DiffmsDecode => "DIFFMS.decode",
            Stage::MplgEncode => "MPLG.encode",
            Stage::MplgDecode => "MPLG.decode",
            Stage::BitTranspose => "BIT.transpose",
            Stage::RzeEncode => "RZE.encode",
            Stage::RzeDecode => "RZE.decode",
            Stage::FcmEncode => "FCM.encode",
            Stage::FcmDecode => "FCM.decode",
            Stage::RazeEncode => "RAZE.encode",
            Stage::RazeDecode => "RAZE.decode",
            Stage::RareEncode => "RARE.encode",
            Stage::RareDecode => "RARE.decode",
            Stage::ContainerCompress => "container.compress",
            Stage::ContainerDecode => "container.decode",
            Stage::HuffmanEncode => "entropy.huffman.encode",
            Stage::HuffmanDecode => "entropy.huffman.decode",
            Stage::RansEncode => "entropy.rans.encode",
            Stage::RansDecode => "entropy.rans.decode",
            Stage::LzEncode => "entropy.lz.encode",
            Stage::LzDecode => "entropy.lz.decode",
            Stage::RleEncode => "entropy.rle.encode",
            Stage::RleDecode => "entropy.rle.decode",
            Stage::GpuScan => "gpu.scan.lookback",
            Stage::GpuRadixSort => "gpu.radix.sort",
            Stage::GpuUnionFind => "gpu.unionfind.decode",
            Stage::ServeCompress => "serve.compress",
            Stage::ServeDecompress => "serve.decompress",
            Stage::ServeVerify => "serve.verify",
            Stage::ServePing => "serve.ping",
            Stage::ServeRange => "serve.range",
        }
    }

    #[cfg_attr(not(feature = "metrics"), allow(dead_code))]
    fn index(self) -> usize {
        Stage::ALL
            .iter()
            .position(|&s| s == self)
            .expect("ALL lists every variant")
    }
}

/// An instrumented event counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Jobs executed by the worker pool.
    PoolJobs,
    /// Index batches claimed across all jobs.
    PoolBatches,
    /// Batches executed by pool workers (the rest ran on the submitter —
    /// the "steal" share of the dynamic schedule).
    PoolWorkerBatches,
    /// Nanoseconds between job submission and its first claimed batch,
    /// summed over jobs (queue wait).
    PoolQueueWaitNanos,
    /// `with_scratch` calls that reused a warmed-up arena.
    PoolScratchHits,
    /// `with_scratch` calls that started from an empty arena.
    PoolScratchMisses,
    /// Chunks processed by the container.
    ContainerChunks,
    /// Chunks stored raw because the codec failed to shrink them.
    ContainerRawChunks,
    /// Kernel calls dispatched at the scalar tier (fpc-simd).
    SimdScalar,
    /// Kernel calls dispatched at the portable SWAR tier.
    SimdSwar,
    /// Kernel calls dispatched at the SSE2 tier.
    SimdSse2,
    /// Kernel calls dispatched at the AVX2 tier.
    SimdAvx2,
    /// Connections served by fpc-serve workers.
    ServeConnections,
    /// Connections shed at the acceptor (queue full).
    ServeConnRejected,
    /// Requests received (including ones rejected over caps).
    ServeRequests,
    /// Requests answered with a structured error frame, plus connections
    /// dropped over framing/transport failures.
    ServeErrors,
    /// Request payload bytes accepted for processing.
    ServeBytesIn,
    /// Response payload bytes sent.
    ServeBytesOut,
    /// Nanoseconds sockets spent queued between accept and a worker
    /// picking them up, summed over connections.
    ServeQueueWaitNanos,
    /// Faults injected by fpc-faults (all kinds; only moves in builds
    /// with the `faults` feature and an armed plan).
    FaultsInjected,
    /// Connections evicted while idle between requests.
    ServeReapedIdle,
    /// Connections reaped for missing the per-request progress deadline
    /// (slow-loris defense).
    ServeReapedStalled,
    /// Requests shed with `Busy` at the memory-pressure watermark.
    ServeShedMemory,
    /// Connections dropped over socket read/write timeouts.
    ServeTimeouts,
    /// Remote-client retry attempts (re-sends after a transient failure).
    RemoteRetryAttempts,
    /// Remote-client reconnects (transport was dropped and re-dialed).
    RemoteRetryReconnects,
    /// Remote-client requests abandoned after exhausting the retry
    /// budget or deadline.
    RemoteRetryGiveups,
    /// Nanoseconds the remote client slept in retry backoff, summed.
    RemoteRetryBackoffNanos,
    /// Range-decode requests served by the container layer.
    ContainerRangeRequests,
    /// Chunks actually decoded by range requests.
    ContainerRangeChunksTouched,
    /// Chunks present in the streams range requests ran against (the
    /// denominator for the touched/total selectivity ratio).
    ContainerRangeChunksTotal,
    /// Payload bytes decoded by range requests (whole touched chunks).
    ContainerRangeBytesDecoded,
    /// Payload bytes actually returned to range callers.
    ContainerRangeBytesReturned,
    /// AUTO chunks that picked the SPspeed pipeline.
    AutoPickSpSpeed,
    /// AUTO chunks that picked the SPratio pipeline.
    AutoPickSpRatio,
    /// AUTO chunks that picked the DPspeed pipeline.
    AutoPickDpSpeed,
    /// AUTO chunks that picked the DPratio (per-chunk FCM) pipeline.
    AutoPickDpRatio,
    /// AUTO chunks stored raw (no candidate shrank the chunk).
    AutoPickRaw,
    /// Hot-chunk cache lookups that found an entry.
    CacheHits,
    /// Hot-chunk cache lookups that found nothing.
    CacheMisses,
    /// Values stored in the hot-chunk cache.
    CacheInsertions,
    /// Entries evicted from the hot-chunk cache to make room.
    CacheEvictions,
    /// Bytes stored in the hot-chunk cache (monotonic; resident bytes are
    /// `cache.bytes.inserted - cache.bytes.evicted`).
    CacheBytesInserted,
    /// Bytes evicted from the hot-chunk cache (monotonic).
    CacheBytesEvicted,
}

impl Counter {
    /// Number of counters.
    pub const COUNT: usize = 44;

    /// Every counter, in report order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::PoolJobs,
        Counter::PoolBatches,
        Counter::PoolWorkerBatches,
        Counter::PoolQueueWaitNanos,
        Counter::PoolScratchHits,
        Counter::PoolScratchMisses,
        Counter::ContainerChunks,
        Counter::ContainerRawChunks,
        Counter::SimdScalar,
        Counter::SimdSwar,
        Counter::SimdSse2,
        Counter::SimdAvx2,
        Counter::ServeConnections,
        Counter::ServeConnRejected,
        Counter::ServeRequests,
        Counter::ServeErrors,
        Counter::ServeBytesIn,
        Counter::ServeBytesOut,
        Counter::ServeQueueWaitNanos,
        Counter::FaultsInjected,
        Counter::ServeReapedIdle,
        Counter::ServeReapedStalled,
        Counter::ServeShedMemory,
        Counter::ServeTimeouts,
        Counter::RemoteRetryAttempts,
        Counter::RemoteRetryReconnects,
        Counter::RemoteRetryGiveups,
        Counter::RemoteRetryBackoffNanos,
        Counter::ContainerRangeRequests,
        Counter::ContainerRangeChunksTouched,
        Counter::ContainerRangeChunksTotal,
        Counter::ContainerRangeBytesDecoded,
        Counter::ContainerRangeBytesReturned,
        Counter::AutoPickSpSpeed,
        Counter::AutoPickSpRatio,
        Counter::AutoPickDpSpeed,
        Counter::AutoPickDpRatio,
        Counter::AutoPickRaw,
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::CacheInsertions,
        Counter::CacheEvictions,
        Counter::CacheBytesInserted,
        Counter::CacheBytesEvicted,
    ];

    /// Stable report name.
    pub fn name(self) -> &'static str {
        match self {
            Counter::PoolJobs => "pool.jobs",
            Counter::PoolBatches => "pool.batches",
            Counter::PoolWorkerBatches => "pool.batches.worker",
            Counter::PoolQueueWaitNanos => "pool.queue_wait_nanos",
            Counter::PoolScratchHits => "pool.scratch.hits",
            Counter::PoolScratchMisses => "pool.scratch.misses",
            Counter::ContainerChunks => "container.chunks",
            Counter::ContainerRawChunks => "container.chunks.raw",
            Counter::SimdScalar => "simd.dispatch.scalar",
            Counter::SimdSwar => "simd.dispatch.swar",
            Counter::SimdSse2 => "simd.dispatch.sse2",
            Counter::SimdAvx2 => "simd.dispatch.avx2",
            Counter::ServeConnections => "serve.connections",
            Counter::ServeConnRejected => "serve.connections.rejected",
            Counter::ServeRequests => "serve.requests",
            Counter::ServeErrors => "serve.errors",
            Counter::ServeBytesIn => "serve.bytes.in",
            Counter::ServeBytesOut => "serve.bytes.out",
            Counter::ServeQueueWaitNanos => "serve.queue_wait_nanos",
            Counter::FaultsInjected => "faults.injected",
            Counter::ServeReapedIdle => "serve.faults.reaped_idle",
            Counter::ServeReapedStalled => "serve.faults.reaped_stalled",
            Counter::ServeShedMemory => "serve.faults.shed_memory",
            Counter::ServeTimeouts => "serve.faults.timeouts",
            Counter::RemoteRetryAttempts => "remote.retry.attempts",
            Counter::RemoteRetryReconnects => "remote.retry.reconnects",
            Counter::RemoteRetryGiveups => "remote.retry.giveups",
            Counter::RemoteRetryBackoffNanos => "remote.retry.backoff_nanos",
            Counter::ContainerRangeRequests => "container.range.requests",
            Counter::ContainerRangeChunksTouched => "container.range.chunks.touched",
            Counter::ContainerRangeChunksTotal => "container.range.chunks.total",
            Counter::ContainerRangeBytesDecoded => "container.range.bytes.decoded",
            Counter::ContainerRangeBytesReturned => "container.range.bytes.returned",
            Counter::AutoPickSpSpeed => "container.auto.pick.spspeed",
            Counter::AutoPickSpRatio => "container.auto.pick.spratio",
            Counter::AutoPickDpSpeed => "container.auto.pick.dpspeed",
            Counter::AutoPickDpRatio => "container.auto.pick.dpratio",
            Counter::AutoPickRaw => "container.auto.pick.raw",
            Counter::CacheHits => "cache.hits",
            Counter::CacheMisses => "cache.misses",
            Counter::CacheInsertions => "cache.insertions",
            Counter::CacheEvictions => "cache.evictions",
            Counter::CacheBytesInserted => "cache.bytes.inserted",
            Counter::CacheBytesEvicted => "cache.bytes.evicted",
        }
    }

    #[cfg_attr(not(feature = "metrics"), allow(dead_code))]
    fn index(self) -> usize {
        Counter::ALL
            .iter()
            .position(|&c| c == self)
            .expect("ALL lists every variant")
    }
}

#[cfg(feature = "metrics")]
mod imp {
    use super::{Counter, Stage};
    use crate::report::{CounterStat, MetricsReport, StageStats};
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
    use std::time::Instant;

    /// Log₂ latency buckets: bucket `b` holds calls with
    /// `2^(b-1) ≤ nanos < 2^b` (bucket 0 is the sub-nanosecond floor).
    pub const HIST_BUCKETS: usize = 64;

    pub struct Cell {
        calls: AtomicU64,
        nanos: AtomicU64,
        bytes: AtomicU64,
        hist: [AtomicU64; HIST_BUCKETS],
    }

    impl Cell {
        const fn new() -> Self {
            Cell {
                calls: AtomicU64::new(0),
                nanos: AtomicU64::new(0),
                bytes: AtomicU64::new(0),
                hist: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            }
        }
    }

    static STAGES: [Cell; Stage::COUNT] = [const { Cell::new() }; Stage::COUNT];
    static COUNTERS: [AtomicU64; Counter::COUNT] = [const { AtomicU64::new(0) }; Counter::COUNT];

    /// A running stage measurement; consume with `finish`/`stop`.
    #[must_use = "a Timer records nothing until finish() or stop() is called"]
    pub struct Timer {
        stage: Stage,
        start: Instant,
    }

    #[inline]
    pub fn timer(stage: Stage) -> Timer {
        Timer {
            stage,
            start: Instant::now(),
        }
    }

    impl Timer {
        /// Records the elapsed time plus `bytes` of payload processed.
        #[inline]
        pub fn finish(self, bytes: u64) {
            let nanos = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let cell = &STAGES[self.stage.index()];
            cell.calls.fetch_add(1, Relaxed);
            cell.nanos.fetch_add(nanos, Relaxed);
            cell.bytes.fetch_add(bytes, Relaxed);
            let bucket = (64 - nanos.leading_zeros()).min(HIST_BUCKETS as u32 - 1) as usize;
            cell.hist[bucket].fetch_add(1, Relaxed);
        }

        /// Records the elapsed time with no byte attribution.
        #[inline]
        pub fn stop(self) {
            self.finish(0);
        }
    }

    /// A reusable monotonic stopwatch (for queue-wait style measurements
    /// where the start and end live in different scopes).
    #[derive(Clone, Copy)]
    pub struct Stopwatch {
        start: Instant,
    }

    impl Stopwatch {
        #[inline]
        pub fn start() -> Self {
            Stopwatch {
                start: Instant::now(),
            }
        }

        #[inline]
        pub fn elapsed_nanos(&self) -> u64 {
            u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
        }
    }

    #[inline]
    pub fn incr(counter: Counter, n: u64) {
        COUNTERS[counter.index()].fetch_add(n, Relaxed);
    }

    pub fn snapshot() -> MetricsReport {
        let mut stages = Vec::new();
        for stage in Stage::ALL {
            let cell = &STAGES[stage.index()];
            let calls = cell.calls.load(Relaxed);
            if calls == 0 {
                continue;
            }
            let hist: Vec<(u32, u64)> = cell
                .hist
                .iter()
                .enumerate()
                .filter_map(|(b, c)| {
                    let c = c.load(Relaxed);
                    (c > 0).then_some((b as u32, c))
                })
                .collect();
            stages.push(StageStats {
                name: stage.name().to_string(),
                calls,
                nanos: cell.nanos.load(Relaxed),
                bytes: cell.bytes.load(Relaxed),
                hist,
            });
        }
        let counters = Counter::ALL
            .iter()
            .filter_map(|&c| {
                let value = COUNTERS[c.index()].load(Relaxed);
                (value > 0).then(|| CounterStat {
                    name: c.name().to_string(),
                    value,
                })
            })
            .collect();
        MetricsReport {
            enabled: true,
            stages,
            counters,
        }
    }

    pub fn reset() {
        for cell in &STAGES {
            cell.calls.store(0, Relaxed);
            cell.nanos.store(0, Relaxed);
            cell.bytes.store(0, Relaxed);
            for bucket in &cell.hist {
                bucket.store(0, Relaxed);
            }
        }
        for counter in &COUNTERS {
            counter.store(0, Relaxed);
        }
    }
}

#[cfg(not(feature = "metrics"))]
mod imp {
    use super::{Counter, Stage};
    use crate::report::MetricsReport;

    /// No-op timer (zero-sized; `metrics` feature disabled).
    #[must_use = "a Timer records nothing until finish() or stop() is called"]
    pub struct Timer;

    #[inline(always)]
    pub fn timer(_stage: Stage) -> Timer {
        Timer
    }

    impl Timer {
        /// No-op.
        #[inline(always)]
        pub fn finish(self, _bytes: u64) {}

        /// No-op.
        #[inline(always)]
        pub fn stop(self) {}
    }

    /// No-op stopwatch (zero-sized; `metrics` feature disabled).
    #[derive(Clone, Copy)]
    pub struct Stopwatch;

    impl Stopwatch {
        #[inline(always)]
        pub fn start() -> Self {
            Stopwatch
        }

        #[inline(always)]
        pub fn elapsed_nanos(&self) -> u64 {
            0
        }
    }

    #[inline(always)]
    pub fn incr(_counter: Counter, _n: u64) {}

    pub fn snapshot() -> MetricsReport {
        MetricsReport {
            enabled: false,
            stages: Vec::new(),
            counters: Vec::new(),
        }
    }

    pub fn reset() {}
}

pub use imp::{incr, reset, snapshot, timer, Stopwatch, Timer};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_complete() {
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), Stage::COUNT);
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Stage::COUNT, "duplicate stage name");
        let mut cnames: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(cnames.len(), Counter::COUNT);
        cnames.sort_unstable();
        cnames.dedup();
        assert_eq!(cnames.len(), Counter::COUNT, "duplicate counter name");
    }

    #[test]
    fn indexes_are_stable() {
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn timers_and_counters_accumulate() {
        reset();
        let t = timer(Stage::RzeEncode);
        std::hint::black_box(0u64);
        t.finish(1024);
        incr(Counter::PoolJobs, 3);
        let report = snapshot();
        assert!(report.enabled);
        let rze = report
            .stages
            .iter()
            .find(|s| s.name == "RZE.encode")
            .expect("stage recorded");
        assert_eq!(rze.calls, 1);
        assert_eq!(rze.bytes, 1024);
        assert_eq!(rze.hist.iter().map(|&(_, c)| c).sum::<u64>(), 1);
        let jobs = report
            .counters
            .iter()
            .find(|c| c.name == "pool.jobs")
            .expect("counter recorded");
        assert_eq!(jobs.value, 3);
        reset();
        assert!(snapshot().stages.is_empty());
    }

    #[cfg(not(feature = "metrics"))]
    #[test]
    fn noop_build_reports_disabled() {
        let t = timer(Stage::RzeEncode);
        t.finish(1024);
        incr(Counter::PoolJobs, 3);
        let report = snapshot();
        assert!(!report.enabled);
        assert!(report.stages.is_empty());
        assert!(report.counters.is_empty());
        assert_eq!(std::mem::size_of::<Timer>(), 0);
        assert_eq!(std::mem::size_of::<Stopwatch>(), 0);
    }

    #[test]
    fn stopwatch_is_monotonic() {
        let w = Stopwatch::start();
        let a = w.elapsed_nanos();
        let b = w.elapsed_nanos();
        assert!(b >= a);
    }
}
