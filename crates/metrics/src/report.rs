//! Report materialization and rendering.
//!
//! [`MetricsReport`] is the serializable snapshot of the live counters
//! (see [`crate::snapshot`]); it converts to and from [`crate::json::Value`]
//! so `fpcc --metrics json`, `fpcc stats`, and the bench harness all share
//! one schema. [`render_value`] is the shared pretty-printer: it recognizes
//! both the metrics-report schema (`"schema": "fpc-metrics-v1"`) and the
//! bench schema (`"schema": "fpc-bench-v1"`) so `fpcc stats` can display
//! either file.

use crate::json::Value;
use std::fmt::Write as _;

/// Schema tag written into every serialized metrics report.
pub const METRICS_SCHEMA: &str = "fpc-metrics-v1";
/// Schema tag the bench harness writes into `BENCH_*.json`.
pub const BENCH_SCHEMA: &str = "fpc-bench-v1";

/// Accumulated statistics for one pipeline stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageStats {
    /// Stable stage name (`Stage::name()`).
    pub name: String,
    /// Completed timer finishes.
    pub calls: u64,
    /// Total monotonic nanoseconds across calls.
    pub nanos: u64,
    /// Total payload bytes attributed via `Timer::finish`.
    pub bytes: u64,
    /// Sparse log₂ latency histogram: `(bucket, count)` where bucket `b`
    /// covers `2^(b-1) ≤ nanos < 2^b`.
    pub hist: Vec<(u32, u64)>,
}

impl StageStats {
    /// Throughput in GB/s (None when no bytes or no time were recorded).
    pub fn gbps(&self) -> Option<f64> {
        if self.bytes == 0 || self.nanos == 0 {
            return None;
        }
        Some(self.bytes as f64 / self.nanos as f64)
    }

    /// Upper bound (in nanos) of the bucket holding the median call.
    pub fn p50_nanos(&self) -> Option<u64> {
        let total: u64 = self.hist.iter().map(|&(_, c)| c).sum();
        if total == 0 {
            return None;
        }
        let mut seen = 0u64;
        for &(bucket, count) in &self.hist {
            seen += count;
            if seen * 2 >= total {
                return Some(1u64.checked_shl(bucket).unwrap_or(u64::MAX));
            }
        }
        None
    }
}

/// One named event counter.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterStat {
    pub name: String,
    pub value: u64,
}

/// A point-in-time snapshot of every live stage timer and counter.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// False when the binary was built without the `metrics` feature —
    /// the report is then structurally valid but empty.
    pub enabled: bool,
    /// Stages with at least one recorded call.
    pub stages: Vec<StageStats>,
    /// Counters with a non-zero value.
    pub counters: Vec<CounterStat>,
}

impl MetricsReport {
    /// Serializes to the `fpc-metrics-v1` JSON schema.
    pub fn to_value(&self) -> Value {
        let stages = self
            .stages
            .iter()
            .map(|s| {
                let hist = s
                    .hist
                    .iter()
                    .map(|&(b, c)| Value::Arr(vec![Value::from(u64::from(b)), Value::from(c)]))
                    .collect();
                Value::Obj(vec![
                    ("name".into(), Value::from(s.name.as_str())),
                    ("calls".into(), Value::from(s.calls)),
                    ("nanos".into(), Value::from(s.nanos)),
                    ("bytes".into(), Value::from(s.bytes)),
                    ("hist".into(), Value::Arr(hist)),
                ])
            })
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|c| {
                Value::Obj(vec![
                    ("name".into(), Value::from(c.name.as_str())),
                    ("value".into(), Value::from(c.value)),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("schema".into(), Value::from(METRICS_SCHEMA)),
            ("enabled".into(), Value::from(self.enabled)),
            ("stages".into(), Value::Arr(stages)),
            ("counters".into(), Value::Arr(counters)),
        ])
    }

    /// Parses a value produced by [`MetricsReport::to_value`].
    pub fn from_value(v: &Value) -> Result<MetricsReport, String> {
        match v.get("schema").and_then(Value::as_str) {
            Some(METRICS_SCHEMA) => {}
            Some(other) => return Err(format!("unsupported schema '{other}'")),
            None => return Err("missing 'schema' field".into()),
        }
        let enabled = v
            .get("enabled")
            .and_then(Value::as_bool)
            .ok_or("missing 'enabled'")?;
        let mut stages = Vec::new();
        for s in v
            .get("stages")
            .and_then(Value::as_arr)
            .ok_or("missing 'stages'")?
        {
            let name = s
                .get("name")
                .and_then(Value::as_str)
                .ok_or("stage missing 'name'")?
                .to_string();
            let field = |k: &str| -> Result<u64, String> {
                s.get(k)
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("stage '{name}' missing '{k}'"))
            };
            let calls = field("calls")?;
            let nanos = field("nanos")?;
            let bytes = field("bytes")?;
            let mut hist = Vec::new();
            for pair in s.get("hist").and_then(Value::as_arr).unwrap_or(&[]) {
                let items = pair.as_arr().ok_or("hist entry must be [bucket, count]")?;
                let [b, c] = items else {
                    return Err("hist entry must be [bucket, count]".into());
                };
                let b = b.as_u64().ok_or("bad hist bucket")?;
                let c = c.as_u64().ok_or("bad hist count")?;
                hist.push((u32::try_from(b).map_err(|_| "hist bucket too large")?, c));
            }
            stages.push(StageStats {
                name,
                calls,
                nanos,
                bytes,
                hist,
            });
        }
        let mut counters = Vec::new();
        for c in v
            .get("counters")
            .and_then(Value::as_arr)
            .ok_or("missing 'counters'")?
        {
            counters.push(CounterStat {
                name: c
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or("counter missing 'name'")?
                    .to_string(),
                value: c
                    .get("value")
                    .and_then(Value::as_u64)
                    .ok_or("counter missing 'value'")?,
            });
        }
        Ok(MetricsReport {
            enabled,
            stages,
            counters,
        })
    }

    /// Human-readable table (used by `--metrics text` and `fpcc stats`).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if !self.enabled {
            out.push_str(
                "metrics were disabled in the producing binary \
                 (build with --features metrics)\n",
            );
            return out;
        }
        if self.stages.is_empty() && self.counters.is_empty() {
            out.push_str("no metrics recorded\n");
            return out;
        }
        if !self.stages.is_empty() {
            let _ = writeln!(
                out,
                "{:<24} {:>10} {:>12} {:>14} {:>9} {:>10}",
                "stage", "calls", "total ms", "bytes", "GB/s", "p50"
            );
            for s in &self.stages {
                let gbps = s
                    .gbps()
                    .map(|g| format!("{g:.3}"))
                    .unwrap_or_else(|| "-".into());
                let p50 = s
                    .p50_nanos()
                    .map(format_nanos)
                    .unwrap_or_else(|| "-".into());
                let _ = writeln!(
                    out,
                    "{:<24} {:>10} {:>12.3} {:>14} {:>9} {:>10}",
                    s.name,
                    s.calls,
                    s.nanos as f64 / 1e6,
                    s.bytes,
                    gbps,
                    p50
                );
            }
        }
        if !self.counters.is_empty() {
            if !self.stages.is_empty() {
                out.push('\n');
            }
            let _ = writeln!(out, "{:<24} {:>12}", "counter", "value");
            for c in &self.counters {
                let _ = writeln!(out, "{:<24} {:>12}", c.name, c.value);
            }
        }
        out
    }
}

/// Formats a nanosecond quantity with a human unit (`512ns`, `4.1us`, …).
fn format_nanos(nanos: u64) -> String {
    let n = nanos as f64;
    if n < 1e3 {
        format!("{nanos}ns")
    } else if n < 1e6 {
        format!("{:.1}us", n / 1e3)
    } else if n < 1e9 {
        format!("{:.1}ms", n / 1e6)
    } else {
        format!("{:.2}s", n / 1e9)
    }
}

/// Pretty-prints a saved JSON document: understands the metrics-report and
/// bench schemas, and falls back to indented JSON for anything else.
pub fn render_value(v: &Value) -> Result<String, String> {
    match v.get("schema").and_then(Value::as_str) {
        Some(METRICS_SCHEMA) => Ok(MetricsReport::from_value(v)?.render_text()),
        Some(BENCH_SCHEMA) => render_bench(v),
        _ => Ok(v.to_json_pretty()),
    }
}

fn render_bench(v: &Value) -> Result<String, String> {
    let mut out = String::new();
    let rev = v.get("rev").and_then(Value::as_str).unwrap_or("?");
    let threads = v.get("threads").and_then(Value::as_u64).unwrap_or(0);
    let calib = v.get("calibration_gbps").and_then(Value::as_f64);
    let _ = write!(out, "bench report rev={rev} threads={threads}");
    if let Some(c) = calib {
        let _ = write!(out, " calibration={c:.3} GB/s");
    }
    out.push('\n');
    if let Some(simd) = v.get("simd") {
        let active = simd.get("active").and_then(Value::as_str).unwrap_or("?");
        let _ = write!(out, "simd dispatch: active={active}");
        if let Some(Value::Obj(kernels)) = simd.get("kernels") {
            for (kernel, tier) in kernels {
                if let Some(t) = tier.as_str() {
                    let _ = write!(out, " {kernel}={t}");
                }
            }
        }
        out.push('\n');
    }
    if let Some(algos) = v.get("algorithms").and_then(Value::as_arr) {
        let _ = writeln!(
            out,
            "\n{:<10} {:>8} {:>15} {:>17} {:>14}",
            "algorithm", "ratio", "compress GB/s", "decompress GB/s", "bytes"
        );
        for a in algos {
            let name = a.get("name").and_then(Value::as_str).unwrap_or("?");
            let num = |k: &str| {
                a.get(k)
                    .and_then(Value::as_f64)
                    .map(|x| format!("{x:.3}"))
                    .unwrap_or_else(|| "-".into())
            };
            let bytes = a
                .get("bytes")
                .and_then(Value::as_u64)
                .map(|b| b.to_string())
                .unwrap_or_else(|| "-".into());
            let _ = writeln!(
                out,
                "{:<10} {:>8} {:>15} {:>17} {:>14}",
                name,
                num("ratio"),
                num("compress_gbps"),
                num("decompress_gbps"),
                bytes
            );
        }
        // Per-algorithm stage breakdowns, where present.
        for a in algos {
            let Some(m) = a.get("metrics") else { continue };
            let report = MetricsReport::from_value(m)?;
            if report.stages.is_empty() && report.counters.is_empty() {
                continue;
            }
            let name = a.get("name").and_then(Value::as_str).unwrap_or("?");
            let _ = writeln!(out, "\n--- {name} stage breakdown ---");
            out.push_str(&report.render_text());
        }
    }
    if let Some(auto) = v.get("auto") {
        let _ = writeln!(out, "\nauto (adaptive codec, mixed-stream suites):");
        for k in ["ratio", "compress_gbps", "decompress_gbps"] {
            if let Some(x) = auto.get(k).and_then(Value::as_f64) {
                let _ = writeln!(out, "  {k:<18} {x:.3}");
            }
        }
        if let Some(b) = auto.get("bytes").and_then(Value::as_u64) {
            let _ = writeln!(out, "  {:<18} {b}", "bytes");
        }
        if let Some(Value::Obj(picks)) = auto.get("picks") {
            let _ = writeln!(out, "  chunk picks:");
            for (name, val) in picks {
                if let Some(n) = val.as_u64() {
                    let _ = writeln!(out, "    {name:<16} {n}");
                }
            }
        }
        if let Some(fixed) = auto.get("fixed").and_then(Value::as_arr) {
            let _ = writeln!(out, "  fixed algorithms on the same suites:");
            for f in fixed {
                let name = f.get("name").and_then(Value::as_str).unwrap_or("?");
                let num = |k: &str| {
                    f.get(k)
                        .and_then(Value::as_f64)
                        .map(|x| format!("{x:.3}"))
                        .unwrap_or_else(|| "-".into())
                };
                let _ = writeln!(
                    out,
                    "    {name:<12} ratio={} compress={} GB/s",
                    num("ratio"),
                    num("compress_gbps")
                );
            }
        }
    }
    if let Some(exec) = v.get("executor") {
        let _ = writeln!(out, "\nexecutor microbench:");
        if let Value::Obj(members) = exec {
            for (k, val) in members {
                if let Some(x) = val.as_f64() {
                    let _ = writeln!(out, "  {k:<20} {x:.3}");
                }
            }
        }
    }
    if let Some(lg) = v.get("loadgen") {
        let _ = writeln!(out, "\nloadgen:");
        if let Value::Obj(members) = lg {
            for (k, val) in members {
                if let Some(s) = val.as_str() {
                    let _ = writeln!(out, "  {k:<18} {s}");
                } else if let Some(n) = val.as_u64() {
                    let _ = writeln!(out, "  {k:<18} {n}");
                } else if let Some(x) = val.as_f64() {
                    let _ = writeln!(out, "  {k:<18} {x:.3}");
                }
            }
        }
    }
    if let Some(fg) = v.get("faultgen") {
        let _ = writeln!(out, "\nfaultgen (fault-injection sweep):");
        if let Value::Obj(members) = fg {
            for (k, val) in members {
                if let Some(s) = val.as_str() {
                    let _ = writeln!(out, "  {k:<18} {s}");
                } else if let Some(n) = val.as_u64() {
                    let _ = writeln!(out, "  {k:<18} {n}");
                } else if let Some(x) = val.as_f64() {
                    let _ = writeln!(out, "  {k:<18} {x:.3}");
                }
            }
        }
        if let Some(Value::Obj(counters)) = fg.get("counters") {
            for (k, val) in counters {
                if let Some(n) = val.as_u64() {
                    let _ = writeln!(out, "  {k:<26} {n}");
                }
            }
        }
        // Only anomalous cells are itemized; a clean sweep stays terse.
        if let Some(cells) = fg.get("cells").and_then(Value::as_arr) {
            for cell in cells {
                let flag = |key: &str| cell.get(key).and_then(Value::as_bool).unwrap_or(false);
                let count = |key: &str| cell.get(key).and_then(Value::as_u64).unwrap_or(0);
                if flag("hung") || flag("crashed") || count("mismatches") > 0 {
                    let _ = writeln!(
                        out,
                        "  !! fault={} seed={} mismatches={} hung={} crashed={}",
                        cell.get("fault").and_then(Value::as_str).unwrap_or("?"),
                        count("seed"),
                        count("mismatches"),
                        flag("hung"),
                        flag("crashed")
                    );
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsReport {
        MetricsReport {
            enabled: true,
            stages: vec![StageStats {
                name: "RZE.encode".into(),
                calls: 4,
                nanos: 2_000_000,
                bytes: 8_000_000,
                hist: vec![(19, 3), (20, 1)],
            }],
            counters: vec![CounterStat {
                name: "pool.jobs".into(),
                value: 7,
            }],
        }
    }

    #[test]
    fn value_roundtrip() {
        let report = sample();
        let text = report.to_value().to_json_pretty();
        let parsed = MetricsReport::from_value(&Value::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn gbps_and_p50() {
        let s = &sample().stages[0];
        assert!((s.gbps().unwrap() - 4.0).abs() < 1e-9);
        assert_eq!(s.p50_nanos(), Some(1 << 19));
        let empty = StageStats {
            name: "x".into(),
            calls: 0,
            nanos: 0,
            bytes: 0,
            hist: vec![],
        };
        assert_eq!(empty.gbps(), None);
        assert_eq!(empty.p50_nanos(), None);
    }

    #[test]
    fn render_text_contains_rows() {
        let text = sample().render_text();
        assert!(text.contains("RZE.encode"));
        assert!(text.contains("pool.jobs"));
        let disabled = MetricsReport {
            enabled: false,
            stages: vec![],
            counters: vec![],
        };
        assert!(disabled.render_text().contains("disabled"));
    }

    #[test]
    fn render_value_dispatches_schemas() {
        let metrics = sample().to_value();
        assert!(render_value(&metrics).unwrap().contains("RZE.encode"));

        let bench = Value::parse(
            r#"{"schema":"fpc-bench-v1","rev":"abc","threads":4,
                "calibration_gbps":1.5,
                "algorithms":[{"name":"SPspeed","ratio":1.4,
                  "compress_gbps":2.0,"decompress_gbps":3.0,"bytes":1000}],
                "executor":{"pool_gbps":5.0,"spawn_gbps":1.0}}"#,
        )
        .unwrap();
        let text = render_value(&bench).unwrap();
        assert!(text.contains("rev=abc"));
        assert!(text.contains("SPspeed"));
        assert!(text.contains("pool_gbps"));

        let other = Value::parse(r#"{"x":1}"#).unwrap();
        assert!(render_value(&other).unwrap().contains("\"x\""));
    }

    #[test]
    fn from_value_rejects_bad_schema() {
        let v = Value::parse(r#"{"schema":"nope","enabled":true}"#).unwrap();
        assert!(MetricsReport::from_value(&v).is_err());
        assert!(MetricsReport::from_value(&Value::parse("{}").unwrap()).is_err());
    }
}
