//! Minimal JSON tree, parser, and writer.
//!
//! The workspace is dependency-free by design, so the metrics report, the
//! bench harness's `BENCH_*.json`, and `fpcc stats` all go through this
//! module instead of an external serde stack. It supports the full JSON
//! grammar (escapes, `\uXXXX` with surrogate pairs, nesting up to a fixed
//! depth cap) and writes numbers with integer formatting when the value is
//! an exact integer so counters survive a round-trip textually unchanged.

use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All numbers are f64; integers up to 2^53 round-trip exactly.
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Insertion-ordered key/value pairs (no dedup — last `get` match wins
    /// is irrelevant because we never emit duplicate keys).
    Obj(Vec<(String, Value)>),
}

/// Parse failure: byte offset plus a static description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub msg: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Nesting cap: deeper documents are rejected rather than risking a stack
/// overflow on hostile input.
const MAX_DEPTH: usize = 128;

impl Value {
    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Object member lookup (None for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Number as u64 when it is an exact non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Two-space-indented rendering with a trailing newline.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => write_num(out, *n),
            Value::Str(s) => write_str(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push(']');
            }
            Value::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Num(n)
    }
}
impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Num(n as f64)
    }
}
impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Num(n as f64)
    }
}
impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}
impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Value {
        Value::Arr(items)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    use fmt::Write;
    if !n.is_finite() {
        // JSON has no Inf/NaN; null is the least-surprising stand-in.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else {
        // Rust's shortest-roundtrip Display for f64 is valid JSON here.
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            msg,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.pos += 1; // '{'
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code).ok_or_else(|| self.err("bad codepoint"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("bad codepoint"))?
                            };
                            out.push(c);
                            continue; // hex4 advanced pos past the escape
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy a full UTF-8 scalar (input is &str, so boundaries
                    // are valid).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).map_err(|_| self.err("bad UTF-8"))?;
                    let c = text.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(chunk).map_err(|_| self.err("bad \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part (JSON forbids leading zeros, but accepting them on
        // input is harmless and keeps the scanner simple).
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digit"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected fraction digit"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected exponent digit"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(Value::Num).map_err(|_| ParseError {
            offset: start,
            msg: "number out of range",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let v = Value::parse(text).unwrap();
            assert_eq!(v.to_json(), text);
        }
    }

    #[test]
    fn integers_stay_integers() {
        assert_eq!(Value::Num(1_000_000.0).to_json(), "1000000");
        assert_eq!(Value::Num(0.25).to_json(), "0.25");
        assert_eq!(Value::Num(f64::NAN).to_json(), "null");
    }

    #[test]
    fn nested_roundtrip() {
        let text = r#"{"a":[1,2,{"b":"x\ny"}],"c":null,"d":1.5e3}"#;
        let v = Value::parse(text).unwrap();
        let compact = v.to_json();
        assert_eq!(Value::parse(&compact).unwrap(), v);
        let pretty = v.to_json_pretty();
        assert_eq!(Value::parse(&pretty).unwrap(), v);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("d").unwrap().as_f64(), Some(1500.0));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn unicode_escapes() {
        let v = Value::parse(r#""\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
        // Writer escapes control chars.
        assert_eq!(Value::Str("\u{1}".into()).to_json(), r#""\u0001""#);
    }

    #[test]
    fn rejects_malformed() {
        for text in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "\"\\u12\"",
            "\"\\ud800x\"",
            "01x",
            "1 2",
            "nul",
            "+1",
            "--1",
            "[1 2]",
            "\"unterminated",
        ] {
            assert!(Value::parse(text).is_err(), "should reject {text:?}");
        }
    }

    #[test]
    fn depth_cap() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Value::parse(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(Value::parse(&ok).is_ok());
    }

    #[test]
    fn as_u64_bounds() {
        assert_eq!(Value::Num(42.0).as_u64(), Some(42));
        assert_eq!(Value::Num(-1.0).as_u64(), None);
        assert_eq!(Value::Num(1.5).as_u64(), None);
    }
}
