//! A miniature LC-framework-style pipeline synthesizer.
//!
//! The paper's algorithms were *designed* by generating over 100 000
//! candidate transformation chains with the LC framework and analyzing the
//! best (§3). This module reproduces that methodology at small scale: it
//! enumerates every chain of up to two word-level transformations followed
//! by a coding stage, measures each candidate's compression ratio on probe
//! data, and ranks them — demonstrating how the published pipelines
//! (DIFFMS → MPLG and DIFFMS → BIT → RZE) emerge as winners on smooth
//! floating-point data.

use fpc_transforms::{bit_transpose, diffms, mplg, rze, words, zigzag};

/// A word-level (32-bit) transformation stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WordStage {
    /// Difference coding + magnitude-sign (the paper's DIFFMS).
    Diffms,
    /// Plain difference coding without the representation change.
    DiffOnly,
    /// Two's-complement → magnitude-sign conversion alone.
    Zigzag,
    /// XOR with the previous word.
    XorPrev,
    /// 32×32 bit transposition (the paper's BIT).
    BitTranspose,
}

/// A terminal coding stage (the stage that actually shrinks data).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coder {
    /// Store the words verbatim (baseline).
    Raw,
    /// Enhanced MPLG: per-subchunk leading-zero elimination.
    Mplg,
    /// Repeated Zero Elimination at byte granularity.
    Rze,
}

/// One synthesized pipeline: up to two word stages, then a coder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pipeline {
    /// Word-level stages, applied in order.
    pub stages: Vec<WordStage>,
    /// Terminal coder.
    pub coder: Coder,
}

impl core::fmt::Display for Pipeline {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        for s in &self.stages {
            let name = match s {
                WordStage::Diffms => "DIFFMS",
                WordStage::DiffOnly => "DIFF",
                WordStage::Zigzag => "ZIGZAG",
                WordStage::XorPrev => "XOR",
                WordStage::BitTranspose => "BIT",
            };
            write!(f, "{name} -> ")?;
        }
        f.write_str(match self.coder {
            Coder::Raw => "RAW",
            Coder::Mplg => "MPLG",
            Coder::Rze => "RZE",
        })
    }
}

fn apply_stage(stage: WordStage, w: &mut [u32]) {
    match stage {
        WordStage::Diffms => diffms::encode32(w),
        WordStage::DiffOnly => {
            for i in (1..w.len()).rev() {
                w[i] = w[i].wrapping_sub(w[i - 1]);
            }
        }
        WordStage::Zigzag => zigzag::encode32_slice(w),
        WordStage::XorPrev => {
            for i in (1..w.len()).rev() {
                w[i] ^= w[i - 1];
            }
        }
        WordStage::BitTranspose => bit_transpose::transpose32(w),
    }
}

/// Encoded size of `pipeline` on `data`, processed in 16 KiB chunks with
/// the container's raw fallback (every stage used here is reversible, so
/// the size is an honest compressed size).
pub fn encoded_size(pipeline: &Pipeline, data: &[u8]) -> usize {
    let mut total = 0usize;
    for chunk in data.chunks(16 * 1024) {
        let (mut w, tail) = words::bytes_to_u32(chunk);
        for &stage in &pipeline.stages {
            apply_stage(stage, &mut w);
        }
        let mut out = Vec::new();
        match pipeline.coder {
            Coder::Raw => words::u32_to_bytes(&w, &mut out),
            Coder::Mplg => mplg::encode32(&w, &mut out),
            Coder::Rze => {
                let mut bytes = Vec::with_capacity(w.len() * 4);
                words::u32_to_bytes(&w, &mut bytes);
                rze::encode(&bytes, &mut out);
            }
        }
        // Raw-chunk fallback, as in the container.
        total += out.len().min(chunk.len()) + tail.len() + 4;
    }
    total
}

/// Enumerates every pipeline with at most `max_stages` word stages.
pub fn enumerate(max_stages: usize) -> Vec<Pipeline> {
    let stages = [
        WordStage::Diffms,
        WordStage::DiffOnly,
        WordStage::Zigzag,
        WordStage::XorPrev,
        WordStage::BitTranspose,
    ];
    let coders = [Coder::Raw, Coder::Mplg, Coder::Rze];
    let mut chains: Vec<Vec<WordStage>> = vec![vec![]];
    let mut frontier: Vec<Vec<WordStage>> = vec![vec![]];
    for _ in 0..max_stages {
        let mut next = Vec::new();
        for chain in &frontier {
            for &s in &stages {
                let mut c = chain.clone();
                c.push(s);
                next.push(c);
            }
        }
        chains.extend(next.iter().cloned());
        frontier = next;
    }
    let mut out = Vec::new();
    for chain in chains {
        for &coder in &coders {
            out.push(Pipeline {
                stages: chain.clone(),
                coder,
            });
        }
    }
    out
}

/// Runs the synthesis study: every candidate ranked by compressed size on
/// `data` (ascending — best first).
pub fn rank(data: &[u8], max_stages: usize) -> Vec<(Pipeline, usize)> {
    let mut ranked: Vec<(Pipeline, usize)> = enumerate(max_stages)
        .into_iter()
        .map(|p| {
            let size = encoded_size(&p, data);
            (p, size)
        })
        .collect();
    ranked.sort_by_key(|(_, size)| *size);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_probe() -> Vec<u8> {
        (0..60_000)
            .flat_map(|i| {
                let v = 320.0f32 + 60.0 * (i as f32 * 5e-5).sin();
                f32::from_bits(v.to_bits() & !0x3FF).to_bits().to_le_bytes()
            })
            .collect()
    }

    /// One file from each synthetic SP suite (the "many diverse inputs"
    /// flavour of the paper's search, in miniature).
    fn suite_probe() -> Vec<u8> {
        fpc_datagen::single_precision_suites(fpc_datagen::Scale::Small)
            .iter()
            .flat_map(|s| s.files.first())
            .flat_map(|f| f.values.iter().flat_map(|v| v.to_bits().to_le_bytes()))
            .collect()
    }

    #[test]
    fn enumeration_counts() {
        // chains of length 0..=2 over 5 stages: 1 + 5 + 25 = 31; x3 coders.
        assert_eq!(enumerate(2).len(), 31 * 3);
        assert_eq!(enumerate(0).len(), 3);
    }

    #[test]
    fn every_candidate_beats_nothing_catastrophically() {
        // The raw fallback caps every candidate at input size + overhead.
        let data = smooth_probe();
        for (p, size) in rank(&data, 2) {
            assert!(size <= data.len() + data.len() / 1024 + 64, "{p}: {size}");
        }
    }

    #[test]
    fn papers_pipelines_rank_highly() {
        // The design outcome the paper reports, at mini scale: the
        // published chains land in the top quartile of all candidates and
        // crush the no-transform baselines. (On our synthetic probes,
        // XOR-prefixed chains can edge the subtract-based ones because XOR
        // has no borrow propagation into quantized trailing-zero bits; the
        // paper searched over many *real* inputs, so the assertion is
        // about rank, not absolute first place.)
        let data = suite_probe();
        let ranked = rank(&data, 2);
        let rank_of = |p: &Pipeline| {
            ranked
                .iter()
                .position(|(q, _)| q == p)
                .expect("candidate enumerated")
        };
        let spratio_like = Pipeline {
            stages: vec![WordStage::Diffms, WordStage::BitTranspose],
            coder: Coder::Rze,
        };
        let spspeed_like = Pipeline {
            stages: vec![WordStage::Diffms],
            coder: Coder::Mplg,
        };
        assert!(
            rank_of(&spratio_like) < ranked.len() / 4,
            "SPratio chain ranked low"
        );
        // SPspeed's chain is among the best MPLG-coded candidates (MPLG
        // trades ratio for speed, so it never wins the pure-ratio ranking).
        let mplg_rank = ranked
            .iter()
            .filter(|(p, _)| p.coder == Coder::Mplg)
            .position(|(p, _)| *p == spspeed_like)
            .expect("candidate enumerated");
        assert!(
            mplg_rank < 5,
            "SPspeed chain ranked {mplg_rank} among MPLG chains"
        );
        let raw = encoded_size(
            &Pipeline {
                stages: vec![],
                coder: Coder::Raw,
            },
            &data,
        );
        // SPspeed trades ratio for speed; on this probe it lands just under
        // 80% of raw, while SPratio clears 75%.
        assert!(encoded_size(&spspeed_like, &data) * 5 < raw * 4);
        assert!(encoded_size(&spratio_like, &data) * 4 < raw * 3);
        // Every top-10 candidate ends in RZE: a coding stage is essential,
        // and byte-granular zero elimination is the strongest one here.
        for (p, _) in &ranked[..10] {
            assert_eq!(p.coder, Coder::Rze, "{p}");
        }
    }

    #[test]
    fn diffms_beats_plain_diff_before_rze() {
        // The representation change (Figure 2): with mixed-sign deltas,
        // plain differences have leading-one bytes that zero elimination
        // cannot remove, while magnitude-sign differences have leading
        // zeros. (Enhanced MPLG partially self-heals via its per-subchunk
        // zigzag fallback, so RZE is where the conversion is essential.)
        let data: Vec<u8> = (0..60_000)
            .flat_map(|i| {
                // A wiggly signal: deltas alternate sign every sample.
                let v = 320.0f32
                    + 60.0 * (i as f32 * 5e-5).sin()
                    + 0.5 * if i % 2 == 0 { 1.0 } else { -1.0 };
                f32::from_bits(v.to_bits() & !0x3F).to_bits().to_le_bytes()
            })
            .collect();
        let with_ms = encoded_size(
            &Pipeline {
                stages: vec![WordStage::Diffms, WordStage::BitTranspose],
                coder: Coder::Rze,
            },
            &data,
        );
        let without_ms = encoded_size(
            &Pipeline {
                stages: vec![WordStage::DiffOnly, WordStage::BitTranspose],
                coder: Coder::Rze,
            },
            &data,
        );
        assert!(
            with_ms < without_ms,
            "DIFFMS {with_ms} vs DIFF {without_ms}"
        );
    }

    #[test]
    fn display_formats_chains() {
        let p = Pipeline {
            stages: vec![WordStage::Diffms, WordStage::BitTranspose],
            coder: Coder::Rze,
        };
        assert_eq!(p.to_string(), "DIFFMS -> BIT -> RZE");
    }
}
