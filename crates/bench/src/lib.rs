//! Benchmark harness regenerating the paper's evaluation (Figures 8–19,
//! Table 1, and the ablation study).
//!
//! The harness measures what can be measured and models what cannot:
//!
//! * **compression ratios** — always real, from running every codec on the
//!   synthetic SDRBench-like suites;
//! * **CPU throughput** (Figures 12/13/18/19) — real wall-clock
//!   measurements, median of N runs, exactly the paper's method (§4);
//! * **GPU throughput** (Figures 8–11/14–17) — modeled by
//!   `fpc_gpu_sim::DeviceProfile` (see DESIGN.md's substitution table);
//!   ratios in those figures are still real.
//!
//! Aggregation follows §4: per-suite geometric means, then the geometric
//! mean of the suite means, "so as not to over-weigh the datasets that
//! contain more files than others".
//!
//! Run `cargo run -p fpc-bench --release --bin harness -- all` to
//! regenerate every experiment; see `figures` for the experiment index.

pub mod entries;
pub mod faultgen;
pub mod figures;
pub mod loadgen;
pub mod measure;
pub mod microbench;
pub mod pareto;
pub mod perf;
pub mod plot;
pub mod rangebench;
pub mod report;
pub mod synth;

/// Geometric mean of positive values (ignores an empty slice by returning
/// zero).
pub fn geo_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geo_mean_basics() {
        assert_eq!(geo_mean(&[]), 0.0);
        assert!((geo_mean(&[4.0]) - 4.0).abs() < 1e-12);
        assert!((geo_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geo_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geo_mean_is_scale_invariant() {
        let a = geo_mean(&[1.0, 10.0, 100.0]);
        let b = geo_mean(&[2.0, 20.0, 200.0]);
        assert!((b / a - 2.0).abs() < 1e-9);
    }
}
