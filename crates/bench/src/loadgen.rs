//! Load generator for the `fpc-serve` service: drives N concurrent
//! client connections against a running server and reports throughput
//! plus request-latency percentiles.
//!
//! Each connection issues a fixed number of remote compress requests,
//! timing every round trip. Payloads come from a deterministic pool of
//! [`LoadgenConfig::keys`] distinct series, sampled per request with a
//! zipfian distribution ([`LoadgenConfig::zipf`]) — the skewed-popularity
//! shape a content-addressed cache is built for. Warm-up requests
//! ([`LoadgenConfig::warmup`]) are issued but discarded before any
//! latency is recorded, matching the perf bin's warm-up discard. The
//! first response on every connection is cross-checked against a local
//! [`Compressor`] run — the container output is thread-count independent,
//! so the remote stream must be byte-identical. The aggregate lands in
//! the `fpc-bench-v1` JSON schema under a `loadgen` key
//! (`results/BENCH_<rev>.json`, rendered by `fpcc stats`).
//!
//! [`run_cache_compare`] goes further: it boots two in-process servers —
//! one with the hot-chunk cache, one without — drives the identical
//! zipfian workload at both, audits byte-identity of every response, and
//! reports the cache's hit rate next to both latency profiles.

use fpc_core::{Algorithm, Compressor};
use fpc_metrics::json::Value;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What to drive at the server.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Concurrent connections.
    pub conns: usize,
    /// Measured requests issued per connection (after warm-up).
    pub requests: usize,
    /// Uncompressed payload bytes per request.
    pub payload_bytes: usize,
    /// Algorithm for the remote compress requests.
    pub algo: Algorithm,
    /// Socket timeout applied to every read/write.
    pub timeout: Option<Duration>,
    /// Distinct payloads in the key pool. Every request samples one key;
    /// 1 restores the old single-payload behavior.
    pub keys: usize,
    /// Zipf exponent for key sampling: key `k` is drawn with weight
    /// `1 / (k+1)^zipf`. 0.0 is uniform; 1.0 is the classic skew where a
    /// few hot keys dominate.
    pub zipf: f64,
    /// Warm-up requests per connection, issued and discarded before any
    /// latency is recorded (cache warming, connection setup, allocator
    /// steady state).
    pub warmup: usize,
    /// Cross-check every response against the local reference stream,
    /// not just the first per connection. Costs a memcmp per request, so
    /// latency runs leave it off; the cache-compare harness turns it on.
    pub audit_all: bool,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            addr: "127.0.0.1:9463".into(),
            conns: 8,
            requests: 16,
            payload_bytes: 1 << 20,
            algo: Algorithm::SpRatio,
            timeout: Some(Duration::from_secs(60)),
            keys: 1,
            zipf: 0.0,
            warmup: 0,
            audit_all: false,
        }
    }
}

/// Aggregated outcome of one loadgen run.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Connections driven.
    pub conns: usize,
    /// Measured requests per connection.
    pub requests: usize,
    /// Uncompressed payload bytes per request.
    pub payload_bytes: usize,
    /// Algorithm name (paper spelling).
    pub algo: String,
    /// Distinct payload keys in the pool.
    pub keys: usize,
    /// Zipf exponent used for key sampling.
    pub zipf: f64,
    /// Warm-up requests discarded per connection.
    pub warmup: usize,
    /// Successful measured operations across all connections.
    pub ops: u64,
    /// Failed operations (transport, protocol, server error, or a remote
    /// stream that was not byte-identical to the local one).
    pub errors: u64,
    /// Total uncompressed bytes pushed through the server (measured
    /// requests only).
    pub bytes: u64,
    /// Wall-clock seconds for the whole run (including warm-up).
    pub wall_secs: f64,
    /// Uncompressed GB/s across all connections.
    pub throughput_gbps: f64,
    /// Latency percentiles over all successful measured requests,
    /// microseconds.
    pub p50_us: u64,
    /// 90th percentile, microseconds.
    pub p90_us: u64,
    /// 99th percentile, microseconds.
    pub p99_us: u64,
    /// Slowest request, microseconds.
    pub max_us: u64,
}

/// Nearest-rank percentile over an ascending-sorted slice; `p` in [0, 100].
/// Returns 0 for an empty slice.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The deterministic payload for key 0: a smooth f32 series that
/// compresses meaningfully (neither all-zero nor incompressible).
pub fn payload(bytes: usize) -> Vec<u8> {
    payload_for_key(0, bytes)
}

/// The deterministic payload for one pool key: the same smooth series,
/// phase-shifted per key so distinct keys share no chunk bytes.
pub fn payload_for_key(key: usize, bytes: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(bytes);
    let phase = key as f64 * 0.37;
    let mut i = 0u32;
    while out.len() + 4 <= bytes {
        let v = (f64::from(i) * 1e-3 + phase).sin() as f32 * 7.25;
        out.extend_from_slice(&v.to_bits().to_le_bytes());
        i = i.wrapping_add(1);
    }
    out.resize(bytes, 0xA5);
    out
}

/// Zipfian key sampler: key `k` (0-based) carries weight `1/(k+1)^s`.
/// Deterministic given its RNG; `s = 0` degenerates to uniform.
pub struct ZipfSampler {
    /// Cumulative weights; the last entry is the total mass.
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Precomputes the inverse-CDF table for `keys` keys and exponent `s`.
    pub fn new(keys: usize, s: f64) -> ZipfSampler {
        let mut cumulative = Vec::with_capacity(keys.max(1));
        let mut total = 0.0f64;
        for k in 0..keys.max(1) {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cumulative.push(total);
        }
        ZipfSampler { cumulative }
    }

    /// Draws the next key index.
    pub fn sample(&self, rng: &mut fpc_prng::Rng) -> usize {
        let total = *self.cumulative.last().expect("at least one key");
        // 53 uniform mantissa bits are plenty for a pool of payload keys.
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * total;
        self.cumulative.partition_point(|&c| c <= u)
    }
}

/// Runs the load against a live server.
///
/// Per-request failures are counted in [`LoadgenReport::errors`] rather
/// than aborting the run; only a config that cannot produce any traffic is
/// an `Err`.
///
/// # Errors
///
/// When `conns`, `requests`, `payload_bytes`, or `keys` is zero.
pub fn run(config: &LoadgenConfig) -> Result<LoadgenReport, String> {
    if config.conns == 0 || config.requests == 0 || config.payload_bytes == 0 || config.keys == 0 {
        return Err("conns, requests, payload_bytes, and keys must all be positive".into());
    }
    let pool: Arc<Vec<Vec<u8>>> = Arc::new(
        (0..config.keys)
            .map(|k| payload_for_key(k, config.payload_bytes))
            .collect(),
    );
    // The reference streams every audited response must match
    // byte-for-byte.
    let expected: Arc<Vec<Vec<u8>>> = Arc::new(
        pool.iter()
            .map(|data| Compressor::new(config.algo).compress_bytes(data))
            .collect(),
    );
    let errors = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let mut handles = Vec::with_capacity(config.conns);
    for conn in 0..config.conns {
        let config = config.clone();
        let pool = Arc::clone(&pool);
        let expected = Arc::clone(&expected);
        let errors = Arc::clone(&errors);
        let handle = std::thread::Builder::new()
            .name(format!("fpc-loadgen-{conn}"))
            .spawn(move || drive_connection(&config, conn, &pool, &expected, &errors))
            .map_err(|e| format!("spawning connection thread: {e}"))?;
        handles.push(handle);
    }
    let mut latencies: Vec<u64> = Vec::with_capacity(config.conns * config.requests);
    for handle in handles {
        latencies.extend(handle.join().map_err(|_| "connection thread panicked")?);
    }
    let wall_secs = start.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let ops = latencies.len() as u64;
    let bytes = ops * config.payload_bytes as u64;
    Ok(LoadgenReport {
        conns: config.conns,
        requests: config.requests,
        payload_bytes: config.payload_bytes,
        algo: config.algo.to_string(),
        keys: config.keys,
        zipf: config.zipf,
        warmup: config.warmup,
        ops,
        errors: errors.load(Ordering::SeqCst),
        bytes,
        wall_secs,
        throughput_gbps: bytes as f64 / 1e9 / wall_secs.max(1e-9),
        p50_us: percentile(&latencies, 50.0) / 1_000,
        p90_us: percentile(&latencies, 90.0) / 1_000,
        p99_us: percentile(&latencies, 99.0) / 1_000,
        max_us: latencies.last().copied().unwrap_or(0) / 1_000,
    })
}

/// One connection's worth of traffic; returns the latency (nanos) of each
/// successful measured request. The first [`LoadgenConfig::warmup`]
/// requests are issued identically but never recorded.
fn drive_connection(
    config: &LoadgenConfig,
    conn: usize,
    pool: &[Vec<u8>],
    expected: &[Vec<u8>],
    errors: &AtomicU64,
) -> Vec<u64> {
    let mut client = match fpc_serve::Client::connect(config.addr.as_str(), config.timeout) {
        Ok(c) => c,
        Err(_) => {
            // The whole connection's quota counts as failed.
            errors.fetch_add(config.requests as u64, Ordering::SeqCst);
            return Vec::new();
        }
    };
    // Deterministic per-connection key sequence: every run (and both
    // servers of a cache comparison) sees the identical workload.
    let mut rng = fpc_prng::Rng::seed_from_u64(0xF9C1_0AD0 ^ conn as u64);
    let sampler = ZipfSampler::new(config.keys, config.zipf);
    let mut latencies = Vec::with_capacity(config.requests);
    for req in 0..config.warmup + config.requests {
        let key = sampler.sample(&mut rng);
        let warm = req < config.warmup;
        let t0 = Instant::now();
        match client.compress(config.algo, &pool[key]) {
            // Byte-identity with the local stream is part of the contract;
            // checking every response would mostly measure memcmp, so by
            // default only the first response per connection is audited
            // (audit_all checks them all).
            Ok(stream) => {
                let audited = config.audit_all || req == 0;
                if audited && stream != expected[key] {
                    errors.fetch_add(1, Ordering::SeqCst);
                } else if !warm {
                    latencies.push(t0.elapsed().as_nanos() as u64);
                }
            }
            Err(_) => {
                errors.fetch_add(1, Ordering::SeqCst);
            }
        }
    }
    latencies
}

impl LoadgenReport {
    /// Serializes as the `loadgen` member of an `fpc-bench-v1` report.
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("conns".into(), Value::from(self.conns as u64)),
            ("requests".into(), Value::from(self.requests as u64)),
            (
                "payload_bytes".into(),
                Value::from(self.payload_bytes as u64),
            ),
            ("algo".into(), Value::from(self.algo.as_str())),
            ("keys".into(), Value::from(self.keys as u64)),
            ("zipf".into(), Value::from(self.zipf)),
            ("warmup".into(), Value::from(self.warmup as u64)),
            ("ops".into(), Value::from(self.ops)),
            ("errors".into(), Value::from(self.errors)),
            ("bytes".into(), Value::from(self.bytes)),
            ("wall_secs".into(), Value::from(self.wall_secs)),
            ("throughput_gbps".into(), Value::from(self.throughput_gbps)),
            ("p50_us".into(), Value::from(self.p50_us)),
            ("p90_us".into(), Value::from(self.p90_us)),
            ("p99_us".into(), Value::from(self.p99_us)),
            ("max_us".into(), Value::from(self.max_us)),
        ])
    }
}

/// Parameters of a cache-on vs cache-off A/B run ([`run_cache_compare`]).
#[derive(Debug, Clone)]
pub struct CacheCompareConfig {
    /// Workload shape, shared verbatim by both servers; `addr` is ignored
    /// (both servers bind an ephemeral loopback port).
    pub load: LoadgenConfig,
    /// Cache budget for the cache-on server.
    pub cache_bytes: u64,
    /// Codec threads per server.
    pub threads: usize,
}

impl Default for CacheCompareConfig {
    fn default() -> CacheCompareConfig {
        CacheCompareConfig {
            load: LoadgenConfig {
                keys: 8,
                zipf: 1.0,
                warmup: 4,
                audit_all: true,
                ..LoadgenConfig::default()
            },
            cache_bytes: 256 << 20,
            threads: 0,
        }
    }
}

/// Outcome of a cache-on vs cache-off A/B run over the identical workload.
#[derive(Debug, Clone)]
pub struct CacheCompareReport {
    /// The run against the cache-enabled server.
    pub cached: LoadgenReport,
    /// The run against the cache-free server.
    pub uncached: LoadgenReport,
    /// Cache budget that was configured.
    pub cache_bytes: u64,
    /// Cache hits over the whole run (including warm-up).
    pub hits: u64,
    /// Cache misses over the whole run.
    pub misses: u64,
    /// `hits / (hits + misses)`, 0 when idle.
    pub hit_rate: f64,
}

impl CacheCompareReport {
    /// Serializes as the `loadgen` member of an `fpc-bench-v1` report:
    /// flat keys only, so `fpcc stats` renders every figure.
    pub fn to_value(&self) -> Value {
        let mut members = match self.cached.to_value() {
            Value::Obj(m) => m,
            _ => unreachable!("loadgen reports serialize as objects"),
        };
        // The shared shape fields stay as-is; latency/throughput fields
        // above describe the cache-on run. Append the cache figures and
        // the cache-off profile for side-by-side rendering.
        members.push(("cache_bytes".into(), Value::from(self.cache_bytes)));
        members.push(("cache_hits".into(), Value::from(self.hits)));
        members.push(("cache_misses".into(), Value::from(self.misses)));
        members.push(("cache_hit_rate".into(), Value::from(self.hit_rate)));
        members.push(("nocache_p50_us".into(), Value::from(self.uncached.p50_us)));
        members.push(("nocache_p90_us".into(), Value::from(self.uncached.p90_us)));
        members.push(("nocache_p99_us".into(), Value::from(self.uncached.p99_us)));
        members.push((
            "nocache_throughput_gbps".into(),
            Value::from(self.uncached.throughput_gbps),
        ));
        members.push(("nocache_errors".into(), Value::from(self.uncached.errors)));
        Value::Obj(members)
    }
}

/// Boots two in-process servers — cache-off first, then cache-on — and
/// drives the identical deterministic workload at both with every
/// response audited against the local reference stream. The cache-on
/// server's hit/miss figures are read straight off its
/// [`fpc_cache::ChunkCache`] handle.
///
/// # Errors
///
/// Invalid workload shape, bind failures, or a server that did not shut
/// down cleanly.
pub fn run_cache_compare(config: &CacheCompareConfig) -> Result<CacheCompareReport, String> {
    if config.cache_bytes == 0 {
        return Err("cache_bytes must be positive (0 disables the cache)".into());
    }
    let (uncached, _) = run_against(config, 0)?;
    let (cached, cache) = run_against(config, config.cache_bytes)?;
    let stats = cache
        .expect("cache_bytes > 0 implies a cache handle")
        .stats();
    Ok(CacheCompareReport {
        cached,
        uncached,
        cache_bytes: config.cache_bytes,
        hits: stats.hits,
        misses: stats.misses,
        hit_rate: stats.hit_rate(),
    })
}

/// Boots one loopback server with the given cache budget, drives the
/// comparison workload at it, shuts it down, and returns the report plus
/// the cache handle (when one was enabled).
fn run_against(
    config: &CacheCompareConfig,
    cache_bytes: u64,
) -> Result<(LoadgenReport, Option<Arc<fpc_cache::ChunkCache>>), String> {
    let serve_config = fpc_serve::ServeConfig {
        threads: config.threads,
        cache_bytes,
        ..fpc_serve::ServeConfig::default()
    };
    let server = fpc_serve::Server::bind("127.0.0.1:0", serve_config)
        .map_err(|e| format!("binding loopback server: {e}"))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    let cache = server.cache();
    let shutdown = server.shutdown_flag();
    let handle = std::thread::spawn(move || server.run());
    let load = LoadgenConfig {
        addr: addr.to_string(),
        audit_all: true,
        ..config.load.clone()
    };
    let result = run(&load);
    shutdown.store(true, Ordering::SeqCst);
    handle
        .join()
        .map_err(|_| "server thread panicked".to_string())?
        .map_err(|e| format!("server run: {e}"))?;
    Ok((result?, cache))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[42], 50.0), 42);
        assert_eq!(percentile(&[42], 99.0), 42);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 90.0), 90);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 100.0), 100);
        assert_eq!(percentile(&v, 0.0), 1);
    }

    #[test]
    fn payload_is_deterministic_and_sized() {
        let a = payload(4096);
        let b = payload(4096);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4096);
        // Odd sizes are padded, not truncated.
        assert_eq!(payload(10).len(), 10);
        // The series must actually compress.
        let stream = Compressor::new(Algorithm::SpRatio).compress_bytes(&a);
        assert!(stream.len() < a.len());
        // Distinct keys produce distinct payloads of the same size.
        let other = payload_for_key(3, 4096);
        assert_eq!(other.len(), 4096);
        assert_ne!(other, a);
    }

    #[test]
    fn zipf_sampler_is_skewed_and_uniform_at_zero() {
        let mut rng = fpc_prng::Rng::seed_from_u64(7);
        let skewed = ZipfSampler::new(8, 1.2);
        let mut counts = [0u32; 8];
        for _ in 0..4000 {
            counts[skewed.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[7] * 2, "zipf must favor low keys");
        assert!(counts.iter().all(|&c| c > 0), "every key must be reachable");

        let uniform = ZipfSampler::new(4, 0.0);
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            counts[uniform.sample(&mut rng)] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(max - min < 400, "s=0 must be near-uniform, got {counts:?}");
    }

    #[test]
    fn zero_config_rejected() {
        let config = LoadgenConfig {
            conns: 0,
            ..LoadgenConfig::default()
        };
        assert!(run(&config).is_err());
        let config = LoadgenConfig {
            keys: 0,
            ..LoadgenConfig::default()
        };
        assert!(run(&config).is_err());
    }

    #[test]
    fn loopback_run_counts_every_request() {
        let server =
            fpc_serve::Server::bind("127.0.0.1:0", fpc_serve::ServeConfig::default()).unwrap();
        let addr = server.local_addr().unwrap();
        let shutdown = server.shutdown_flag();
        let handle = std::thread::spawn(move || server.run());

        let config = LoadgenConfig {
            addr: addr.to_string(),
            conns: 2,
            requests: 3,
            payload_bytes: 64 << 10,
            keys: 3,
            zipf: 1.0,
            warmup: 1,
            ..LoadgenConfig::default()
        };
        let report = run(&config).unwrap();
        // Warm-up requests are issued but never recorded.
        assert_eq!(report.ops, 6);
        assert_eq!(report.errors, 0);
        assert_eq!(report.bytes, 6 * (64 << 10));
        assert!(report.p50_us <= report.p90_us);
        assert!(report.p90_us <= report.p99_us);
        assert!(report.p99_us <= report.max_us);
        assert!(report.throughput_gbps > 0.0);
        let value = report.to_value();
        assert_eq!(value.get("ops").and_then(Value::as_u64), Some(6));
        assert_eq!(value.get("warmup").and_then(Value::as_u64), Some(1));

        shutdown.store(true, Ordering::SeqCst);
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn cache_compare_hits_warm_and_stays_byte_identical() {
        let config = CacheCompareConfig {
            load: LoadgenConfig {
                conns: 4,
                requests: 6,
                payload_bytes: 128 << 10,
                keys: 4,
                zipf: 1.0,
                warmup: 2,
                audit_all: true,
                ..LoadgenConfig::default()
            },
            cache_bytes: 64 << 20,
            threads: 0,
        };
        let report = run_cache_compare(&config).unwrap();
        // audit_all: every response on both servers was byte-compared to
        // the local reference stream.
        assert_eq!(report.cached.errors, 0, "cache-on responses diverged");
        assert_eq!(report.uncached.errors, 0, "cache-off responses diverged");
        assert_eq!(report.cached.ops, 24);
        assert_eq!(report.uncached.ops, 24);
        assert!(
            report.hit_rate >= 0.5,
            "warm zipfian workload must mostly hit, got {:.3}",
            report.hit_rate
        );
        let value = report.to_value();
        for key in ["cache_hit_rate", "cache_hits", "nocache_p50_us", "p50_us"] {
            assert!(value.get(key).is_some(), "missing {key} in JSON");
        }
    }
}
