//! Load generator for the `fpc-serve` service: drives N concurrent
//! client connections against a running server and reports throughput
//! plus request-latency percentiles.
//!
//! Each connection issues a fixed number of remote compress requests over
//! the same deterministic payload, timing every round trip. The first
//! response on every connection is cross-checked against a local
//! [`Compressor`] run — the container output is thread-count independent,
//! so the remote stream must be byte-identical. The aggregate lands in
//! the `fpc-bench-v1` JSON schema under a `loadgen` key
//! (`results/BENCH_<rev>.json`, rendered by `fpcc stats`).

use fpc_core::{Algorithm, Compressor};
use fpc_metrics::json::Value;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What to drive at the server.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Concurrent connections.
    pub conns: usize,
    /// Requests issued per connection.
    pub requests: usize,
    /// Uncompressed payload bytes per request.
    pub payload_bytes: usize,
    /// Algorithm for the remote compress requests.
    pub algo: Algorithm,
    /// Socket timeout applied to every read/write.
    pub timeout: Option<Duration>,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            addr: "127.0.0.1:9463".into(),
            conns: 8,
            requests: 16,
            payload_bytes: 1 << 20,
            algo: Algorithm::SpRatio,
            timeout: Some(Duration::from_secs(60)),
        }
    }
}

/// Aggregated outcome of one loadgen run.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Connections driven.
    pub conns: usize,
    /// Requests per connection.
    pub requests: usize,
    /// Uncompressed payload bytes per request.
    pub payload_bytes: usize,
    /// Algorithm name (paper spelling).
    pub algo: String,
    /// Successful operations across all connections.
    pub ops: u64,
    /// Failed operations (transport, protocol, server error, or a remote
    /// stream that was not byte-identical to the local one).
    pub errors: u64,
    /// Total uncompressed bytes pushed through the server.
    pub bytes: u64,
    /// Wall-clock seconds for the whole run.
    pub wall_secs: f64,
    /// Uncompressed GB/s across all connections.
    pub throughput_gbps: f64,
    /// Latency percentiles over all successful requests, microseconds.
    pub p50_us: u64,
    /// 90th percentile, microseconds.
    pub p90_us: u64,
    /// 99th percentile, microseconds.
    pub p99_us: u64,
    /// Slowest request, microseconds.
    pub max_us: u64,
}

/// Nearest-rank percentile over an ascending-sorted slice; `p` in [0, 100].
/// Returns 0 for an empty slice.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The deterministic payload every request carries: a smooth f32 series
/// that compresses meaningfully (neither all-zero nor incompressible).
pub fn payload(bytes: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(bytes);
    let mut i = 0u32;
    while out.len() + 4 <= bytes {
        let v = (f64::from(i) * 1e-3).sin() as f32 * 7.25;
        out.extend_from_slice(&v.to_bits().to_le_bytes());
        i = i.wrapping_add(1);
    }
    out.resize(bytes, 0xA5);
    out
}

/// Runs the load against a live server.
///
/// Per-request failures are counted in [`LoadgenReport::errors`] rather
/// than aborting the run; only a config that cannot produce any traffic is
/// an `Err`.
///
/// # Errors
///
/// When `conns`, `requests`, or `payload_bytes` is zero.
pub fn run(config: &LoadgenConfig) -> Result<LoadgenReport, String> {
    if config.conns == 0 || config.requests == 0 || config.payload_bytes == 0 {
        return Err("conns, requests, and payload_bytes must all be positive".into());
    }
    let data = Arc::new(payload(config.payload_bytes));
    // The reference stream every remote response must match byte-for-byte.
    let expected = Arc::new(Compressor::new(config.algo).compress_bytes(&data));
    let errors = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let mut handles = Vec::with_capacity(config.conns);
    for conn in 0..config.conns {
        let config = config.clone();
        let data = Arc::clone(&data);
        let expected = Arc::clone(&expected);
        let errors = Arc::clone(&errors);
        let handle = std::thread::Builder::new()
            .name(format!("fpc-loadgen-{conn}"))
            .spawn(move || drive_connection(&config, &data, &expected, &errors))
            .map_err(|e| format!("spawning connection thread: {e}"))?;
        handles.push(handle);
    }
    let mut latencies: Vec<u64> = Vec::with_capacity(config.conns * config.requests);
    for handle in handles {
        latencies.extend(handle.join().map_err(|_| "connection thread panicked")?);
    }
    let wall_secs = start.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let ops = latencies.len() as u64;
    let bytes = ops * config.payload_bytes as u64;
    Ok(LoadgenReport {
        conns: config.conns,
        requests: config.requests,
        payload_bytes: config.payload_bytes,
        algo: config.algo.to_string(),
        ops,
        errors: errors.load(Ordering::SeqCst),
        bytes,
        wall_secs,
        throughput_gbps: bytes as f64 / 1e9 / wall_secs.max(1e-9),
        p50_us: percentile(&latencies, 50.0) / 1_000,
        p90_us: percentile(&latencies, 90.0) / 1_000,
        p99_us: percentile(&latencies, 99.0) / 1_000,
        max_us: latencies.last().copied().unwrap_or(0) / 1_000,
    })
}

/// One connection's worth of traffic; returns the latency (nanos) of each
/// successful request.
fn drive_connection(
    config: &LoadgenConfig,
    data: &[u8],
    expected: &[u8],
    errors: &AtomicU64,
) -> Vec<u64> {
    let mut client = match fpc_serve::Client::connect(config.addr.as_str(), config.timeout) {
        Ok(c) => c,
        Err(_) => {
            // The whole connection's quota counts as failed.
            errors.fetch_add(config.requests as u64, Ordering::SeqCst);
            return Vec::new();
        }
    };
    let mut latencies = Vec::with_capacity(config.requests);
    for req in 0..config.requests {
        let t0 = Instant::now();
        match client.compress(config.algo, data) {
            // Byte-identity with the local stream is part of the contract;
            // checking every response would mostly measure memcmp, so only
            // the first response per connection is audited.
            Ok(stream) if req > 0 || stream == expected => {
                latencies.push(t0.elapsed().as_nanos() as u64);
            }
            _ => {
                errors.fetch_add(1, Ordering::SeqCst);
            }
        }
    }
    latencies
}

impl LoadgenReport {
    /// Serializes as the `loadgen` member of an `fpc-bench-v1` report.
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("conns".into(), Value::from(self.conns as u64)),
            ("requests".into(), Value::from(self.requests as u64)),
            (
                "payload_bytes".into(),
                Value::from(self.payload_bytes as u64),
            ),
            ("algo".into(), Value::from(self.algo.as_str())),
            ("ops".into(), Value::from(self.ops)),
            ("errors".into(), Value::from(self.errors)),
            ("bytes".into(), Value::from(self.bytes)),
            ("wall_secs".into(), Value::from(self.wall_secs)),
            ("throughput_gbps".into(), Value::from(self.throughput_gbps)),
            ("p50_us".into(), Value::from(self.p50_us)),
            ("p90_us".into(), Value::from(self.p90_us)),
            ("p99_us".into(), Value::from(self.p99_us)),
            ("max_us".into(), Value::from(self.max_us)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[42], 50.0), 42);
        assert_eq!(percentile(&[42], 99.0), 42);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 90.0), 90);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 100.0), 100);
        assert_eq!(percentile(&v, 0.0), 1);
    }

    #[test]
    fn payload_is_deterministic_and_sized() {
        let a = payload(4096);
        let b = payload(4096);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4096);
        // Odd sizes are padded, not truncated.
        assert_eq!(payload(10).len(), 10);
        // The series must actually compress.
        let stream = Compressor::new(Algorithm::SpRatio).compress_bytes(&a);
        assert!(stream.len() < a.len());
    }

    #[test]
    fn zero_config_rejected() {
        let config = LoadgenConfig {
            conns: 0,
            ..LoadgenConfig::default()
        };
        assert!(run(&config).is_err());
    }

    #[test]
    fn loopback_run_counts_every_request() {
        let server =
            fpc_serve::Server::bind("127.0.0.1:0", fpc_serve::ServeConfig::default()).unwrap();
        let addr = server.local_addr().unwrap();
        let shutdown = server.shutdown_flag();
        let handle = std::thread::spawn(move || server.run());

        let config = LoadgenConfig {
            addr: addr.to_string(),
            conns: 2,
            requests: 3,
            payload_bytes: 64 << 10,
            ..LoadgenConfig::default()
        };
        let report = run(&config).unwrap();
        assert_eq!(report.ops, 6);
        assert_eq!(report.errors, 0);
        assert_eq!(report.bytes, 6 * (64 << 10));
        assert!(report.p50_us <= report.p90_us);
        assert!(report.p90_us <= report.p99_us);
        assert!(report.p99_us <= report.max_us);
        assert!(report.throughput_gbps > 0.0);
        let value = report.to_value();
        assert_eq!(value.get("ops").and_then(Value::as_u64), Some(6));

        shutdown.store(true, Ordering::SeqCst);
        handle.join().unwrap().unwrap();
    }
}
