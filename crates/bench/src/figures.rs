//! The experiment index: every table and figure of the paper's evaluation,
//! mapped to a runnable definition.
//!
//! | Id | Paper content |
//! |---|---|
//! | `table1` | comparator roster with device/datatype metadata |
//! | `stages` | Figure 1: the stage table of the four algorithms |
//! | `fig08`/`fig09` | RTX 4090, SP, ratio vs comp/decomp throughput |
//! | `fig10`/`fig11` | A100, SP |
//! | `fig12`/`fig13` | CPU (measured), SP |
//! | `fig14`/`fig15` | RTX 4090, DP |
//! | `fig16`/`fig17` | A100, DP |
//! | `fig18`/`fig19` | CPU (measured), DP |
//! | `ablation` | design-choice ablations (MPLG fallback, FCM window, adaptive split, chunk size) |

use crate::entries::{entries_for, Entry};
use crate::measure::{
    byte_suites_f32, byte_suites_f64, measure_cpu, measure_gpu_modeled, ByteSuite, CodecResult,
    Config,
};
use crate::pareto::Point;
use fpc_datagen::{double_precision_suites, single_precision_suites, Scale};
use fpc_gpu_sim::DeviceProfile;

/// Element precision of a panel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// Single precision (the 7 SP suites).
    Sp,
    /// Double precision (the 5 DP suites).
    Dp,
}

/// Where throughput numbers come from.
#[derive(Debug, Clone, PartialEq)]
pub enum Target {
    /// Real wall-clock measurement on this machine's CPU.
    CpuMeasured,
    /// Modeled GPU throughput for a device profile.
    GpuModeled(DeviceProfile),
}

/// Throughput direction shown on a figure's x-axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Compression throughput.
    Compression,
    /// Decompression throughput.
    Decompression,
}

/// One figure of the paper.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Experiment id, e.g. `"fig08"`.
    pub id: &'static str,
    /// Human-readable description.
    pub title: &'static str,
    /// SP or DP panel.
    pub precision: Precision,
    /// Measurement target.
    pub target: Target,
    /// X axis.
    pub axis: Axis,
}

/// All twelve scatter figures, in paper order.
pub fn all_figures() -> Vec<Figure> {
    let rtx = || Target::GpuModeled(DeviceProfile::rtx4090());
    let a100 = || Target::GpuModeled(DeviceProfile::a100());
    let cpu = || Target::CpuMeasured;
    vec![
        Figure {
            id: "fig08",
            title: "RTX 4090, SP: ratio vs compression throughput",
            precision: Precision::Sp,
            target: rtx(),
            axis: Axis::Compression,
        },
        Figure {
            id: "fig09",
            title: "RTX 4090, SP: ratio vs decompression throughput",
            precision: Precision::Sp,
            target: rtx(),
            axis: Axis::Decompression,
        },
        Figure {
            id: "fig10",
            title: "A100, SP: ratio vs compression throughput",
            precision: Precision::Sp,
            target: a100(),
            axis: Axis::Compression,
        },
        Figure {
            id: "fig11",
            title: "A100, SP: ratio vs decompression throughput",
            precision: Precision::Sp,
            target: a100(),
            axis: Axis::Decompression,
        },
        Figure {
            id: "fig12",
            title: "CPU, SP: ratio vs compression throughput",
            precision: Precision::Sp,
            target: cpu(),
            axis: Axis::Compression,
        },
        Figure {
            id: "fig13",
            title: "CPU, SP: ratio vs decompression throughput",
            precision: Precision::Sp,
            target: cpu(),
            axis: Axis::Decompression,
        },
        Figure {
            id: "fig14",
            title: "RTX 4090, DP: ratio vs compression throughput",
            precision: Precision::Dp,
            target: rtx(),
            axis: Axis::Compression,
        },
        Figure {
            id: "fig15",
            title: "RTX 4090, DP: ratio vs decompression throughput",
            precision: Precision::Dp,
            target: rtx(),
            axis: Axis::Decompression,
        },
        Figure {
            id: "fig16",
            title: "A100, DP: ratio vs compression throughput",
            precision: Precision::Dp,
            target: a100(),
            axis: Axis::Compression,
        },
        Figure {
            id: "fig17",
            title: "A100, DP: ratio vs decompression throughput",
            precision: Precision::Dp,
            target: a100(),
            axis: Axis::Decompression,
        },
        Figure {
            id: "fig18",
            title: "CPU, DP: ratio vs compression throughput",
            precision: Precision::Dp,
            target: cpu(),
            axis: Axis::Compression,
        },
        Figure {
            id: "fig19",
            title: "CPU, DP: ratio vs decompression throughput",
            precision: Precision::Dp,
            target: cpu(),
            axis: Axis::Decompression,
        },
    ]
}

/// Looks up a figure by id.
pub fn figure(id: &str) -> Option<Figure> {
    all_figures().into_iter().find(|f| f.id == id)
}

/// Builds the byte suites for a precision at a scale.
pub fn suites_for(precision: Precision, scale: Scale) -> Vec<ByteSuite> {
    match precision {
        Precision::Sp => byte_suites_f32(&single_precision_suites(scale)),
        Precision::Dp => byte_suites_f64(&double_precision_suites(scale)),
    }
}

/// Builds the byte suites for a precision from an external data manifest
/// (e.g. the real SDRBench files; see `fpc_datagen::external`).
///
/// # Errors
///
/// Propagates manifest/file errors.
pub fn suites_from_manifest(
    precision: Precision,
    manifest: &std::path::Path,
) -> std::io::Result<Vec<ByteSuite>> {
    Ok(match precision {
        Precision::Sp => byte_suites_f32(&fpc_datagen::external::load_sp_suites(manifest)?),
        Precision::Dp => byte_suites_f64(&fpc_datagen::external::load_dp_suites(manifest)?),
    })
}

/// Runs one measurement panel (shared by the compression/decompression
/// figure pair): every eligible codec over every suite.
pub fn run_panel(
    precision: Precision,
    target: &Target,
    suites: &[ByteSuite],
    config: &Config,
) -> Vec<CodecResult> {
    let width = match precision {
        Precision::Sp => 4,
        Precision::Dp => 8,
    };
    let gpu = matches!(target, Target::GpuModeled(_));
    let entries: Vec<Entry> = entries_for(gpu, width);
    let mut results = Vec::new();
    for entry in &entries {
        match target {
            Target::CpuMeasured => results.push(measure_cpu(entry, suites, config)),
            Target::GpuModeled(profile) => {
                if let Some(r) = measure_gpu_modeled(entry, suites, profile, config) {
                    results.push(r);
                }
            }
        }
    }
    results
}

/// Projects panel results onto one figure's axis.
pub fn points_for_axis(results: &[CodecResult], axis: Axis) -> Vec<Point> {
    results
        .iter()
        .map(|r| Point {
            name: r.name.clone(),
            throughput: match axis {
                Axis::Compression => r.compress_gbps,
                Axis::Decompression => r.decompress_gbps,
            },
            ratio: r.ratio,
        })
        .collect()
}

/// One row of the ablation study.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Which design choice is varied.
    pub study: &'static str,
    /// The variant label.
    pub variant: String,
    /// Geo-mean compression ratio over the relevant suites.
    pub ratio: f64,
    /// Wall-clock compression throughput in GB/s (single measurement).
    pub compress_gbps: f64,
}

/// Runs the ablation studies called out in DESIGN.md. All variants are
/// encoder-side, so every stream is verified with the standard decoder.
pub fn run_ablations(scale: Scale) -> Vec<AblationRow> {
    use fpc_core::{Algorithm, Compressor, PipelineOptions};
    let sp = suites_for(Precision::Sp, scale);
    let dp = suites_for(Precision::Dp, scale);
    let mut rows = Vec::new();

    let run = |study: &'static str,
               variant: String,
               compressor: &Compressor,
               suites: &[ByteSuite]|
     -> AblationRow {
        let mut ratios = Vec::new();
        let mut gbps = Vec::new();
        for suite in suites {
            let mut suite_ratios = Vec::new();
            let mut suite_gbps = Vec::new();
            for (_, bytes, _) in &suite.files {
                let start = std::time::Instant::now();
                let stream = compressor.compress_bytes(bytes);
                let dt = start.elapsed().as_secs_f64();
                assert_eq!(
                    fpc_core::decompress_bytes(&stream).expect("ablation stream"),
                    *bytes
                );
                suite_ratios.push(bytes.len() as f64 / stream.len() as f64);
                suite_gbps.push(bytes.len() as f64 / 1e9 / dt);
            }
            ratios.push(crate::geo_mean(&suite_ratios));
            gbps.push(crate::geo_mean(&suite_gbps));
        }
        AblationRow {
            study,
            variant,
            ratio: crate::geo_mean(&ratios),
            compress_gbps: crate::geo_mean(&gbps),
        }
    };

    // 1. Enhanced-MPLG zigzag fallback (SPspeed/DPspeed).
    for (algo, suites) in [(Algorithm::SpSpeed, &sp), (Algorithm::DpSpeed, &dp)] {
        for fallback in [true, false] {
            let opts = PipelineOptions {
                mplg_fallback: fallback,
                ..PipelineOptions::default()
            };
            let c = Compressor::new(algo).with_options(opts);
            rows.push(run(
                "mplg-fallback",
                format!("{algo} fallback={fallback}"),
                &c,
                suites,
            ));
        }
    }

    // 2. FCM match window (DPratio).
    for window in [1usize, 2, 4, 8] {
        let opts = PipelineOptions {
            fcm_window: window,
            ..PipelineOptions::default()
        };
        let c = Compressor::new(Algorithm::DpRatio).with_options(opts);
        rows.push(run("fcm-window", format!("window={window}"), &c, &dp));
    }

    // 3. Adaptive vs fixed RAZE/RARE split (DPratio).
    {
        let c = Compressor::new(Algorithm::DpRatio);
        rows.push(run("raze-split", "adaptive".to_string(), &c, &dp));
        for kb in [2u8, 4, 6] {
            let opts = PipelineOptions {
                fixed_split: Some(kb),
                ..PipelineOptions::default()
            };
            let c = Compressor::new(Algorithm::DpRatio).with_options(opts);
            rows.push(run(
                "raze-split",
                format!("fixed k={}", kb as u32 * 8),
                &c,
                &dp,
            ));
        }
    }

    // 4. Chunk size sweep (SPratio).
    for chunk_kb in [4usize, 16, 64, 256] {
        let c = Compressor::new(Algorithm::SpRatio).with_chunk_size(chunk_kb * 1024);
        rows.push(run("chunk-size", format!("{chunk_kb} KiB"), &c, &sp));
    }

    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_figures_defined() {
        let figs = all_figures();
        assert_eq!(figs.len(), 12);
        let ids: Vec<&str> = figs.iter().map(|f| f.id).collect();
        for id in ["fig08", "fig12", "fig15", "fig19"] {
            assert!(ids.contains(&id));
        }
        assert!(figure("fig08").is_some());
        assert!(figure("fig99").is_none());
    }

    #[test]
    fn gpu_sp_panel_produces_points() {
        let suites = suites_for(Precision::Sp, Scale::Small);
        // Keep it fast: first suite only.
        let panel = run_panel(
            Precision::Sp,
            &Target::GpuModeled(DeviceProfile::rtx4090()),
            &suites[..1],
            &Config {
                repetitions: 1,
                verify: true,
                threads: 0,
            },
        );
        assert!(panel.len() >= 8, "got {}", panel.len());
        let ours: Vec<&CodecResult> = panel.iter().filter(|r| r.ours).collect();
        assert_eq!(ours.len(), 2); // SPspeed + SPratio
        for r in &panel {
            assert!(r.ratio > 0.2, "{}: {}", r.name, r.ratio);
            assert!(r.compress_gbps > 0.0);
        }
    }

    #[test]
    fn axis_projection() {
        let results = vec![CodecResult {
            name: "x".into(),
            ours: false,
            ratio: 2.0,
            compress_gbps: 10.0,
            decompress_gbps: 20.0,
        }];
        assert_eq!(
            points_for_axis(&results, Axis::Compression)[0].throughput,
            10.0
        );
        assert_eq!(
            points_for_axis(&results, Axis::Decompression)[0].throughput,
            20.0
        );
    }
}
