//! Console and CSV emission of experiment results.

use crate::figures::{Axis, Figure};
use crate::measure::CodecResult;
use crate::pareto::{pareto_front, Point};
use fpc_metrics::json::Value;
use std::io::Write;
use std::path::Path;

/// Renders one figure as a markdown table (ratio, throughput, Pareto mark),
/// sorted by descending throughput like reading the scatter right-to-left.
pub fn figure_table(figure: &Figure, results: &[CodecResult]) -> String {
    let points = crate::figures::points_for_axis(results, figure.axis);
    let on_front = pareto_front(&points);
    let mut rows: Vec<(usize, &Point)> = points.iter().enumerate().collect();
    rows.sort_by(|a, b| b.1.throughput.partial_cmp(&a.1.throughput).expect("finite"));
    let axis_name = match figure.axis {
        Axis::Compression => "compress GB/s",
        Axis::Decompression => "decompress GB/s",
    };
    let mut out = String::new();
    out.push_str(&format!("### {}: {}\n\n", figure.id, figure.title));
    out.push_str(&format!("| compressor | ratio | {axis_name} | Pareto |\n"));
    out.push_str("|---|---|---|---|\n");
    for (idx, p) in rows {
        let star = if on_front[idx] { "*" } else { "" };
        out.push_str(&format!(
            "| {}{} | {:.3} | {:.3} | {} |\n",
            p.name,
            if results[idx].ours { " (ours)" } else { "" },
            p.ratio,
            p.throughput,
            star
        ));
    }
    let front = crate::pareto::front_names(&points);
    out.push_str(&format!("\nPareto front: {}\n", front.join(", ")));
    out
}

/// Writes panel results as CSV (one row per codec).
///
/// # Errors
///
/// Propagates I/O errors from file creation or writes.
pub fn write_csv(path: &Path, results: &[CodecResult]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "codec,ours,ratio,compress_gbps,decompress_gbps")?;
    for r in results {
        writeln!(
            f,
            "{},{},{:.6},{:.6},{:.6}",
            r.name, r.ours, r.ratio, r.compress_gbps, r.decompress_gbps
        )?;
    }
    Ok(())
}

/// Converts panel results to a JSON array — the same `CodecResult` vector
/// that feeds [`figure_table`] and [`write_csv`], so the harness's `--json`
/// output can never drift from the printed tables.
pub fn results_to_value(results: &[CodecResult]) -> Value {
    Value::Arr(
        results
            .iter()
            .map(|r| {
                Value::Obj(vec![
                    ("codec".into(), Value::from(r.name.as_str())),
                    ("ours".into(), Value::from(r.ours)),
                    ("ratio".into(), Value::from(r.ratio)),
                    ("compress_gbps".into(), Value::from(r.compress_gbps)),
                    ("decompress_gbps".into(), Value::from(r.decompress_gbps)),
                ])
            })
            .collect(),
    )
}

/// Assembles the harness's `--json` document from every measured panel.
pub fn panels_to_value(panels: &[(String, Vec<CodecResult>)]) -> Value {
    Value::Obj(vec![
        ("schema".into(), Value::from("fpc-harness-v1")),
        (
            "panels".into(),
            Value::Obj(
                panels
                    .iter()
                    .map(|(key, results)| (key.clone(), results_to_value(results)))
                    .collect(),
            ),
        ),
    ])
}

/// Reads a panel CSV written by [`write_csv`].
///
/// # Errors
///
/// Fails on I/O errors or malformed rows.
pub fn read_csv(path: &Path) -> std::io::Result<Vec<CodecResult>> {
    let content = std::fs::read_to_string(path)?;
    let mut out = Vec::new();
    for (lineno, line) in content.lines().enumerate().skip(1) {
        let fields: Vec<&str> = line.split(',').collect();
        let parse_err = || {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{}:{}: malformed row", path.display(), lineno + 1),
            )
        };
        if fields.len() != 5 {
            return Err(parse_err());
        }
        out.push(CodecResult {
            name: fields[0].to_string(),
            ours: fields[1] == "true",
            ratio: fields[2].parse().map_err(|_| parse_err())?,
            compress_gbps: fields[3].parse().map_err(|_| parse_err())?,
            decompress_gbps: fields[4].parse().map_err(|_| parse_err())?,
        });
    }
    Ok(out)
}

/// Renders Table 1: the comparator roster with metadata.
pub fn table1() -> String {
    let mut out = String::new();
    out.push_str("### table1: lossless compressors used in comparison\n\n");
    out.push_str("| device | compressor | datatype | source |\n|---|---|---|---|\n");
    for codec in fpc_baselines::roster() {
        let device = match codec.device() {
            fpc_baselines::Device::Both => "CPU+GPU",
            fpc_baselines::Device::Gpu => "GPU",
            fpc_baselines::Device::Cpu => "CPU",
        };
        let datatype = match codec.datatype() {
            fpc_baselines::Datatype::F32 => "FP32",
            fpc_baselines::Datatype::F64 => "FP64",
            fpc_baselines::Datatype::F32F64 => "FP32 & FP64",
            fpc_baselines::Datatype::General => "General",
        };
        out.push_str(&format!(
            "| {device} | {} | {datatype} | reimplemented (fpc-baselines) |\n",
            codec.name()
        ));
    }
    out.push_str(
        "| CPU+GPU | SPspeed/SPratio/DPspeed/DPratio | FP32 / FP64 | this crate (ours) |\n",
    );
    out
}

/// Renders Figure 1: the stage table of the four algorithms.
pub fn stages() -> String {
    let mut out = String::new();
    out.push_str("### fig01: the stages (transformations) of the 4 algorithms\n\n");
    out.push_str("| algorithm | stages |\n|---|---|\n");
    for algo in fpc_core::Algorithm::ALL {
        out.push_str(&format!(
            "| {} | {} |\n",
            algo.name(),
            algo.stages().join(" -> ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{Precision, Target};
    use fpc_gpu_sim::DeviceProfile;

    fn sample_results() -> Vec<CodecResult> {
        vec![
            CodecResult {
                name: "SPspeed".into(),
                ours: true,
                ratio: 1.4,
                compress_gbps: 518.0,
                decompress_gbps: 540.0,
            },
            CodecResult {
                name: "Slowpoke".into(),
                ours: false,
                ratio: 1.1,
                compress_gbps: 3.0,
                decompress_gbps: 5.0,
            },
        ]
    }

    fn sample_figure() -> Figure {
        Figure {
            id: "fig08",
            title: "test",
            precision: Precision::Sp,
            target: Target::GpuModeled(DeviceProfile::rtx4090()),
            axis: Axis::Compression,
        }
    }

    #[test]
    fn figure_table_marks_pareto() {
        let table = figure_table(&sample_figure(), &sample_results());
        assert!(table.contains("SPspeed (ours)"));
        assert!(table.contains("Pareto front: SPspeed"));
        // The dominated codec is not on the front.
        assert!(!table.contains("Pareto front: SPspeed, Slowpoke"));
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("fpc-bench-test");
        let path = dir.join("panel.csv");
        write_csv(&path, &sample_results()).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("codec,ours,ratio"));
        assert!(content.contains("SPspeed,true,1.4"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_read_roundtrip() {
        let dir = std::env::temp_dir().join("fpc-bench-csvrt");
        let path = dir.join("panel.csv");
        write_csv(&path, &sample_results()).unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].name, "SPspeed");
        assert!(back[0].ours);
        assert!((back[0].compress_gbps - 518.0).abs() < 1e-9);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn table1_lists_roster() {
        let t = table1();
        assert!(t.contains("| GPU | GFC |"));
        assert!(t.contains("| CPU | FPC |"));
        assert!(t.contains("SPspeed/SPratio"));
    }

    #[test]
    fn stages_matches_figure1() {
        let s = stages();
        assert!(s.contains("| SPratio | DIFFMS -> BIT -> RZE |"));
        assert!(s.contains("| DPratio | FCM -> DIFFMS -> RAZE -> RARE |"));
    }
}
