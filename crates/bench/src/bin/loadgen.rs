//! Loadgen driver: hammers a running `fpcc serve` instance with concurrent
//! connections and writes latency/throughput figures to
//! `DIR/BENCH_<rev>.json` (schema `fpc-bench-v1`, `loadgen` section).
//!
//! ```text
//! cargo run -p fpc-bench --release --bin loadgen -- \
//!     --addr 127.0.0.1:9463 [--conns 8] [--requests 16] \
//!     [--bytes 1048576] [--algo spratio] [--keys 1] [--zipf 0.0] \
//!     [--warmup 0] [--out results] [--rev REV]
//! ```
//!
//! With `--cache-compare BYTES` the `--addr` flag is dropped: the driver
//! boots two in-process loopback servers (hot-chunk cache of BYTES vs no
//! cache), runs the identical zipfian workload at both with every
//! response byte-audited, and reports both latency profiles plus the
//! cache hit rate.
//!
//! Exit codes: 0 clean run, 1 at least one failed request, 2 usage error,
//! 3 cannot reach the server or write the report.

use fpc_bench::loadgen::{run, run_cache_compare, CacheCompareConfig, LoadgenConfig};
use fpc_core::Algorithm;
use fpc_metrics::json::Value;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: loadgen (--addr HOST:PORT | --cache-compare BYTES) [--conns N] \
         [--requests N] [--bytes N] [--algo NAME] [--keys N] [--zipf S] \
         [--warmup N] [--out DIR] [--rev REV]"
    );
    ExitCode::from(2)
}

fn resolve_rev(explicit: Option<&str>) -> String {
    if let Some(rev) = explicit {
        return rev.to_string();
    }
    for var in ["FPC_REV", "GITHUB_SHA"] {
        if let Ok(v) = std::env::var(var) {
            let v = v.trim().to_string();
            if !v.is_empty() {
                return v.chars().take(12).collect();
            }
        }
    }
    if let Ok(out) = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
    {
        if out.status.success() {
            if let Ok(s) = String::from_utf8(out.stdout) {
                let s = s.trim().to_string();
                if !s.is_empty() {
                    return s;
                }
            }
        }
    }
    "local".to_string()
}

/// Keeps revision labels filesystem-safe.
fn sanitize(rev: &str) -> String {
    let cleaned: String = rev
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "local".to_string()
    } else {
        cleaned
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };
    let cache_compare: Option<u64> = match flag("--cache-compare") {
        None => None,
        Some(v) => match v.parse::<u64>() {
            Ok(n) if n > 0 => Some(n),
            _ => {
                eprintln!("loadgen: --cache-compare expects a positive byte budget");
                return usage();
            }
        },
    };
    let addr = match (flag("--addr"), cache_compare) {
        (Some(addr), _) => addr.to_string(),
        // Cache comparison boots its own loopback servers.
        (None, Some(_)) => String::new(),
        (None, None) => return usage(),
    };
    let mut config = LoadgenConfig {
        addr,
        ..LoadgenConfig::default()
    };
    let positive = |name: &str, default: usize| -> Result<usize, ()> {
        match flag(name) {
            None => Ok(default),
            Some(v) => match v.parse::<usize>() {
                Ok(n) if n > 0 => Ok(n),
                _ => {
                    eprintln!("loadgen: {name} expects a positive integer");
                    Err(())
                }
            },
        }
    };
    let (Ok(conns), Ok(requests), Ok(bytes), Ok(keys)) = (
        positive("--conns", config.conns),
        positive("--requests", config.requests),
        positive("--bytes", config.payload_bytes),
        positive("--keys", config.keys),
    ) else {
        return usage();
    };
    config.conns = conns;
    config.requests = requests;
    config.payload_bytes = bytes;
    config.keys = keys;
    if let Some(v) = flag("--zipf") {
        match v.parse::<f64>() {
            Ok(s) if s >= 0.0 => config.zipf = s,
            _ => {
                eprintln!("loadgen: --zipf expects a non-negative exponent");
                return usage();
            }
        }
    }
    if let Some(v) = flag("--warmup") {
        match v.parse::<usize>() {
            Ok(n) => config.warmup = n,
            Err(_) => {
                eprintln!("loadgen: --warmup expects an integer");
                return usage();
            }
        }
    }
    if let Some(name) = flag("--algo") {
        config.algo = match name.to_ascii_lowercase().as_str() {
            "spspeed" => Algorithm::SpSpeed,
            "spratio" => Algorithm::SpRatio,
            "dpspeed" => Algorithm::DpSpeed,
            "dpratio" => Algorithm::DpRatio,
            other => {
                eprintln!("loadgen: unknown algorithm '{other}'");
                return usage();
            }
        };
    }
    let out_dir = PathBuf::from(flag("--out").unwrap_or("results"));
    let rev = sanitize(&resolve_rev(flag("--rev")));

    // Either one run against a live server, or the in-process cache A/B.
    let (loadgen_value, summary, errors) = if let Some(cache_bytes) = cache_compare {
        eprintln!(
            "[loadgen] cache-compare: {} conns x {} requests x {} bytes ({}), \
             {} keys zipf {} warmup {}, cache {} bytes vs none",
            config.conns,
            config.requests,
            config.payload_bytes,
            config.algo,
            config.keys,
            config.zipf,
            config.warmup,
            cache_bytes
        );
        let compare = CacheCompareConfig {
            load: config,
            cache_bytes,
            threads: 0,
        };
        let report = match run_cache_compare(&compare) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("[loadgen] {e}");
                return ExitCode::from(3);
            }
        };
        let summary = format!(
            "cache: hit_rate={:.3} p50={}us p90={}us throughput={:.3} GB/s | \
             no-cache: p50={}us p90={}us throughput={:.3} GB/s",
            report.hit_rate,
            report.cached.p50_us,
            report.cached.p90_us,
            report.cached.throughput_gbps,
            report.uncached.p50_us,
            report.uncached.p90_us,
            report.uncached.throughput_gbps,
        );
        let errors = report.cached.errors + report.uncached.errors;
        (report.to_value(), summary, errors)
    } else {
        eprintln!(
            "[loadgen] {} conns x {} requests x {} bytes ({}) against {} \
             ({} keys, zipf {}, warmup {})",
            config.conns,
            config.requests,
            config.payload_bytes,
            config.algo,
            config.addr,
            config.keys,
            config.zipf,
            config.warmup
        );
        let report = match run(&config) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("[loadgen] {e}");
                return ExitCode::from(3);
            }
        };
        let summary = format!(
            "ops={} errors={} bytes={} wall={:.3}s throughput={:.3} GB/s \
             p50={}us p90={}us p99={}us max={}us",
            report.ops,
            report.errors,
            report.bytes,
            report.wall_secs,
            report.throughput_gbps,
            report.p50_us,
            report.p90_us,
            report.p99_us,
            report.max_us
        );
        let errors = report.errors;
        (report.to_value(), summary, errors)
    };
    let created_unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let value = Value::Obj(vec![
        (
            "schema".into(),
            Value::from(fpc_metrics::report::BENCH_SCHEMA),
        ),
        ("rev".into(), Value::from(rev.as_str())),
        ("created_unix".into(), Value::from(created_unix)),
        ("loadgen".into(), loadgen_value),
    ]);
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("[loadgen] cannot create {}: {e}", out_dir.display());
        return ExitCode::from(3);
    }
    let path = out_dir.join(format!("BENCH_{rev}.json"));
    if let Err(e) = std::fs::write(&path, value.to_json_pretty()) {
        eprintln!("[loadgen] cannot write {}: {e}", path.display());
        return ExitCode::from(3);
    }
    eprintln!("[loadgen] wrote {}", path.display());
    println!("{summary}");
    if errors > 0 {
        eprintln!("[loadgen] {errors} request(s) failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
