//! Experiment harness: regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p fpc-bench --release --bin harness -- all [--quick] [--out DIR]
//! cargo run -p fpc-bench --release --bin harness -- fig08 fig09
//! cargo run -p fpc-bench --release --bin harness -- table1 stages ablation
//! ```
//!
//! `--quick` uses the small dataset scale and 2 timing repetitions (smoke
//! run); the default matches the paper's methodology (full scale, median of
//! 5 runs). `--threads N` caps the worker threads used by the paper's
//! algorithms (0 = all cores, the default; baselines are serial). `--data
//! DIR` runs on external datasets (e.g. the real SDRBench files) described
//! by `DIR/manifest.txt` instead of the synthetic suites — see
//! `fpc_datagen::external` for the manifest format. `--json PATH` writes
//! every measured panel as one JSON document built from the same result
//! vectors the stdout tables are printed from.

use fpc_bench::figures::{
    all_figures, figure, run_ablations, run_panel, suites_for, Figure, Precision, Target,
};
use fpc_bench::measure::{ByteSuite, Config};
use fpc_bench::report;
use fpc_datagen::Scale;
use std::collections::BTreeMap;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    let data_dir = args
        .iter()
        .position(|a| a == "--data")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);
    let threads_arg = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1));
    let threads: usize = threads_arg
        .map(|s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("--threads expects a non-negative integer, got {s:?}");
                std::process::exit(2);
            })
        })
        .unwrap_or(0);
    let requested: Vec<&str> = args
        .iter()
        .map(|s| s.as_str())
        .filter(|a| !a.starts_with("--"))
        .filter(|a| Some(*a) != out_dir.to_str())
        .filter(|a| data_dir.as_deref().and_then(|d| d.to_str()) != Some(*a))
        .filter(|a| json_path.as_deref().and_then(|p| p.to_str()) != Some(*a))
        .filter(|a| threads_arg.map(String::as_str) != Some(*a))
        .collect();
    if requested.is_empty() {
        eprintln!(
            "usage: harness <all | table1 | stages | ablation | synth | charts | fig08..fig19>... [--quick] [--threads N] [--out DIR] [--data DIR] [--json PATH]"
        );
        std::process::exit(2);
    }

    let scale = if quick { Scale::Small } else { Scale::Full };
    let mut config = if quick {
        Config::quick()
    } else {
        Config::default()
    };
    config.threads = threads;
    let run_all = requested.contains(&"all");

    if run_all || requested.contains(&"table1") {
        println!("{}", report::table1());
    }
    if run_all || requested.contains(&"stages") {
        println!("{}", report::stages());
    }

    // `charts`: re-render every figure's SVG from previously written CSVs
    // (the artifact's chart_*.py equivalent) without re-measuring.
    if requested.contains(&"charts") {
        for fig in all_figures() {
            let key = panel_key(&fig);
            let csv_path = out_dir.join(format!("{key}.csv"));
            match report::read_csv(&csv_path) {
                Ok(results) => match fpc_bench::plot::write_svg(&out_dir, &fig, &results) {
                    Ok(path) => eprintln!("[harness] wrote {}", path.display()),
                    Err(e) => eprintln!("[harness] warning: svg for {}: {e}", fig.id),
                },
                Err(e) => eprintln!(
                    "[harness] {}: no panel data ({e}); run the figure first",
                    fig.id
                ),
            }
        }
    }

    // Group requested figures by measurement panel so each panel runs once.
    let figures: Vec<Figure> = if run_all {
        all_figures()
    } else {
        requested.iter().filter_map(|id| figure(id)).collect()
    };
    let mut panels: BTreeMap<String, Vec<Figure>> = BTreeMap::new();
    for f in figures {
        panels.entry(panel_key(&f)).or_default().push(f);
    }

    // Cache suites per precision (generation is shared between panels).
    let mut sp_suites: Option<Vec<ByteSuite>> = None;
    let mut dp_suites: Option<Vec<ByteSuite>> = None;

    // Every panel's results, for `--json`: the JSON is derived from the
    // same vectors the stdout tables and CSVs are printed from.
    let mut measured_panels: Vec<(String, Vec<fpc_bench::measure::CodecResult>)> = Vec::new();

    for (key, figs) in panels {
        let precision = figs[0].precision;
        let target = figs[0].target.clone();
        let build = |precision: Precision| match &data_dir {
            Some(dir) => {
                let manifest = dir.join("manifest.txt");
                fpc_bench::figures::suites_from_manifest(precision, &manifest).unwrap_or_else(|e| {
                    eprintln!("[harness] failed to load {}: {e}", manifest.display());
                    std::process::exit(1);
                })
            }
            None => suites_for(precision, scale),
        };
        let suites = match precision {
            Precision::Sp => sp_suites.get_or_insert_with(|| build(Precision::Sp)),
            Precision::Dp => dp_suites.get_or_insert_with(|| build(Precision::Dp)),
        };
        eprintln!("[harness] running panel {key} ({} suites)...", suites.len());
        let results = run_panel(precision, &target, suites, &config);
        let csv_path = out_dir.join(format!("{key}.csv"));
        if let Err(e) = report::write_csv(&csv_path, &results) {
            eprintln!(
                "[harness] warning: could not write {}: {e}",
                csv_path.display()
            );
        }
        for fig in &figs {
            println!("{}", report::figure_table(fig, &results));
            match fpc_bench::plot::write_svg(&out_dir, fig, &results) {
                Ok(path) => eprintln!("[harness] wrote {}", path.display()),
                Err(e) => eprintln!("[harness] warning: svg for {}: {e}", fig.id),
            }
        }
        measured_panels.push((key, results));
    }

    if let Some(path) = &json_path {
        let doc = report::panels_to_value(&measured_panels);
        if let Err(e) = std::fs::write(path, doc.to_json_pretty()) {
            eprintln!("[harness] warning: could not write {}: {e}", path.display());
        } else {
            eprintln!("[harness] wrote {}", path.display());
        }
    }

    if run_all || requested.contains(&"synth") {
        // Miniature LC-framework study (§3): rank every <=2-stage chain.
        use fpc_bench::synth;
        let suites = sp_suites.get_or_insert_with(|| match &data_dir {
            Some(dir) => {
                fpc_bench::figures::suites_from_manifest(Precision::Sp, &dir.join("manifest.txt"))
                    .unwrap_or_else(|e| {
                        eprintln!("[harness] failed to load external data: {e}");
                        std::process::exit(1);
                    })
            }
            None => suites_for(Precision::Sp, scale),
        });
        let probe: Vec<u8> = suites
            .iter()
            .flat_map(|s| s.files.first())
            .flat_map(|(_, bytes, _)| bytes.iter().copied())
            .collect();
        println!(
            "### synth: LC-style pipeline enumeration (probe: {} bytes)
",
            probe.len()
        );
        println!("| rank | pipeline | compressed bytes | ratio |");
        println!("|---|---|---|---|");
        for (i, (pipeline, size)) in synth::rank(&probe, 2).iter().take(15).enumerate() {
            println!(
                "| {} | {pipeline} | {size} | {:.3} |",
                i + 1,
                probe.len() as f64 / *size as f64
            );
        }
        println!();
    }

    if run_all || requested.contains(&"ablation") {
        eprintln!("[harness] running ablation studies...");
        let rows = run_ablations(scale);
        println!("### ablation: design-choice studies\n");
        println!("| study | variant | geo-mean ratio | compress GB/s |");
        println!("|---|---|---|---|");
        for r in &rows {
            println!(
                "| {} | {} | {:.4} | {:.3} |",
                r.study, r.variant, r.ratio, r.compress_gbps
            );
        }
        println!();
    }
}

fn panel_key(f: &Figure) -> String {
    let target = match &f.target {
        Target::CpuMeasured => "cpu".to_string(),
        Target::GpuModeled(p) => p.name.replace(' ', "").to_lowercase(),
    };
    let precision = match f.precision {
        Precision::Sp => "sp",
        Precision::Dp => "dp",
    };
    format!("{precision}_{target}")
}
