//! Faultgen driver: runs the seeded fault sweep from
//! `fpc_bench::faultgen` against an in-process `fpc-serve` and writes the
//! outcome to `DIR/BENCH_<rev>.json` (schema `fpc-bench-v1`, `faultgen`
//! section).
//!
//! ```text
//! cargo run -p fpc-bench --release --features faults --bin faultgen -- \
//!     [--seeds 32] [--seed-base 0] [--requests 6] [--bytes 262144] \
//!     [--algo spspeed] [--watchdog-secs 60] [--out results] [--rev REV]
//! ```
//!
//! Exit codes: 0 clean sweep (no hangs, crashes, byte mismatches, or
//! control-cell failures), 1 at least one invariant violation, 2 usage
//! error or a build without the `faults` feature, 3 cannot run the sweep
//! or write the report.

use fpc_bench::faultgen::{run, FaultgenConfig};
use fpc_core::Algorithm;
use fpc_metrics::json::Value;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage: faultgen [--seeds N] [--seed-base N] [--requests N] \
         [--bytes N] [--algo NAME] [--cache-bytes N] [--watchdog-secs N] \
         [--out DIR] [--rev REV]"
    );
    ExitCode::from(2)
}

fn resolve_rev(explicit: Option<&str>) -> String {
    if let Some(rev) = explicit {
        return rev.to_string();
    }
    for var in ["FPC_REV", "GITHUB_SHA"] {
        if let Ok(v) = std::env::var(var) {
            let v = v.trim().to_string();
            if !v.is_empty() {
                return v.chars().take(12).collect();
            }
        }
    }
    if let Ok(out) = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
    {
        if out.status.success() {
            if let Ok(s) = String::from_utf8(out.stdout) {
                let s = s.trim().to_string();
                if !s.is_empty() {
                    return s;
                }
            }
        }
    }
    "local".to_string()
}

/// Keeps revision labels filesystem-safe.
fn sanitize(rev: &str) -> String {
    let cleaned: String = rev
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "local".to_string()
    } else {
        cleaned
    }
}

fn main() -> ExitCode {
    if !fpc_faults::ENABLED {
        eprintln!(
            "faultgen: the fault hooks are compiled out; rebuild with \
             `--features faults` (a sweep without them proves nothing)"
        );
        return ExitCode::from(2);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };
    let mut config = FaultgenConfig::default();
    let number = |name: &str, default: usize, min: usize| -> Result<usize, ()> {
        match flag(name) {
            None => Ok(default),
            Some(v) => match v.parse::<usize>() {
                Ok(n) if n >= min => Ok(n),
                _ => {
                    eprintln!("faultgen: {name} expects an integer >= {min}");
                    Err(())
                }
            },
        }
    };
    let (Ok(seeds), Ok(seed_base), Ok(requests), Ok(bytes), Ok(watchdog)) = (
        number("--seeds", 32, 1),
        number("--seed-base", 0, 0),
        number("--requests", config.requests, 1),
        number("--bytes", config.payload_bytes, 1),
        number("--watchdog-secs", 60, 1),
    ) else {
        return usage();
    };
    config.seeds = (0..seeds as u64).map(|s| seed_base as u64 + s).collect();
    config.requests = requests;
    config.payload_bytes = bytes;
    config.watchdog = Duration::from_secs(watchdog as u64);
    if let Some(v) = flag("--cache-bytes") {
        match v.parse::<u64>() {
            Ok(n) => config.cache_bytes = n,
            Err(_) => {
                eprintln!("faultgen: --cache-bytes expects a byte count (0 disables the cache)");
                return usage();
            }
        }
    }
    if let Some(name) = flag("--algo") {
        config.algo = match name.to_ascii_lowercase().as_str() {
            "spspeed" => Algorithm::SpSpeed,
            "spratio" => Algorithm::SpRatio,
            "dpspeed" => Algorithm::DpSpeed,
            "dpratio" => Algorithm::DpRatio,
            other => {
                eprintln!("faultgen: unknown algorithm '{other}'");
                return usage();
            }
        };
    }
    let out_dir = PathBuf::from(flag("--out").unwrap_or("results"));
    let rev = sanitize(&resolve_rev(flag("--rev")));

    eprintln!(
        "[faultgen] {} seeds x {} faults x {} requests x {} bytes ({}), \
         cache {} bytes, {}s watchdog per cell",
        config.seeds.len(),
        config.matrix.len(),
        config.requests,
        config.payload_bytes,
        config.algo,
        config.cache_bytes,
        watchdog
    );
    let report = match run(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("[faultgen] {e}");
            return ExitCode::from(3);
        }
    };
    for cell in &report.cells {
        if cell.hung || cell.crashed || cell.mismatches > 0 {
            eprintln!(
                "[faultgen] VIOLATION fault={} seed={} ok={} gaveups={} \
                 mismatches={} hung={} crashed={}",
                cell.fault,
                cell.seed,
                cell.ok,
                cell.gaveups,
                cell.mismatches,
                cell.hung,
                cell.crashed
            );
        }
    }
    let created_unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let value = Value::Obj(vec![
        (
            "schema".into(),
            Value::from(fpc_metrics::report::BENCH_SCHEMA),
        ),
        ("rev".into(), Value::from(rev.as_str())),
        ("created_unix".into(), Value::from(created_unix)),
        ("faultgen".into(), report.to_value()),
    ]);
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("[faultgen] cannot create {}: {e}", out_dir.display());
        return ExitCode::from(3);
    }
    let path = out_dir.join(format!("BENCH_{rev}.json"));
    if let Err(e) = std::fs::write(&path, value.to_json_pretty()) {
        eprintln!("[faultgen] cannot write {}: {e}", path.display());
        return ExitCode::from(3);
    }
    eprintln!("[faultgen] wrote {}", path.display());
    let injected = report
        .counters
        .iter()
        .find(|(name, _)| name == "faults.injected")
        .map(|(_, v)| *v);
    match injected {
        Some(n) => eprintln!("[faultgen] faults.injected = {n}"),
        None => eprintln!("[faultgen] note: metrics disabled; cannot report injection counts"),
    }
    println!(
        "cells={} ok={} gaveups={} mismatches={} hangs={} crashes={} \
         violations={} wall={:.3}s",
        report.cells.len(),
        report.ok,
        report.gaveups,
        report.mismatches,
        report.hangs,
        report.crashes,
        report.violations,
        report.wall_secs
    );
    if report.violations > 0 {
        eprintln!("[faultgen] {} invariant violation(s)", report.violations);
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
