//! Perf-smoke driver: measures a `BENCH_<rev>.json` report or gates a
//! fresh report against a committed baseline.
//!
//! ```text
//! cargo run -p fpc-bench --release --features metrics --bin perf -- \
//!     run [--out DIR] [--rev REV] [--threads N]
//! cargo run -p fpc-bench --release --bin perf -- \
//!     compare <baseline.json> <fresh.json>
//! cargo run -p fpc-bench --release --features metrics --bin perf -- \
//!     range [--threads N]
//! cargo run -p fpc-bench --release --bin perf -- \
//!     auto [--threads N]
//! ```
//!
//! `range` prints the seekable-decode microbench: full decompression of a
//! 64-chunk container vs. a single-chunk `decompress_range_with`, with the
//! `container.range.*` chunk counts when metrics are compiled in.
//!
//! `auto` is the `auto-dominance` gate: AUTO and every fixed algorithm are
//! measured over the mixed-stream suites; exits 1 if AUTO's ratio falls
//! more than 1% below the best fixed algorithm or its throughput drops
//! below the speed-tier floor (see `fpc_bench::perf::auto_gate`).
//!
//! `run` writes `DIR/BENCH_<rev>.json` (default `results/`) and prints the
//! rendered report. The revision defaults to `$FPC_REV`, then
//! `$GITHUB_SHA`, then `git rev-parse --short HEAD`, then `local`.
//!
//! `compare` exits 1 listing every regression (see `fpc_bench::perf` for
//! the thresholds and the calibration normalization).

use fpc_bench::perf;
use fpc_metrics::json::Value;
use fpc_metrics::report::render_value;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: perf run [--out DIR] [--rev REV] [--threads N]\n       \
         perf compare <baseline.json> <fresh.json>\n       \
         perf range [--threads N]\n       \
         perf auto [--threads N]"
    );
    ExitCode::from(2)
}

fn resolve_rev(explicit: Option<&str>) -> String {
    if let Some(rev) = explicit {
        return rev.to_string();
    }
    for var in ["FPC_REV", "GITHUB_SHA"] {
        if let Ok(v) = std::env::var(var) {
            let v = v.trim().to_string();
            if !v.is_empty() {
                // Full SHAs make unwieldy file names; 12 hex chars is
                // plenty unique.
                return v.chars().take(12).collect();
            }
        }
    }
    if let Ok(out) = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
    {
        if out.status.success() {
            if let Ok(s) = String::from_utf8(out.stdout) {
                let s = s.trim().to_string();
                if !s.is_empty() {
                    return s;
                }
            }
        }
    }
    "local".to_string()
}

/// Keeps revision labels filesystem-safe.
fn sanitize(rev: &str) -> String {
    let cleaned: String = rev
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "local".to_string()
    } else {
        cleaned
    }
}

fn cmd_run(args: &[String]) -> ExitCode {
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };
    let out_dir = PathBuf::from(flag("--out").unwrap_or("results"));
    let rev = sanitize(&resolve_rev(flag("--rev")));
    // Default to 2 workers: the gate must exercise the pool's parallel
    // path (and its telemetry) even on single-core CI runners, where
    // `0 = all cores` would fall back to the serial path.
    let threads: usize = match flag("--threads").map(str::parse).transpose() {
        Ok(t) => t.unwrap_or(2),
        Err(_) => {
            eprintln!("--threads expects a non-negative integer");
            return ExitCode::from(2);
        }
    };
    if !fpc_metrics::ENABLED {
        eprintln!(
            "[perf] note: built without --features metrics; \
             per-stage breakdowns will be empty"
        );
    }
    eprintln!("[perf] measuring rev={rev} threads={threads}...");
    let report = perf::run(&rev, threads);
    let value = report.to_value();
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("[perf] cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let path = out_dir.join(format!("BENCH_{rev}.json"));
    if let Err(e) = std::fs::write(&path, value.to_json_pretty()) {
        eprintln!("[perf] cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    eprintln!("[perf] wrote {}", path.display());
    match render_value(&value) {
        Ok(text) => print!("{text}"),
        Err(e) => eprintln!("[perf] render error: {e}"),
    }
    ExitCode::SUCCESS
}

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Value::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_compare(args: &[String]) -> ExitCode {
    let [baseline_path, fresh_path] = args else {
        return usage();
    };
    let (baseline, fresh) = match (load(baseline_path), load(fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("[perf] {e}");
            return ExitCode::FAILURE;
        }
    };
    // Informational: per-stage throughput movement (normalized by the
    // calibration ratio). The gate below only acts on whole-algorithm
    // numbers; this log is what shows e.g. a vectorized stage's speedup.
    let deltas = perf::stage_deltas(&baseline, &fresh);
    if !deltas.is_empty() {
        println!("per-stage deltas (baseline -> fresh, normalized):");
        for d in &deltas {
            println!("  {d}");
        }
    }
    match perf::compare(&baseline, &fresh) {
        Ok(failures) if failures.is_empty() => {
            println!(
                "perf gate PASS ({baseline_path} vs {fresh_path}): \
                 no regression beyond thresholds"
            );
            ExitCode::SUCCESS
        }
        Ok(failures) => {
            println!("perf gate FAIL ({baseline_path} vs {fresh_path}):");
            for f in &failures {
                println!("  - {f}");
            }
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("[perf] {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_range(args: &[String]) -> ExitCode {
    let threads: usize = match args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse())
        .transpose()
    {
        Ok(t) => t.unwrap_or(2),
        Err(_) => {
            eprintln!("--threads expects a non-negative integer");
            return ExitCode::from(2);
        }
    };
    if !fpc_metrics::ENABLED {
        eprintln!(
            "[perf] note: built without --features metrics; \
             chunks-touched counts will read n/a"
        );
    }
    eprintln!("[perf] range microbench (64-chunk container, threads={threads})...");
    let rows = fpc_bench::rangebench::run(threads);
    print!("{}", fpc_bench::rangebench::render(&rows));
    ExitCode::SUCCESS
}

fn cmd_auto(args: &[String]) -> ExitCode {
    let threads: usize = match args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse())
        .transpose()
    {
        Ok(t) => t.unwrap_or(2),
        Err(_) => {
            eprintln!("--threads expects a non-negative integer");
            return ExitCode::from(2);
        }
    };
    eprintln!("[perf] auto-dominance over the mixed-stream suites (threads={threads})...");
    let report = perf::measure_auto(threads);
    println!(
        "{:<10} {:>8} {:>15} {:>17}",
        "algorithm", "ratio", "compress GB/s", "decompress GB/s"
    );
    let row = |r: &fpc_bench::measure::CodecResult| {
        println!(
            "{:<10} {:>8.4} {:>15.3} {:>17.3}",
            r.name, r.ratio, r.compress_gbps, r.decompress_gbps
        );
    };
    row(&report.auto_perf);
    for fixed in &report.fixed {
        row(fixed);
    }
    println!("\nAUTO chunk picks over {} input bytes:", report.bytes);
    for (name, chunks) in &report.picks {
        println!("  {name:<12} {chunks}");
    }
    let failures = perf::auto_gate(&report);
    if failures.is_empty() {
        println!(
            "\nauto-dominance PASS: AUTO holds the best fixed ratio within \
             {:.0}% at >= {:.0}% of speed-tier throughput",
            perf::AUTO_RATIO_SLACK * 100.0,
            perf::auto_speed_floor() * 100.0
        );
        ExitCode::SUCCESS
    } else {
        println!("\nauto-dominance FAIL:");
        for f in &failures {
            println!("  - {f}");
        }
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("range") => cmd_range(&args[1..]),
        Some("auto") => cmd_auto(&args[1..]),
        _ => usage(),
    }
}
