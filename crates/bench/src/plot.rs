//! SVG scatter plots of the ratio-vs-throughput figures.
//!
//! The paper's artifact renders `single_charts.png`/`double_charts.png`
//! with matplotlib; this module is the dependency-free equivalent, emitting
//! one self-contained SVG per figure with the Pareto front drawn as a step
//! line, our algorithms highlighted, and a log-scale x-axis for the CPU
//! figures (the paper's Figures 12/13/18/19 use one).

use crate::figures::{Axis, Figure, Target};
use crate::measure::CodecResult;
use crate::pareto::{pareto_front, Point};
use std::fmt::Write as _;

const WIDTH: f64 = 720.0;
const HEIGHT: f64 = 440.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 30.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 60.0;

/// Renders one figure as a complete SVG document.
pub fn svg_scatter(figure: &Figure, results: &[CodecResult]) -> String {
    let points = crate::figures::points_for_axis(results, figure.axis);
    let on_front = pareto_front(&points);
    let log_x = matches!(figure.target, Target::CpuMeasured);

    let xs: Vec<f64> = points.iter().map(|p| tx(p.throughput, log_x)).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.ratio).collect();
    let (x_min, x_max) = padded_range(&xs);
    let (y_min, y_max) = padded_range(&ys);
    let plot_w = WIDTH - MARGIN_L - MARGIN_R;
    let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
    let sx = |x: f64| MARGIN_L + (x - x_min) / (x_max - x_min) * plot_w;
    let sy = |y: f64| MARGIN_T + (1.0 - (y - y_min) / (y_max - y_min)) * plot_h;

    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif">"#
    );
    let _ = write!(
        svg,
        r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#
    );
    let _ = write!(
        svg,
        r#"<text x="{:.1}" y="24" font-size="15" text-anchor="middle">{} — {}</text>"#,
        WIDTH / 2.0,
        figure.id,
        xml_escape(figure.title)
    );
    // Axes.
    let _ = write!(
        svg,
        r##"<rect x="{MARGIN_L}" y="{MARGIN_T}" width="{plot_w:.1}" height="{plot_h:.1}" fill="none" stroke="#888"/>"##
    );
    let axis_label = match figure.axis {
        Axis::Compression => "compression throughput [GB/s]",
        Axis::Decompression => "decompression throughput [GB/s]",
    };
    let _ = write!(
        svg,
        r#"<text x="{:.1}" y="{:.1}" font-size="12" text-anchor="middle">{}{}</text>"#,
        MARGIN_L + plot_w / 2.0,
        HEIGHT - 16.0,
        xml_escape(axis_label),
        if log_x { " (log scale)" } else { "" }
    );
    let _ = write!(
        svg,
        r#"<text x="18" y="{:.1}" font-size="12" text-anchor="middle" transform="rotate(-90 18 {:.1})">compression ratio</text>"#,
        MARGIN_T + plot_h / 2.0,
        MARGIN_T + plot_h / 2.0
    );
    // Tick labels (min/mid/max on each axis, in data units).
    for frac in [0.0f64, 0.5, 1.0] {
        let xv = x_min + frac * (x_max - x_min);
        let label = if log_x {
            format!("{:.3}", 10f64.powf(xv))
        } else {
            format!("{xv:.0}")
        };
        let _ = write!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" font-size="10" text-anchor="middle">{label}</text>"#,
            MARGIN_L + frac * plot_w,
            MARGIN_T + plot_h + 16.0
        );
        let yv = y_min + frac * (y_max - y_min);
        let _ = write!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" font-size="10" text-anchor="end">{yv:.2}</text>"#,
            MARGIN_L - 6.0,
            sy(yv) + 4.0
        );
    }
    // Pareto front as a descending step line.
    let mut front: Vec<&Point> = points
        .iter()
        .zip(&on_front)
        .filter(|(_, &b)| b)
        .map(|(p, _)| p)
        .collect();
    front.sort_by(|a, b| a.throughput.partial_cmp(&b.throughput).expect("finite"));
    if front.len() > 1 {
        let mut path = String::new();
        for (i, p) in front.iter().enumerate() {
            let cmd = if i == 0 { 'M' } else { 'L' };
            let _ = write!(
                path,
                "{cmd}{:.1} {:.1} ",
                sx(tx(p.throughput, log_x)),
                sy(p.ratio)
            );
        }
        let _ = write!(
            svg,
            r##"<path d="{path}" fill="none" stroke="#2a9d8f" stroke-width="1.5" stroke-dasharray="5 3"/>"##
        );
    }
    // Points and labels.
    for (p, (r, &front)) in points.iter().zip(results.iter().zip(&on_front)) {
        let cx = sx(tx(p.throughput, log_x));
        let cy = sy(p.ratio);
        let (fill, radius) = if r.ours {
            ("#d62828", 5.0)
        } else {
            ("#457b9d", 3.5)
        };
        let stroke = if front {
            r##" stroke="#2a9d8f" stroke-width="2""##
        } else {
            ""
        };
        let _ = write!(
            svg,
            r#"<circle cx="{cx:.1}" cy="{cy:.1}" r="{radius}" fill="{fill}"{stroke}/>"#
        );
        let _ = write!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" font-size="10">{}</text>"#,
            cx + 6.0,
            cy - 4.0,
            xml_escape(&p.name)
        );
    }
    svg.push_str("</svg>");
    svg
}

/// Writes a figure's SVG next to the CSVs.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_svg(
    dir: &std::path::Path,
    figure: &Figure,
    results: &[CodecResult],
) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.svg", figure.id));
    std::fs::write(&path, svg_scatter(figure, results))?;
    Ok(path)
}

fn tx(v: f64, log_x: bool) -> f64 {
    if log_x {
        v.max(f64::MIN_POSITIVE).log10()
    } else {
        v
    }
}

fn padded_range(values: &[f64]) -> (f64, f64) {
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !min.is_finite() || !max.is_finite() {
        return (0.0, 1.0);
    }
    let span = (max - min).max(1e-9);
    (min - span * 0.05, max + span * 0.08)
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::Precision;

    fn sample() -> (Figure, Vec<CodecResult>) {
        let figure = Figure {
            id: "fig08",
            title: "test figure",
            precision: Precision::Sp,
            target: Target::GpuModeled(fpc_gpu_sim::DeviceProfile::rtx4090()),
            axis: Axis::Compression,
        };
        let results = vec![
            CodecResult {
                name: "SPspeed".into(),
                ours: true,
                ratio: 1.4,
                compress_gbps: 518.0,
                decompress_gbps: 540.0,
            },
            CodecResult {
                name: "Slow&Dense".into(),
                ours: false,
                ratio: 2.0,
                compress_gbps: 10.0,
                decompress_gbps: 12.0,
            },
            CodecResult {
                name: "Dominated".into(),
                ours: false,
                ratio: 1.1,
                compress_gbps: 5.0,
                decompress_gbps: 6.0,
            },
        ];
        (figure, results)
    }

    #[test]
    fn svg_is_well_formed_and_complete() {
        let (figure, results) = sample();
        let svg = svg_scatter(&figure, &results);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<circle").count(), results.len());
        // Names are labeled and escaped.
        assert!(svg.contains("SPspeed"));
        assert!(svg.contains("Slow&amp;Dense"));
        // Two front points -> a dashed front path exists.
        assert!(svg.contains("stroke-dasharray"));
    }

    #[test]
    fn cpu_figures_use_log_axis() {
        let (mut figure, results) = sample();
        figure.target = Target::CpuMeasured;
        let svg = svg_scatter(&figure, &results);
        assert!(svg.contains("(log scale)"));
    }

    #[test]
    fn write_svg_creates_file() {
        let (figure, results) = sample();
        let dir = std::env::temp_dir().join(format!("fpc-plot-test-{}", std::process::id()));
        let path = write_svg(&dir, &figure, &results).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("</svg>"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        let (figure, _) = sample();
        let svg = svg_scatter(&figure, &[]);
        assert!(svg.ends_with("</svg>"));
        let one = vec![CodecResult {
            name: "only".into(),
            ours: false,
            ratio: 1.0,
            compress_gbps: 0.0,
            decompress_gbps: 0.0,
        }];
        let svg = svg_scatter(&figure, &one);
        assert!(svg.contains("only"));
    }
}
