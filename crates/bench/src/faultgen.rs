//! Seeded fault sweeps against a live loopback `fpc-serve` instance.
//!
//! For every cell in `seeds × fault matrix`, the harness installs a
//! deterministic `fpc-faults` plan, boots an in-process server with
//! aggressive degradation thresholds, and drives remote compress,
//! decompress, and range requests through a [`ResilientClient`] — both
//! sides of every socket run through the fault layer. Three invariants are
//! asserted, cell by cell, under a watchdog:
//!
//! 1. **no hangs** — each cell completes within its watchdog budget;
//! 2. **no crashes** — no panic on either side of the wire;
//! 3. **byte-identity** — every request that eventually succeeds returns
//!    exactly the bytes a fault-free local run produces.
//!
//! Requests that exhaust their retry budget under injected faults are
//! *give-ups*: recorded, but only a violation on the fault-free control
//! cell (where nothing may fail). The matrix covers socket and scheduler
//! faults only; `chunk-damage` and the `file-*` faults corrupt the local
//! reference stream or bypass the wire, so they are exercised by
//! `tests/robustness.rs` instead.
//!
//! The aggregate lands in the `fpc-bench-v1` JSON schema under a
//! `faultgen` key (`results/BENCH_<rev>.json`, rendered by `fpcc stats`).

use fpc_core::{Algorithm, Compressor};
use fpc_metrics::json::Value;
use fpc_serve::{ResilientClient, RetryPolicy, ServeConfig, Server};
use std::sync::atomic::Ordering;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// One sweep's shape.
#[derive(Debug, Clone)]
pub struct FaultgenConfig {
    /// Seeds to run every matrix entry under.
    pub seeds: Vec<u64>,
    /// Requests per cell (cycling compress / decompress / range).
    pub requests: usize,
    /// Uncompressed payload bytes per request.
    pub payload_bytes: usize,
    /// Algorithm under test.
    pub algo: Algorithm,
    /// `(label, FPC_FAULTS entries)` pairs; the seed is appended per cell.
    pub matrix: Vec<(String, String)>,
    /// Per-cell wall-clock budget; exceeding it is a hang.
    pub watchdog: Duration,
    /// Hot-chunk cache budget for the in-process server (0 = off).
    /// Non-zero runs every cell through the cached streaming paths, so
    /// injected socket faults also exercise cache insert/hit handling.
    pub cache_bytes: u64,
}

impl Default for FaultgenConfig {
    fn default() -> FaultgenConfig {
        FaultgenConfig {
            seeds: (0..4).collect(),
            requests: 6,
            payload_bytes: 256 << 10,
            algo: Algorithm::SpSpeed,
            matrix: default_matrix(),
            watchdog: Duration::from_secs(60),
            cache_bytes: 0,
        }
    }
}

/// The standard fault matrix: a fault-free control cell, each socket
/// fault in isolation, a scheduler-perturbation cell, and a mixed cell.
pub fn default_matrix() -> Vec<(String, String)> {
    [
        ("clean", ""),
        ("short-read", "short-read=0.3"),
        ("eintr", "eintr=0.3"),
        ("timeout", "timeout=0.05"),
        ("delay-write", "delay-write=0.2"),
        ("torn-write", "torn-write=0.05"),
        ("disconnect", "disconnect=0.05"),
        ("pool-delay", "pool-delay=0.3"),
        (
            "mixed",
            "short-read=0.15,eintr=0.1,delay-write=0.1,torn-write=0.03,disconnect=0.03,pool-delay=0.1",
        ),
    ]
    .into_iter()
    .map(|(label, spec)| (label.to_string(), spec.to_string()))
    .collect()
}

/// Outcome of one `(fault, seed)` cell.
#[derive(Debug, Clone)]
pub struct CellReport {
    /// Matrix label.
    pub fault: String,
    /// Seed the cell ran under.
    pub seed: u64,
    /// Requests that succeeded with byte-identical results.
    pub ok: u64,
    /// Requests that exhausted their retry budget.
    pub gaveups: u64,
    /// Requests that succeeded with WRONG bytes (always a violation).
    pub mismatches: u64,
    /// Cell missed its watchdog deadline.
    pub hung: bool,
    /// Cell panicked.
    pub crashed: bool,
}

/// Aggregated sweep outcome.
#[derive(Debug, Clone)]
pub struct FaultgenReport {
    /// Seeds swept.
    pub seeds: usize,
    /// Matrix entries swept.
    pub matrix: usize,
    /// Requests per cell.
    pub requests: usize,
    /// Payload bytes per request.
    pub payload_bytes: usize,
    /// Algorithm name (paper spelling).
    pub algo: String,
    /// Server-side hot-chunk cache budget the sweep ran under (0 = off).
    pub cache_bytes: u64,
    /// Per-cell outcomes.
    pub cells: Vec<CellReport>,
    /// Byte-identical successes across all cells.
    pub ok: u64,
    /// Retry-budget exhaustions across all cells.
    pub gaveups: u64,
    /// Byte-identity violations across all cells.
    pub mismatches: u64,
    /// Cells that hung.
    pub hangs: u64,
    /// Cells that crashed.
    pub crashes: u64,
    /// Invariant violations: hangs + crashes + mismatches + any give-up
    /// or missing success on a fault-free control cell.
    pub violations: u64,
    /// Wall-clock seconds for the whole sweep.
    pub wall_secs: f64,
    /// Post-sweep snapshot of the fault/retry counters
    /// (`faults.*`, `serve.faults.*`, `remote.retry.*`). Empty unless the
    /// `metrics` feature is enabled; with faults armed, a sweep that
    /// leaves `faults.injected` at zero means the hooks never fired.
    pub counters: Vec<(String, u64)>,
}

/// Runs the sweep. Cells run strictly sequentially: the fault plan is
/// process-global state, and overlapping cells would blur which seed
/// produced which injection.
///
/// Works in builds without the `faults` feature too (every cell then
/// behaves like the control cell) — the `faultgen` bin refuses that
/// configuration, but tests use it to validate the plumbing cheaply.
///
/// # Errors
///
/// When the config cannot produce any traffic (empty seeds/matrix, zero
/// requests or payload).
pub fn run(config: &FaultgenConfig) -> Result<FaultgenReport, String> {
    if config.seeds.is_empty()
        || config.matrix.is_empty()
        || config.requests == 0
        || config.payload_bytes == 0
    {
        return Err("seeds, matrix, requests, and payload_bytes must all be non-empty".into());
    }
    // The fault-free reference: computed before any plan is installed.
    let data = crate::loadgen::payload(config.payload_bytes);
    let expected = Compressor::new(config.algo).compress_bytes(&data);

    let start = Instant::now();
    let mut cells = Vec::with_capacity(config.matrix.len() * config.seeds.len());
    for (label, spec) in &config.matrix {
        for &seed in &config.seeds {
            cells.push(run_cell(label, spec, seed, config, &data, &expected));
        }
    }
    let wall_secs = start.elapsed().as_secs_f64();
    let sum = |f: fn(&CellReport) -> u64| cells.iter().map(f).sum::<u64>();
    let ok = sum(|c| c.ok);
    let gaveups = sum(|c| c.gaveups);
    let mismatches = sum(|c| c.mismatches);
    let hangs = cells.iter().filter(|c| c.hung).count() as u64;
    let crashes = cells.iter().filter(|c| c.crashed).count() as u64;
    // On a control cell nothing is injected, so nothing may fail.
    let clean_failures: u64 = cells
        .iter()
        .filter(|c| c.fault == "clean" && !c.hung && !c.crashed)
        .map(|c| c.gaveups + (config.requests as u64).saturating_sub(c.ok + c.mismatches))
        .sum();
    let counters = fpc_metrics::snapshot()
        .counters
        .into_iter()
        .filter(|c| {
            c.name.starts_with("faults.")
                || c.name.starts_with("serve.faults.")
                || c.name.starts_with("remote.retry.")
        })
        .map(|c| (c.name, c.value))
        .collect();
    Ok(FaultgenReport {
        seeds: config.seeds.len(),
        matrix: config.matrix.len(),
        requests: config.requests,
        payload_bytes: config.payload_bytes,
        algo: config.algo.to_string(),
        cache_bytes: config.cache_bytes,
        ok,
        gaveups,
        mismatches,
        hangs,
        crashes,
        violations: hangs + crashes + mismatches + clean_failures,
        wall_secs,
        counters,
        cells,
    })
}

/// Runs one cell under its own plan installation and watchdog.
fn run_cell(
    label: &str,
    spec: &str,
    seed: u64,
    config: &FaultgenConfig,
    data: &[u8],
    expected: &[u8],
) -> CellReport {
    let mut cell = CellReport {
        fault: label.to_string(),
        seed,
        ok: 0,
        gaveups: 0,
        mismatches: 0,
        hung: false,
        crashed: false,
    };
    let plan = match fpc_faults::Plan::parse(&format!("{spec}:{seed}")) {
        Ok(plan) => plan,
        Err(_) => {
            // A malformed matrix entry counts as a crash of that cell.
            cell.crashed = true;
            return cell;
        }
    };
    // Installed by the parent so a hung cell thread cannot leak the plan
    // into subsequent cells; the guard restores on every path out.
    let _guard = fpc_faults::install(plan);

    let requests = config.requests;
    let algo = config.algo;
    let cache_bytes = config.cache_bytes;
    let data = data.to_vec();
    let expected = expected.to_vec();
    let (tx, rx) = mpsc::channel::<(u64, u64, u64)>();
    let handle = std::thread::Builder::new()
        .name(format!("fpc-faultgen-{label}-{seed}"))
        .spawn(move || {
            let outcome = drive_cell(requests, algo, seed, cache_bytes, &data, &expected);
            let _ = tx.send(outcome);
        });
    let Ok(handle) = handle else {
        cell.crashed = true;
        return cell;
    };
    let deadline = Instant::now() + config.watchdog;
    loop {
        match rx.try_recv() {
            Ok((ok, gaveups, mismatches)) => {
                let _ = handle.join();
                cell.ok = ok;
                cell.gaveups = gaveups;
                cell.mismatches = mismatches;
                return cell;
            }
            // Sender dropped without sending: the cell thread panicked.
            Err(mpsc::TryRecvError::Disconnected) => {
                cell.crashed = true;
                let _ = handle.join();
                return cell;
            }
            Err(mpsc::TryRecvError::Empty) => {
                if Instant::now() >= deadline {
                    // The thread is leaked deliberately: joining a hung
                    // cell would hang the harness itself.
                    cell.hung = true;
                    return cell;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Boots the server, drives the requests, drains the server. Returns
/// `(ok, gaveups, mismatches)`.
fn drive_cell(
    requests: usize,
    algo: Algorithm,
    seed: u64,
    cache_bytes: u64,
    data: &[u8],
    expected: &[u8],
) -> (u64, u64, u64) {
    // Aggressive thresholds: the degradation paths (reaping, eviction)
    // must trigger within the watchdog, not hide behind 30s defaults.
    let serve_config = ServeConfig {
        threads: 2,
        max_conns: 2,
        queue_cap: 4,
        read_timeout: Some(Duration::from_secs(2)),
        write_timeout: Some(Duration::from_secs(2)),
        idle_timeout: Some(Duration::from_secs(5)),
        progress_deadline: Some(Duration::from_secs(5)),
        cache_bytes,
        ..ServeConfig::default()
    };
    let Ok(server) = Server::bind("127.0.0.1:0", serve_config) else {
        return (0, 0, 0);
    };
    let Ok(addr) = server.local_addr() else {
        return (0, 0, 0);
    };
    let shutdown = server.shutdown_flag();
    let server_handle = std::thread::spawn(move || server.run());

    let policy = RetryPolicy {
        attempts: 10,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(50),
        deadline: Some(Duration::from_secs(10)),
        seed,
    };
    let (mut ok, mut gaveups, mut mismatches) = (0u64, 0u64, 0u64);
    match ResilientClient::connect(addr.to_string(), Some(Duration::from_secs(2)), policy) {
        Ok(mut client) => {
            // A chunk-unaligned mid-payload slice for the range requests.
            let (offset, len) = (data.len() as u64 / 3 + 17, data.len() as u64 / 5);
            for req in 0..requests {
                // Cycle ops so both directions move bulk payloads and the
                // seekable path sees the same socket faults.
                let outcome = match req % 3 {
                    0 => client.compress(algo, data).map(|s| s == expected),
                    1 => client.decompress(expected).map(|d| d == data),
                    _ => client
                        .range(expected, offset, len)
                        .map(|r| r == data[offset as usize..(offset + len) as usize]),
                };
                match outcome {
                    Ok(true) => ok += 1,
                    Ok(false) => mismatches += 1,
                    Err(_) => gaveups += 1,
                }
            }
        }
        Err(_) => gaveups += requests as u64,
    }

    shutdown.store(true, Ordering::SeqCst);
    let _ = server_handle.join();
    (ok, gaveups, mismatches)
}

impl CellReport {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("fault".into(), Value::from(self.fault.as_str())),
            ("seed".into(), Value::from(self.seed)),
            ("ok".into(), Value::from(self.ok)),
            ("gaveups".into(), Value::from(self.gaveups)),
            ("mismatches".into(), Value::from(self.mismatches)),
            ("hung".into(), Value::from(self.hung)),
            ("crashed".into(), Value::from(self.crashed)),
        ])
    }
}

impl FaultgenReport {
    /// Serializes as the `faultgen` member of an `fpc-bench-v1` report.
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("seeds".into(), Value::from(self.seeds as u64)),
            ("matrix".into(), Value::from(self.matrix as u64)),
            ("requests".into(), Value::from(self.requests as u64)),
            (
                "payload_bytes".into(),
                Value::from(self.payload_bytes as u64),
            ),
            ("algo".into(), Value::from(self.algo.as_str())),
            ("cache_bytes".into(), Value::from(self.cache_bytes)),
            ("ok".into(), Value::from(self.ok)),
            ("gaveups".into(), Value::from(self.gaveups)),
            ("mismatches".into(), Value::from(self.mismatches)),
            ("hangs".into(), Value::from(self.hangs)),
            ("crashes".into(), Value::from(self.crashes)),
            ("violations".into(), Value::from(self.violations)),
            ("wall_secs".into(), Value::from(self.wall_secs)),
            (
                "counters".into(),
                Value::Obj(
                    self.counters
                        .iter()
                        .map(|(name, value)| (name.clone(), Value::from(*value)))
                        .collect(),
                ),
            ),
            (
                "cells".into(),
                Value::Arr(self.cells.iter().map(CellReport::to_value).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_config_rejected() {
        let config = FaultgenConfig {
            seeds: Vec::new(),
            ..FaultgenConfig::default()
        };
        assert!(run(&config).is_err());
    }

    #[test]
    fn matrix_specs_all_parse() {
        for (label, spec) in default_matrix() {
            let plan = fpc_faults::Plan::parse(&format!("{spec}:7"))
                .unwrap_or_else(|e| panic!("matrix entry '{label}' invalid: {e}"));
            assert_eq!(plan.seed(), 7);
            assert_eq!(plan.is_inert(), label == "clean", "{label}");
        }
    }

    #[test]
    fn control_sweep_is_clean_and_serializes() {
        // One control cell over loopback: works with or without the
        // `faults` feature and must show zero violations either way. The
        // cache is armed so the sweep's byte-identity check also covers
        // the cached streaming paths.
        let config = FaultgenConfig {
            seeds: vec![1],
            requests: 4,
            payload_bytes: 64 << 10,
            matrix: vec![("clean".into(), String::new())],
            watchdog: Duration::from_secs(120),
            cache_bytes: 32 << 20,
            ..FaultgenConfig::default()
        };
        let report = run(&config).expect("control sweep");
        assert_eq!(report.violations, 0, "control cell must be clean");
        assert_eq!(report.ok, 4);
        assert_eq!(report.gaveups, 0);
        let value = report.to_value();
        assert_eq!(value.get("violations").and_then(Value::as_u64), Some(0));
        assert_eq!(
            value
                .get("cells")
                .and_then(Value::as_arr)
                .map(<[Value]>::len),
            Some(1)
        );
    }
}
