//! Perf-smoke harness: versioned `BENCH_<rev>.json` reports and the
//! regression gate behind CI's `perf-smoke` job.
//!
//! A report captures, for each of the paper's four algorithms, the ratio
//! and throughput over the small synthetic suites plus — when the binary is
//! built with `--features metrics` — the per-stage breakdown and pool
//! telemetry recorded while measuring. An executor microbench (persistent
//! pool vs. spawn-per-call, the same workload as `benches/executor.rs`)
//! rides along.
//!
//! Because CI runners differ wildly in absolute speed, every report also
//! stores a `calibration_gbps` figure from a fixed scalar loop. The
//! [`compare`] gate normalizes fresh throughput by the ratio of the two
//! calibrations before applying the regression threshold, so a slow runner
//! does not read as a regression and a fast one does not mask a real
//! slowdown of the same magnitude.
//!
//! `FPC_PERF_HANDICAP=<divisor>` artificially divides every measured
//! throughput (calibration excluded). It exists solely so CI can prove the
//! gate actually fails on a slowdown.

use crate::entries::Entry;
use crate::figures::{suites_for, Precision};
use crate::measure::{byte_suites_u8, measure_cpu, ByteSuite, CodecResult, Config};
use fpc_core::Algorithm;
use fpc_datagen::{mixed_stream_suites, Scale};
use fpc_metrics::json::Value;
use fpc_metrics::report::BENCH_SCHEMA;
use std::time::Instant;

/// Fractional throughput drop (after calibration normalization) that fails
/// the gate for an algorithm.
pub const THROUGHPUT_DROP: f64 = 0.35;

/// Fractional compression-ratio loss that fails the gate. Ratios are
/// deterministic for fixed suites, so the tolerance only absorbs rounding
/// through JSON.
pub const RATIO_TOLERANCE: f64 = 0.02;

/// Fractional drop that fails the gate for the executor microbench. More
/// lenient than the algorithm threshold: sub-millisecond scheduling
/// measurements are the noisiest numbers in the report.
pub const EXECUTOR_DROP: f64 = 0.5;

/// How much worse AUTO's ratio may be than the best fixed algorithm on the
/// mixed-stream suites before the `auto-dominance` gate fails (1%).
pub const AUTO_RATIO_SLACK: f64 = 0.01;

/// Default fraction of the speed-tier compression throughput AUTO must
/// retain on the mixed-stream suites. AUTO's throughput is bounded by the
/// blended cost of the codecs it picks — on ratio-heavy chunks that is
/// RARE/FCM work no selection strategy can avoid — so the floor is set
/// below the blend's steady state (~17% of the speed tier on the mixed
/// suites) to catch selection-overhead regressions, not the intrinsic cost
/// of ratio-tier picks. Override with `FPC_AUTO_SPEED_FLOOR` (a fraction
/// in (0, 1]).
pub const DEFAULT_AUTO_SPEED_FLOOR: f64 = 0.10;

/// Measured performance of one algorithm over the smoke suites.
#[derive(Debug, Clone)]
pub struct AlgoPerf {
    /// Paper name (`SPspeed`, …).
    pub name: String,
    /// Geo-mean compression ratio.
    pub ratio: f64,
    /// Geo-mean compression throughput in GB/s.
    pub compress_gbps: f64,
    /// Geo-mean decompression throughput in GB/s.
    pub decompress_gbps: f64,
    /// Total input bytes across all suite files.
    pub bytes: u64,
    /// Stage/counter snapshot recorded during this algorithm's measurement
    /// (empty with the `metrics` feature off).
    pub metrics: Value,
}

/// Executor microbench result: the persistent pool against the
/// spawn-per-call executor the repository originally shipped with.
#[derive(Debug, Clone, Copy)]
pub struct ExecutorPerf {
    /// Chunked-checksum throughput through `fpc_pool::run_indexed`.
    pub pool_gbps: f64,
    /// Same workload through scoped spawn-per-call threads.
    pub spawn_gbps: f64,
}

/// AUTO-vs-fixed measurement over the mixed-stream suites (the workload
/// the adaptive codec exists for: heterogeneous MPI-like rank buffers).
#[derive(Debug, Clone)]
pub struct AutoReport {
    /// Total input bytes across the mixed-stream suite files.
    pub bytes: u64,
    /// AUTO's measurement over the mixed suites.
    pub auto_perf: CodecResult,
    /// Every fixed algorithm measured over the *same* suites, paper order.
    pub fixed: Vec<CodecResult>,
    /// Aggregate per-codec chunk pick counts across all suite files,
    /// `(codec name, chunks)`; raw-fallback chunks appear as `"raw"`.
    pub picks: Vec<(String, u64)>,
}

impl AutoReport {
    /// The best fixed-algorithm result by compression ratio.
    pub fn best_fixed(&self) -> Option<&CodecResult> {
        self.fixed.iter().max_by(|a, b| a.ratio.total_cmp(&b.ratio))
    }

    /// Compression throughput of the slower speed-tier algorithm
    /// (min of SPspeed and DPspeed over the mixed suites).
    pub fn speed_tier_gbps(&self) -> Option<f64> {
        self.fixed
            .iter()
            .filter(|r| r.name == "SPspeed" || r.name == "DPspeed")
            .map(|r| r.compress_gbps)
            .min_by(f64::total_cmp)
    }
}

/// One full perf-smoke report (serializes as `fpc-bench-v1`).
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Revision label (git short hash or `local`).
    pub rev: String,
    /// Seconds since the Unix epoch at measurement time.
    pub created_unix: u64,
    /// Worker threads used for the paper's algorithms.
    pub threads: usize,
    /// Machine-speed yardstick from [`calibrate_gbps`].
    pub calibration_gbps: f64,
    /// Dispatch tier the process resolved to (`fpc_simd::active`).
    pub simd_active: String,
    /// Per-kernel dispatch tier (`fpc_simd::kernel_tiers`); records which
    /// code path each throughput number actually measured.
    pub simd_kernels: Vec<(String, String)>,
    /// One entry per paper algorithm, in paper order.
    pub algorithms: Vec<AlgoPerf>,
    /// AUTO-vs-fixed comparison over the mixed-stream suites.
    pub auto: AutoReport,
    /// Executor microbench numbers.
    pub executor: ExecutorPerf,
}

/// Reads the `FPC_PERF_HANDICAP` throughput divisor (`1.0` when unset).
///
/// Values that fail to parse or are below 1 are ignored — the handicap can
/// only slow the report down, never inflate it.
pub fn handicap() -> f64 {
    std::env::var("FPC_PERF_HANDICAP")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|d| d.is_finite() && *d >= 1.0)
        .unwrap_or(1.0)
}

/// Measures a machine-speed yardstick: a fixed xor-rotate reduction over a
/// deterministic 8 MiB word buffer, reported in GB/s.
///
/// The loop is branch-free, cache-resident after the first pass, and uses
/// no SIMD intrinsics, so its speed tracks scalar core speed — the same
/// resource the codec kernels bottleneck on — without depending on any
/// code under test.
pub fn calibrate_gbps() -> f64 {
    const WORDS: usize = 1 << 20; // 8 MiB
    const PASSES: usize = 8;
    let buf: Vec<u64> = (0..WORDS as u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    let mut acc = 0u64;
    // Warm-up pass (pays for page faults).
    for &w in &buf {
        acc ^= w.rotate_left(17);
    }
    let start = Instant::now();
    for p in 0..PASSES {
        for &w in &buf {
            acc ^= w.rotate_left((p as u32) + 11);
        }
    }
    let secs = start.elapsed().as_secs_f64();
    std::hint::black_box(acc);
    (WORDS * 8 * PASSES) as f64 / 1e9 / secs.max(1e-12)
}

fn suites_for_algorithm(algo: Algorithm) -> Vec<ByteSuite> {
    if algo.is_single_precision() {
        suites_for(Precision::Sp, Scale::Small)
    } else {
        suites_for(Precision::Dp, Scale::Small)
    }
}

/// Measures all four paper algorithms over the small suites, snapshotting
/// the live metrics around each so every entry carries its own stage
/// breakdown.
pub fn measure_algorithms(threads: usize) -> Vec<AlgoPerf> {
    let div = handicap();
    let config = Config {
        repetitions: 2,
        verify: true,
        threads,
    };
    Algorithm::ALL
        .iter()
        .map(|&algo| {
            let suites = suites_for_algorithm(algo);
            let bytes: u64 = suites
                .iter()
                .flat_map(|s| s.files.iter())
                .map(|(_, b, _)| b.len() as u64)
                .sum();
            let entry = Entry::ours(algo);
            fpc_metrics::reset();
            let result = measure_cpu(&entry, &suites, &config);
            let metrics = fpc_metrics::snapshot().to_value();
            AlgoPerf {
                name: result.name,
                ratio: result.ratio,
                compress_gbps: result.compress_gbps / div,
                decompress_gbps: result.decompress_gbps / div,
                bytes,
                metrics,
            }
        })
        .collect()
}

/// Reads the `FPC_AUTO_SPEED_FLOOR` fraction
/// ([`DEFAULT_AUTO_SPEED_FLOOR`] when unset or unparsable).
pub fn auto_speed_floor() -> f64 {
    std::env::var("FPC_AUTO_SPEED_FLOOR")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|f| f.is_finite() && *f > 0.0 && *f <= 1.0)
        .unwrap_or(DEFAULT_AUTO_SPEED_FLOOR)
}

/// Measures AUTO and every fixed algorithm over the mixed-stream suites
/// and aggregates AUTO's per-chunk codec picks from the chunk tables.
pub fn measure_auto(threads: usize) -> AutoReport {
    let div = handicap();
    let config = Config {
        repetitions: 2,
        verify: true,
        threads,
    };
    let suites = byte_suites_u8(&mixed_stream_suites(Scale::Small));
    let bytes: u64 = suites
        .iter()
        .flat_map(|s| s.files.iter())
        .map(|(_, b, _)| b.len() as u64)
        .sum();
    let scale = |mut r: CodecResult| {
        r.compress_gbps /= div;
        r.decompress_gbps /= div;
        r
    };
    let auto_perf = scale(measure_cpu(&Entry::ours(Algorithm::Auto), &suites, &config));
    let fixed: Vec<CodecResult> = Algorithm::ALL
        .iter()
        .map(|&algo| scale(measure_cpu(&Entry::ours(algo), &suites, &config)))
        .collect();
    // Pick counts come from the chunk tables of one compression pass per
    // file — deterministic, so re-compressing matches what was timed.
    let compressor = fpc_core::Compressor::new(Algorithm::Auto).with_threads(threads);
    let mut by_id: Vec<(u8, u64)> = Vec::new();
    let mut raw_chunks = 0u64;
    for (_, data, _) in suites.iter().flat_map(|s| s.files.iter()) {
        let stream = compressor.compress_bytes(data);
        let info = fpc_core::info(&stream).expect("self-produced stream");
        raw_chunks += info.raw_chunks as u64;
        for (id, chunks) in info.codec_picks {
            match by_id.iter_mut().find(|(i, _)| *i == id) {
                Some((_, total)) => *total += chunks as u64,
                None => by_id.push((id, chunks as u64)),
            }
        }
    }
    by_id.sort_by_key(|&(id, _)| id);
    let mut picks: Vec<(String, u64)> = by_id
        .into_iter()
        .map(|(id, chunks)| {
            let name = Algorithm::from_id(id)
                .map(|a| a.name().to_string())
                .unwrap_or_else(|_| format!("codec#{id}"));
            (name, chunks)
        })
        .collect();
    if raw_chunks > 0 {
        picks.push(("raw".to_string(), raw_chunks));
    }
    AutoReport {
        bytes,
        auto_perf,
        fixed,
        picks,
    }
}

/// The `auto-dominance` gate: AUTO must match the best fixed algorithm's
/// compression ratio within [`AUTO_RATIO_SLACK`] and keep at least
/// [`auto_speed_floor`] of the speed-tier compression throughput on the
/// mixed-stream suites.
///
/// Returns the list of violation descriptions (empty = gate passes).
pub fn auto_gate(report: &AutoReport) -> Vec<String> {
    let mut failures = Vec::new();
    match report.best_fixed() {
        Some(best) => {
            let floor = best.ratio * (1.0 - AUTO_RATIO_SLACK);
            if report.auto_perf.ratio < floor {
                failures.push(format!(
                    "AUTO ratio {:.4} is more than {:.0}% below best fixed \
                     ({} at {:.4})",
                    report.auto_perf.ratio,
                    AUTO_RATIO_SLACK * 100.0,
                    best.name,
                    best.ratio
                ));
            }
        }
        None => failures.push("no fixed algorithms in the report".to_string()),
    }
    match report.speed_tier_gbps() {
        Some(tier) => {
            let frac = auto_speed_floor();
            let floor = tier * frac;
            if report.auto_perf.compress_gbps < floor {
                failures.push(format!(
                    "AUTO compress {:.3} GB/s is below {:.0}% of the \
                     speed-tier throughput ({tier:.3} GB/s)",
                    report.auto_perf.compress_gbps,
                    frac * 100.0
                ));
            }
        }
        None => failures.push("no speed-tier algorithms in the report".to_string()),
    }
    failures
}

/// Simulated per-chunk codec work (identical to `benches/executor.rs`).
fn chunk_work(chunk: &[u8]) -> u64 {
    let mut acc = 0u64;
    for &b in chunk {
        acc = acc.wrapping_mul(31).wrapping_add(u64::from(b));
    }
    acc
}

/// The seed executor: spawns scoped OS threads on every call.
fn spawn_per_call<T, F>(count: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let threads = threads.max(1).min(count.max(1));
    if threads <= 1 || count <= 1 {
        return (0..count).map(f).collect();
    }
    let mut slots: Vec<Mutex<Option<T>>> = Vec::with_capacity(count);
    slots.resize_with(count, || Mutex::new(None));
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let result = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index claimed")
        })
        .collect()
}

/// Times the pool and the spawn-per-call executor on the chunked-checksum
/// workload from `benches/executor.rs` (256 chunks x 1 KiB per call).
pub fn executor_bench(threads: usize) -> ExecutorPerf {
    const CHUNKS: usize = 256;
    const CHUNK_BYTES: usize = 1024;
    const CALLS: usize = 64;
    let div = handicap();
    let data: Vec<u8> = (0..CHUNKS * CHUNK_BYTES)
        .map(|i| (i as u32).wrapping_mul(0x9E37_79B9).to_le_bytes()[0])
        .collect();
    let run = |exec: &dyn Fn() -> u64| -> f64 {
        std::hint::black_box(exec()); // warm-up
        let start = Instant::now();
        for _ in 0..CALLS {
            std::hint::black_box(exec());
        }
        let secs = start.elapsed().as_secs_f64();
        (CALLS * CHUNKS * CHUNK_BYTES) as f64 / 1e9 / secs.max(1e-12)
    };
    let pool_gbps = run(&|| {
        fpc_pool::run_indexed(CHUNKS, threads, |i| {
            chunk_work(&data[i * CHUNK_BYTES..(i + 1) * CHUNK_BYTES])
        })
        .iter()
        .fold(0u64, |a, &x| a ^ x)
    });
    let spawn_gbps = run(&|| {
        spawn_per_call(CHUNKS, threads, |i| {
            chunk_work(&data[i * CHUNK_BYTES..(i + 1) * CHUNK_BYTES])
        })
        .iter()
        .fold(0u64, |a, &x| a ^ x)
    });
    ExecutorPerf {
        pool_gbps: pool_gbps / div,
        spawn_gbps: spawn_gbps / div,
    }
}

/// Runs the full perf-smoke measurement.
pub fn run(rev: &str, threads: usize) -> BenchReport {
    let created_unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    BenchReport {
        rev: rev.to_string(),
        created_unix,
        threads,
        calibration_gbps: calibrate_gbps(),
        simd_active: fpc_simd::active().name().to_string(),
        simd_kernels: fpc_simd::kernel_tiers()
            .into_iter()
            .map(|(k, t)| (k.to_string(), t.name().to_string()))
            .collect(),
        algorithms: measure_algorithms(threads),
        auto: measure_auto(threads),
        executor: executor_bench(threads),
    }
}

impl AutoReport {
    /// Serializes the `auto` section of the `fpc-bench-v1` schema.
    pub fn to_value(&self) -> Value {
        let perf_obj = |r: &CodecResult| {
            Value::Obj(vec![
                ("name".into(), Value::from(r.name.as_str())),
                ("ratio".into(), Value::from(r.ratio)),
                ("compress_gbps".into(), Value::from(r.compress_gbps)),
                ("decompress_gbps".into(), Value::from(r.decompress_gbps)),
            ])
        };
        let picks = self
            .picks
            .iter()
            .map(|(name, chunks)| (name.clone(), Value::from(*chunks)))
            .collect();
        Value::Obj(vec![
            ("suite".into(), Value::from("mixed-stream")),
            ("bytes".into(), Value::from(self.bytes)),
            ("ratio".into(), Value::from(self.auto_perf.ratio)),
            (
                "compress_gbps".into(),
                Value::from(self.auto_perf.compress_gbps),
            ),
            (
                "decompress_gbps".into(),
                Value::from(self.auto_perf.decompress_gbps),
            ),
            ("picks".into(), Value::Obj(picks)),
            (
                "fixed".into(),
                Value::Arr(self.fixed.iter().map(perf_obj).collect()),
            ),
        ])
    }
}

impl BenchReport {
    /// Serializes to the `fpc-bench-v1` schema (`fpcc stats` renders it).
    pub fn to_value(&self) -> Value {
        let algorithms = self
            .algorithms
            .iter()
            .map(|a| {
                Value::Obj(vec![
                    ("name".into(), Value::from(a.name.as_str())),
                    ("ratio".into(), Value::from(a.ratio)),
                    ("compress_gbps".into(), Value::from(a.compress_gbps)),
                    ("decompress_gbps".into(), Value::from(a.decompress_gbps)),
                    ("bytes".into(), Value::from(a.bytes)),
                    ("metrics".into(), a.metrics.clone()),
                ])
            })
            .collect();
        let kernels = self
            .simd_kernels
            .iter()
            .map(|(k, t)| (k.clone(), Value::from(t.as_str())))
            .collect();
        Value::Obj(vec![
            ("schema".into(), Value::from(BENCH_SCHEMA)),
            ("rev".into(), Value::from(self.rev.as_str())),
            ("created_unix".into(), Value::from(self.created_unix)),
            ("threads".into(), Value::from(self.threads)),
            (
                "calibration_gbps".into(),
                Value::from(self.calibration_gbps),
            ),
            (
                "simd".into(),
                Value::Obj(vec![
                    ("active".into(), Value::from(self.simd_active.as_str())),
                    ("kernels".into(), Value::Obj(kernels)),
                ]),
            ),
            ("algorithms".into(), Value::Arr(algorithms)),
            ("auto".into(), self.auto.to_value()),
            (
                "executor".into(),
                Value::Obj(vec![
                    ("pool_gbps".into(), Value::from(self.executor.pool_gbps)),
                    ("spawn_gbps".into(), Value::from(self.executor.spawn_gbps)),
                ]),
            ),
        ])
    }
}

fn require_schema(v: &Value, which: &str) -> Result<(), String> {
    match v.get("schema").and_then(Value::as_str) {
        Some(BENCH_SCHEMA) => Ok(()),
        Some(other) => Err(format!("{which}: unsupported schema '{other}'")),
        None => Err(format!("{which}: missing 'schema' field")),
    }
}

fn algo_field(a: &Value, name: &str, field: &str) -> Result<f64, String> {
    a.get(field)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("algorithm '{name}' missing '{field}'"))
}

/// Compares a fresh report against a committed baseline.
///
/// Fresh throughput is first normalized by `baseline_calibration /
/// fresh_calibration`, then each algorithm must retain at least
/// `1 - THROUGHPUT_DROP` of the baseline throughput and `1 -
/// RATIO_TOLERANCE` of the baseline ratio; the executor pool number must
/// retain `1 - EXECUTOR_DROP`.
///
/// Returns the list of regression descriptions (empty = gate passes).
///
/// # Errors
///
/// Fails when either document is not a structurally valid `fpc-bench-v1`
/// report.
pub fn compare(baseline: &Value, fresh: &Value) -> Result<Vec<String>, String> {
    require_schema(baseline, "baseline")?;
    require_schema(fresh, "fresh")?;
    let calib = |v: &Value, which: &str| -> Result<f64, String> {
        v.get("calibration_gbps")
            .and_then(Value::as_f64)
            .filter(|c| c.is_finite() && *c > 0.0)
            .ok_or_else(|| format!("{which}: missing or invalid 'calibration_gbps'"))
    };
    // A fresh runner 2x slower than the baseline runner halves every raw
    // number; multiplying fresh throughput by base_calib/fresh_calib
    // cancels machine speed out of the comparison.
    let norm = calib(baseline, "baseline")? / calib(fresh, "fresh")?;
    let empty = Vec::new();
    let base_algos = baseline
        .get("algorithms")
        .and_then(Value::as_arr)
        .ok_or("baseline: missing 'algorithms'")?;
    let fresh_algos = fresh
        .get("algorithms")
        .and_then(Value::as_arr)
        .unwrap_or(&empty);
    let mut failures = Vec::new();
    for b in base_algos {
        let name = b
            .get("name")
            .and_then(Value::as_str)
            .ok_or("baseline: algorithm missing 'name'")?;
        let Some(f) = fresh_algos
            .iter()
            .find(|f| f.get("name").and_then(Value::as_str) == Some(name))
        else {
            failures.push(format!("{name}: missing from fresh report"));
            continue;
        };
        let b_ratio = algo_field(b, name, "ratio")?;
        let f_ratio = algo_field(f, name, "ratio")?;
        if f_ratio < b_ratio * (1.0 - RATIO_TOLERANCE) {
            failures.push(format!(
                "{name}: compression ratio regressed {b_ratio:.4} -> {f_ratio:.4}"
            ));
        }
        for dir in ["compress_gbps", "decompress_gbps"] {
            let b_gbps = algo_field(b, name, dir)?;
            let f_gbps = algo_field(f, name, dir)? * norm;
            if f_gbps < b_gbps * (1.0 - THROUGHPUT_DROP) {
                failures.push(format!(
                    "{name}: {dir} regressed {b_gbps:.3} -> {f_gbps:.3} \
                     (normalized; >{:.0}% drop)",
                    THROUGHPUT_DROP * 100.0
                ));
            }
        }
    }
    let pool = |v: &Value| {
        v.get("executor")
            .and_then(|e| e.get("pool_gbps"))
            .and_then(Value::as_f64)
    };
    if let (Some(b), Some(f)) = (pool(baseline), pool(fresh)) {
        let f = f * norm;
        if f < b * (1.0 - EXECUTOR_DROP) {
            failures.push(format!(
                "executor: pool_gbps regressed {b:.3} -> {f:.3} (normalized; >{:.0}% drop)",
                EXECUTOR_DROP * 100.0
            ));
        }
    }
    Ok(failures)
}

/// Per-stage throughput deltas between two reports, for the perf-smoke log
/// (informational — the gate in [`compare`] does not act on them).
///
/// Each algorithm's `metrics.stages` entries are matched by name; stage
/// throughput is `bytes / nanos` (== GB/s), with the fresh side normalized
/// by the calibration ratio exactly like [`compare`]. Stages missing from
/// either side (feature off, or a stage added/removed between revisions)
/// are skipped. Returns lines like
/// `SPspeed DIFFMS.encode: 5.671 -> 9.802 GB/s (1.73x)`.
pub fn stage_deltas(baseline: &Value, fresh: &Value) -> Vec<String> {
    let calib = |v: &Value| {
        v.get("calibration_gbps")
            .and_then(Value::as_f64)
            .filter(|c| c.is_finite() && *c > 0.0)
    };
    let (Some(b_calib), Some(f_calib)) = (calib(baseline), calib(fresh)) else {
        return Vec::new();
    };
    let norm = b_calib / f_calib;
    let empty = Vec::new();
    let algos = |v: &Value| -> Vec<Value> {
        v.get("algorithms")
            .and_then(Value::as_arr)
            .unwrap_or(&empty)
            .to_vec()
    };
    // Stage name -> (nanos, bytes), keeping only well-formed entries.
    let stages = |a: &Value| -> Vec<(String, f64, f64)> {
        a.get("metrics")
            .and_then(|m| m.get("stages"))
            .and_then(Value::as_arr)
            .map(|arr| {
                arr.iter()
                    .filter_map(|s| {
                        let name = s.get("name").and_then(Value::as_str)?;
                        let nanos = s.get("nanos").and_then(Value::as_f64)?;
                        let bytes = s.get("bytes").and_then(Value::as_f64)?;
                        (nanos > 0.0 && bytes > 0.0).then(|| (name.to_string(), nanos, bytes))
                    })
                    .collect()
            })
            .unwrap_or_default()
    };
    let mut lines = Vec::new();
    for b in algos(baseline) {
        let Some(name) = b.get("name").and_then(Value::as_str) else {
            continue;
        };
        let Some(f) = algos(fresh)
            .into_iter()
            .find(|f| f.get("name").and_then(Value::as_str) == Some(name))
        else {
            continue;
        };
        let fresh_stages = stages(&f);
        for (stage, b_nanos, b_bytes) in stages(&b) {
            let Some((_, f_nanos, f_bytes)) = fresh_stages.iter().find(|(s, _, _)| *s == stage)
            else {
                continue;
            };
            let b_gbps = b_bytes / b_nanos;
            let f_gbps = f_bytes / f_nanos * norm;
            lines.push(format!(
                "{name} {stage}: {b_gbps:.3} -> {f_gbps:.3} GB/s ({:.2}x)",
                f_gbps / b_gbps
            ));
        }
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codec_result(name: &str, ratio: f64, gbps: f64) -> CodecResult {
        CodecResult {
            name: name.into(),
            ours: true,
            ratio,
            compress_gbps: gbps,
            decompress_gbps: gbps,
        }
    }

    fn auto_report(
        auto_ratio: f64,
        auto_gbps: f64,
        fixed_ratio: f64,
        tier_gbps: f64,
    ) -> AutoReport {
        AutoReport {
            bytes: 1000,
            auto_perf: codec_result("AUTO", auto_ratio, auto_gbps),
            fixed: Algorithm::ALL
                .iter()
                .map(|a| codec_result(a.name(), fixed_ratio, tier_gbps))
                .collect(),
            picks: vec![("SPspeed".into(), 3), ("raw".into(), 1)],
        }
    }

    fn report(calib: f64, gbps: f64, ratio: f64) -> Value {
        let r = BenchReport {
            rev: "test".into(),
            created_unix: 0,
            threads: 1,
            calibration_gbps: calib,
            simd_active: fpc_simd::active().name().into(),
            simd_kernels: vec![("zigzag.slice32".into(), "swar".into())],
            algorithms: Algorithm::ALL
                .iter()
                .map(|a| AlgoPerf {
                    name: a.name().into(),
                    ratio,
                    compress_gbps: gbps,
                    decompress_gbps: gbps,
                    bytes: 1000,
                    metrics: fpc_metrics::snapshot().to_value(),
                })
                .collect(),
            auto: auto_report(ratio, gbps, ratio, gbps),
            executor: ExecutorPerf {
                pool_gbps: gbps,
                spawn_gbps: gbps / 2.0,
            },
        };
        r.to_value()
    }

    #[test]
    fn identical_reports_pass() {
        let v = report(1.0, 2.0, 1.5);
        assert_eq!(compare(&v, &v).unwrap(), Vec::<String>::new());
    }

    #[test]
    fn large_drop_fails() {
        let base = report(1.0, 2.0, 1.5);
        let fresh = report(1.0, 0.9, 1.5); // 55% drop
        let failures = compare(&base, &fresh).unwrap();
        assert!(
            failures.iter().any(|f| f.contains("compress_gbps")),
            "{failures:?}"
        );
    }

    #[test]
    fn calibration_normalizes_machine_speed() {
        // Fresh machine is 2x slower across the board, including the
        // calibration loop: not a regression.
        let base = report(2.0, 2.0, 1.5);
        let fresh = report(1.0, 1.0, 1.5);
        assert_eq!(compare(&base, &fresh).unwrap(), Vec::<String>::new());
        // Same raw numbers without the calibration excuse: regression.
        let fresh_same_calib = report(2.0, 1.0, 1.5);
        assert!(!compare(&base, &fresh_same_calib).unwrap().is_empty());
    }

    #[test]
    fn ratio_regression_fails() {
        let base = report(1.0, 2.0, 1.5);
        let fresh = report(1.0, 2.0, 1.2);
        let failures = compare(&base, &fresh).unwrap();
        assert!(failures.iter().any(|f| f.contains("ratio")), "{failures:?}");
    }

    #[test]
    fn missing_algorithm_fails() {
        let base = report(1.0, 2.0, 1.5);
        let mut fresh = report(1.0, 2.0, 1.5);
        if let Value::Obj(members) = &mut fresh {
            for (k, v) in members.iter_mut() {
                if k == "algorithms" {
                    if let Value::Arr(a) = v {
                        a.pop();
                    }
                }
            }
        }
        let failures = compare(&base, &fresh).unwrap();
        assert!(
            failures.iter().any(|f| f.contains("missing")),
            "{failures:?}"
        );
    }

    #[test]
    fn wrong_schema_rejected() {
        let v = Value::parse(r#"{"schema":"nope"}"#).unwrap();
        assert!(compare(&v, &v).is_err());
    }

    #[test]
    fn handicap_defaults_to_one() {
        // Cannot set the env var here (tests run in parallel); just check
        // the unset/default path.
        if std::env::var("FPC_PERF_HANDICAP").is_err() {
            assert_eq!(handicap(), 1.0);
        }
    }

    #[test]
    fn calibration_is_positive() {
        assert!(calibrate_gbps() > 0.0);
    }

    #[test]
    fn executor_bench_produces_numbers() {
        let e = executor_bench(1);
        assert!(e.pool_gbps > 0.0 && e.spawn_gbps > 0.0);
    }

    #[test]
    fn stage_deltas_normalize_and_ratio() {
        let doc = |calib: f64, nanos: u64| {
            Value::parse(&format!(
                r#"{{"schema":"fpc-bench-v1","calibration_gbps":{calib},
                     "algorithms":[{{"name":"SPspeed","metrics":{{"stages":[
                       {{"name":"DIFFMS.encode","calls":1,"nanos":{nanos},"bytes":1000}},
                       {{"name":"BIT","calls":1,"nanos":0,"bytes":0}}]}}}}]}}"#
            ))
            .unwrap()
        };
        // Same machine (equal calibration), stage got 2x faster.
        let lines = stage_deltas(&doc(1.0, 1000), &doc(1.0, 500));
        assert_eq!(lines.len(), 1, "{lines:?}"); // zero-byte stage skipped
        assert!(lines[0].contains("SPspeed DIFFMS.encode"), "{lines:?}");
        assert!(lines[0].contains("(2.00x)"), "{lines:?}");
        // Fresh machine is 2x faster overall: calibration cancels it out.
        let lines = stage_deltas(&doc(1.0, 1000), &doc(2.0, 500));
        assert!(lines[0].contains("(1.00x)"), "{lines:?}");
    }

    #[test]
    fn report_carries_simd_tiers() {
        let v = report(1.0, 2.0, 1.5);
        let simd = v.get("simd").expect("simd section");
        assert!(simd.get("active").and_then(Value::as_str).is_some());
        assert_eq!(
            simd.get("kernels")
                .and_then(|k| k.get("zigzag.slice32"))
                .and_then(Value::as_str),
            Some("swar")
        );
    }

    #[test]
    fn auto_gate_passes_when_auto_matches_best_fixed() {
        // Equal ratio, throughput well above the floor.
        let r = auto_report(1.5, 2.0, 1.5, 2.0);
        assert_eq!(auto_gate(&r), Vec::<String>::new());
        // Within the 1% slack.
        let r = auto_report(1.5 * 0.995, 2.0, 1.5, 2.0);
        assert_eq!(auto_gate(&r), Vec::<String>::new());
    }

    #[test]
    fn auto_gate_fails_on_ratio_loss() {
        let r = auto_report(1.5 * 0.97, 2.0, 1.5, 2.0);
        let failures = auto_gate(&r);
        assert!(failures.iter().any(|f| f.contains("ratio")), "{failures:?}");
    }

    #[test]
    fn auto_gate_fails_below_speed_floor() {
        // AUTO at 5% of the speed tier (default floor is 10%).
        let r = auto_report(1.5, 0.1, 1.5, 2.0);
        let failures = auto_gate(&r);
        assert!(
            failures.iter().any(|f| f.contains("speed-tier")),
            "{failures:?}"
        );
    }

    #[test]
    fn auto_report_helpers_pick_best_and_tier() {
        let mut r = auto_report(1.5, 2.0, 1.5, 2.0);
        r.fixed[1].ratio = 3.0; // SPratio
        r.fixed[2].compress_gbps = 0.5; // DPspeed slower than SPspeed
        assert_eq!(r.best_fixed().map(|b| b.name.as_str()), Some("SPratio"));
        assert_eq!(r.speed_tier_gbps(), Some(0.5));
    }

    #[test]
    fn auto_section_serializes_picks() {
        let v = report(1.0, 2.0, 1.5);
        let auto = v.get("auto").expect("auto section");
        assert_eq!(
            auto.get("picks")
                .and_then(|p| p.get("SPspeed"))
                .and_then(Value::as_u64),
            Some(3)
        );
        assert_eq!(
            auto.get("fixed").and_then(Value::as_arr).map(|a| a.len()),
            Some(4)
        );
        let rendered = fpc_metrics::report::render_value(&v).unwrap();
        assert!(rendered.contains("auto"), "{rendered}");
    }

    #[test]
    fn auto_speed_floor_defaults() {
        if std::env::var("FPC_AUTO_SPEED_FLOOR").is_err() {
            assert_eq!(auto_speed_floor(), DEFAULT_AUTO_SPEED_FLOOR);
        }
    }

    #[test]
    fn report_roundtrips_through_json() {
        let v = report(1.0, 2.0, 1.5);
        let text = v.to_json_pretty();
        let parsed = Value::parse(&text).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(Value::as_str),
            Some(BENCH_SCHEMA)
        );
        assert_eq!(
            parsed
                .get("algorithms")
                .and_then(Value::as_arr)
                .map(|a| a.len()),
            Some(4)
        );
        // The rendered form must go through the shared stats renderer.
        let rendered = fpc_metrics::report::render_value(&parsed).unwrap();
        assert!(rendered.contains("SPspeed"));
    }
}
