//! Timing and aggregation following the paper's methodology (§4):
//! throughput = original size / time, median of N identical runs,
//! geometric means per suite and across suites.

use crate::entries::Entry;
use crate::geo_mean;
use fpc_baselines::Meta;
use fpc_datagen::{Dataset, Dims, Suite};
use fpc_gpu_sim::{DeviceProfile, Direction};
use std::time::Instant;

/// Measurement configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Identical runs per timing (median taken); the paper uses 5.
    pub repetitions: usize,
    /// Verify every decompression bit-for-bit (slower, on by default).
    pub verify: bool,
    /// Worker threads for the paper's algorithms (`0` = all cores).
    /// Baselines are serial and ignore this.
    pub threads: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            repetitions: 5,
            verify: true,
            threads: 0,
        }
    }
}

impl Config {
    /// Fast configuration for smoke runs.
    pub fn quick() -> Self {
        Self {
            repetitions: 2,
            verify: true,
            threads: 0,
        }
    }
}

/// Aggregated result of one codec over all suites.
#[derive(Debug, Clone, PartialEq)]
pub struct CodecResult {
    /// Codec name.
    pub name: String,
    /// Whether it is one of the paper's algorithms.
    pub ours: bool,
    /// Geo-mean of per-suite geo-mean compression ratios.
    pub ratio: f64,
    /// Geo-mean compression throughput in GB/s.
    pub compress_gbps: f64,
    /// Geo-mean decompression throughput in GB/s.
    pub decompress_gbps: f64,
}

fn meta_for(dims: Dims, element_width: u8) -> Meta {
    let dims = match dims {
        Dims::D1(n) => [1, 1, n],
        Dims::D2(r, c) => [1, r, c],
        Dims::D3(s, r, c) => [s, r, c],
    };
    Meta {
        element_width,
        dims,
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

/// Per-file measurement: (ratio, compress GB/s, decompress GB/s).
fn measure_file(entry: &Entry, bytes: &[u8], meta: &Meta, config: &Config) -> (f64, f64, f64) {
    let gb = bytes.len() as f64 / 1e9;
    // One untimed warm-up per direction: the first iteration pays for cold
    // allocator state, page faults, and lazy pool spin-up, and used to skew
    // the median at low repetition counts.
    let stream = entry.compress_with(bytes, meta, config.threads);
    let mut comp_times = Vec::with_capacity(config.repetitions);
    for _ in 0..config.repetitions.max(1) {
        let start = Instant::now();
        let s = entry.compress_with(bytes, meta, config.threads);
        comp_times.push(start.elapsed().as_secs_f64());
        assert_eq!(s.len(), stream.len(), "{} is nondeterministic", entry.name);
    }
    let mut out = entry.decompress_with(&stream, meta, config.threads);
    let mut dec_times = Vec::with_capacity(config.repetitions);
    for _ in 0..config.repetitions.max(1) {
        let start = Instant::now();
        out = entry.decompress_with(&stream, meta, config.threads);
        dec_times.push(start.elapsed().as_secs_f64());
    }
    if config.verify {
        assert_eq!(out, bytes, "{} corrupted a dataset", entry.name);
    }
    // An empty stream (possible only for empty input) would otherwise make
    // the ratio infinite and poison every downstream geo-mean.
    let ratio = if stream.is_empty() {
        0.0
    } else {
        bytes.len() as f64 / stream.len() as f64
    };
    (ratio, gb / median(comp_times), gb / median(dec_times))
}

fn dataset_bytes_f32(d: &Dataset<f32>) -> Vec<u8> {
    d.values
        .iter()
        .flat_map(|v| v.to_bits().to_le_bytes())
        .collect()
}

fn dataset_bytes_f64(d: &Dataset<f64>) -> Vec<u8> {
    d.values
        .iter()
        .flat_map(|v| v.to_bits().to_le_bytes())
        .collect()
}

/// A dataset suite converted to raw bytes plus per-file metadata.
pub struct ByteSuite {
    /// Domain name.
    pub domain: &'static str,
    /// (file name, bytes, meta) triples.
    pub files: Vec<(String, Vec<u8>, Meta)>,
}

/// Converts the typed single-precision suites.
pub fn byte_suites_f32(suites: &[Suite<f32>]) -> Vec<ByteSuite> {
    suites
        .iter()
        .map(|s| ByteSuite {
            domain: s.domain,
            files: s
                .files
                .iter()
                .map(|f| (f.name.clone(), dataset_bytes_f32(f), meta_for(f.dims, 4)))
                .collect(),
        })
        .collect()
}

/// Converts raw-byte suites (mixed MPI-like rank buffers). The metadata
/// records width 8 — only the roster baselines read it, and the mixed
/// streams are measured against the paper's self-describing algorithms.
pub fn byte_suites_u8(suites: &[Suite<u8>]) -> Vec<ByteSuite> {
    suites
        .iter()
        .map(|s| ByteSuite {
            domain: s.domain,
            files: s
                .files
                .iter()
                .map(|f| (f.name.clone(), f.values.clone(), meta_for(f.dims, 8)))
                .collect(),
        })
        .collect()
}

/// Converts the typed double-precision suites.
pub fn byte_suites_f64(suites: &[Suite<f64>]) -> Vec<ByteSuite> {
    suites
        .iter()
        .map(|s| ByteSuite {
            domain: s.domain,
            files: s
                .files
                .iter()
                .map(|f| (f.name.clone(), dataset_bytes_f64(f), meta_for(f.dims, 8)))
                .collect(),
        })
        .collect()
}

/// Measures one codec over all suites on the CPU (real timings).
pub fn measure_cpu(entry: &Entry, suites: &[ByteSuite], config: &Config) -> CodecResult {
    let mut suite_ratios = Vec::new();
    let mut suite_comp = Vec::new();
    let mut suite_dec = Vec::new();
    for suite in suites {
        let mut ratios = Vec::new();
        let mut comps = Vec::new();
        let mut decs = Vec::new();
        for (_, bytes, meta) in &suite.files {
            let (r, c, d) = measure_file(entry, bytes, meta, config);
            ratios.push(r);
            comps.push(c);
            decs.push(d);
        }
        suite_ratios.push(geo_mean(&ratios));
        suite_comp.push(geo_mean(&comps));
        suite_dec.push(geo_mean(&decs));
    }
    CodecResult {
        name: entry.name.clone(),
        ours: entry.is_ours(),
        ratio: geo_mean(&suite_ratios),
        compress_gbps: geo_mean(&suite_comp),
        decompress_gbps: geo_mean(&suite_dec),
    }
}

/// Measures one codec's *ratio* over all suites and attaches the modeled
/// GPU throughput for `profile` (used for Figures 8–11 and 14–17).
///
/// Returns `None` if the codec has no GPU model (CPU-only comparator).
pub fn measure_gpu_modeled(
    entry: &Entry,
    suites: &[ByteSuite],
    profile: &DeviceProfile,
    config: &Config,
) -> Option<CodecResult> {
    let comp = profile.modeled_gbps(&entry.name, Direction::Compress)?;
    let dec = profile.modeled_gbps(&entry.name, Direction::Decompress)?;
    let mut suite_ratios = Vec::new();
    for suite in suites {
        let mut ratios = Vec::new();
        for (_, bytes, meta) in &suite.files {
            let stream = entry.compress(bytes, meta);
            if config.verify {
                assert_eq!(&entry.decompress(&stream, meta), bytes, "{}", entry.name);
            }
            ratios.push(bytes.len() as f64 / stream.len() as f64);
        }
        suite_ratios.push(geo_mean(&ratios));
    }
    Some(CodecResult {
        name: entry.name.clone(),
        ours: entry.is_ours(),
        ratio: geo_mean(&suite_ratios),
        compress_gbps: comp,
        decompress_gbps: dec,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entries::Entry;
    use fpc_core::Algorithm;
    use fpc_datagen::{single_precision_suites, Scale};

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(vec![4.0, 1.0]), 4.0); // upper median
    }

    #[test]
    fn measure_cpu_produces_sane_numbers() {
        let suites = byte_suites_f32(&single_precision_suites(Scale::Small)[..2]);
        let entry = Entry::ours(Algorithm::SpSpeed);
        let result = measure_cpu(
            &entry,
            &suites,
            &Config {
                repetitions: 1,
                verify: true,
                threads: 0,
            },
        );
        assert!(result.ratio > 1.0, "ratio {}", result.ratio);
        assert!(result.compress_gbps > 0.0);
        assert!(result.decompress_gbps > 0.0);
        assert!(result.ours);
    }

    #[test]
    fn gpu_modeled_uses_table_speeds() {
        let suites = byte_suites_f32(&single_precision_suites(Scale::Small)[..1]);
        let entry = Entry::ours(Algorithm::SpSpeed);
        let profile = DeviceProfile::rtx4090();
        let result = measure_gpu_modeled(
            &entry,
            &suites,
            &profile,
            &Config {
                repetitions: 1,
                verify: true,
                threads: 0,
            },
        )
        .expect("SPspeed has a GPU model");
        assert!(result.compress_gbps > 500.0);
        assert!(result.ratio > 1.0);
    }

    #[test]
    fn cpu_only_codec_has_no_gpu_result() {
        let suites = byte_suites_f32(&single_precision_suites(Scale::Small)[..1]);
        let entry = Entry::baseline(fpc_baselines::by_name("Gzip-fast").expect("roster"));
        let profile = DeviceProfile::rtx4090();
        assert!(measure_gpu_modeled(&entry, &suites, &profile, &Config::quick()).is_none());
    }
}
