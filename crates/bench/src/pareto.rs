//! Pareto-front computation for the ratio-vs-throughput scatter plots.
//!
//! A codec is on the front if no other codec is both faster and
//! better-compressing (paper §4: "All compressors that lie on this front
//! are optimal").

/// A point in a figure: (name, throughput GB/s, compression ratio).
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    /// Codec name.
    pub name: String,
    /// X axis: throughput in GB/s.
    pub throughput: f64,
    /// Y axis: compression ratio.
    pub ratio: f64,
}

/// Returns, for each point, whether it lies on the Pareto front
/// (maximizing both throughput and ratio).
pub fn pareto_front(points: &[Point]) -> Vec<bool> {
    points
        .iter()
        .map(|p| {
            !points.iter().any(|q| {
                (q.throughput > p.throughput && q.ratio >= p.ratio)
                    || (q.throughput >= p.throughput && q.ratio > p.ratio)
            })
        })
        .collect()
}

/// Names of the Pareto-optimal codecs, sorted by descending throughput.
pub fn front_names(points: &[Point]) -> Vec<String> {
    let on = pareto_front(points);
    let mut front: Vec<&Point> = points
        .iter()
        .zip(&on)
        .filter(|(_, &b)| b)
        .map(|(p, _)| p)
        .collect();
    front.sort_by(|a, b| b.throughput.partial_cmp(&a.throughput).expect("finite"));
    front.into_iter().map(|p| p.name.clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(name: &str, throughput: f64, ratio: f64) -> Point {
        Point {
            name: name.to_string(),
            throughput,
            ratio,
        }
    }

    #[test]
    fn single_point_is_optimal() {
        let pts = [p("a", 1.0, 1.0)];
        assert_eq!(pareto_front(&pts), vec![true]);
    }

    #[test]
    fn dominated_point_excluded() {
        let pts = [
            p("fast", 10.0, 2.0),
            p("slow-worse", 5.0, 1.5),
            p("dense", 1.0, 3.0),
        ];
        assert_eq!(pareto_front(&pts), vec![true, false, true]);
        assert_eq!(front_names(&pts), vec!["fast", "dense"]);
    }

    #[test]
    fn equal_points_both_on_front() {
        let pts = [p("a", 2.0, 2.0), p("b", 2.0, 2.0)];
        assert_eq!(pareto_front(&pts), vec![true, true]);
    }

    #[test]
    fn strictly_dominated_on_one_axis() {
        // Same ratio, lower throughput -> dominated.
        let pts = [p("a", 2.0, 2.0), p("b", 1.0, 2.0)];
        assert_eq!(pareto_front(&pts), vec![true, false]);
    }

    #[test]
    fn diagonal_chain_all_optimal() {
        let pts: Vec<Point> = (1..=5)
            .map(|i| p(&format!("c{i}"), i as f64, 10.0 / i as f64))
            .collect();
        assert!(pareto_front(&pts).into_iter().all(|b| b));
    }
}
