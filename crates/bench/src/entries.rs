//! Unified view of "compressors under test": the paper's four algorithms
//! plus the reimplemented comparator roster.

use fpc_baselines::{Codec, Datatype, Device, Meta};
use fpc_core::{Algorithm, Compressor};

/// One compressor in the evaluation.
pub struct Entry {
    /// Figure label.
    pub name: String,
    /// Device class (ours are `Both`).
    pub device: Device,
    /// Supported datatypes.
    pub datatype: Datatype,
    kind: Kind,
}

enum Kind {
    Ours(Algorithm),
    Baseline(Box<dyn Codec>),
}

impl Entry {
    /// Wraps one of the paper's algorithms.
    pub fn ours(algorithm: Algorithm) -> Self {
        Self {
            name: algorithm.name().to_string(),
            device: Device::Both,
            datatype: if algorithm.is_single_precision() {
                Datatype::F32
            } else {
                Datatype::F64
            },
            kind: Kind::Ours(algorithm),
        }
    }

    /// Wraps a roster baseline.
    pub fn baseline(codec: Box<dyn Codec>) -> Self {
        Self {
            name: codec.name().to_string(),
            device: codec.device(),
            datatype: codec.datatype(),
            kind: Kind::Baseline(codec),
        }
    }

    /// Whether this is one of the paper's own algorithms.
    pub fn is_ours(&self) -> bool {
        matches!(self.kind, Kind::Ours(_))
    }

    /// Compresses `data` (with `meta` describing it) using all cores.
    pub fn compress(&self, data: &[u8], meta: &Meta) -> Vec<u8> {
        self.compress_with(data, meta, 0)
    }

    /// Compresses with an explicit worker-thread budget (`0` = all cores).
    ///
    /// Baselines ignore the budget: the roster codecs are serial
    /// reimplementations and have no thread knob.
    pub fn compress_with(&self, data: &[u8], meta: &Meta, threads: usize) -> Vec<u8> {
        match &self.kind {
            Kind::Ours(algo) => Compressor::new(*algo)
                .with_threads(threads)
                .compress_bytes(data),
            Kind::Baseline(codec) => codec.compress(data, meta),
        }
    }

    /// Decompresses a stream produced by [`Entry::compress`].
    ///
    /// # Panics
    ///
    /// Panics on corrupt streams — the harness only feeds back its own
    /// streams, so a failure is a bug worth aborting on.
    pub fn decompress(&self, stream: &[u8], meta: &Meta) -> Vec<u8> {
        self.decompress_with(stream, meta, 0)
    }

    /// Decompresses with an explicit worker-thread budget (`0` = all cores).
    ///
    /// # Panics
    ///
    /// Panics on corrupt streams, as for [`Entry::decompress`].
    pub fn decompress_with(&self, stream: &[u8], meta: &Meta, threads: usize) -> Vec<u8> {
        match &self.kind {
            Kind::Ours(_) => {
                fpc_core::decompress_bytes_with(stream, threads).expect("self-produced stream")
            }
            Kind::Baseline(codec) => codec
                .decompress(stream, meta)
                .expect("self-produced stream"),
        }
    }
}

/// The full evaluation lineup: ours first (paper order), then the roster.
pub fn all_entries() -> Vec<Entry> {
    let mut entries: Vec<Entry> = Algorithm::ALL.into_iter().map(Entry::ours).collect();
    entries.extend(fpc_baselines::roster().into_iter().map(Entry::baseline));
    entries
}

/// Entries eligible for a figure: device class and element width filter.
pub fn entries_for(gpu_figure: bool, element_width: u8) -> Vec<Entry> {
    all_entries()
        .into_iter()
        .filter(|e| e.datatype.supports_width(element_width))
        .filter(|e| match e.device {
            Device::Both => true,
            Device::Gpu => gpu_figure,
            Device::Cpu => !gpu_figure,
        })
        .filter(|e| {
            // Ours: only the matching-precision pair appears in a figure.
            !e.is_ours() || e.datatype.supports_width(element_width)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineup_matches_paper_structure() {
        let all = all_entries();
        // 4 ours + >= 18 comparator modes.
        assert!(all.len() >= 22, "got {}", all.len());
        assert_eq!(all.iter().filter(|e| e.is_ours()).count(), 4);
    }

    #[test]
    fn gpu_sp_figure_lineup() {
        let entries = entries_for(true, 4);
        let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
        assert!(names.contains(&"SPspeed"));
        assert!(names.contains(&"SPratio"));
        assert!(names.contains(&"Bitcomp"));
        assert!(names.contains(&"MPC"));
        assert!(names.contains(&"ndzip"));
        // CPU-only and DP-only codecs must be absent.
        assert!(!names.contains(&"FPC"));
        assert!(!names.contains(&"Gzip-best"));
        assert!(!names.contains(&"GFC"));
        assert!(!names.contains(&"DPspeed"));
    }

    #[test]
    fn cpu_dp_figure_lineup() {
        let entries = entries_for(false, 8);
        let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
        assert!(names.contains(&"DPspeed"));
        assert!(names.contains(&"DPratio"));
        assert!(names.contains(&"FPC"));
        assert!(names.contains(&"pFPC"));
        assert!(names.contains(&"Bzip2"));
        assert!(names.contains(&"ndzip"));
        assert!(!names.contains(&"MPC")); // GPU-only original
        assert!(!names.contains(&"SPspeed"));
    }

    #[test]
    fn entries_roundtrip() {
        let data: Vec<u8> = (0..4096u32)
            .flat_map(|i| (i as f32 * 0.1).to_bits().to_le_bytes())
            .collect();
        let meta = Meta::f32_flat(4096);
        for entry in entries_for(false, 4) {
            let c = entry.compress(&data, &meta);
            assert_eq!(entry.decompress(&c, &meta), data, "{}", entry.name);
        }
    }
}
