//! Range-decode microbench: demonstrates that `decompress_range_with` on
//! a 64-chunk container does ~1/64th of the full-decode work for the
//! chunk-addressable algorithms.
//!
//! For each paper algorithm the bench compresses a 1 MiB synthetic input
//! (64 chunks at the 16 KiB default), times a full decode against a
//! single-chunk range decode, and — in `--features metrics` builds —
//! reads the `container.range.*` counters to report exactly how many
//! chunks the range path touched. DPratio's payload is not
//! chunk-addressable (its stream interleaves value and distance planes),
//! so its range path falls back to full-decode-then-slice; the bench
//! reports that honestly rather than excluding it.

use fpc_core::{Algorithm, Compressor};
use std::time::Instant;

/// Timed repetitions per measurement; per-request figures are reported.
const REPS: u32 = 8;

/// Chunks in the benchmark container (at the default 16 KiB chunk size).
pub const CHUNKS: u64 = 64;

/// One algorithm's full-decode vs. range-decode measurement.
#[derive(Debug, Clone)]
pub struct RangeBenchRow {
    /// Paper name (`SPspeed`, …).
    pub algorithm: String,
    /// Chunks in the container (64 by construction).
    pub chunks: u64,
    /// Chunks decoded per range request (from `container.range.chunks.touched`;
    /// zero with the `metrics` feature off or on the DPratio fallback).
    pub chunks_touched: u64,
    /// Seconds per full decompression.
    pub full_secs: f64,
    /// Seconds per single-chunk range decode.
    pub range_secs: f64,
}

impl RangeBenchRow {
    /// Full-decode time over range-decode time (the "~N×" headline).
    pub fn speedup(&self) -> f64 {
        self.full_secs / self.range_secs.max(1e-12)
    }
}

fn synthetic_input(algo: Algorithm) -> Vec<u8> {
    // 1 MiB either way: 64 chunks at the 16 KiB default chunk size.
    if algo.is_single_precision() {
        (0..262_144)
            .flat_map(|i| ((i as f32 * 1e-3).sin() * 7.0).to_bits().to_le_bytes())
            .collect()
    } else {
        (0..131_072)
            .flat_map(|i| ((i as f64 * 1e-3).cos() * 3.0).to_bits().to_le_bytes())
            .collect()
    }
}

fn timed(mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let start = Instant::now();
    for _ in 0..REPS {
        f();
    }
    start.elapsed().as_secs_f64() / f64::from(REPS)
}

/// Measures all four algorithms; see the module docs for the layout.
pub fn run(threads: usize) -> Vec<RangeBenchRow> {
    let chunk = fpc_container::DEFAULT_CHUNK_SIZE as u64;
    // A sub-chunk slice from the middle of the container: the range path
    // must decode exactly one chunk to serve it.
    let (offset, len) = (31 * chunk + 100, 1_000u64);
    Algorithm::ALL
        .iter()
        .map(|&algo| {
            let data = synthetic_input(algo);
            let stream = Compressor::new(algo)
                .with_threads(threads)
                .compress_bytes(&data);
            let full_secs = timed(|| {
                std::hint::black_box(
                    fpc_core::decompress_bytes_with(&stream, threads).expect("full decode"),
                );
            });
            fpc_metrics::reset();
            let range_secs = timed(|| {
                let got = fpc_core::decompress_range_with(&stream, offset, len, threads)
                    .expect("range decode");
                assert_eq!(
                    got,
                    &data[offset as usize..(offset + len) as usize],
                    "{algo}: range decode mismatch"
                );
                std::hint::black_box(got);
            });
            let touched = fpc_metrics::snapshot()
                .counters
                .iter()
                .find(|c| c.name == "container.range.chunks.touched")
                // REPS + 1 requests including the warm-up.
                .map_or(0, |c| c.value / (u64::from(REPS) + 1));
            RangeBenchRow {
                algorithm: algo.to_string(),
                chunks: CHUNKS,
                chunks_touched: touched,
                full_secs,
                range_secs,
            }
        })
        .collect()
}

/// Renders the rows as the markdown table the perf bin prints.
pub fn render(rows: &[RangeBenchRow]) -> String {
    let mut out = String::from(
        "| algorithm | chunks touched | full decode | range decode | speedup |\n\
         |---|---|---|---|---|\n",
    );
    for r in rows {
        let touched = if r.chunks_touched == 0 {
            "n/a".to_string() // metrics off, or the DPratio full-decode fallback
        } else {
            format!("{} of {}", r.chunks_touched, r.chunks)
        };
        out.push_str(&format!(
            "| {} | {} | {:.3} ms | {:.3} ms | {:.1}x |\n",
            r.algorithm,
            touched,
            r.full_secs * 1e3,
            r.range_secs * 1e3,
            r.speedup()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_chunk_range_touches_at_most_two_chunks_of_sixty_four() {
        let rows = run(1);
        assert_eq!(rows.len(), Algorithm::ALL.len());
        for row in &rows {
            assert_eq!(row.chunks, 64);
            assert!(row.full_secs > 0.0 && row.range_secs > 0.0);
            if !fpc_metrics::ENABLED || row.algorithm == "DPratio" {
                continue; // counters compiled out / full-decode fallback
            }
            assert!(
                (1..=2).contains(&row.chunks_touched),
                "{}: a sub-chunk range decoded {} of {} chunks",
                row.algorithm,
                row.chunks_touched,
                row.chunks
            );
        }
    }

    #[test]
    fn render_produces_one_row_per_algorithm() {
        let rows = vec![RangeBenchRow {
            algorithm: "SPspeed".into(),
            chunks: 64,
            chunks_touched: 1,
            full_secs: 1e-3,
            range_secs: 2e-5,
        }];
        let table = render(&rows);
        assert!(table.contains("SPspeed"), "{table}");
        assert!(table.contains("1 of 64"), "{table}");
    }
}
