//! Minimal offline micro-benchmark harness.
//!
//! Replaces the external `criterion` dependency with an in-repo shim so
//! `cargo bench` (and `cargo build --benches`) works without any registry
//! access. Each bench binary is a plain `fn main()` (its `[[bench]]` entry
//! sets `harness = false`) that builds [`Group`]s and times closures.
//!
//! Methodology: one untimed warm-up call, then `sample_size` timed calls;
//! the *median* wall-clock time is reported together with throughput when
//! the group declares a byte count. Medians make the output robust to
//! scheduler noise without needing criterion's outlier statistics.
//!
//! Set `FPC_BENCH_SAMPLES` to override every group's sample count (e.g.
//! `FPC_BENCH_SAMPLES=3` for a quick smoke run).

use std::hint::black_box;
use std::time::Instant;

/// A named collection of related measurements sharing a throughput basis.
pub struct Group {
    name: String,
    bytes: Option<u64>,
    samples: usize,
}

impl Group {
    /// Start a group; prints a heading immediately so output is streamed.
    pub fn new(name: &str) -> Self {
        println!("\n{name}");
        Group {
            name: name.to_string(),
            bytes: None,
            samples: 10,
        }
    }

    /// Declare the number of input bytes one closure call processes, so
    /// results are reported in GB/s as well as wall-clock time.
    pub fn throughput_bytes(mut self, bytes: u64) -> Self {
        self.bytes = Some(bytes);
        self
    }

    /// Number of timed samples per benchmark (median is reported).
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.samples = samples.max(1);
        self
    }

    fn effective_samples(&self) -> usize {
        std::env::var("FPC_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(self.samples)
            .max(1)
    }

    /// Time `f` and print its median duration (and GB/s when known).
    pub fn bench<R>(&self, id: &str, mut f: impl FnMut() -> R) {
        black_box(f()); // warm-up: page in code and data, fill caches
        let samples = self.effective_samples();
        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            black_box(f());
            times.push(start.elapsed().as_secs_f64());
        }
        self.report(id, median(&mut times));
    }

    /// Time `f` on a fresh input from `setup` each sample (setup excluded
    /// from the measurement) — the `iter_batched` pattern, for closures
    /// that consume or mutate their input.
    pub fn bench_batched<I, R>(
        &self,
        id: &str,
        mut setup: impl FnMut() -> I,
        mut f: impl FnMut(I) -> R,
    ) {
        black_box(f(setup()));
        let samples = self.effective_samples();
        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let input = setup();
            let start = Instant::now();
            black_box(f(input));
            times.push(start.elapsed().as_secs_f64());
        }
        self.report(id, median(&mut times));
    }

    fn report(&self, id: &str, secs: f64) {
        let label = format!("{}/{id}", self.name);
        match self.bytes {
            Some(bytes) if secs > 0.0 => {
                let gbps = bytes as f64 / secs / 1e9;
                println!("  {label:<48} {:>12}   {gbps:>8.3} GB/s", fmt_time(secs));
            }
            _ => println!("  {label:<48} {:>12}", fmt_time(secs)),
        }
    }
}

fn median(times: &mut [f64]) -> f64 {
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{:.3} µs", secs * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_order_invariant() {
        let mut a = vec![3.0, 1.0, 2.0];
        assert_eq!(median(&mut a), 2.0);
        let mut b = vec![5.0, 4.0];
        assert_eq!(median(&mut b), 5.0);
    }

    #[test]
    fn time_formatting_picks_sane_units() {
        assert!(fmt_time(2.5).ends_with(" s"));
        assert!(fmt_time(2.5e-3).ends_with(" ms"));
        assert!(fmt_time(2.5e-6).ends_with(" µs"));
    }

    #[test]
    fn groups_run_closures() {
        let g = Group::new("test_group").throughput_bytes(8).sample_size(2);
        let mut calls = 0u32;
        g.bench("counting", || {
            calls += 1;
            calls
        });
        assert!(calls >= 3, "warm-up + 2 samples");
        g.bench_batched("batched", || vec![1u8, 2], |v| v.len());
    }
}
