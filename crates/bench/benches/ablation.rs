//! Benches for the design-choice ablations (DESIGN.md): enhanced-MPLG
//! fallback, FCM window, adaptive RAZE/RARE split, chunk size.

use fpc_bench::microbench::Group;
use fpc_core::{Algorithm, Compressor, PipelineOptions};
use fpc_datagen::{double_precision_suites, single_precision_suites, Scale};

fn sp_bytes() -> Vec<u8> {
    let suites = single_precision_suites(Scale::Small);
    suites[0].files[0]
        .values
        .iter()
        .flat_map(|v| v.to_bits().to_le_bytes())
        .collect()
}

fn dp_bytes() -> Vec<u8> {
    let suites = double_precision_suites(Scale::Small);
    suites[2].files[0]
        .values
        .iter()
        .flat_map(|v| v.to_bits().to_le_bytes())
        .collect()
}

fn bench_mplg_fallback() {
    let data = sp_bytes();
    let group = Group::new("ablation_mplg_fallback")
        .throughput_bytes(data.len() as u64)
        .sample_size(10);
    for fallback in [true, false] {
        let opts = PipelineOptions {
            mplg_fallback: fallback,
            ..PipelineOptions::default()
        };
        let compressor = Compressor::new(Algorithm::SpSpeed).with_options(opts);
        group.bench(&format!("spspeed/{fallback}"), || {
            compressor.compress_bytes(&data)
        });
    }
}

fn bench_fcm_window() {
    let data = dp_bytes();
    let group = Group::new("ablation_fcm_window")
        .throughput_bytes(data.len() as u64)
        .sample_size(10);
    for window in [1usize, 4, 8] {
        let opts = PipelineOptions {
            fcm_window: window,
            ..PipelineOptions::default()
        };
        let compressor = Compressor::new(Algorithm::DpRatio).with_options(opts);
        group.bench(&format!("dpratio/{window}"), || {
            compressor.compress_bytes(&data)
        });
    }
}

fn bench_chunk_size() {
    let data = sp_bytes();
    let group = Group::new("ablation_chunk_size")
        .throughput_bytes(data.len() as u64)
        .sample_size(10);
    for chunk_kb in [4usize, 16, 64] {
        let compressor = Compressor::new(Algorithm::SpRatio).with_chunk_size(chunk_kb * 1024);
        group.bench(&format!("spratio/{chunk_kb}"), || {
            compressor.compress_bytes(&data)
        });
    }
}

fn main() {
    bench_mplg_fallback();
    bench_fcm_window();
    bench_chunk_size();
}
