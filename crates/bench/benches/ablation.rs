//! Criterion benches for the design-choice ablations (DESIGN.md):
//! enhanced-MPLG fallback, FCM window, adaptive RAZE/RARE split, chunk size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fpc_core::{Algorithm, Compressor, PipelineOptions};
use fpc_datagen::{double_precision_suites, single_precision_suites, Scale};

fn sp_bytes() -> Vec<u8> {
    let suites = single_precision_suites(Scale::Small);
    suites[0].files[0].values.iter().flat_map(|v| v.to_bits().to_le_bytes()).collect()
}

fn dp_bytes() -> Vec<u8> {
    let suites = double_precision_suites(Scale::Small);
    suites[2].files[0].values.iter().flat_map(|v| v.to_bits().to_le_bytes()).collect()
}

fn bench_mplg_fallback(c: &mut Criterion) {
    let data = sp_bytes();
    let mut group = c.benchmark_group("ablation_mplg_fallback");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.sample_size(10);
    for fallback in [true, false] {
        let opts = PipelineOptions { mplg_fallback: fallback, ..PipelineOptions::default() };
        let compressor = Compressor::new(Algorithm::SpSpeed).with_options(opts);
        group.bench_with_input(BenchmarkId::new("spspeed", fallback), &data, |b, d| {
            b.iter(|| compressor.compress_bytes(d));
        });
    }
    group.finish();
}

fn bench_fcm_window(c: &mut Criterion) {
    let data = dp_bytes();
    let mut group = c.benchmark_group("ablation_fcm_window");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.sample_size(10);
    for window in [1usize, 4, 8] {
        let opts = PipelineOptions { fcm_window: window, ..PipelineOptions::default() };
        let compressor = Compressor::new(Algorithm::DpRatio).with_options(opts);
        group.bench_with_input(BenchmarkId::new("dpratio", window), &data, |b, d| {
            b.iter(|| compressor.compress_bytes(d));
        });
    }
    group.finish();
}

fn bench_chunk_size(c: &mut Criterion) {
    let data = sp_bytes();
    let mut group = c.benchmark_group("ablation_chunk_size");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.sample_size(10);
    for chunk_kb in [4usize, 16, 64] {
        let compressor = Compressor::new(Algorithm::SpRatio).with_chunk_size(chunk_kb * 1024);
        group.bench_with_input(BenchmarkId::new("spratio", chunk_kb), &data, |b, d| {
            b.iter(|| compressor.compress_bytes(d));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mplg_fallback, bench_fcm_window, bench_chunk_size);
criterion_main!(benches);
