//! Microbenches of the individual transformations on one 16 KiB chunk —
//! the unit of work the paper's throughput numbers decompose into.

use fpc_bench::microbench::Group;
use fpc_transforms::{bit_transpose, diffms, fcm, mplg, rare, raze, rze};

const CHUNK_U32: usize = 4096;
const CHUNK_U64: usize = 2048;

fn chunk_u32() -> Vec<u32> {
    (0..CHUNK_U32)
        .map(|i| (1.5f32 + i as f32 * 1e-4).to_bits())
        .collect()
}

fn chunk_u64() -> Vec<u64> {
    (0..CHUNK_U64)
        .map(|i| (9.25f64 - i as f64 * 1e-7).to_bits())
        .collect()
}

fn main() {
    let group = Group::new("transforms_16k_chunk")
        .throughput_bytes(16384)
        .sample_size(20);

    group.bench_batched("diffms32_encode", chunk_u32, |mut w| {
        diffms::encode32(&mut w)
    });
    group.bench_batched("bit_transpose32", chunk_u32, |mut w| {
        bit_transpose::transpose32(&mut w)
    });
    {
        let mut diffed = chunk_u32();
        diffms::encode32(&mut diffed);
        group.bench("mplg32_encode", || {
            let mut out = Vec::with_capacity(16384);
            mplg::encode32(&diffed, &mut out);
            out
        });
    }
    {
        let mut diffed = chunk_u32();
        diffms::encode32(&mut diffed);
        bit_transpose::transpose32(&mut diffed);
        let bytes: Vec<u8> = diffed.iter().flat_map(|w| w.to_le_bytes()).collect();
        group.bench("rze_encode", || {
            let mut out = Vec::with_capacity(16384);
            rze::encode(&bytes, &mut out);
            out
        });
    }
    {
        let mut diffed = chunk_u64();
        diffms::encode64(&mut diffed);
        group.bench("raze_encode", || {
            let mut out = Vec::with_capacity(16384);
            raze::encode(&diffed, &mut out);
            out
        });
    }
    {
        let w = chunk_u64();
        group.bench("rare_encode", || {
            let mut out = Vec::with_capacity(16384);
            rare::encode(&w, &mut out);
            out
        });
    }

    let data: Vec<u64> = (0..1 << 16)
        .map(|i| ((i % 1024) as f64).to_bits())
        .collect();
    let group = Group::new("transforms_global")
        .throughput_bytes((data.len() * 8) as u64)
        .sample_size(10);
    group.bench("fcm_encode_64k_values", || fcm::encode(&data));
    let enc = fcm::encode(&data);
    group.bench("fcm_decode_64k_values", || {
        fcm::decode(&enc).expect("valid arrays")
    });
}
