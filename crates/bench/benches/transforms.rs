//! Criterion microbenches of the individual transformations on one 16 KiB
//! chunk — the unit of work the paper's throughput numbers decompose into.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fpc_transforms::{bit_transpose, diffms, fcm, mplg, rare, raze, rze};

const CHUNK_U32: usize = 4096;
const CHUNK_U64: usize = 2048;

fn chunk_u32() -> Vec<u32> {
    (0..CHUNK_U32).map(|i| (1.5f32 + i as f32 * 1e-4).to_bits()).collect()
}

fn chunk_u64() -> Vec<u64> {
    (0..CHUNK_U64).map(|i| (9.25f64 - i as f64 * 1e-7).to_bits()).collect()
}

fn bench_stages(c: &mut Criterion) {
    let mut group = c.benchmark_group("transforms_16k_chunk");
    group.throughput(Throughput::Bytes(16384));
    group.sample_size(20);

    group.bench_function("diffms32_encode", |b| {
        b.iter_batched(
            chunk_u32,
            |mut w| diffms::encode32(&mut w),
            criterion::BatchSize::SmallInput,
        );
    });
    group.bench_function("bit_transpose32", |b| {
        b.iter_batched(
            chunk_u32,
            |mut w| bit_transpose::transpose32(&mut w),
            criterion::BatchSize::SmallInput,
        );
    });
    group.bench_function("mplg32_encode", |b| {
        let mut diffed = chunk_u32();
        diffms::encode32(&mut diffed);
        b.iter(|| {
            let mut out = Vec::with_capacity(16384);
            mplg::encode32(&diffed, &mut out);
            out
        });
    });
    group.bench_function("rze_encode", |b| {
        let mut diffed = chunk_u32();
        diffms::encode32(&mut diffed);
        bit_transpose::transpose32(&mut diffed);
        let bytes: Vec<u8> = diffed.iter().flat_map(|w| w.to_le_bytes()).collect();
        b.iter(|| {
            let mut out = Vec::with_capacity(16384);
            rze::encode(&bytes, &mut out);
            out
        });
    });
    group.bench_function("raze_encode", |b| {
        let mut diffed = chunk_u64();
        diffms::encode64(&mut diffed);
        b.iter(|| {
            let mut out = Vec::with_capacity(16384);
            raze::encode(&diffed, &mut out);
            out
        });
    });
    group.bench_function("rare_encode", |b| {
        let w = chunk_u64();
        b.iter(|| {
            let mut out = Vec::with_capacity(16384);
            rare::encode(&w, &mut out);
            out
        });
    });
    group.finish();

    let mut group = c.benchmark_group("transforms_global");
    let data: Vec<u64> = (0..1 << 16).map(|i| ((i % 1024) as f64).to_bits()).collect();
    group.throughput(Throughput::Bytes((data.len() * 8) as u64));
    group.sample_size(10);
    group.bench_function("fcm_encode_64k_values", |b| {
        b.iter(|| fcm::encode(&data));
    });
    let enc = fcm::encode(&data);
    group.bench_function("fcm_decode_64k_values", |b| {
        b.iter(|| fcm::decode(&enc).expect("valid arrays"));
    });
    group.finish();
}

criterion_group!(benches, bench_stages);
criterion_main!(benches);
