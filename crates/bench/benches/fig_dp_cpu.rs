//! Benches behind Figures 18/19: double-precision CPU compression and
//! decompression throughput.

use fpc_baselines::Meta;
use fpc_bench::microbench::Group;
use fpc_core::{Algorithm, Compressor};
use fpc_datagen::{double_precision_suites, Scale};

fn dp_bytes() -> Vec<u8> {
    let suites = double_precision_suites(Scale::Small);
    suites[0].files[0]
        .values
        .iter()
        .flat_map(|v| v.to_bits().to_le_bytes())
        .collect()
}

fn bench_ours() {
    let data = dp_bytes();
    let group = Group::new("fig18_dp_cpu_compress")
        .throughput_bytes(data.len() as u64)
        .sample_size(10);
    for algo in [Algorithm::DpSpeed, Algorithm::DpRatio] {
        let compressor = Compressor::new(algo);
        group.bench(&format!("ours/{}", algo.name()), || {
            compressor.compress_bytes(&data)
        });
    }

    let group = Group::new("fig19_dp_cpu_decompress")
        .throughput_bytes(data.len() as u64)
        .sample_size(10);
    for algo in [Algorithm::DpSpeed, Algorithm::DpRatio] {
        let stream = Compressor::new(algo).compress_bytes(&data);
        group.bench(&format!("ours/{}", algo.name()), || {
            fpc_core::decompress_bytes(&stream).expect("bench stream")
        });
    }
}

fn bench_baselines() {
    let data = dp_bytes();
    let meta = Meta::f64_flat(data.len() / 8);
    let group = Group::new("fig18_dp_cpu_compress_baselines")
        .throughput_bytes(data.len() as u64)
        .sample_size(10);
    for name in ["FPC", "pFPC", "ndzip", "ZSTD-best"] {
        let codec = fpc_baselines::by_name(name).expect("roster codec");
        group.bench(&format!("baseline/{name}"), || codec.compress(&data, &meta));
    }
}

fn main() {
    bench_ours();
    bench_baselines();
}
