//! Benches behind Figures 8–11: single-precision GPU pipelines.
//!
//! These time the *simulated* GPU execution path (functional kernels on the
//! host CPU); the figures' GB/s numbers come from the calibrated device
//! model, but these benches track the relative kernel costs and catch
//! regressions in the warp/block primitives.

use fpc_bench::microbench::Group;
use fpc_core::Algorithm;
use fpc_datagen::{single_precision_suites, Scale};
use fpc_gpu_sim::GpuCompressor;

fn sp_bytes() -> Vec<u8> {
    let suites = single_precision_suites(Scale::Small);
    suites[0].files[0]
        .values
        .iter()
        .flat_map(|v| v.to_bits().to_le_bytes())
        .collect()
}

fn main() {
    let data = sp_bytes();
    let group = Group::new("fig08_sp_gpu_sim_compress")
        .throughput_bytes(data.len() as u64)
        .sample_size(10);
    for algo in [Algorithm::SpSpeed, Algorithm::SpRatio] {
        let gpu = GpuCompressor::new(algo);
        group.bench(&format!("gpu-sim/{}", algo.name()), || {
            gpu.compress_bytes(&data)
        });
    }

    let group = Group::new("fig09_sp_gpu_sim_decompress")
        .throughput_bytes(data.len() as u64)
        .sample_size(10);
    for algo in [Algorithm::SpSpeed, Algorithm::SpRatio] {
        let gpu = GpuCompressor::new(algo);
        let stream = gpu.compress_bytes(&data);
        group.bench(&format!("gpu-sim/{}", algo.name()), || {
            gpu.decompress_bytes(&stream).expect("bench stream")
        });
    }
}
