//! Criterion benches behind Figures 8–11: single-precision GPU pipelines.
//!
//! These time the *simulated* GPU execution path (functional kernels on the
//! host CPU); the figures' GB/s numbers come from the calibrated device
//! model, but these benches track the relative kernel costs and catch
//! regressions in the warp/block primitives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fpc_core::Algorithm;
use fpc_datagen::{single_precision_suites, Scale};
use fpc_gpu_sim::GpuCompressor;

fn sp_bytes() -> Vec<u8> {
    let suites = single_precision_suites(Scale::Small);
    suites[0].files[0].values.iter().flat_map(|v| v.to_bits().to_le_bytes()).collect()
}

fn bench_gpu_kernels(c: &mut Criterion) {
    let data = sp_bytes();
    let mut group = c.benchmark_group("fig08_sp_gpu_sim_compress");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.sample_size(10);
    for algo in [Algorithm::SpSpeed, Algorithm::SpRatio] {
        let gpu = GpuCompressor::new(algo);
        group.bench_with_input(BenchmarkId::new("gpu-sim", algo.name()), &data, |b, d| {
            b.iter(|| gpu.compress_bytes(d));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig09_sp_gpu_sim_decompress");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.sample_size(10);
    for algo in [Algorithm::SpSpeed, Algorithm::SpRatio] {
        let gpu = GpuCompressor::new(algo);
        let stream = gpu.compress_bytes(&data);
        group.bench_with_input(BenchmarkId::new("gpu-sim", algo.name()), &stream, |b, s| {
            b.iter(|| gpu.decompress_bytes(s).expect("bench stream"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gpu_kernels);
criterion_main!(benches);
