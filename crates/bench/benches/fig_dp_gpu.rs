//! Benches behind Figures 14–17: double-precision GPU pipelines
//! (simulated execution path; see `fig_sp_gpu.rs` for caveats).

use fpc_bench::microbench::Group;
use fpc_core::Algorithm;
use fpc_datagen::{double_precision_suites, Scale};
use fpc_gpu_sim::GpuCompressor;

fn dp_bytes() -> Vec<u8> {
    let suites = double_precision_suites(Scale::Small);
    suites[0].files[0]
        .values
        .iter()
        .flat_map(|v| v.to_bits().to_le_bytes())
        .collect()
}

fn main() {
    let data = dp_bytes();
    let group = Group::new("fig14_dp_gpu_sim_compress")
        .throughput_bytes(data.len() as u64)
        .sample_size(10);
    for algo in [Algorithm::DpSpeed, Algorithm::DpRatio] {
        let gpu = GpuCompressor::new(algo);
        group.bench(&format!("gpu-sim/{}", algo.name()), || {
            gpu.compress_bytes(&data)
        });
    }

    let group = Group::new("fig15_dp_gpu_sim_decompress")
        .throughput_bytes(data.len() as u64)
        .sample_size(10);
    for algo in [Algorithm::DpSpeed, Algorithm::DpRatio] {
        let gpu = GpuCompressor::new(algo);
        let stream = gpu.compress_bytes(&data);
        group.bench(&format!("gpu-sim/{}", algo.name()), || {
            gpu.decompress_bytes(&stream).expect("bench stream")
        });
    }
}
