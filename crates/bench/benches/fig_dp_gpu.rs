//! Criterion benches behind Figures 14–17: double-precision GPU pipelines
//! (simulated execution path; see `fig_sp_gpu.rs` for caveats).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fpc_core::Algorithm;
use fpc_datagen::{double_precision_suites, Scale};
use fpc_gpu_sim::GpuCompressor;

fn dp_bytes() -> Vec<u8> {
    let suites = double_precision_suites(Scale::Small);
    suites[0].files[0].values.iter().flat_map(|v| v.to_bits().to_le_bytes()).collect()
}

fn bench_gpu_kernels(c: &mut Criterion) {
    let data = dp_bytes();
    let mut group = c.benchmark_group("fig14_dp_gpu_sim_compress");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.sample_size(10);
    for algo in [Algorithm::DpSpeed, Algorithm::DpRatio] {
        let gpu = GpuCompressor::new(algo);
        group.bench_with_input(BenchmarkId::new("gpu-sim", algo.name()), &data, |b, d| {
            b.iter(|| gpu.compress_bytes(d));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig15_dp_gpu_sim_decompress");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.sample_size(10);
    for algo in [Algorithm::DpSpeed, Algorithm::DpRatio] {
        let gpu = GpuCompressor::new(algo);
        let stream = gpu.compress_bytes(&data);
        group.bench_with_input(BenchmarkId::new("gpu-sim", algo.name()), &stream, |b, s| {
            b.iter(|| gpu.decompress_bytes(s).expect("bench stream"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gpu_kernels);
criterion_main!(benches);
