//! Criterion benches behind Figures 12/13: single-precision CPU
//! compression and decompression throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fpc_baselines::Meta;
use fpc_core::{Algorithm, Compressor};
use fpc_datagen::{single_precision_suites, Scale};

fn sp_bytes() -> Vec<u8> {
    let suites = single_precision_suites(Scale::Small);
    suites[0].files[0].values.iter().flat_map(|v| v.to_bits().to_le_bytes()).collect()
}

fn bench_ours(c: &mut Criterion) {
    let data = sp_bytes();
    let mut group = c.benchmark_group("fig12_sp_cpu_compress");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.sample_size(10);
    for algo in [Algorithm::SpSpeed, Algorithm::SpRatio] {
        let compressor = Compressor::new(algo);
        group.bench_with_input(BenchmarkId::new("ours", algo.name()), &data, |b, d| {
            b.iter(|| compressor.compress_bytes(d));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig13_sp_cpu_decompress");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.sample_size(10);
    for algo in [Algorithm::SpSpeed, Algorithm::SpRatio] {
        let stream = Compressor::new(algo).compress_bytes(&data);
        group.bench_with_input(BenchmarkId::new("ours", algo.name()), &stream, |b, s| {
            b.iter(|| fpc_core::decompress_bytes(s).expect("bench stream"));
        });
    }
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let data = sp_bytes();
    let meta = Meta::f32_flat(data.len() / 4);
    let mut group = c.benchmark_group("fig12_sp_cpu_compress_baselines");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.sample_size(10);
    for name in ["ndzip", "SPDP-fast", "ZSTD-fast", "Gzip-fast", "FPzip"] {
        let codec = fpc_baselines::by_name(name).expect("roster codec");
        group.bench_with_input(BenchmarkId::new("baseline", name), &data, |b, d| {
            b.iter(|| codec.compress(d, &meta));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ours, bench_baselines);
criterion_main!(benches);
