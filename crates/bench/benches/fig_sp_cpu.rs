//! Benches behind Figures 12/13: single-precision CPU compression and
//! decompression throughput.

use fpc_baselines::Meta;
use fpc_bench::microbench::Group;
use fpc_core::{Algorithm, Compressor};
use fpc_datagen::{single_precision_suites, Scale};

fn sp_bytes() -> Vec<u8> {
    let suites = single_precision_suites(Scale::Small);
    suites[0].files[0]
        .values
        .iter()
        .flat_map(|v| v.to_bits().to_le_bytes())
        .collect()
}

fn bench_ours() {
    let data = sp_bytes();
    let group = Group::new("fig12_sp_cpu_compress")
        .throughput_bytes(data.len() as u64)
        .sample_size(10);
    for algo in [Algorithm::SpSpeed, Algorithm::SpRatio] {
        let compressor = Compressor::new(algo);
        group.bench(&format!("ours/{}", algo.name()), || {
            compressor.compress_bytes(&data)
        });
    }

    let group = Group::new("fig13_sp_cpu_decompress")
        .throughput_bytes(data.len() as u64)
        .sample_size(10);
    for algo in [Algorithm::SpSpeed, Algorithm::SpRatio] {
        let stream = Compressor::new(algo).compress_bytes(&data);
        group.bench(&format!("ours/{}", algo.name()), || {
            fpc_core::decompress_bytes(&stream).expect("bench stream")
        });
    }
}

fn bench_baselines() {
    let data = sp_bytes();
    let meta = Meta::f32_flat(data.len() / 4);
    let group = Group::new("fig12_sp_cpu_compress_baselines")
        .throughput_bytes(data.len() as u64)
        .sample_size(10);
    for name in ["ndzip", "SPDP-fast", "ZSTD-fast", "Gzip-fast", "FPzip"] {
        let codec = fpc_baselines::by_name(name).expect("roster codec");
        group.bench(&format!("baseline/{name}"), || codec.compress(&data, &meta));
    }
}

fn main() {
    bench_ours();
    bench_baselines();
}
