//! Benches over the comparator roster: compression throughput of every
//! reimplemented baseline on one fixed smooth-field input.

use fpc_baselines::Meta;
use fpc_bench::microbench::Group;
use fpc_datagen::{double_precision_suites, Scale};

fn dp_bytes() -> Vec<u8> {
    let suites = double_precision_suites(Scale::Small);
    suites[1].files[0]
        .values
        .iter()
        .flat_map(|v| v.to_bits().to_le_bytes())
        .collect()
}

fn main() {
    let data = dp_bytes();
    let meta = Meta::f64_flat(data.len() / 8);
    let group = Group::new("baselines_dp_compress")
        .throughput_bytes(data.len() as u64)
        .sample_size(10);
    for codec in fpc_baselines::roster() {
        if !codec.datatype().supports_width(8) {
            continue;
        }
        group.bench(&format!("compress/{}", codec.name()), || {
            codec.compress(&data, &meta)
        });
    }

    let group = Group::new("baselines_dp_decompress")
        .throughput_bytes(data.len() as u64)
        .sample_size(10);
    for codec in fpc_baselines::roster() {
        if !codec.datatype().supports_width(8) {
            continue;
        }
        let stream = codec.compress(&data, &meta);
        group.bench(&format!("decompress/{}", codec.name()), || {
            codec.decompress(&stream, &meta).expect("bench stream")
        });
    }
}
