//! Criterion benches over the comparator roster: compression throughput of
//! every reimplemented baseline on one fixed smooth-field input.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fpc_baselines::Meta;
use fpc_datagen::{double_precision_suites, Scale};

fn dp_bytes() -> Vec<u8> {
    let suites = double_precision_suites(Scale::Small);
    suites[1].files[0].values.iter().flat_map(|v| v.to_bits().to_le_bytes()).collect()
}

fn bench_roster(c: &mut Criterion) {
    let data = dp_bytes();
    let meta = Meta::f64_flat(data.len() / 8);
    let mut group = c.benchmark_group("baselines_dp_compress");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.sample_size(10);
    for codec in fpc_baselines::roster() {
        if !codec.datatype().supports_width(8) {
            continue;
        }
        group.bench_with_input(BenchmarkId::new("compress", codec.name()), &data, |b, d| {
            b.iter(|| codec.compress(d, &meta));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("baselines_dp_decompress");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.sample_size(10);
    for codec in fpc_baselines::roster() {
        if !codec.datatype().supports_width(8) {
            continue;
        }
        let stream = codec.compress(&data, &meta);
        group.bench_with_input(BenchmarkId::new("decompress", codec.name()), &stream, |b, s| {
            b.iter(|| codec.decompress(s, &meta).expect("bench stream"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_roster);
criterion_main!(benches);
