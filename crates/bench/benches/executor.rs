//! Executor overhead: persistent pool vs. spawn-per-call scoped threads.
//!
//! The workload the pool was built for: many small chunks, little work per
//! chunk (a 16 KiB-chunked compress call is ~256 indices per MiB). The
//! spawn-per-call reference below is the executor this repository shipped
//! with originally — `thread::scope` + one OS thread per worker per call —
//! kept here verbatim as the baseline.
//!
//! Run with `cargo bench -p fpc-bench --bench executor`.

use fpc_bench::microbench::Group;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The seed executor: spawns `threads` scoped OS threads per call.
fn spawn_per_call<T, F>(count: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = if threads == 0 { available } else { threads }.min(count.max(1));
    if threads <= 1 || count <= 1 {
        return (0..count).map(f).collect();
    }
    let mut slots: Vec<Mutex<Option<T>>> = Vec::with_capacity(count);
    slots.resize_with(count, || Mutex::new(None));
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let result = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index claimed")
        })
        .collect()
}

/// Simulated per-chunk codec work: touch `chunk` and produce a checksum-ish
/// value, cheap enough that executor overhead dominates.
fn chunk_work(chunk: &[u8]) -> u64 {
    let mut acc = 0u64;
    for &b in chunk {
        acc = acc.wrapping_mul(31).wrapping_add(u64::from(b));
    }
    acc
}

fn main() {
    const CHUNKS: usize = 256;
    const CHUNK_BYTES: usize = 1024;
    let data = vec![0xA5u8; CHUNKS * CHUNK_BYTES];
    let chunks: Vec<&[u8]> = data.chunks(CHUNK_BYTES).collect();

    for threads in [2usize, 4, 8] {
        let g = Group::new(&format!("executor/{CHUNKS}x{CHUNK_BYTES}B/t{threads}"))
            .throughput_bytes(data.len() as u64)
            .sample_size(30);
        g.bench("spawn_per_call", || {
            spawn_per_call(CHUNKS, threads, |i| chunk_work(chunks[i]))
        });
        g.bench("persistent_pool", || {
            fpc_pool::run_indexed(CHUNKS, threads, |i| chunk_work(chunks[i]))
        });
    }

    // Back-to-back small jobs: the pattern a file-at-a-time benchmark run
    // produces. Per-call overhead compounds here.
    let g = Group::new("executor/100-calls-of-32-chunks/t4")
        .throughput_bytes((32 * CHUNK_BYTES * 100) as u64)
        .sample_size(10);
    g.bench("spawn_per_call", || {
        let mut last = 0u64;
        for _ in 0..100 {
            last = spawn_per_call(32, 4, |i| chunk_work(chunks[i]))[0];
        }
        last
    });
    g.bench("persistent_pool", || {
        let mut last = 0u64;
        for _ in 0..100 {
            last = fpc_pool::run_indexed(32, 4, |i| chunk_work(chunks[i]))[0];
        }
        last
    });
}
