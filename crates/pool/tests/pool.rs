//! Executor contract tests: panic propagation, re-entrancy, thread-count
//! edge cases, and cross-thread job concurrency.
//!
//! The bit-identical-output-vs-seed-executor tests live in the workspace
//! root (`tests/executor.rs`) where all four algorithm pipelines are in
//! scope; these tests pin the pool's own semantics.

use fpc_pool::{for_each_index, run_indexed};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};

#[test]
fn thread_count_edge_cases() {
    // 0 = all cores, 1 = inline, large = oversubscribed: all must produce
    // the same, index-ordered output.
    let expected: Vec<usize> = (0..777).map(|i| i * i).collect();
    for threads in [0usize, 1, 2, 3, 7, 64, 1024] {
        let out = run_indexed(777, threads, |i| i * i);
        assert_eq!(out, expected, "threads = {threads}");
    }
}

#[test]
fn more_threads_than_items() {
    let out = run_indexed(3, 100, |i| i + 1);
    assert_eq!(out, vec![1, 2, 3]);
}

#[test]
fn panic_propagates_to_caller() {
    let err = catch_unwind(AssertUnwindSafe(|| {
        run_indexed(100, 4, |i| {
            if i == 37 {
                panic!("boom at {i}");
            }
            i
        })
    }))
    .expect_err("panic must propagate");
    let msg = err
        .downcast_ref::<String>()
        .map(String::as_str)
        .unwrap_or_default();
    assert!(msg.contains("boom at 37"), "payload lost: {msg:?}");
}

#[test]
fn pool_survives_worker_panics() {
    // A panicking job must not wedge or poison the shared pool: later jobs
    // (including ones claimed by the same pool workers) still complete.
    for round in 0..5 {
        let _ = catch_unwind(AssertUnwindSafe(|| {
            run_indexed(64, 4, |i| {
                if i % 7 == round {
                    panic!("round {round}");
                }
                i
            })
        }));
        let ok = run_indexed(200, 4, |i| i * 2);
        assert_eq!(ok, (0..200).map(|i| i * 2).collect::<Vec<_>>());
    }
}

#[test]
fn first_panic_wins_under_multiple_panics() {
    let err = catch_unwind(AssertUnwindSafe(|| {
        run_indexed(50, 8, |i| {
            if i % 2 == 0 {
                panic!("even index {i}");
            }
            i
        })
    }))
    .expect_err("panic must propagate");
    let msg = err
        .downcast_ref::<String>()
        .map(String::as_str)
        .unwrap_or_default();
    assert!(msg.contains("even index"), "{msg:?}");
}

#[test]
fn nested_jobs_complete() {
    // A worker that submits a sub-job must drain it itself if no peer is
    // free — the caller-participation rule makes this deadlock-free even
    // when the pool is saturated by the outer job.
    let out = run_indexed(8, 4, |outer| {
        let inner = run_indexed(32, 4, move |i| (outer * 32 + i) as u64);
        inner.iter().sum::<u64>()
    });
    let expected: Vec<u64> = (0..8u64)
        .map(|outer| (0..32u64).map(|i| outer * 32 + i).sum())
        .collect();
    assert_eq!(out, expected);
}

#[test]
fn deeply_nested_jobs_complete() {
    let out = run_indexed(4, 4, |a| {
        run_indexed(4, 4, move |b| {
            run_indexed(4, 4, move |c| a * 16 + b * 4 + c)
                .into_iter()
                .sum::<usize>()
        })
        .into_iter()
        .sum::<usize>()
    });
    let total: usize = out.into_iter().sum();
    assert_eq!(total, (0..64).sum());
}

#[test]
fn concurrent_jobs_from_many_threads() {
    // Several OS threads race whole jobs through the shared pool at once;
    // every job must see only its own indices.
    let errors = Mutex::new(Vec::new());
    let barrier = Barrier::new(4);
    std::thread::scope(|scope| {
        for t in 0..4usize {
            let errors = &errors;
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                for round in 0..10 {
                    let out = run_indexed(128, 3, |i| i + t * 1000);
                    let expected: Vec<usize> = (0..128).map(|i| i + t * 1000).collect();
                    if out != expected {
                        errors
                            .lock()
                            .expect("collector")
                            .push(format!("thread {t} round {round} corrupted"));
                    }
                }
            });
        }
    });
    let errors = errors.into_inner().expect("collector");
    assert!(errors.is_empty(), "{errors:?}");
}

#[test]
fn for_each_index_runs_every_index_exactly_once() {
    let hits: Vec<AtomicUsize> = (0..512).map(|_| AtomicUsize::new(0)).collect();
    for_each_index(512, 0, |i| {
        hits[i].fetch_add(1, Ordering::Relaxed);
    });
    assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
}

#[test]
fn for_each_panic_propagates() {
    let err = catch_unwind(AssertUnwindSafe(|| {
        for_each_index(64, 4, |i| {
            if i == 5 {
                panic!("side-effect job panic");
            }
        });
    }));
    assert!(err.is_err());
}

#[test]
fn results_are_dropped_exactly_once() {
    // T with a non-trivial Drop: every produced value must be dropped once
    // (collected results by the caller, and on the panic path too).
    static DROPS: AtomicUsize = AtomicUsize::new(0);
    static MADE: AtomicUsize = AtomicUsize::new(0);
    struct Counted;
    impl Drop for Counted {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Ordering::Relaxed);
        }
    }

    let out = run_indexed(100, 4, |_| {
        MADE.fetch_add(1, Ordering::Relaxed);
        Counted
    });
    drop(out);
    assert_eq!(MADE.load(Ordering::Relaxed), 100);
    assert_eq!(DROPS.load(Ordering::Relaxed), 100);

    MADE.store(0, Ordering::Relaxed);
    DROPS.store(0, Ordering::Relaxed);
    let _ = catch_unwind(AssertUnwindSafe(|| {
        run_indexed(100, 4, |i| {
            if i == 50 {
                panic!("mid-job");
            }
            MADE.fetch_add(1, Ordering::Relaxed);
            Counted
        })
    }));
    assert_eq!(
        DROPS.load(Ordering::Relaxed),
        MADE.load(Ordering::Relaxed),
        "values produced before the panic must still be dropped"
    );
}

#[test]
fn huge_index_space_with_tiny_work() {
    // Stresses batched claiming: far more indices than any sane chunk
    // count, trivial per-index work.
    let sum = AtomicUsize::new(0);
    for_each_index(1_000_000, 4, |i| {
        if i % 100_000 == 0 {
            sum.fetch_add(1, Ordering::Relaxed);
        }
    });
    assert_eq!(sum.load(Ordering::Relaxed), 10);
}
