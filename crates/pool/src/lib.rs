//! Persistent work-claiming executor shared by every parallel stage.
//!
//! The paper's CPU path owes its throughput to dynamically assigning chunks
//! to threads (§3). The seed implementation reproduced the *scheduling*
//! faithfully but paid for it structurally: every compress/decompress call
//! spawned fresh OS threads (`std::thread::scope`) and allocated a
//! `Mutex<Option<T>>` per chunk. On many-small-chunk workloads — exactly
//! the regime FCBench-style throughput comparisons measure — that overhead
//! is charged directly against SPspeed/DPspeed numbers.
//!
//! This crate replaces the per-call machinery with a process-wide pool:
//!
//! * **Lazy persistent workers.** One set of OS threads is spawned on first
//!   use (one per available core) and parked on a condvar between jobs.
//!   Submitting a job is a queue push + notify, not N `clone(2)` calls.
//! * **Batched index claiming.** Workers claim `K` indices per
//!   `fetch_add` (K scales with `count / threads`), cutting cache-line
//!   contention on the shared counter while keeping the dynamic load
//!   balance the paper's OpenMP `schedule(dynamic)` provides.
//! * **Caller participation.** The submitting thread always executes
//!   batches itself, so a job completes even when every pool worker is
//!   busy — which is also what makes nested/re-entrant use deadlock-free:
//!   a worker that submits a sub-job drains that sub-job on its own thread
//!   if no peer is free.
//! * **Deterministic output.** Results land in per-index slots, so the
//!   collected `Vec` is in index order regardless of which worker ran
//!   which batch; output bytes never depend on the thread count.
//! * **Panic propagation without deadlock.** A panic inside the closure is
//!   caught, remaining indices are drained without executing, and the
//!   first payload is re-thrown on the submitting thread after every
//!   in-flight batch has retired.
//! * **Per-worker scratch arenas.** [`with_scratch`] hands out a reusable
//!   thread-local byte buffer so per-chunk encoders stop allocating a
//!   fresh `Vec` per chunk.
//!
//! # Closure contract
//!
//! `f` must be a pure function of its index (plus captured shared state):
//! it may be called from any worker in any order. If `f` blocks waiting
//! for *another index* of the same job to run (the decoupled look-back
//! scan does, on strictly lower indices), that is safe for lower indices —
//! batches are claimed monotonically and processed in ascending order —
//! but a panic in such a job may hang it, because indices after a panic
//! are skipped without executing.

use std::cell::{RefCell, UnsafeCell};
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicIsize, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// Runs `f(0..count)` across up to `threads` workers (0 = all cores) and
/// returns the results in index order.
///
/// `threads` is an upper bound: the calling thread always participates,
/// and at most `threads - 1` pool workers join it. `threads == 1` (or a
/// single-element job) runs inline on the caller with no synchronization.
///
/// # Panics
///
/// If `f` panics for any index, the first panic payload is re-thrown on
/// the calling thread once all in-flight work has retired.
pub fn run_indexed<T, F>(count: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = effective_threads(threads, count);
    if threads <= 1 || count <= 1 {
        return (0..count).map(f).collect();
    }
    let mut slots: Vec<Slot<T>> = Vec::with_capacity(count);
    slots.resize_with(count, || Slot(UnsafeCell::new(None)));
    {
        let slots = &slots[..];
        execute(count, threads, &|i| {
            let value = f(i);
            // Exclusive access: the claim protocol hands each index to
            // exactly one worker, and the submitter reads only after every
            // batch has retired (release/acquire via `pending` + latch).
            unsafe { *slots[i].0.get() = Some(value) };
        });
    }
    slots
        .into_iter()
        .map(|s| {
            s.0.into_inner()
                .expect("claim protocol runs every index exactly once")
        })
        .collect()
}

/// Runs `f(0..count)` for side effects only — no per-index result slots.
///
/// Same scheduling, participation, and panic semantics as [`run_indexed`];
/// used by stages that publish through their own shared state (the
/// decoupled look-back scan, the union-find FCM decode) where a
/// `Vec<()>` of slots would be pure overhead.
pub fn for_each_index<F>(count: usize, threads: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let threads = effective_threads(threads, count);
    if threads <= 1 || count <= 1 {
        for i in 0..count {
            f(i);
        }
        return;
    }
    execute(count, threads, &f);
}

/// Number of workers that will actually run a job of `count` items when
/// `requested` threads are asked for (0 = all available cores).
///
/// Oversubscription is clamped: the pool only ever has one worker per
/// available core, so `requested > available_parallelism` would merely
/// shrink the claim batches (more counter contention) without adding
/// concurrency — callers asking for 64 threads on a 4-core box get 4.
///
/// The clamp has a floor of 2 for explicit multi-thread requests: an
/// explicit `threads >= 2` always reaches the parallel path, even on a
/// single-core host. The jobs are deterministic and CPU-bound, so two
/// workers on one core are merely slow, and single-core CI runners rely
/// on `--threads 2` to exercise the pool machinery at all.
pub fn effective_threads(requested: usize, count: usize) -> usize {
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let t = if requested == 0 {
        available
    } else {
        requested.min(available.max(2))
    };
    t.min(count.max(1))
}

/// Cap beyond which a thread's scratch arena is shrunk after use, so one
/// outsized chunk cannot pin megabytes per worker for the process lifetime.
const SCRATCH_RETAIN: usize = 1 << 20;

thread_local! {
    static SCRATCH: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

/// Hands `f` this thread's reusable scratch buffer, cleared but with its
/// capacity retained across calls.
///
/// Chunk encoders use this instead of allocating a fresh output `Vec` per
/// chunk: the arena warms up to the working-set size once per worker and
/// every later chunk encodes allocation-free. Re-entrant calls (an encoder
/// inside an encoder) fall back to a fresh buffer rather than aliasing.
pub fn with_scratch<R>(f: impl FnOnce(&mut Vec<u8>) -> R) -> R {
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut buf) => {
            if fpc_metrics::ENABLED {
                let counter = if buf.capacity() > 0 {
                    fpc_metrics::Counter::PoolScratchHits
                } else {
                    fpc_metrics::Counter::PoolScratchMisses
                };
                fpc_metrics::incr(counter, 1);
            }
            buf.clear();
            let out = f(&mut buf);
            if buf.capacity() > SCRATCH_RETAIN {
                buf.truncate(0);
                buf.shrink_to(SCRATCH_RETAIN);
            }
            out
        }
        Err(_) => f(&mut Vec::new()),
    })
}

/// Per-index result slot. `Sync` is sound because the claim protocol gives
/// each index to exactly one worker and the submitter only reads after the
/// completion latch (see `execute`).
struct Slot<T>(UnsafeCell<Option<T>>);

unsafe impl<T: Send> Sync for Slot<T> {}

/// Heap-shared state of one job. Lives in an `Arc` so a worker's final
/// touch (the completion latch) is always on memory it co-owns, never on
/// the submitter's stack.
struct JobCore {
    /// Next unclaimed index; claims advance by `batch`.
    next: AtomicUsize,
    count: usize,
    /// Indices claimed per `fetch_add` — the contention/balance dial.
    batch: usize,
    /// Indices not yet retired; 0 ⇒ job complete.
    pending: AtomicUsize,
    /// Pool workers still allowed to join (the submitter needs none).
    permits: AtomicIsize,
    /// Set on the first panic; later indices are drained without running.
    poisoned: AtomicBool,
    /// First panic payload, re-thrown by the submitter.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Completion latch.
    done: Mutex<bool>,
    done_cv: Condvar,
    /// Submit-to-first-claim stopwatch (zero-sized without `metrics`).
    queue_wait: fpc_metrics::Stopwatch,
    /// Ensures the queue wait is recorded by exactly one claimant.
    wait_recorded: AtomicBool,
}

impl JobCore {
    fn new(count: usize, threads: usize) -> Self {
        JobCore {
            next: AtomicUsize::new(0),
            count,
            batch: (count / (threads * 4)).clamp(1, 64),
            pending: AtomicUsize::new(count),
            permits: AtomicIsize::new(threads as isize - 1),
            poisoned: AtomicBool::new(false),
            panic: Mutex::new(None),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            queue_wait: fpc_metrics::Stopwatch::start(),
            wait_recorded: AtomicBool::new(false),
        }
    }

    /// Called under the pool queue lock: reserve a helper seat if the job
    /// still has unclaimed work and spare permits.
    fn try_take_permit(&self) -> bool {
        if self.next.load(Ordering::Relaxed) >= self.count {
            return false;
        }
        if self.permits.fetch_sub(1, Ordering::Relaxed) > 0 {
            true
        } else {
            self.permits.fetch_add(1, Ordering::Relaxed);
            false
        }
    }

    fn poison(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = lock(&self.panic);
        if slot.is_none() {
            *slot = Some(payload);
        }
        self.poisoned.store(true, Ordering::Relaxed);
    }

    /// Retires `n` indices; the worker that retires the last one trips the
    /// latch. `AcqRel` chains every worker's slot writes into the final
    /// decrement, so the submitter's post-latch reads see all results.
    fn complete(&self, n: usize) {
        if self.pending.fetch_sub(n, Ordering::AcqRel) == n {
            *lock(&self.done) = true;
            self.done_cv.notify_all();
        }
    }

    fn wait(&self) {
        let mut done = lock(&self.done);
        while !*done {
            done = self
                .done_cv
                .wait(done)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Borrowed job body, living on the submitter's stack. Holds the fat
/// `dyn Fn` pointer behind one thin pointer so `JobHandle` stays `'static`
/// after type erasure.
struct JobData<'a> {
    body: &'a (dyn Fn(usize) + Sync),
}

/// Queue entry cloned by each joining worker.
struct JobHandle {
    core: Arc<JobCore>,
    /// Points at a `JobData` on the submitting thread's stack. Dereferenced
    /// only between a successful batch claim and that batch's `complete`
    /// call — a window in which the submitter is provably still blocked in
    /// `JobCore::wait`, keeping the stack frame alive.
    data: *const JobData<'static>,
}

// SAFETY: the raw pointer is only dereferenced under the claim protocol
// described on the field; `JobCore` is `Send + Sync` by construction.
unsafe impl Send for JobHandle {}

impl Clone for JobHandle {
    fn clone(&self) -> Self {
        JobHandle {
            core: Arc::clone(&self.core),
            data: self.data,
        }
    }
}

/// The claim-execute loop every participant (submitter and pool workers)
/// runs until the job's index space is drained.
///
/// SAFETY (`data`): see `JobHandle::data`. The dereference happens only
/// after `next.fetch_add` returned an in-range start, i.e. while this
/// worker holds ≥1 unretired index, so `pending > 0` and the submitter
/// cannot have returned.
unsafe fn drive(core: &JobCore, data: *const JobData<'static>, is_worker: bool) {
    loop {
        let start = core.next.fetch_add(core.batch, Ordering::Relaxed);
        if start >= core.count {
            break;
        }
        // Fault hook: delaying a claimed batch perturbs the dynamic
        // schedule (stealing, completion order) without touching data.
        if let Some(delay) = fpc_faults::pool_delay(start as u64) {
            std::thread::sleep(delay);
        }
        if fpc_metrics::ENABLED {
            if !core.wait_recorded.swap(true, Ordering::Relaxed) {
                fpc_metrics::incr(
                    fpc_metrics::Counter::PoolQueueWaitNanos,
                    core.queue_wait.elapsed_nanos(),
                );
            }
            fpc_metrics::incr(fpc_metrics::Counter::PoolBatches, 1);
            if is_worker {
                fpc_metrics::incr(fpc_metrics::Counter::PoolWorkerBatches, 1);
            }
        }
        let end = (start + core.batch).min(core.count);
        let body = (*data).body;
        for i in start..end {
            if !core.poisoned.load(Ordering::Relaxed) {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(i))) {
                    core.poison(payload);
                }
            }
        }
        core.complete(end - start);
    }
}

fn execute(count: usize, threads: usize, body: &(dyn Fn(usize) + Sync)) {
    debug_assert!(count > 1 && threads > 1);
    fpc_metrics::incr(fpc_metrics::Counter::PoolJobs, 1);
    let core = Arc::new(JobCore::new(count, threads));
    let data = JobData { body };
    // Erase the borrow: pointer validity is governed by the claim protocol,
    // not this (fabricated) 'static lifetime.
    let data_ptr: *const JobData<'static> =
        (&data as *const JobData<'_>).cast::<JobData<'static>>();
    let pool = Pool::global();
    pool.submit(JobHandle {
        core: Arc::clone(&core),
        data: data_ptr,
    });
    // The submitter is always one of the workers: the job finishes even if
    // every pool thread is busy (and nested submissions cannot deadlock).
    unsafe { drive(&core, data_ptr, false) };
    core.wait();
    pool.unsubmit(&core);
    let payload = lock(&core.panic).take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

struct Pool {
    queue: Mutex<VecDeque<JobHandle>>,
    available: Condvar,
}

impl Pool {
    /// The process-wide pool, spawning one worker per core on first use.
    /// Workers are detached; they park on the condvar between jobs and die
    /// with the process. (The freshly spawned workers call `global()`
    /// themselves and block on the `OnceLock` until this initializer
    /// returns — that is the normal `get_or_init` contention path.)
    fn global() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| {
            let workers = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            for id in 0..workers {
                std::thread::Builder::new()
                    .name(format!("fpc-pool-{id}"))
                    .spawn(|| worker_loop(Pool::global()))
                    .expect("spawning pool worker");
            }
            Pool {
                queue: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
            }
        })
    }

    fn submit(&self, handle: JobHandle) {
        lock(&self.queue).push_back(handle);
        // Every idle worker may be able to help.
        self.available.notify_all();
    }

    fn unsubmit(&self, core: &Arc<JobCore>) {
        lock(&self.queue).retain(|job| !Arc::ptr_eq(&job.core, core));
    }
}

fn worker_loop(pool: &'static Pool) {
    let mut queue = lock(&pool.queue);
    loop {
        // Oldest job first; skip jobs that are drained or fully staffed.
        let job = queue.iter().find(|job| job.core.try_take_permit()).cloned();
        match job {
            Some(job) => {
                drop(queue);
                unsafe { drive(&job.core, job.data, true) };
                queue = lock(&pool.queue);
            }
            None => {
                queue = pool
                    .available
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn effective_threads_clamps() {
        let available = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        // 0 = all cores.
        assert_eq!(effective_threads(0, usize::MAX), available);
        // Explicit single thread stays single.
        assert_eq!(effective_threads(1, usize::MAX), 1);
        // Oversubscribed requests clamp to the available parallelism,
        // with a floor of 2 so explicit multi-thread requests still take
        // the parallel path on a single-core host.
        assert_eq!(
            effective_threads(available * 16, usize::MAX),
            available.max(2)
        );
        assert_eq!(effective_threads(usize::MAX, usize::MAX), available.max(2));
        assert_eq!(effective_threads(2, usize::MAX), 2);
        // The item count still bounds the worker count...
        assert_eq!(effective_threads(0, 1), 1);
        assert_eq!(effective_threads(8, 2), 2);
        // ...and an empty job still reports one worker (the caller).
        assert_eq!(effective_threads(4, 0), 1);
    }

    #[test]
    fn zero_and_one_count() {
        let out: Vec<u32> = run_indexed(0, 4, |_| unreachable!());
        assert!(out.is_empty());
        let out = run_indexed(1, 8, |i| i + 7);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn order_preserved_under_contention() {
        for threads in [1usize, 2, 3, 8, 0] {
            let out = run_indexed(500, threads, |i| i * 3);
            assert_eq!(out, (0..500).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn each_index_claimed_once() {
        let calls = Mutex::new(HashSet::new());
        run_indexed(200, 8, |i| {
            assert!(lock(&calls).insert(i), "index {i} claimed twice");
        });
        assert_eq!(lock(&calls).len(), 200);
    }

    #[test]
    fn for_each_index_covers_all() {
        for threads in [0usize, 1, 4, 32] {
            let sum = AtomicU64::new(0);
            for_each_index(300, threads, |i| {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 300 * 299 / 2);
        }
    }

    #[test]
    fn load_is_dynamic() {
        let total = AtomicU64::new(0);
        run_indexed(64, 4, |i| {
            let work = if i % 16 == 0 { 100_000 } else { 10 };
            let mut acc = 0u64;
            for k in 0..work {
                acc = acc.wrapping_add(k);
            }
            total.fetch_add(acc.min(1), Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn scratch_reuses_capacity_and_nests() {
        let cap = with_scratch(|buf| {
            buf.extend_from_slice(&[1, 2, 3]);
            buf.capacity()
        });
        with_scratch(|buf| {
            assert!(buf.is_empty(), "scratch must be handed out cleared");
            assert!(buf.capacity() >= cap.min(3));
            // Re-entrant use must not alias the outer borrow.
            let inner = with_scratch(|inner| {
                inner.push(9);
                inner.len()
            });
            assert_eq!(inner, 1);
        });
    }
}
