//! Fast fixed-width bit packing/unpacking.
//!
//! The scalar reference in `fpc-entropy` pushes bits through a `BitWriter`/
//! `BitReader` one value at a time, flushing byte by byte. The fast paths
//! here keep a word-sized accumulator and flush 4/8 bytes at a time on
//! pack, and unpack by loading an unaligned little-endian window at the
//! value's byte offset and shifting — pure safe SWAR, identical byte output
//! (both are LSB-first), and the same EOF behaviour: the sequential reader
//! fails iff fewer than `count * width` bits exist, which is checked up
//! front here.
//!
//! All bit positions are computed in `u64`: on 32-bit targets (the i686 CI
//! build) `len * 8` can overflow `usize`.

use crate::Tier;

/// Tier used by the pack kernels (the block accumulator is the same code on
/// every non-scalar tier).
pub fn chosen_pack() -> Tier {
    crate::choose(&[Tier::Swar])
}

/// Tier used by the unpack kernels.
pub fn chosen_unpack() -> Tier {
    crate::choose(&[Tier::Swar])
}

/// Tier used by the slice-maximum kernel behind `min_width_*`.
pub fn chosen_max() -> Tier {
    crate::choose(&[Tier::Avx2])
}

/// Packs each `u32` at `width` bits (1..=32), appending to `out`.
/// Byte-identical to the `BitWriter` loop in `fpc_entropy::bitpack`.
pub fn pack_u32(values: &[u32], width: u32, out: &mut Vec<u8>) {
    debug_assert!((1..=32).contains(&width));
    crate::record(chosen_pack());
    let mask = if width == 32 {
        u32::MAX
    } else {
        (1u32 << width) - 1
    };
    out.reserve((values.len() * width as usize).div_ceil(8));
    let mut acc = 0u64;
    let mut bits = 0u32;
    for &v in values {
        acc |= ((v & mask) as u64) << bits;
        bits += width;
        if bits >= 32 {
            out.extend_from_slice(&(acc as u32).to_le_bytes());
            acc >>= 32;
            bits -= 32;
        }
    }
    while bits > 0 {
        out.push(acc as u8);
        acc >>= 8;
        bits = bits.saturating_sub(8);
    }
}

/// Packs each `u64` at `width` bits (1..=64), appending to `out`.
pub fn pack_u64(values: &[u64], width: u32, out: &mut Vec<u8>) {
    debug_assert!((1..=64).contains(&width));
    crate::record(chosen_pack());
    let mask = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    out.reserve((values.len() * width as usize).div_ceil(8));
    let mut acc = 0u128;
    let mut bits = 0u32;
    for &v in values {
        acc |= ((v & mask) as u128) << bits;
        bits += width;
        if bits >= 64 {
            out.extend_from_slice(&(acc as u64).to_le_bytes());
            acc >>= 64;
            bits -= 64;
        }
    }
    while bits > 0 {
        out.push(acc as u8);
        acc >>= 8;
        bits = bits.saturating_sub(8);
    }
}

/// Unpacks `count` values of `width` bits (1..=32) from `data`.
///
/// Returns `false` (leaving `out` partially extended, as the scalar reader
/// may also do before its error) iff `data` holds fewer than
/// `count * width` bits — exactly the scalar EOF condition.
pub fn unpack_u32(data: &[u8], width: u32, count: usize, out: &mut Vec<u32>) -> bool {
    debug_assert!((1..=32).contains(&width));
    crate::record(chosen_unpack());
    if count as u128 * width as u128 > data.len() as u128 * 8 {
        return false;
    }
    let mask = if width == 32 {
        u64::from(u32::MAX)
    } else {
        (1u64 << width) - 1
    };
    out.reserve(count);
    let w64 = width as u64;
    let mut i = 0usize;
    loop {
        let byte = ((i as u64 * w64) >> 3) as usize;
        if i >= count || byte + 8 > data.len() {
            break;
        }
        let win = u64::from_le_bytes(data[byte..byte + 8].try_into().expect("8-byte window"));
        out.push(((win >> ((i as u64 * w64) & 7)) & mask) as u32);
        i += 1;
    }
    if i < count {
        // Fewer than 8 bytes remain past the current offset: finish from a
        // zero-padded copy of the tail so window loads never run off the end
        // (the padding bits are beyond count*width and never selected).
        let base = ((i as u64 * w64) >> 3) as usize;
        let rem = &data[base..];
        let mut buf = [0u8; 16];
        buf[..rem.len()].copy_from_slice(rem);
        for k in i..count {
            let bitpos = k as u64 * w64 - base as u64 * 8;
            let byte = (bitpos >> 3) as usize;
            let win = u64::from_le_bytes(buf[byte..byte + 8].try_into().expect("8-byte window"));
            out.push(((win >> (bitpos & 7)) & mask) as u32);
        }
    }
    true
}

/// Unpacks `count` values of `width` bits (1..=64) from `data`.
///
/// Same contract as [`unpack_u32`].
pub fn unpack_u64(data: &[u8], width: u32, count: usize, out: &mut Vec<u64>) -> bool {
    debug_assert!((1..=64).contains(&width));
    crate::record(chosen_unpack());
    if count as u128 * width as u128 > data.len() as u128 * 8 {
        return false;
    }
    let mask = if width == 64 {
        u128::from(u64::MAX)
    } else {
        (1u128 << width) - 1
    };
    out.reserve(count);
    let w64 = width as u64;
    let mut i = 0usize;
    loop {
        let byte = ((i as u64 * w64) >> 3) as usize;
        if i >= count || byte + 16 > data.len() {
            break;
        }
        let win = u128::from_le_bytes(data[byte..byte + 16].try_into().expect("16-byte window"));
        out.push(((win >> ((i as u64 * w64) & 7)) & mask) as u64);
        i += 1;
    }
    if i < count {
        let base = ((i as u64 * w64) >> 3) as usize;
        let rem = &data[base..];
        let mut buf = [0u8; 32];
        buf[..rem.len()].copy_from_slice(rem);
        for k in i..count {
            let bitpos = k as u64 * w64 - base as u64 * 8;
            let byte = (bitpos >> 3) as usize;
            let win = u128::from_le_bytes(buf[byte..byte + 16].try_into().expect("16-byte window"));
            out.push(((win >> (bitpos & 7)) & mask) as u64);
        }
    }
    true
}

/// Dispatched maximum of a `u32` slice (0 for empty) — the kernel behind
/// `min_width_u32`.
pub fn max_u32(values: &[u32]) -> u32 {
    match chosen_max() {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        Tier::Avx2 => crate::x86::max_u32_avx2(values),
        _ => values.iter().copied().max().unwrap_or(0),
    }
}

/// Maximum of a `u64` slice (0 for empty); no vector formulation beats the
/// scalar loop without AVX-512, so this is scalar at every tier.
pub fn max_u64(values: &[u64]) -> u64 {
    values.iter().copied().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal reimplementation of the scalar LSB-first BitWriter for
    /// differential checking without a dependency on fpc-entropy.
    fn scalar_pack<T: Into<u64> + Copy>(values: &[T], width: u32) -> Vec<u8> {
        let mut out = Vec::new();
        let mut acc = 0u128;
        let mut nbits = 0u32;
        for &v in values {
            let mask = if width == 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            acc |= ((v.into() & mask) as u128) << nbits;
            nbits += width;
            while nbits >= 8 {
                out.push(acc as u8);
                acc >>= 8;
                nbits -= 8;
            }
        }
        if nbits > 0 {
            out.push(acc as u8);
        }
        out
    }

    #[test]
    fn pack_u32_matches_bitwriter_all_widths() {
        for width in 1..=32u32 {
            for n in [0usize, 1, 2, 3, 7, 8, 9, 63, 100] {
                let values: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
                let want = scalar_pack(&values, width);
                let mut got = Vec::new();
                pack_u32(&values, width, &mut got);
                assert_eq!(got, want, "w{width} n{n}");
                let mut back = Vec::new();
                assert!(unpack_u32(&got, width, n, &mut back), "w{width} n{n}");
                let mask = if width == 32 {
                    u32::MAX
                } else {
                    (1u32 << width) - 1
                };
                let masked: Vec<u32> = values.iter().map(|v| v & mask).collect();
                assert_eq!(back, masked, "w{width} n{n}");
            }
        }
    }

    #[test]
    fn pack_u64_matches_bitwriter_all_widths() {
        for width in 1..=64u32 {
            let values: Vec<u64> = (0..53u64)
                .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .collect();
            let want = scalar_pack(&values, width);
            let mut got = Vec::new();
            pack_u64(&values, width, &mut got);
            assert_eq!(got, want, "w{width}");
            let mut back = Vec::new();
            assert!(unpack_u64(&got, width, values.len(), &mut back));
            let mask = if width == 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            let masked: Vec<u64> = values.iter().map(|v| v & mask).collect();
            assert_eq!(back, masked, "w{width}");
        }
    }

    #[test]
    fn unpack_eof_matches_scalar_condition() {
        let values = vec![u32::MAX; 16];
        let mut packed = Vec::new();
        pack_u32(&values, 32, &mut packed);
        let mut out = Vec::new();
        assert!(!unpack_u32(&packed[..packed.len() - 1], 32, 16, &mut out));
        // Exactly enough bits succeeds even with a ragged final byte.
        let mut packed = Vec::new();
        pack_u32(&[3u32; 5], 3, &mut packed); // 15 bits -> 2 bytes
        let mut out = Vec::new();
        assert!(unpack_u32(&packed, 3, 5, &mut out));
        assert_eq!(out, vec![3u32; 5]);
        // One more value than the stream holds fails.
        let mut out = Vec::new();
        assert!(!unpack_u32(&packed, 3, 6, &mut out));
    }

    #[test]
    fn max_matches_iterator() {
        for n in [0usize, 1, 7, 8, 9, 100] {
            let values: Vec<u32> = (0..n as u32)
                .map(|i| i.wrapping_mul(0xC2B2_AE35).rotate_left(i))
                .collect();
            assert_eq!(max_u32(&values), values.iter().copied().max().unwrap_or(0));
        }
        assert_eq!(max_u64(&[1, u64::MAX, 3]), u64::MAX);
    }
}
