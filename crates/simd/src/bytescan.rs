//! Dispatched byte-scanning kernels: RZE/RAZE bitmap construction and
//! expansion, and RLE run scanning.
//!
//! The SWAR tier detects zero (or differing) bytes eight at a time with the
//! exact-per-byte test `t = (v & 0x7F..) + 0x7F..; nonzero = (t | v) & 0x80..`
//! — the add cannot carry across bytes, so unlike the classic "haszero"
//! trick it has no false positives — and gathers the eight high bits into a
//! bitmap byte with a carry-free multiply. The SSE2/AVX2 tiers use
//! `cmpeq`/`movemask` for the same effect at 16/32 bytes per step.

use crate::Tier;

const LOW7: u64 = 0x7F7F_7F7F_7F7F_7F7F;
const HIGH: u64 = 0x8080_8080_8080_8080;
/// Gathers the 8 high bits of a `0x80`-masked value into the top byte.
/// Every partial product lands on a distinct bit (positions `56 + 8k - 7j`
/// collide only when `8Δk = 7Δj`, impossible for `j ≤ 7`), so the multiply
/// is carry-free and exact.
const GATHER: u64 = 0x0002_0408_1020_4081;

/// Bitmap byte for 8 data bytes: bit k set ⇔ byte k nonzero.
#[inline]
pub(crate) fn nonzero_mask8(v: u64) -> u8 {
    let t = (v & LOW7).wrapping_add(LOW7);
    let nh = (t | v) & HIGH;
    (nh.wrapping_mul(GATHER) >> 56) as u8
}

/// Tier used by the bitmap-construction kernels under the current dispatch.
pub fn chosen_bitmap() -> Tier {
    crate::choose(&[Tier::Avx2, Tier::Sse2, Tier::Swar])
}

/// Tier used by the bitmap-expansion kernels (byte-granular fast path; the
/// bit-sparse control flow does not vectorize further).
pub fn chosen_expand() -> Tier {
    crate::choose(&[Tier::Swar])
}

/// Tier used by the RLE run-length scan.
pub fn chosen_run() -> Tier {
    crate::choose(&[Tier::Avx2, Tier::Sse2, Tier::Swar])
}

/// Appends the bytes of `block` (≤ 8 bytes) whose mask bit is set.
#[inline]
fn push_kept8(block: &[u8], mask: u8, kept: &mut Vec<u8>) {
    if mask == 0 {
        return;
    }
    if mask == 0xFF && block.len() == 8 {
        kept.extend_from_slice(block);
        return;
    }
    let mut m = mask;
    while m != 0 {
        kept.push(block[m.trailing_zeros() as usize]);
        m &= m - 1;
    }
}

/// Scalar tail of the nonzero-bitmap scan, starting at index `start`
/// (also the full scalar reference when `start == 0`). Semantics match
/// `fpc_transforms::rze::zero_bitmap`: `bitmap` is pre-zeroed.
pub fn zero_bitmap_tail(data: &[u8], start: usize, bitmap: &mut [u8], kept: &mut Vec<u8>) {
    for (i, &b) in data.iter().enumerate().skip(start) {
        if b != 0 {
            bitmap[i / 8] |= 1 << (i % 8);
            kept.push(b);
        }
    }
}

/// SWAR nonzero-bitmap scan: 8 bytes per step.
pub fn zero_bitmap_swar(data: &[u8], bitmap: &mut [u8], kept: &mut Vec<u8>) {
    let mut i = 0;
    while i + 8 <= data.len() {
        let v = u64::from_le_bytes(data[i..i + 8].try_into().expect("8-byte window"));
        let mask = nonzero_mask8(v);
        bitmap[i / 8] = mask;
        push_kept8(&data[i..i + 8], mask, kept);
        i += 8;
    }
    zero_bitmap_tail(data, i, bitmap, kept);
}

/// Dispatched nonzero-bitmap scan. `bitmap` must be zeroed and exactly
/// `data.len().div_ceil(8)` bytes (or longer).
pub fn zero_bitmap(data: &[u8], bitmap: &mut [u8], kept: &mut Vec<u8>) {
    let tier = chosen_bitmap();
    crate::record(tier);
    match tier {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        Tier::Avx2 => crate::x86::zero_bitmap_avx2(data, bitmap, kept),
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        Tier::Sse2 => crate::x86::zero_bitmap_sse2(data, bitmap, kept),
        Tier::Swar => zero_bitmap_swar(data, bitmap, kept),
        _ => zero_bitmap_tail(data, 0, bitmap, kept),
    }
}

/// Scalar tail of the repeat-bitmap scan from index `start` with the given
/// predecessor byte. Semantics match `fpc_transforms::rze::repeat_bitmap`:
/// bit set ⇔ byte differs from its predecessor (index 0 vs 0x00).
pub fn repeat_bitmap_tail(
    data: &[u8],
    start: usize,
    prev: u8,
    bitmap: &mut [u8],
    kept: &mut Vec<u8>,
) {
    let mut prev = prev;
    for (i, &b) in data.iter().enumerate().skip(start) {
        if b != prev {
            bitmap[i / 8] |= 1 << (i % 8);
            kept.push(b);
        }
        prev = b;
    }
}

/// SWAR repeat-bitmap scan: compares 8 bytes against themselves shifted by
/// one byte (with carry-in from the previous block).
pub fn repeat_bitmap_swar(data: &[u8], bitmap: &mut [u8], kept: &mut Vec<u8>) {
    let mut prev = 0u8;
    let mut i = 0;
    while i + 8 <= data.len() {
        let v = u64::from_le_bytes(data[i..i + 8].try_into().expect("8-byte window"));
        let shifted = (v << 8) | prev as u64;
        let mask = nonzero_mask8(v ^ shifted);
        bitmap[i / 8] = mask;
        push_kept8(&data[i..i + 8], mask, kept);
        prev = data[i + 7];
        i += 8;
    }
    repeat_bitmap_tail(data, i, prev, bitmap, kept);
}

/// Dispatched repeat-bitmap scan; same `bitmap` contract as [`zero_bitmap`].
pub fn repeat_bitmap(data: &[u8], bitmap: &mut [u8], kept: &mut Vec<u8>) {
    let tier = chosen_bitmap();
    crate::record(tier);
    match tier {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        Tier::Avx2 => crate::x86::repeat_bitmap_avx2(data, bitmap, kept),
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        Tier::Sse2 => crate::x86::repeat_bitmap_sse2(data, bitmap, kept),
        Tier::Swar => repeat_bitmap_swar(data, bitmap, kept),
        _ => repeat_bitmap_tail(data, 0, 0, bitmap, kept),
    }
}

/// Byte-granular repeat-bitmap expansion: reconstructs `count` bytes,
/// consuming differing bytes from `src` and appending to `out`.
///
/// Returns the number of `src` bytes consumed, or `None` if `src` is
/// exhausted (the caller maps this to its own EOF error). On success the
/// output is byte-identical to the scalar per-bit loop.
pub fn expand_repeat(bitmap: &[u8], count: usize, src: &[u8], out: &mut Vec<u8>) -> Option<usize> {
    crate::record(chosen_expand());
    let mut pos = 0usize;
    let mut prev = 0u8;
    let full = count / 8;
    for &m in bitmap.iter().take(full) {
        if m == 0 {
            out.resize(out.len() + 8, prev);
        } else if m == 0xFF {
            let s = src.get(pos..pos + 8)?;
            out.extend_from_slice(s);
            prev = s[7];
            pos += 8;
        } else {
            for k in 0..8 {
                if m & (1 << k) != 0 {
                    prev = *src.get(pos)?;
                    pos += 1;
                }
                out.push(prev);
            }
        }
    }
    for i in full * 8..count {
        if bitmap[i / 8] & (1 << (i % 8)) != 0 {
            prev = *src.get(pos)?;
            pos += 1;
        }
        out.push(prev);
    }
    Some(pos)
}

/// Byte-granular nonzero expansion: reconstructs `count` bytes, consuming
/// nonzero bytes from `src` and filling zeros elsewhere.
///
/// Returns `src` bytes consumed, or `None` on exhaustion.
pub fn expand_nonzero(bitmap: &[u8], count: usize, src: &[u8], out: &mut Vec<u8>) -> Option<usize> {
    crate::record(chosen_expand());
    let mut pos = 0usize;
    let full = count / 8;
    for &m in bitmap.iter().take(full) {
        if m == 0 {
            out.resize(out.len() + 8, 0);
        } else if m == 0xFF {
            out.extend_from_slice(src.get(pos..pos + 8)?);
            pos += 8;
        } else {
            for k in 0..8 {
                if m & (1 << k) != 0 {
                    out.push(*src.get(pos)?);
                    pos += 1;
                } else {
                    out.push(0);
                }
            }
        }
    }
    for i in full * 8..count {
        if bitmap[i / 8] & (1 << (i % 8)) != 0 {
            out.push(*src.get(pos)?);
            pos += 1;
        } else {
            out.push(0);
        }
    }
    Some(pos)
}

/// Scalar reference run scan: length of the run of `data[start]` at `start`.
pub fn run_len_scalar(data: &[u8], start: usize) -> usize {
    let b = data[start];
    let mut run = 1usize;
    while start + run < data.len() && data[start + run] == b {
        run += 1;
    }
    run
}

/// SWAR run scan: 8 bytes per step.
pub fn run_len_swar(data: &[u8], start: usize) -> usize {
    let b = data[start];
    let pat = (b as u64).wrapping_mul(0x0101_0101_0101_0101);
    let mut i = start + 1;
    while i + 8 <= data.len() {
        let v = u64::from_le_bytes(data[i..i + 8].try_into().expect("8-byte window"));
        let ne = nonzero_mask8(v ^ pat);
        if ne != 0 {
            return i + ne.trailing_zeros() as usize - start;
        }
        i += 8;
    }
    while i < data.len() && data[i] == b {
        i += 1;
    }
    i - start
}

/// Dispatched run scan (record-free: called once per run, the scan itself
/// is the hot loop).
pub fn run_len(data: &[u8], start: usize) -> usize {
    match chosen_run() {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        Tier::Avx2 => crate::x86::run_len_avx2(data, start),
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        Tier::Sse2 => crate::x86::run_len_sse2(data, start),
        Tier::Swar => run_len_swar(data, start),
        _ => run_len_scalar(data, start),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_zero(data: &[u8]) -> (Vec<u8>, Vec<u8>) {
        let mut bm = vec![0u8; data.len().div_ceil(8)];
        let mut kept = Vec::new();
        zero_bitmap_tail(data, 0, &mut bm, &mut kept);
        (bm, kept)
    }

    fn scalar_repeat(data: &[u8]) -> (Vec<u8>, Vec<u8>) {
        let mut bm = vec![0u8; data.len().div_ceil(8)];
        let mut kept = Vec::new();
        repeat_bitmap_tail(data, 0, 0, &mut bm, &mut kept);
        (bm, kept)
    }

    fn samples() -> Vec<Vec<u8>> {
        let mut out = vec![
            vec![],
            vec![0],
            vec![1],
            vec![0; 100],
            vec![0xFF; 100],
            vec![0x80; 33],
        ];
        let mut s = 0x9E37_79B9u32;
        let mut v = Vec::new();
        for i in 0..257 {
            s = s.wrapping_mul(0x0101_0101).wrapping_add(i);
            v.push(if s.is_multiple_of(3) {
                0
            } else {
                (s >> 24) as u8
            });
        }
        out.push(v);
        let mut sparse = vec![0u8; 200];
        for i in (0..200).step_by(23) {
            sparse[i] = (i + 1) as u8;
        }
        out.push(sparse);
        out
    }

    #[test]
    fn nonzero_mask8_exact_per_byte() {
        // Every byte value in every position, plus the 0x80-only bytes the
        // borrow-based trick gets wrong.
        for pos in 0..8 {
            for b in [0u8, 1, 0x7F, 0x80, 0x81, 0xFF] {
                let v = (b as u64) << (8 * pos);
                let want = if b != 0 { 1u8 << pos } else { 0 };
                assert_eq!(nonzero_mask8(v), want, "byte {b:#x} at {pos}");
            }
        }
        assert_eq!(nonzero_mask8(0), 0);
        assert_eq!(nonzero_mask8(u64::MAX), 0xFF);
        // Bytes (LE order): 7F 00 00 80 01 00 00 01 → bits 0, 3, 4, 7.
        assert_eq!(nonzero_mask8(0x0100_0001_8000_007F), 0b1001_1001);
    }

    #[test]
    fn swar_bitmaps_match_scalar() {
        for data in samples() {
            let (bm, kept) = scalar_zero(&data);
            let mut bm2 = vec![0u8; data.len().div_ceil(8)];
            let mut kept2 = Vec::new();
            zero_bitmap_swar(&data, &mut bm2, &mut kept2);
            assert_eq!(bm, bm2, "zero bitmap len {}", data.len());
            assert_eq!(kept, kept2, "zero kept len {}", data.len());

            let (bm, kept) = scalar_repeat(&data);
            let mut bm2 = vec![0u8; data.len().div_ceil(8)];
            let mut kept2 = Vec::new();
            repeat_bitmap_swar(&data, &mut bm2, &mut kept2);
            assert_eq!(bm, bm2, "repeat bitmap len {}", data.len());
            assert_eq!(kept, kept2, "repeat kept len {}", data.len());
        }
    }

    #[test]
    fn expand_inverts_scan() {
        for data in samples() {
            let (bm, kept) = scalar_zero(&data);
            let mut out = Vec::new();
            let used = expand_nonzero(&bm, data.len(), &kept, &mut out).unwrap();
            assert_eq!(used, kept.len());
            assert_eq!(out, data);

            let (bm, kept) = scalar_repeat(&data);
            let mut out = Vec::new();
            let used = expand_repeat(&bm, data.len(), &kept, &mut out).unwrap();
            assert_eq!(used, kept.len());
            assert_eq!(out, data);
        }
    }

    #[test]
    fn expand_eof_returns_none() {
        let data = vec![1u8; 20];
        let (bm, kept) = scalar_zero(&data);
        let mut out = Vec::new();
        assert!(expand_nonzero(&bm, data.len(), &kept[..kept.len() - 1], &mut out).is_none());
        let (bm, kept) = scalar_repeat(&data);
        let mut out = Vec::new();
        assert!(expand_repeat(&bm, data.len(), &kept[..kept.len() - 1], &mut out).is_none());
    }

    #[test]
    fn run_len_swar_matches_scalar() {
        let mut data = Vec::new();
        for (i, run) in [1usize, 3, 4, 7, 8, 9, 15, 16, 17, 40, 2, 1]
            .iter()
            .enumerate()
        {
            data.extend(std::iter::repeat_n((i % 5) as u8, *run));
        }
        let mut i = 0;
        while i < data.len() {
            let want = run_len_scalar(&data, i);
            assert_eq!(run_len_swar(&data, i), want, "at {i}");
            i += want;
        }
        assert_eq!(run_len_swar(&[7], 0), 1);
        assert_eq!(run_len_swar(&[7; 64], 0), 64);
        assert_eq!(run_len_swar(&[7; 64], 63), 1);
    }

    #[cfg(all(target_arch = "x86_64", not(miri)))]
    #[test]
    fn x86_matches_scalar() {
        use crate::x86;
        for data in samples() {
            let (bm, kept) = scalar_zero(&data);
            let mut bm2 = vec![0u8; data.len().div_ceil(8)];
            let mut kept2 = Vec::new();
            x86::zero_bitmap_sse2(&data, &mut bm2, &mut kept2);
            assert_eq!((&bm, &kept), (&bm2, &kept2), "sse2 zero len {}", data.len());
            if Tier::Avx2.available() {
                let mut bm3 = vec![0u8; data.len().div_ceil(8)];
                let mut kept3 = Vec::new();
                x86::zero_bitmap_avx2(&data, &mut bm3, &mut kept3);
                assert_eq!((&bm, &kept), (&bm3, &kept3), "avx2 zero len {}", data.len());
            }

            let (bm, kept) = scalar_repeat(&data);
            let mut bm2 = vec![0u8; data.len().div_ceil(8)];
            let mut kept2 = Vec::new();
            x86::repeat_bitmap_sse2(&data, &mut bm2, &mut kept2);
            assert_eq!((&bm, &kept), (&bm2, &kept2), "sse2 rpt len {}", data.len());
            if Tier::Avx2.available() {
                let mut bm3 = vec![0u8; data.len().div_ceil(8)];
                let mut kept3 = Vec::new();
                x86::repeat_bitmap_avx2(&data, &mut bm3, &mut kept3);
                assert_eq!((&bm, &kept), (&bm3, &kept3), "avx2 rpt len {}", data.len());
            }

            let mut i = 0;
            while i < data.len() {
                let want = run_len_scalar(&data, i);
                assert_eq!(x86::run_len_sse2(&data, i), want, "sse2 run at {i}");
                if Tier::Avx2.available() {
                    assert_eq!(x86::run_len_avx2(&data, i), want, "avx2 run at {i}");
                }
                i += want;
            }
        }
    }
}
