//! Dispatched zigzag (two's-complement ↔ magnitude-sign) slice kernels.
//!
//! The per-word formulas are the same as `fpc_transforms::zigzag`; this
//! module applies them two `u32` lanes at a time inside a `u64` (SWAR) or
//! 4/8 lanes at a time with SSE2/AVX2. Zigzag is a pure lane-local bit
//! permutation, so every tier is trivially bit-identical to scalar.

use crate::Tier;

const LANE_LO: u64 = 0x0000_0001_0000_0001;
const EVEN_OFF: u64 = 0xFFFF_FFFE_FFFF_FFFE;
const TOP_OFF: u64 = 0x7FFF_FFFF_7FFF_FFFF;

/// Tier used by the 32-bit slice kernels under the current dispatch.
pub fn chosen32() -> Tier {
    crate::choose(&[Tier::Avx2, Tier::Sse2, Tier::Swar])
}

/// Tier used by the 64-bit slice kernels under the current dispatch
/// (SWAR adds nothing over scalar for word-sized lanes).
pub fn chosen64() -> Tier {
    crate::choose(&[Tier::Avx2, Tier::Sse2])
}

#[inline]
pub(crate) fn enc32(v: u32) -> u32 {
    (v << 1) ^ (((v as i32) >> 31) as u32)
}

#[inline]
pub(crate) fn dec32(v: u32) -> u32 {
    (v >> 1) ^ (v & 1).wrapping_neg()
}

#[inline]
pub(crate) fn enc64(v: u64) -> u64 {
    (v << 1) ^ (((v as i64) >> 63) as u64)
}

#[inline]
pub(crate) fn dec64(v: u64) -> u64 {
    (v >> 1) ^ (v & 1).wrapping_neg()
}

/// Zigzag-encodes both `u32` lanes of a packed `u64`.
///
/// `(v << 1)` with the cross-lane bit masked off, xor a full-lane sign fill
/// built by multiplying the per-lane sign bits by `0xFFFF_FFFF` (the lanes
/// cannot interact: each product fills exactly its own lane).
#[inline]
pub(crate) fn enc32_pair(x: u64) -> u64 {
    let shifted = (x << 1) & EVEN_OFF;
    let sign_fill = ((x >> 31) & LANE_LO).wrapping_mul(0xFFFF_FFFF);
    shifted ^ sign_fill
}

/// Zigzag-decodes both `u32` lanes of a packed `u64`.
#[inline]
pub(crate) fn dec32_pair(x: u64) -> u64 {
    let half = (x >> 1) & TOP_OFF;
    let neg_fill = (x & LANE_LO).wrapping_mul(0xFFFF_FFFF);
    half ^ neg_fill
}

#[inline]
pub(crate) fn pair(lo: u32, hi: u32) -> u64 {
    (lo as u64) | ((hi as u64) << 32)
}

#[inline]
pub(crate) fn unpair(x: u64) -> (u32, u32) {
    (x as u32, (x >> 32) as u32)
}

/// Scalar reference: identical to `fpc_transforms::zigzag::encode32_slice`.
pub fn encode32_slice_scalar(values: &mut [u32]) {
    for v in values {
        *v = enc32(*v);
    }
}

/// Scalar reference: identical to `fpc_transforms::zigzag::decode32_slice`.
pub fn decode32_slice_scalar(values: &mut [u32]) {
    for v in values {
        *v = dec32(*v);
    }
}

/// SWAR: two lanes per `u64`.
pub fn encode32_slice_swar(values: &mut [u32]) {
    let mut chunks = values.chunks_exact_mut(2);
    for c in &mut chunks {
        let (lo, hi) = unpair(enc32_pair(pair(c[0], c[1])));
        c[0] = lo;
        c[1] = hi;
    }
    encode32_slice_scalar(chunks.into_remainder());
}

/// SWAR: two lanes per `u64`.
pub fn decode32_slice_swar(values: &mut [u32]) {
    let mut chunks = values.chunks_exact_mut(2);
    for c in &mut chunks {
        let (lo, hi) = unpair(dec32_pair(pair(c[0], c[1])));
        c[0] = lo;
        c[1] = hi;
    }
    decode32_slice_scalar(chunks.into_remainder());
}

/// Scalar reference for the 64-bit kernel.
pub fn encode64_slice_scalar(values: &mut [u64]) {
    for v in values {
        *v = enc64(*v);
    }
}

/// Scalar reference for the 64-bit kernel.
pub fn decode64_slice_scalar(values: &mut [u64]) {
    for v in values {
        *v = dec64(*v);
    }
}

/// Dispatched in-place zigzag encode of a `u32` slice.
pub fn encode32_slice(values: &mut [u32]) {
    let tier = chosen32();
    crate::record(tier);
    match tier {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        Tier::Avx2 => crate::x86::zigzag_encode32_avx2(values),
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        Tier::Sse2 => crate::x86::zigzag_encode32_sse2(values),
        Tier::Swar => encode32_slice_swar(values),
        _ => encode32_slice_scalar(values),
    }
}

/// Dispatched in-place zigzag decode of a `u32` slice.
pub fn decode32_slice(values: &mut [u32]) {
    let tier = chosen32();
    crate::record(tier);
    match tier {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        Tier::Avx2 => crate::x86::zigzag_decode32_avx2(values),
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        Tier::Sse2 => crate::x86::zigzag_decode32_sse2(values),
        Tier::Swar => decode32_slice_swar(values),
        _ => decode32_slice_scalar(values),
    }
}

/// Dispatched in-place zigzag encode of a `u64` slice.
pub fn encode64_slice(values: &mut [u64]) {
    let tier = chosen64();
    crate::record(tier);
    match tier {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        Tier::Avx2 => crate::x86::zigzag_encode64_avx2(values),
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        Tier::Sse2 => crate::x86::zigzag_encode64_sse2(values),
        _ => encode64_slice_scalar(values),
    }
}

/// Dispatched in-place zigzag decode of a `u64` slice.
pub fn decode64_slice(values: &mut [u64]) {
    let tier = chosen64();
    crate::record(tier);
    match tier {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        Tier::Avx2 => crate::x86::zigzag_decode64_avx2(values),
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        Tier::Sse2 => crate::x86::zigzag_decode64_sse2(values),
        _ => decode64_slice_scalar(values),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample32(n: usize) -> Vec<u32> {
        (0..n as u32)
            .map(|i| i.wrapping_mul(0x9E37_79B9).rotate_left(i))
            .chain([0, 1, u32::MAX, 0x8000_0000, 0x7FFF_FFFF])
            .collect()
    }

    #[test]
    fn swar_matches_scalar_all_lengths() {
        for n in 0..40 {
            let orig = sample32(n);
            let mut a = orig.clone();
            let mut b = orig.clone();
            encode32_slice_scalar(&mut a);
            encode32_slice_swar(&mut b);
            assert_eq!(a, b, "encode len {n}");
            decode32_slice_scalar(&mut a);
            decode32_slice_swar(&mut b);
            assert_eq!(a, b, "decode len {n}");
            assert_eq!(a, orig, "roundtrip len {n}");
        }
    }

    #[test]
    fn pair_kernels_match_per_word() {
        for v in [0u32, 1, 2, u32::MAX, 0x8000_0000, 0x7FFF_FFFF, 0xDEAD_BEEF] {
            for w in [0u32, u32::MAX, 0x8000_0001, 5] {
                let e = enc32_pair(pair(v, w));
                assert_eq!(unpair(e), (enc32(v), enc32(w)));
                let d = dec32_pair(pair(v, w));
                assert_eq!(unpair(d), (dec32(v), dec32(w)));
            }
        }
    }

    #[cfg(all(target_arch = "x86_64", not(miri)))]
    #[test]
    fn x86_matches_scalar() {
        use crate::x86;
        for n in [0usize, 1, 3, 4, 7, 8, 9, 31, 64, 100] {
            let orig = sample32(n);
            let mut want = orig.clone();
            encode32_slice_scalar(&mut want);
            let mut got = orig.clone();
            x86::zigzag_encode32_sse2(&mut got);
            assert_eq!(got, want, "sse2 enc32 len {n}");
            if Tier::Avx2.available() {
                let mut got = orig.clone();
                x86::zigzag_encode32_avx2(&mut got);
                assert_eq!(got, want, "avx2 enc32 len {n}");
            }
            let mut want_d = want.clone();
            decode32_slice_scalar(&mut want_d);
            let mut got_d = want.clone();
            x86::zigzag_decode32_sse2(&mut got_d);
            assert_eq!(got_d, want_d, "sse2 dec32 len {n}");
            if Tier::Avx2.available() {
                let mut got_d = want.clone();
                x86::zigzag_decode32_avx2(&mut got_d);
                assert_eq!(got_d, want_d, "avx2 dec32 len {n}");
            }

            let orig64: Vec<u64> = (0..n as u64)
                .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .chain([0, 1, u64::MAX, 1 << 63])
                .collect();
            let mut want = orig64.clone();
            encode64_slice_scalar(&mut want);
            let mut got = orig64.clone();
            x86::zigzag_encode64_sse2(&mut got);
            assert_eq!(got, want, "sse2 enc64 len {n}");
            if Tier::Avx2.available() {
                let mut got = orig64.clone();
                x86::zigzag_encode64_avx2(&mut got);
                assert_eq!(got, want, "avx2 enc64 len {n}");
            }
            let mut want_d = want.clone();
            decode64_slice_scalar(&mut want_d);
            let mut got_d = want.clone();
            x86::zigzag_decode64_sse2(&mut got_d);
            assert_eq!(got_d, want_d, "sse2 dec64 len {n}");
            if Tier::Avx2.available() {
                let mut got_d = want.clone();
                x86::zigzag_decode64_avx2(&mut got_d);
                assert_eq!(got_d, want_d, "avx2 dec64 len {n}");
            }
        }
    }
}
