//! Dispatched 32×32 bit-matrix transpose.
//!
//! The scalar reference is the Hacker's Delight §7-3 masked-swap network.
//! The AVX2 tier holds the whole 32×32 matrix in four 256-bit registers and
//! runs the network in-register. A SWAR formulation that runs the same
//! network on two groups at once ([`transpose32_pair_swar`], `u64`-packed
//! rows with a duplicated lane-safe mask: every shift is at most 16 and
//! each 32-bit lane of the mask has its top `j` bits clear before
//! `m ^= m << j`) is kept and differential-tested, but *not* dispatched —
//! it measures slower than the scalar network (see [`chosen32`]).
//!
//! The 64×64 transpose already operates on whole `u64` words (it *is* the
//! word-level SWAR formulation), so it has no separate fast path here.

use crate::Tier;

/// Tier used by the 32×32 transpose under the current dispatch.
///
/// Only AVX2 is in the candidate list: the paired-group SWAR formulation
/// ([`transpose32_pair_swar`]) measures *slower* than the plain scalar
/// network (~0.9x on the 16 KiB-chunk microbench — the u64 pack/unpack
/// costs more than the halved swap count saves), and SSE2 has no
/// profitable formulation below AVX2. Both fall back to the scalar
/// network, which the compiler already keeps in registers.
pub fn chosen32() -> Tier {
    crate::choose(&[Tier::Avx2])
}

/// Scalar reference: identical to
/// `fpc_transforms::bit_transpose::transpose32_group`.
pub fn transpose32_group_scalar(a: &mut [u32; 32]) {
    let mut m: u32 = 0x0000_FFFF;
    let mut j = 16usize;
    while j != 0 {
        let mut k = 0usize;
        while k < 32 {
            let t = (a[k] ^ (a[k + j] >> j)) & m;
            a[k] ^= t;
            a[k + j] ^= t << j;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// Transposes two 32×32 groups at once, SWAR-packed into `u64` rows.
pub fn transpose32_pair_swar(a: &mut [u32; 32], b: &mut [u32; 32]) {
    let mut w = [0u64; 32];
    for k in 0..32 {
        w[k] = (a[k] as u64) | ((b[k] as u64) << 32);
    }
    let mut m: u64 = 0x0000_FFFF_0000_FFFF;
    let mut j = 16usize;
    while j != 0 {
        let mut k = 0usize;
        while k < 32 {
            let t = (w[k] ^ (w[k + j] >> j)) & m;
            w[k] ^= t;
            w[k + j] ^= t << j;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
    for k in 0..32 {
        a[k] = w[k] as u32;
        b[k] = (w[k] >> 32) as u32;
    }
}

/// Transposes every complete 32-word group of `values` in place at the
/// dispatched tier; trailing words that do not fill a group are untouched
/// (same contract as the scalar caller).
pub fn transpose32(values: &mut [u32]) {
    let tier = chosen32();
    crate::record(tier);
    match tier {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        Tier::Avx2 => {
            for group in values.chunks_exact_mut(32) {
                crate::x86::transpose32_avx2(group.try_into().expect("chunks_exact(32)"));
            }
        }
        _ => {
            for group in values.chunks_exact_mut(32) {
                transpose32_group_scalar(group.try_into().expect("chunks_exact(32)"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_group(seed: u32) -> [u32; 32] {
        let mut g = [0u32; 32];
        for (i, v) in g.iter_mut().enumerate() {
            *v = (i as u32)
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add(seed)
                .rotate_left(i as u32);
        }
        g
    }

    #[test]
    fn swar_pair_matches_scalar() {
        for seed in 0..8 {
            let mut a = sample_group(seed);
            let mut b = sample_group(seed.wrapping_mul(0x85EB_CA6B));
            let mut ra = a;
            let mut rb = b;
            transpose32_pair_swar(&mut a, &mut b);
            transpose32_group_scalar(&mut ra);
            transpose32_group_scalar(&mut rb);
            assert_eq!(a, ra, "seed {seed} group a");
            assert_eq!(b, rb, "seed {seed} group b");
        }
    }

    #[test]
    fn swar_pair_edge_patterns() {
        for pat in [[0u32; 32], [u32::MAX; 32]] {
            let mut a = pat;
            let mut b = pat;
            transpose32_pair_swar(&mut a, &mut b);
            assert_eq!(a, pat);
            assert_eq!(b, pat);
        }
        // A single bit in one group must not leak into the other.
        let mut a = [0u32; 32];
        a[5] = 1 << 17;
        let mut b = [0u32; 32];
        let mut r = a;
        transpose32_pair_swar(&mut a, &mut b);
        transpose32_group_scalar(&mut r);
        assert_eq!(a, r);
        assert_eq!(b, [0u32; 32]);
    }

    #[test]
    fn full_slice_dispatch_is_involution() {
        // 3 groups + tail of 7: dispatched transpose twice restores input.
        let orig: Vec<u32> = (0..103u32).map(|i| i.wrapping_mul(0x85EB_CA6B)).collect();
        let mut v = orig.clone();
        transpose32(&mut v);
        assert_eq!(&v[96..], &orig[96..], "tail must pass through");
        transpose32(&mut v);
        assert_eq!(v, orig);
    }

    #[cfg(all(target_arch = "x86_64", not(miri)))]
    #[test]
    fn avx2_matches_scalar() {
        if !Tier::Avx2.available() {
            return;
        }
        for seed in 0..16u32 {
            let mut got = sample_group(seed.wrapping_mul(0xC2B2_AE35));
            let mut want = got;
            crate::x86::transpose32_avx2(&mut got);
            transpose32_group_scalar(&mut want);
            assert_eq!(got, want, "seed {seed}");
        }
        for pat in [[0u32; 32], [u32::MAX; 32]] {
            let mut got = pat;
            crate::x86::transpose32_avx2(&mut got);
            assert_eq!(got, pat);
        }
    }
}
