//! Dispatched DIFFMS (difference + zigzag) slice kernels.
//!
//! Encode subtracts each word from its successor (modulo word size) and
//! zigzags the result; it runs right-to-left so the subtraction can be done
//! in place. The vector tiers load overlapping `cur`/`prev` blocks and
//! process whole blocks right-to-left, which touches exactly the same
//! values in a compatible order (a block's stores never overlap a later
//! block's loads).
//!
//! Decode is a zigzag decode followed by an inclusive prefix sum. Wrapping
//! addition is associative, so the SSE2 log-step prefix sum is bit-identical
//! to the sequential loop. A SWAR prefix sum would need carries to cross
//! the packed lanes, so the SWAR tier only accelerates encode; decode falls
//! back to scalar below SSE2.

use crate::zigzag::{dec32, enc32, enc32_pair, enc64, pair, unpair};
use crate::Tier;

/// Per-lane 32-bit subtraction of two packed `u64`s (Hacker's Delight
/// §2-18): borrow is blocked at the lane boundary by forcing the minuend's
/// lane-MSB, then the true MSB is patched back in.
#[inline]
pub(crate) fn psub32(x: u64, y: u64) -> u64 {
    const H: u64 = 0x8000_0000_8000_0000;
    ((x | H).wrapping_sub(y & !H)) ^ ((x ^ !y) & H)
}

/// Tier used by the 32-bit encode kernel under the current dispatch.
pub fn chosen_encode32() -> Tier {
    crate::choose(&[Tier::Avx2, Tier::Sse2, Tier::Swar])
}

/// Tier used by the 32-bit decode kernel (prefix sum needs real lanes).
pub fn chosen_decode32() -> Tier {
    crate::choose(&[Tier::Sse2])
}

/// Tier used by the 64-bit encode kernel.
pub fn chosen_encode64() -> Tier {
    crate::choose(&[Tier::Avx2, Tier::Sse2])
}

/// Tier used by the 64-bit decode kernel.
pub fn chosen_decode64() -> Tier {
    crate::choose(&[Tier::Sse2])
}

/// Scalar reference: identical to `fpc_transforms::diffms::encode32`.
pub fn encode32_scalar(values: &mut [u32]) {
    for i in (1..values.len()).rev() {
        values[i] = enc32(values[i].wrapping_sub(values[i - 1]));
    }
    if let Some(first) = values.first_mut() {
        *first = enc32(*first);
    }
}

/// Scalar reference: identical to `fpc_transforms::diffms::decode32`.
pub fn decode32_scalar(values: &mut [u32]) {
    if let Some(first) = values.first_mut() {
        *first = dec32(*first);
    }
    for i in 1..values.len() {
        values[i] = dec32(values[i]).wrapping_add(values[i - 1]);
    }
}

/// Scalar reference: identical to `fpc_transforms::diffms::encode64`.
pub fn encode64_scalar(values: &mut [u64]) {
    for i in (1..values.len()).rev() {
        values[i] = enc64(values[i].wrapping_sub(values[i - 1]));
    }
    if let Some(first) = values.first_mut() {
        *first = enc64(*first);
    }
}

/// Scalar reference: identical to `fpc_transforms::diffms::decode64`.
pub fn decode64_scalar(values: &mut [u64]) {
    if let Some(first) = values.first_mut() {
        *first = crate::zigzag::dec64(*first);
    }
    for i in 1..values.len() {
        values[i] = crate::zigzag::dec64(values[i]).wrapping_add(values[i - 1]);
    }
}

/// SWAR encode: two lanes per step, blocks processed right-to-left.
pub fn encode32_swar(values: &mut [u32]) {
    let mut i = values.len();
    while i >= 3 {
        i -= 2;
        let cur = pair(values[i], values[i + 1]);
        let prev = pair(values[i - 1], values[i]);
        let (lo, hi) = unpair(enc32_pair(psub32(cur, prev)));
        values[i] = lo;
        values[i + 1] = hi;
    }
    while i > 1 {
        i -= 1;
        values[i] = enc32(values[i].wrapping_sub(values[i - 1]));
    }
    if let Some(first) = values.first_mut() {
        *first = enc32(*first);
    }
}

/// Dispatched in-place DIFFMS encode of a `u32` slice.
pub fn encode32(values: &mut [u32]) {
    let tier = chosen_encode32();
    crate::record(tier);
    match tier {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        Tier::Avx2 => crate::x86::diffms_encode32_avx2(values),
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        Tier::Sse2 => crate::x86::diffms_encode32_sse2(values),
        Tier::Swar => encode32_swar(values),
        _ => encode32_scalar(values),
    }
}

/// Dispatched in-place DIFFMS decode of a `u32` slice.
pub fn decode32(values: &mut [u32]) {
    let tier = chosen_decode32();
    crate::record(tier);
    match tier {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        Tier::Sse2 => crate::x86::diffms_decode32_sse2(values),
        _ => decode32_scalar(values),
    }
}

/// Dispatched in-place DIFFMS encode of a `u64` slice.
pub fn encode64(values: &mut [u64]) {
    let tier = chosen_encode64();
    crate::record(tier);
    match tier {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        Tier::Avx2 => crate::x86::diffms_encode64_avx2(values),
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        Tier::Sse2 => crate::x86::diffms_encode64_sse2(values),
        _ => encode64_scalar(values),
    }
}

/// Dispatched in-place DIFFMS decode of a `u64` slice.
pub fn decode64(values: &mut [u64]) {
    let tier = chosen_decode64();
    crate::record(tier);
    match tier {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        Tier::Sse2 => crate::x86::diffms_decode64_sse2(values),
        _ => decode64_scalar(values),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample32(n: usize) -> Vec<u32> {
        (0..n as u32)
            .map(|i| i.wrapping_mul(0x0101_0101).rotate_left(i % 13))
            .chain([u32::MAX, 0, u32::MAX, 5, 0x8000_0000])
            .collect()
    }

    #[test]
    fn psub32_matches_per_lane_wrapping_sub() {
        let edge = [0u32, 1, 2, u32::MAX, 0x8000_0000, 0x7FFF_FFFF, 0xDEAD_BEEF];
        for &a0 in &edge {
            for &a1 in &edge {
                for &b0 in &edge {
                    for &b1 in &edge {
                        let got = unpair(psub32(pair(a0, a1), pair(b0, b1)));
                        let want = (a0.wrapping_sub(b0), a1.wrapping_sub(b1));
                        assert_eq!(got, want, "{a0:#x},{a1:#x} - {b0:#x},{b1:#x}");
                    }
                }
            }
        }
        let mut s = 0x1234_5678_9ABC_DEF0u64;
        for _ in 0..10_000 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = s;
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let y = s;
            let (x0, x1) = unpair(x);
            let (y0, y1) = unpair(y);
            assert_eq!(
                unpair(psub32(x, y)),
                (x0.wrapping_sub(y0), x1.wrapping_sub(y1))
            );
        }
    }

    #[test]
    fn swar_encode_matches_scalar_all_lengths() {
        for n in 0..40 {
            let orig = sample32(n);
            let mut a = orig.clone();
            let mut b = orig.clone();
            encode32_scalar(&mut a);
            encode32_swar(&mut b);
            assert_eq!(a, b, "len {n}");
            decode32_scalar(&mut a);
            assert_eq!(a, orig, "roundtrip len {n}");
        }
    }

    #[cfg(all(target_arch = "x86_64", not(miri)))]
    #[test]
    fn x86_matches_scalar() {
        use crate::x86;
        for n in [0usize, 1, 2, 3, 5, 8, 9, 16, 17, 33, 100] {
            let orig = sample32(n);
            let mut want = orig.clone();
            encode32_scalar(&mut want);
            let mut got = orig.clone();
            x86::diffms_encode32_sse2(&mut got);
            assert_eq!(got, want, "sse2 enc32 len {n}");
            if Tier::Avx2.available() {
                let mut got = orig.clone();
                x86::diffms_encode32_avx2(&mut got);
                assert_eq!(got, want, "avx2 enc32 len {n}");
            }
            let mut dec = want.clone();
            x86::diffms_decode32_sse2(&mut dec);
            assert_eq!(dec, orig, "sse2 dec32 len {n}");

            let orig64: Vec<u64> = (0..n as u64)
                .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .chain([u64::MAX, 0, 1 << 63, 3])
                .collect();
            let mut want = orig64.clone();
            encode64_scalar(&mut want);
            let mut got = orig64.clone();
            x86::diffms_encode64_sse2(&mut got);
            assert_eq!(got, want, "sse2 enc64 len {n}");
            if Tier::Avx2.available() {
                let mut got = orig64.clone();
                x86::diffms_encode64_avx2(&mut got);
                assert_eq!(got, want, "avx2 enc64 len {n}");
            }
            let mut dec = want.clone();
            x86::diffms_decode64_sse2(&mut dec);
            assert_eq!(dec, orig64, "sse2 dec64 len {n}");
        }
    }
}
